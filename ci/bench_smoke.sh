#!/usr/bin/env bash
# Smoke for the benchmark binaries: run `query_bench --fast` (a real
# build + freeze + probe + serve cycle on a reduced insect preset) and a
# reduced `index_bench`, then validate that the emitted JSON carries the
# full measurement schema — dataset provenance, warmup/repeats protocol,
# single- and multi-thread sections with median/CV/speedup, the
# probe-engine and extraction ablation cells (scalar vs SIMD group scan,
# scalar vs word-striped extraction), the wire ablation cell (Newick
# parse vs phylo-wire binary decode), the serve section, and the
# frozen-sidecar open cells (zero-copy mmap open vs read-and-materialize).
#
# The speedup itself is NOT asserted here: CI runners are too noisy for a
# throughput gate, and query_bench already hard-asserts frozen == live on
# every answer before it times anything. What CI pins down is that the
# artifact schema never silently regresses.
set -euo pipefail

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
OUT="$WORK/BENCH_query.json"

echo "== run query_bench --fast"
cargo run --release -p bfhrf-bench --bin query_bench -- --fast --out "$OUT"

echo "== validate BENCH_query.json schema"
python3 - "$OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

def need(obj, key, kind, where):
    if key not in obj:
        sys.exit(f"bench smoke: missing {where}.{key}")
    if not isinstance(obj[key], kind):
        sys.exit(f"bench smoke: {where}.{key} is {type(obj[key]).__name__}, "
                 f"expected {kind}")
    return obj[key]

ds = need(doc, "dataset", dict, "$")
for key in ("n_taxa", "n_trees", "distinct"):
    need(ds, key, int, "dataset")
need(ds, "name", str, "dataset")
need(doc, "queries", int, "$")
need(doc, "repeats", int, "$")
need(doc, "warmup", int, "$")

st = need(doc, "single_thread", dict, "$")
need(st, "probes", int, "single_thread")
for key in ("live_seconds", "live_cv", "live_mprobes_per_s",
            "frozen_seconds", "frozen_cv", "frozen_mprobes_per_s", "speedup"):
    need(st, key, (int, float), "single_thread")
pa = need(doc, "probe_ablation", dict, "$")
need(pa, "engine", str, "probe_ablation")
need(pa, "simd_available", bool, "probe_ablation")
for key in ("scalar_seconds", "scalar_cv", "scalar_mprobes_per_s",
            "simd_seconds", "simd_cv", "simd_mprobes_per_s", "speedup"):
    need(pa, key, (int, float), "probe_ablation")
if pa["engine"] not in ("sse2", "neon", "scalar"):
    sys.exit(f"bench smoke: unknown probe engine {pa['engine']!r}")
ea = need(doc, "extract_ablation", dict, "$")
for key in ("scalar_seconds", "scalar_cv",
            "vectorized_seconds", "vectorized_cv", "speedup"):
    need(ea, key, (int, float), "extract_ablation")
wi = need(doc, "wire", dict, "$")
need(wi, "trees", int, "wire")
need(wi, "newick_bytes", int, "wire")
need(wi, "bin_bytes", int, "wire")
for key in ("parse_seconds", "parse_cv", "parse_us_per_tree",
            "decode_seconds", "decode_cv", "decode_us_per_tree", "speedup"):
    need(wi, key, (int, float), "wire")
if wi["bin_bytes"] >= wi["newick_bytes"]:
    sys.exit(f"bench smoke: binary payload ({wi['bin_bytes']} B) not smaller "
             f"than Newick ({wi['newick_bytes']} B)")
ee = need(doc, "end_to_end", dict, "$")
for key in ("live_seconds", "live_cv", "live_qps",
            "frozen_seconds", "frozen_cv", "frozen_qps", "speedup"):
    need(ee, key, (int, float), "end_to_end")
mt = need(doc, "multi_thread", dict, "$")
need(mt, "cores", int, "multi_thread")
for key in ("live_seconds", "live_cv", "frozen_seconds", "frozen_cv", "speedup"):
    need(mt, key, (int, float), "multi_thread")
srv = need(doc, "serve", dict, "$")
need(srv, "requests", int, "serve")
need(srv, "clients", int, "serve")
need(srv, "pipeline_window", int, "serve")
need(srv, "batch_size", int, "serve")
need(srv, "batch_frames", int, "serve")
for key in ("qps", "pipelined_qps", "batch_qps",
            "inproc_live_qps", "inproc_frozen_qps"):
    need(srv, key, (int, float), "serve")
if srv["batch_size"] < 1 or srv["batch_frames"] < 1:
    sys.exit("bench smoke: degenerate batch cell parameters")
obs = need(doc, "obs", dict, "$")
need(obs, "attempts", int, "obs")
for key in ("bare_seconds", "bare_cv", "instrumented_seconds",
            "instrumented_cv", "overhead_ratio", "max_ratio"):
    need(obs, key, (int, float), "obs")
if obs["overhead_ratio"] > obs["max_ratio"]:
    sys.exit(f"bench smoke: obs overhead {obs['overhead_ratio']} exceeds "
             f"the recorded gate {obs['max_ratio']}")

for section, obj in (("single_thread", st), ("probe_ablation", pa),
                     ("extract_ablation", ea), ("wire", wi),
                     ("end_to_end", ee),
                     ("multi_thread", mt), ("serve", srv), ("obs", obs)):
    for key, value in obj.items():
        if isinstance(value, (int, float)) and value < 0:
            sys.exit(f"bench smoke: {section}.{key} is negative: {value}")
if st["speedup"] <= 0 or st["live_mprobes_per_s"] <= 0 \
        or st["frozen_mprobes_per_s"] <= 0:
    sys.exit("bench smoke: degenerate single-thread timings")
if pa["speedup"] <= 0 or pa["scalar_mprobes_per_s"] <= 0 \
        or pa["simd_mprobes_per_s"] <= 0 or ea["speedup"] <= 0:
    sys.exit("bench smoke: degenerate ablation timings")
if wi["speedup"] <= 0 or wi["parse_us_per_tree"] <= 0 \
        or wi["decode_us_per_tree"] <= 0:
    sys.exit("bench smoke: degenerate wire ablation timings")
if srv["qps"] <= 0 or srv["pipelined_qps"] <= 0 or srv["batch_qps"] <= 0:
    sys.exit("bench smoke: serve section measured nothing")

print(f"bench smoke: schema ok "
      f"(single-thread speedup {st['speedup']:.2f}x, "
      f"probe ablation {pa['speedup']:.2f}x on {pa['engine']}, "
      f"extraction {ea['speedup']:.2f}x, "
      f"wire decode {wi['speedup']:.2f}x, serve {srv['qps']:.0f} q/s, "
      f"batch {srv['batch_qps']:.0f} q/s, "
      f"obs overhead {obs['overhead_ratio']:.4f}x)")
EOF

IOUT="$WORK/BENCH_index.json"

echo "== run index_bench (reduced preset)"
cargo run --release -p bfhrf-bench --bin index_bench -- \
    --trees 300 --frozen-trees 2000 --repeats 2 --requests 20 --out "$IOUT"

echo "== validate BENCH_index.json schema"
python3 - "$IOUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

def need(key, kind):
    if key not in doc:
        sys.exit(f"bench smoke: missing $.{key}")
    if not isinstance(doc[key], kind):
        sys.exit(f"bench smoke: $.{key} is {type(doc[key]).__name__}, "
                 f"expected {kind}")
    return doc[key]

for key in ("cold_build_seconds", "snapshot_save_seconds",
            "snapshot_load_seconds", "load_speedup_vs_cold_build",
            "catalog_cold_open_seconds", "catalog_warm_acquire_seconds",
            "catalog_warm_speedup_vs_cold"):
    if need(key, (int, float)) <= 0:
        sys.exit(f"bench smoke: degenerate $.{key}")

# the frozen-sidecar cells: the zero-copy open must exist, be mapped, and
# index_bench itself hard-asserts mmap < full before emitting, so a
# well-formed file implies the win
need("frozen_trees", int)
need("frozen_snapshot_bytes", int)
need("frozen_sidecar_bytes", int)
if need("frozen_mapped", bool) is not True:
    sys.exit("bench smoke: frozen sidecar was not memory-mapped")
fz = need("frozen_open_seconds", (int, float))
full = need("full_open_seconds", (int, float))
speedup = need("frozen_open_speedup_vs_full", (int, float))
if fz <= 0 or full <= 0 or speedup <= 0:
    sys.exit("bench smoke: degenerate frozen-open timings")
if fz >= full:
    sys.exit(f"bench smoke: zero-copy open ({fz}s) did not beat "
             f"read-and-materialize ({full}s)")

serve = need("serve", list)
if not serve:
    sys.exit("bench smoke: serve table is empty")
for row in serve:
    for key in ("clients", "requests", "seconds", "qps", "batch_qps"):
        if key not in row:
            sys.exit(f"bench smoke: serve row missing {key}: {row}")

print(f"bench smoke: index schema ok "
      f"(snapshot load {doc['load_speedup_vs_cold_build']:.2f}x vs rebuild, "
      f"frozen open {speedup:.2f}x vs full at r={doc['frozen_trees']})")
EOF
