#!/usr/bin/env bash
# Smoke for the query-path benchmark: run `query_bench --fast` (a real
# build + freeze + probe + serve cycle on a reduced insect preset) and
# validate that the emitted BENCH_query.json carries the full measurement
# schema — dataset provenance, warmup/repeats protocol, single- and
# multi-thread sections with median/CV/speedup, the probe-engine and
# extraction ablation cells (scalar vs SIMD group scan, scalar vs
# word-striped extraction), and the serve section.
#
# The speedup itself is NOT asserted here: CI runners are too noisy for a
# throughput gate, and query_bench already hard-asserts frozen == live on
# every answer before it times anything. What CI pins down is that the
# artifact schema never silently regresses.
set -euo pipefail

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
OUT="$WORK/BENCH_query.json"

echo "== run query_bench --fast"
cargo run --release -p bfhrf-bench --bin query_bench -- --fast --out "$OUT"

echo "== validate BENCH_query.json schema"
python3 - "$OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

def need(obj, key, kind, where):
    if key not in obj:
        sys.exit(f"bench smoke: missing {where}.{key}")
    if not isinstance(obj[key], kind):
        sys.exit(f"bench smoke: {where}.{key} is {type(obj[key]).__name__}, "
                 f"expected {kind}")
    return obj[key]

ds = need(doc, "dataset", dict, "$")
for key in ("n_taxa", "n_trees", "distinct"):
    need(ds, key, int, "dataset")
need(ds, "name", str, "dataset")
need(doc, "queries", int, "$")
need(doc, "repeats", int, "$")
need(doc, "warmup", int, "$")

st = need(doc, "single_thread", dict, "$")
need(st, "probes", int, "single_thread")
for key in ("live_seconds", "live_cv", "live_mprobes_per_s",
            "frozen_seconds", "frozen_cv", "frozen_mprobes_per_s", "speedup"):
    need(st, key, (int, float), "single_thread")
pa = need(doc, "probe_ablation", dict, "$")
need(pa, "engine", str, "probe_ablation")
need(pa, "simd_available", bool, "probe_ablation")
for key in ("scalar_seconds", "scalar_cv", "scalar_mprobes_per_s",
            "simd_seconds", "simd_cv", "simd_mprobes_per_s", "speedup"):
    need(pa, key, (int, float), "probe_ablation")
if pa["engine"] not in ("sse2", "neon", "scalar"):
    sys.exit(f"bench smoke: unknown probe engine {pa['engine']!r}")
ea = need(doc, "extract_ablation", dict, "$")
for key in ("scalar_seconds", "scalar_cv",
            "vectorized_seconds", "vectorized_cv", "speedup"):
    need(ea, key, (int, float), "extract_ablation")
ee = need(doc, "end_to_end", dict, "$")
for key in ("live_seconds", "live_cv", "live_qps",
            "frozen_seconds", "frozen_cv", "frozen_qps", "speedup"):
    need(ee, key, (int, float), "end_to_end")
mt = need(doc, "multi_thread", dict, "$")
need(mt, "cores", int, "multi_thread")
for key in ("live_seconds", "live_cv", "frozen_seconds", "frozen_cv", "speedup"):
    need(mt, key, (int, float), "multi_thread")
srv = need(doc, "serve", dict, "$")
need(srv, "requests", int, "serve")
need(srv, "clients", int, "serve")
need(srv, "pipeline_window", int, "serve")
need(srv, "batch_size", int, "serve")
need(srv, "batch_frames", int, "serve")
for key in ("qps", "pipelined_qps", "batch_qps",
            "inproc_live_qps", "inproc_frozen_qps"):
    need(srv, key, (int, float), "serve")
if srv["batch_size"] < 1 or srv["batch_frames"] < 1:
    sys.exit("bench smoke: degenerate batch cell parameters")
obs = need(doc, "obs", dict, "$")
need(obs, "attempts", int, "obs")
for key in ("bare_seconds", "bare_cv", "instrumented_seconds",
            "instrumented_cv", "overhead_ratio", "max_ratio"):
    need(obs, key, (int, float), "obs")
if obs["overhead_ratio"] > obs["max_ratio"]:
    sys.exit(f"bench smoke: obs overhead {obs['overhead_ratio']} exceeds "
             f"the recorded gate {obs['max_ratio']}")

for section, obj in (("single_thread", st), ("probe_ablation", pa),
                     ("extract_ablation", ea), ("end_to_end", ee),
                     ("multi_thread", mt), ("serve", srv), ("obs", obs)):
    for key, value in obj.items():
        if isinstance(value, (int, float)) and value < 0:
            sys.exit(f"bench smoke: {section}.{key} is negative: {value}")
if st["speedup"] <= 0 or st["live_mprobes_per_s"] <= 0 \
        or st["frozen_mprobes_per_s"] <= 0:
    sys.exit("bench smoke: degenerate single-thread timings")
if pa["speedup"] <= 0 or pa["scalar_mprobes_per_s"] <= 0 \
        or pa["simd_mprobes_per_s"] <= 0 or ea["speedup"] <= 0:
    sys.exit("bench smoke: degenerate ablation timings")
if srv["qps"] <= 0 or srv["pipelined_qps"] <= 0 or srv["batch_qps"] <= 0:
    sys.exit("bench smoke: serve section measured nothing")

print(f"bench smoke: schema ok "
      f"(single-thread speedup {st['speedup']:.2f}x, "
      f"probe ablation {pa['speedup']:.2f}x on {pa['engine']}, "
      f"extraction {ea['speedup']:.2f}x, serve {srv['qps']:.0f} q/s, "
      f"batch {srv['batch_qps']:.0f} q/s, "
      f"obs overhead {obs['overhead_ratio']:.4f}x)")
EOF
