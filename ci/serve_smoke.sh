#!/usr/bin/env bash
# End-to-end smoke for the persistent index + query daemon:
#
#   simulate -> index build -> serve (background) -> query -> diff vs offline
#
# The served `avgrf` answer must be byte-identical to the offline report on
# the same files; any divergence fails the job via `diff`.
set -euo pipefail

BIN="${BFHRF_BIN:-target/release/bfhrf}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== simulate a reference collection"
"$BIN" simulate --taxa 24 --trees 40 --out "$WORK/refs.nwk" --seed 4077
head -n 5 "$WORK/refs.nwk" >"$WORK/queries.nwk"

echo "== build and verify the on-disk index"
"$BIN" index build --refs "$WORK/refs.nwk" --out "$WORK/index"
"$BIN" index inspect --index "$WORK/index" --check

echo "== start the daemon on an OS-assigned port"
"$BIN" serve --index "$WORK/index" --addr 127.0.0.1:0 --threads 2 \
    --port-file "$WORK/port" &
SERVER_PID=$!
for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "serve smoke: daemon died" >&2; exit 1; }
    sleep 0.1
done
[ -s "$WORK/port" ] || { echo "serve smoke: port file never appeared" >&2; exit 1; }

echo "== served answers must match offline avgrf byte-for-byte"
"$BIN" avgrf --refs "$WORK/refs.nwk" --queries "$WORK/queries.nwk" >"$WORK/offline.tsv"
"$BIN" query --port-file "$WORK/port" --queries "$WORK/queries.nwk" >"$WORK/served.tsv"
diff -u "$WORK/offline.tsv" "$WORK/served.tsv"

echo "== stats + clean shutdown"
"$BIN" query --port-file "$WORK/port" --op stats
"$BIN" query --port-file "$WORK/port" --op shutdown
wait "$SERVER_PID"
SERVER_PID=""
echo "serve smoke: served answers match offline avgrf"
