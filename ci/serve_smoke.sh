#!/usr/bin/env bash
# End-to-end smoke for the persistent index + query daemon:
#
#   simulate -> index build -> serve (background) -> query -> diff vs offline
#
# The served `avgrf` answer must be byte-identical to the offline report on
# the same files; any divergence fails the job via `diff`.
set -euo pipefail

BIN="${BFHRF_BIN:-target/release/bfhrf}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== simulate a reference collection"
"$BIN" simulate --taxa 24 --trees 40 --out "$WORK/refs.nwk" --seed 4077
head -n 5 "$WORK/refs.nwk" >"$WORK/queries.nwk"

echo "== build and verify the on-disk index"
"$BIN" index build --refs "$WORK/refs.nwk" --out "$WORK/index"
"$BIN" index inspect --index "$WORK/index" --check

echo "== start the daemon on an OS-assigned port"
"$BIN" serve --index "$WORK/index" --addr 127.0.0.1:0 --threads 2 \
    --port-file "$WORK/port" &
SERVER_PID=$!
for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "serve smoke: daemon died" >&2; exit 1; }
    sleep 0.1
done
[ -s "$WORK/port" ] || { echo "serve smoke: port file never appeared" >&2; exit 1; }

echo "== served answers must match offline avgrf byte-for-byte"
"$BIN" avgrf --refs "$WORK/refs.nwk" --queries "$WORK/queries.nwk" >"$WORK/offline.tsv"
"$BIN" query --port-file "$WORK/port" --queries "$WORK/queries.nwk" >"$WORK/served.tsv"
diff -u "$WORK/offline.tsv" "$WORK/served.tsv"

echo "== batched v2 client matches offline byte-for-byte"
"$BIN" query --port-file "$WORK/port" --queries "$WORK/queries.nwk" --batch 2 \
    >"$WORK/served_batch.tsv"
diff -u "$WORK/offline.tsv" "$WORK/served_batch.tsv"

echo "== v2 binary tree encoding: negotiated bin session matches newick byte-for-byte"
"$BIN" query --port-file "$WORK/port" --queries "$WORK/queries.nwk" --format bin \
    >"$WORK/served_bin.tsv"
diff -u "$WORK/offline.tsv" "$WORK/served_bin.tsv"
"$BIN" convert --in "$WORK/queries.nwk" --out "$WORK/queries.phw" --format bin
"$BIN" query --port-file "$WORK/port" --queries "$WORK/queries.phw" --batch 2 \
    --format bin >"$WORK/served_bin_file.tsv"
diff -u "$WORK/offline.tsv" "$WORK/served_bin_file.tsv"

echo "== wire protocol v2: hello + pipelined batch; v1 dialect on the same socket"
python3 - "$(cat "$WORK/port")" "$WORK/queries.nwk" <<'EOF'
import json
import socket
import sys

host, port = sys.argv[1].rsplit(":", 1)
queries = [l.strip() for l in open(sys.argv[2]) if l.strip()]

sock = socket.create_connection((host, int(port)), timeout=30)
rfile = sock.makefile("r", encoding="utf-8")

def send(frame):
    sock.sendall((json.dumps(frame) + "\n").encode())

def recv():
    line = rfile.readline()
    if not line:
        sys.exit("serve smoke: server closed the v2 session")
    return json.loads(line)

# hello handshake: version + batch ceiling
send({"v": 2, "op": "hello"})
hello = recv()
if hello.get("ok") is not True or hello.get("v") != 2:
    sys.exit(f"serve smoke: bad hello response: {hello}")
if not isinstance(hello.get("max_batch"), int) or hello["max_batch"] < 1:
    sys.exit(f"serve smoke: hello lacks a max_batch ceiling: {hello}")
if "encoding" in hello:
    sys.exit(f"serve smoke: plain hello must stay byte-compatible "
             f"(no encoding member): {hello}")

# encoding negotiation on a separate socket (this session stays newick):
# "bin" must be echoed, an unknown encoding refused without dropping the
# connection
neg = socket.create_connection((host, int(port)), timeout=30)
nfile = neg.makefile("r", encoding="utf-8")
neg.sendall((json.dumps({"v": 2, "op": "hello", "encoding": "bin"})
             + "\n").encode())
resp = json.loads(nfile.readline())
if resp.get("ok") is not True or resp.get("encoding") != "bin":
    sys.exit(f"serve smoke: bin encoding not echoed: {resp}")
neg.sendall((json.dumps({"v": 2, "op": "hello", "encoding": "xml"})
             + "\n").encode())
resp = json.loads(nfile.readline())
if resp.get("ok") is not False or "encoding" not in resp.get("error", ""):
    sys.exit(f"serve smoke: unknown encoding not refused: {resp}")
neg.sendall((json.dumps({"v": 2, "op": "ping"}) + "\n").encode())
if json.loads(nfile.readline()).get("ok") is not True:
    sys.exit("serve smoke: connection unusable after refused encoding")
neg.close()

# two pipelined batch frames written back-to-back, answered in order
# with their ids echoed
send({"v": 2, "op": "batch", "id": 7, "queries": queries})
send({"v": 2, "op": "batch", "id": 8, "queries": queries})
for want in (7, 8):
    resp = recv()
    if resp.get("ok") is not True or resp.get("id") != want:
        sys.exit(f"serve smoke: frame {want} answered wrong: {resp}")
    if len(resp.get("scores", [])) != len(queries):
        sys.exit(f"serve smoke: frame {want} row count mismatch: {resp}")
    if "snap" not in resp or "generation" not in resp:
        sys.exit(f"serve smoke: batch response lacks snapshot provenance: {resp}")

# ping: a health summary without touching the admin path
send({"v": 2, "op": "ping"})
pong = recv()
if pong.get("ok") is not True or pong.get("pong") is not True:
    sys.exit(f"serve smoke: bad pong: {pong}")
for key in ("generation", "wal_pending", "uptime_ms"):
    if not isinstance(pong.get(key), int):
        sys.exit(f"serve smoke: pong lacks {key}: {pong}")

# a v1 frame (no "v") on the same connection keeps working
send({"op": "avgrf", "queries": queries[:1]})
v1 = recv()
if v1.get("ok") is not True or len(v1.get("scores", [])) != 1:
    sys.exit(f"serve smoke: v1 dialect broken on a v2 session: {v1}")

# oversized batches are refused without dropping the connection
send({"v": 2, "op": "batch", "queries": queries * (hello["max_batch"] // len(queries) + 1)})
err = recv()
if err.get("ok") is not False or err.get("code") != "error":
    sys.exit(f"serve smoke: oversized batch not refused: {err}")
send({"op": "stats"})
if recv().get("ok") is not True:
    sys.exit("serve smoke: connection unusable after oversized batch")

sock.close()
print(f"serve smoke: v2 session ok (max_batch {hello['max_batch']}, "
      f"{2 * len(queries)} rows pipelined)")
EOF

echo "== stats: metrics schema + non-zero request counters"
"$BIN" query --port-file "$WORK/port" --op ping
"$BIN" query --port-file "$WORK/port" --op stats
"$BIN" stats --port-file "$WORK/port"
"$BIN" stats --port-file "$WORK/port" --json >"$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

if doc.get("ok") is not True:
    sys.exit(f"serve smoke: stats response not ok: {doc}")
series = doc.get("metrics", {}).get("series")
if not isinstance(series, list) or not series:
    sys.exit("serve smoke: stats carries no metrics.series")

by_key = {}
for s in series:
    for key in ("name", "labels", "kind"):
        if key not in s:
            sys.exit(f"serve smoke: series missing {key}: {s}")
    if s["kind"] == "histogram":
        for key in ("count", "sum", "max", "mean", "p50", "p90", "p99",
                    "buckets"):
            if key not in s:
                sys.exit(f"serve smoke: histogram missing {key}: {s}")
        for b in s["buckets"]:
            if "le" not in b or "n" not in b:
                sys.exit(f"serve smoke: malformed bucket in {s['name']}: {b}")
    else:
        if "value" not in s:
            sys.exit(f"serve smoke: {s['kind']} missing value: {s}")
    labels = ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items()))
    by_key[(s["name"], labels)] = s

# the query burst above must have been counted
ok_avgrf = by_key.get(("serve_requests_total", "op=avgrf,outcome=ok"))
if ok_avgrf is None or ok_avgrf["value"] < 1:
    sys.exit("serve smoke: no successful avgrf requests counted")
lat = by_key.get(("serve_request_ns", "op=avgrf"))
if lat is None or lat["count"] < 1 or lat["p50"] <= 0:
    sys.exit("serve smoke: avgrf latency histogram is empty")
# the v2 session above pushed batch frames through a pipelined connection,
# so both protocol-shape histograms must have fired
bs = by_key.get(("serve_batch_size", ""))
if bs is None or bs["count"] < 1:
    sys.exit("serve smoke: serve_batch_size histogram empty after batch ops")
pd = by_key.get(("serve_pipeline_depth", ""))
if pd is None or pd["count"] < 1:
    sys.exit("serve smoke: serve_pipeline_depth histogram never recorded")
conns = by_key.get(("serve_connections_total", ""))
if conns is None or conns["value"] < 2:
    sys.exit("serve smoke: connection counter missed the query burst")
gen = by_key.get(("index_generation", ""))
if gen is None or gen["value"] < 0:
    sys.exit("serve smoke: index generation gauge absent")
# the bin sessions above pushed binary frames, so the wire metrics must
# have both fired and kept their pre-registered newick twins
wf = by_key.get(("wire_frames_total", "encoding=bin"))
if wf is None or wf["value"] < 1:
    sys.exit("serve smoke: wire_frames_total{encoding=bin} never counted")
wd = by_key.get(("wire_decode_ns", "encoding=bin"))
if wd is None or wd["count"] < 1:
    sys.exit("serve smoke: wire_decode_ns{encoding=bin} histogram empty")
for name in ("wire_frames_total", "wire_decode_ns", "wire_encode_ns"):
    for enc in ("newick", "bin"):
        if (name, f"encoding={enc}") not in by_key:
            sys.exit(f"serve smoke: missing pre-registered {name}"
                     f"{{encoding={enc}}}")
# every op x outcome cell is pre-registered so dashboards never see a
# series appear out of nowhere; spot-check the schema stability claim
for op in ("hello", "avgrf", "best-query", "batch", "ping", "stats", "add",
           "remove", "compact", "xavgrf", "catalog-create", "catalog-drop",
           "catalog-list", "shutdown", "unknown"):
    for outcome in ("ok", "error", "budget", "cancelled", "busy"):
        if ("serve_requests_total", f"op={op},outcome={outcome}") not in by_key:
            sys.exit(f"serve smoke: missing pre-registered series "
                     f"op={op} outcome={outcome}")
print(f"serve smoke: stats schema ok "
      f"({ok_avgrf['value']} avgrf ok, p50 {lat['p50']:.0f} ns)")
EOF

echo "== clean shutdown"
"$BIN" query --port-file "$WORK/port" --op shutdown
wait "$SERVER_PID"
SERVER_PID=""

# ---------------------------------------------------------------------------
# Multi-collection catalog: one daemon, many indexes, LRU-managed under a
# global memory budget. Phase 1 creates three collections unbudgeted and
# measures their combined resident size; phase 2 restarts the same catalog
# under a budget one byte smaller, so serving the interleaved workload is
# only possible by evicting — and every routed answer must still match the
# offline report byte-for-byte.
# ---------------------------------------------------------------------------

wait_port() {
    local file=$1 pid=$2
    for _ in $(seq 1 100); do
        [ -s "$file" ] && return 0
        kill -0 "$pid" 2>/dev/null || { echo "serve smoke: daemon died" >&2; exit 1; }
        sleep 0.1
    done
    echo "serve smoke: port file never appeared" >&2
    exit 1
}

echo "== catalog: simulate three collections on a shared taxon set"
"$BIN" simulate --taxa 32 --trees 30 --out "$WORK/c1.nwk" --seed 101
"$BIN" simulate --taxa 32 --trees 30 --out "$WORK/c2.nwk" --seed 202
"$BIN" simulate --taxa 32 --trees 30 --out "$WORK/c3.nwk" --seed 303
head -n 3 "$WORK/c1.nwk" >"$WORK/cq.nwk"

echo "== catalog phase 1: create collections unbudgeted, measure residency"
"$BIN" serve --index "$WORK/index" --catalog "$WORK/catalog" \
    --addr 127.0.0.1:0 --threads 2 --port-file "$WORK/port2" &
SERVER_PID=$!
wait_port "$WORK/port2" "$SERVER_PID"
for c in c1 c2 c3; do
    "$BIN" catalog create --port-file "$WORK/port2" --name "$c" \
        --trees "$WORK/$c.nwk"
    # Touch each collection through the routed path so it is open (and
    # therefore measured) when we read the resident sizes below.
    "$BIN" query --port-file "$WORK/port2" --op stats --collection "$c" >/dev/null
done
"$BIN" catalog list --port-file "$WORK/port2" >"$WORK/catalog_list.tsv"
cat "$WORK/catalog_list.tsv"
COMBINED=$(awk -F'\t' 'NR > 1 && $2 == "true" { s += $3 } END { print s+0 }' \
    "$WORK/catalog_list.tsv")
OPEN_ROWS=$(awk -F'\t' 'NR > 1 && $2 == "true"' "$WORK/catalog_list.tsv" | wc -l)
[ "$OPEN_ROWS" -eq 3 ] || {
    echo "serve smoke: expected 3 open collections, saw $OPEN_ROWS" >&2; exit 1; }
[ "$COMBINED" -gt 3 ] || {
    echo "serve smoke: implausible combined resident size $COMBINED" >&2; exit 1; }
"$BIN" query --port-file "$WORK/port2" --op shutdown
wait "$SERVER_PID"
SERVER_PID=""
rm -f "$WORK/port2"

echo "== catalog phase 2: budget $((COMBINED - 1)) < combined $COMBINED forces LRU eviction"
"$BIN" serve --index "$WORK/index" --catalog "$WORK/catalog" \
    --mem-budget "$((COMBINED - 1))" \
    --addr 127.0.0.1:0 --threads 2 --port-file "$WORK/port2" &
SERVER_PID=$!
wait_port "$WORK/port2" "$SERVER_PID"

echo "== routed queries match offline avgrf per collection, across evictions"
for c in c1 c2 c3 c1; do
    "$BIN" avgrf --refs "$WORK/$c.nwk" --queries "$WORK/cq.nwk" \
        >"$WORK/offline_$c.tsv"
    "$BIN" query --port-file "$WORK/port2" --collection "$c" \
        --queries "$WORK/cq.nwk" >"$WORK/served_$c.tsv"
    diff -u "$WORK/offline_$c.tsv" "$WORK/served_$c.tsv"
done

echo "== cross-collection xavgrf on the shared taxa"
"$BIN" query --port-file "$WORK/port2" --op xavgrf \
    --refs-collection c1 --queries-collection c2 >"$WORK/xavgrf.tsv"
head -n 2 "$WORK/xavgrf.tsv"
COMMON=$(awk -F'\t' '$1 == "common_taxa" { print $2 }' "$WORK/xavgrf.tsv")
[ "$COMMON" -eq 32 ] || {
    echo "serve smoke: xavgrf saw $COMMON common taxa, expected 32" >&2; exit 1; }
XROWS=$(awk 'NR > 2' "$WORK/xavgrf.tsv" | wc -l)
[ "$XROWS" -eq 30 ] || {
    echo "serve smoke: xavgrf scored $XROWS queries, expected 30" >&2; exit 1; }

echo "== ping reports the catalog; collection-less clients are untouched"
"$BIN" query --port-file "$WORK/port2" --op ping | tee "$WORK/pong2.tsv"
grep -q $'^collections\t4$' "$WORK/pong2.tsv" || {
    echo "serve smoke: pong should count default + 3 collections" >&2; exit 1; }
"$BIN" query --port-file "$WORK/port2" --queries "$WORK/queries.nwk" \
    >"$WORK/served_default.tsv"
diff -u "$WORK/offline.tsv" "$WORK/served_default.tsv"

echo "== catalog counters: evictions observed, residency under budget"
"$BIN" stats --port-file "$WORK/port2" --json >"$WORK/stats2.json"
python3 - "$WORK/stats2.json" "$COMBINED" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
combined = int(sys.argv[2])

by_key = {}
for s in doc["metrics"]["series"]:
    labels = ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items()))
    by_key[(s["name"], labels)] = s

def value(name, labels=""):
    s = by_key.get((name, labels))
    return None if s is None else s["value"]

if value("catalog_collections") != 3:
    sys.exit(f"serve smoke: catalog_collections != 3: "
             f"{value('catalog_collections')}")
cold = value("catalog_opens_total", "kind=cold") or 0
if cold < 3:
    sys.exit(f"serve smoke: expected >= 3 cold opens, saw {cold}")
evictions = sum(s["value"] for (name, _), s in by_key.items()
                if name == "catalog_evictions_total")
if evictions < 1:
    sys.exit("serve smoke: the over-budget workload evicted nothing")
resident = value("catalog_resident_bytes")
if resident is None or resident >= combined:
    sys.exit(f"serve smoke: resident {resident} not held under "
             f"combined {combined}")
for c in ("c1", "c2", "c3"):
    if ("catalog_collection_open", f"collection={c}") not in by_key:
        sys.exit(f"serve smoke: missing per-collection gauge for {c}")
print(f"serve smoke: catalog ok ({cold} cold opens, {evictions} evictions, "
      f"resident {resident}/{combined - 1})")
EOF

echo "== catalog admin: drop removes a collection from the listing"
"$BIN" catalog drop --port-file "$WORK/port2" --name c3
"$BIN" catalog list --port-file "$WORK/port2" >"$WORK/catalog_list2.tsv"
ROWS=$(awk 'NR > 1' "$WORK/catalog_list2.tsv" | wc -l)
[ "$ROWS" -eq 2 ] || {
    echo "serve smoke: expected 2 collections after drop, saw $ROWS" >&2; exit 1; }
! grep -q $'^c3\t' "$WORK/catalog_list2.tsv" || {
    echo "serve smoke: dropped collection still listed" >&2; exit 1; }

"$BIN" query --port-file "$WORK/port2" --op shutdown
wait "$SERVER_PID"
SERVER_PID=""
echo "serve smoke: served answers match offline avgrf; catalog workload ok"
