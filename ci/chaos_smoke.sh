#!/usr/bin/env bash
# Chaos smoke for the failure-handling surface:
#
#   1. crash-consistency torture tests — every write op under scripted
#      fault schedules, replayed prefix-by-prefix through the fault VFS
#   2. kill -9 the daemon in the middle of a pipelined batch session,
#      restart it on the same port, and require the retrying client's
#      output to be byte-identical to an offline run
#
# Any divergence fails the job via `diff`; a client that cannot ride out
# the crash fails it via its exit code.
set -euo pipefail

BIN="${BFHRF_BIN:-target/release/bfhrf}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== crash-consistency torture tests (fault VFS, prefix replay)"
cargo test -q -p phylo-index --test torture

echo "== build a reference index and an offline baseline"
# Enough work (one query per frame, a non-trivial index) that the kill
# below reliably lands while the batch session is still in flight.
"$BIN" simulate --taxa 128 --trees 4100 --out "$WORK/all.nwk" --seed 4077
head -n 100 "$WORK/all.nwk" >"$WORK/refs.nwk"
tail -n 4000 "$WORK/all.nwk" >"$WORK/queries.nwk"
"$BIN" index build --refs "$WORK/refs.nwk" --out "$WORK/index"
"$BIN" avgrf --refs "$WORK/refs.nwk" --queries "$WORK/queries.nwk" \
    >"$WORK/offline.tsv"

# Start the daemon on `addr`; succeeds once the port file appears.
start_daemon() {
    rm -f "$WORK/port"
    "$BIN" serve --index "$WORK/index" --addr "$1" --threads 2 \
        --port-file "$WORK/port" &
    SERVER_PID=$!
    for _ in $(seq 1 30); do
        [ -s "$WORK/port" ] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || return 1
        sleep 0.1
    done
    return 1
}

echo "== start the daemon and a retrying batch client"
start_daemon 127.0.0.1:0 || { echo "chaos smoke: daemon never came up" >&2; exit 1; }
ADDR="$(cat "$WORK/port")"
"$BIN" query --addr "$ADDR" --queries "$WORK/queries.nwk" --batch 1 \
    --retries 10 --backoff-ms 200 >"$WORK/served.tsv" 2>"$WORK/client.log" &
CLIENT_PID=$!

echo "== kill -9 the daemon mid-session"
sleep 0.2
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
if kill -0 "$CLIENT_PID" 2>/dev/null; then
    echo "chaos smoke: crash landed mid-session, client still running"
else
    echo "chaos smoke: WARNING client finished before the kill (weak run)" >&2
fi

echo "== restart on the same port; the client must reconnect and resend"
RESTARTED=0
for _ in $(seq 1 25); do
    if start_daemon "$ADDR"; then RESTARTED=1; break; fi
    sleep 0.2
done
[ "$RESTARTED" = 1 ] || { echo "chaos smoke: could not rebind $ADDR" >&2; exit 1; }

if ! wait "$CLIENT_PID"; then
    echo "chaos smoke: retrying client failed across the restart" >&2
    cat "$WORK/client.log" >&2
    exit 1
fi
sed -n 's/^/chaos smoke: client: /p' "$WORK/client.log"

echo "== served output across the crash must match offline byte-for-byte"
diff -u "$WORK/offline.tsv" "$WORK/served.tsv"

echo "== restarted daemon is healthy (ping) and shuts down cleanly"
"$BIN" query --addr "$ADDR" --op ping
"$BIN" query --addr "$ADDR" --op shutdown
wait "$SERVER_PID"
SERVER_PID=""
echo "chaos smoke: byte-identical across kill -9 + restart"
