//! Persistent-index benchmark, emitted as machine-readable JSON.
//!
//! ```text
//! index_bench [--trees R] [--frozen-trees F] [--repeats K] [--requests Q] [--out FILE]
//! ```
//!
//! Four questions, one file (`BENCH_index.json`):
//!
//! 1. **Startup**: how much faster is loading a snapshot than re-parsing
//!    the Newick collection and rebuilding the hash from scratch?
//!    (one warmup cycle, then median-of-K with CV for cold build,
//!    snapshot save, snapshot load)
//! 2. **Frozen open**: at `--frozen-trees` scale (default 100k trees,
//!    its own index directory), time-to-first-answer for the zero-copy
//!    path — `Index::open_frozen` mapping the `frozen.bfh` sidecar and
//!    probing it in place — vs the full `Index::open`, which reads the
//!    snapshot and materializes every split into the live hash first.
//!    Both sides answer the same `avgrf` query and both answers are
//!    asserted equal to the pre-computed live answer before any timing
//!    is recorded.
//! 3. **Catalog**: what does collection routing cost — a cold open
//!    (snapshot load + WAL replay on first acquire, the price of an LRU
//!    eviction) vs a warm acquire (pin an already-open collection, the
//!    steady-state per-request cost)?
//! 4. **Serving**: how many `avgrf` requests per second does `bfhrf
//!    serve` sustain with 1, 4, and 8 concurrent client connections —
//!    both as single-op request/response frames and as pipelined v2
//!    `batch` frames (64 queries each, `batch_qps` counts individual
//!    queries)? Rounds interleave the client counts and each row keeps
//!    its peak observed throughput (noise only ever subtracts).
//!
//! The loaded hash is checked against the freshly built one (counters
//! must match) so a timing win can never hide a correctness loss.

use bfhrf_cli::server::{ServeConfig, Server};
use phylo_index::Index;
use phylo_sim::DatasetSpec;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trees = 2000usize;
    let mut frozen_trees = 100_000usize;
    let mut repeats = 3usize;
    let mut requests = 50usize;
    let mut out_path = "BENCH_index.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("index_bench: {name} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        let parse = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|e| {
                eprintln!("index_bench: bad {name}: {e}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--trees" => trees = parse("--trees", grab("--trees")),
            "--frozen-trees" => frozen_trees = parse("--frozen-trees", grab("--frozen-trees")),
            "--repeats" => repeats = parse("--repeats", grab("--repeats")),
            "--requests" => requests = parse("--requests", grab("--requests")),
            "--out" => out_path = grab("--out"),
            other => {
                eprintln!("index_bench: unknown argument {other:?}");
                eprintln!(
                    "usage: index_bench [--trees R] [--frozen-trees F] [--repeats K] [--requests Q] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    let repeats = repeats.max(1);
    let requests = requests.max(1);

    eprintln!("[index_bench] generating insect preset (n=144, r={trees}) ...");
    let spec = DatasetSpec::insect().with_trees(trees);
    let ds = bfhrf_bench::datasets::prepare(&spec);

    let dir = std::env::temp_dir().join(format!("bfhrf-index-bench-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    let index_dir = dir.join("index");

    // -------- startup: cold rebuild vs snapshot save / load ------------
    // warmup cycle (unrecorded) + median-of-K with CV per phase
    let mut colds = Vec::with_capacity(repeats);
    let mut saves = Vec::with_capacity(repeats);
    let mut loads = Vec::with_capacity(repeats);
    let mut built = None;
    for rep in 0..=repeats {
        if rep == 0 {
            eprintln!("[index_bench] warmup cycle ...");
        } else {
            eprintln!("[index_bench] repeat {rep}/{repeats} ...");
        }
        let t = Instant::now();
        let coll = phylo::TreeCollection::parse(&ds.newick).expect("simulated trees parse");
        let bfh = bfhrf::Bfh::build_sharded(&coll.trees, &coll.taxa, 8);
        let cold_s = t.elapsed().as_secs_f64();

        if index_dir.exists() {
            std::fs::remove_dir_all(&index_dir).expect("clearing index dir");
        }
        let t = Instant::now();
        let index =
            Index::create(&index_dir, bfh.clone(), coll.taxa.clone()).expect("index create");
        let save_s = t.elapsed().as_secs_f64();
        drop(index);

        let t = Instant::now();
        let index = Index::open(&index_dir).expect("index open");
        let load_s = t.elapsed().as_secs_f64();
        assert_eq!(
            index.bfh().distinct(),
            bfh.distinct(),
            "loaded hash diverged"
        );
        assert_eq!(index.bfh().sum(), bfh.sum(), "loaded hash diverged");
        if rep > 0 {
            colds.push(cold_s);
            saves.push(save_s);
            loads.push(load_s);
        }
        built = Some((bfh, coll));
    }
    let (bfh, coll) = built.expect("at least one repeat ran");
    let (cold, cold_cv) = (
        bfhrf_bench::stats::median(&colds),
        bfhrf_bench::stats::coeff_of_variation(&colds),
    );
    let (save, save_cv) = (
        bfhrf_bench::stats::median(&saves),
        bfhrf_bench::stats::coeff_of_variation(&saves),
    );
    let (load, load_cv) = (
        bfhrf_bench::stats::median(&loads),
        bfhrf_bench::stats::coeff_of_variation(&loads),
    );
    eprintln!("[index_bench] cold build {cold:.4}s, snapshot save {save:.4}s, load {load:.4}s");

    // -------- frozen sidecar: zero-copy mmap open vs full open ---------
    // The tentpole claim of the frozen sidecar: a query-only consumer can
    // open a huge index without materializing a single split. Side A maps
    // `frozen.bfh` and probes it in place; side B is the classic open —
    // snapshot read, every split rebuilt into the live hash. Both sides
    // answer one avgrf query so "open" means time-to-first-answer, and
    // both answers are asserted equal to the live hash's before timing.
    eprintln!("[index_bench] frozen open: generating insect preset (n=144, r={frozen_trees}) ...");
    let fspec = DatasetSpec::insect().with_trees(frozen_trees);
    let fds = bfhrf_bench::datasets::prepare(&fspec);
    let fcoll = phylo::TreeCollection::parse(&fds.newick).expect("frozen-open trees parse");
    drop(fds);
    eprintln!("[index_bench] frozen open: building + persisting the index ...");
    let fbfh = bfhrf::Bfh::build_sharded(&fcoll.trees, &fcoll.taxa, 8);
    let fquery = fcoll.trees[0].clone();
    let expected = bfhrf::bfhrf_average(&fquery, &fcoll.taxa, &fbfh);
    let frozen_dir = dir.join("frozen");
    drop(Index::create(&frozen_dir, fbfh, fcoll.taxa.clone()).expect("frozen-open create"));
    let snap_bytes = std::fs::metadata(frozen_dir.join(phylo_index::SNAPSHOT_FILE))
        .expect("snapshot metadata")
        .len();
    let sidecar_bytes = std::fs::metadata(frozen_dir.join(phylo_index::FROZEN_FILE))
        .expect("sidecar metadata")
        .len();
    let mut scratch = phylo::BipartitionScratch::new();
    let mut mmap_opens = Vec::with_capacity(repeats);
    let mut full_opens = Vec::with_capacity(repeats);
    let mut mapped = false;
    for rep in 0..=repeats {
        let t = Instant::now();
        let fo = Index::open_frozen(&frozen_dir).expect("frozen open");
        let ans = fo.frozen.average_scratch(&fquery, &fo.taxa, &mut scratch);
        let mmap_s = t.elapsed().as_secs_f64();
        assert_eq!(ans, expected, "frozen-open answer diverged from live");
        mapped = fo.mapped;
        drop(fo);

        let t = Instant::now();
        let mut idx = Index::open(&frozen_dir).expect("full open");
        let frozen = idx.frozen();
        let ans = frozen.average_scratch(&fquery, &fcoll.taxa, &mut scratch);
        let full_s = t.elapsed().as_secs_f64();
        assert_eq!(ans, expected, "full-open answer diverged from live");
        drop(frozen);
        drop(idx);

        if rep > 0 {
            mmap_opens.push(mmap_s);
            full_opens.push(full_s);
        }
    }
    let (fz_open, fz_open_cv) = (
        bfhrf_bench::stats::median(&mmap_opens),
        bfhrf_bench::stats::coeff_of_variation(&mmap_opens),
    );
    let (full_open, full_open_cv) = (
        bfhrf_bench::stats::median(&full_opens),
        bfhrf_bench::stats::coeff_of_variation(&full_opens),
    );
    assert!(
        fz_open < full_open,
        "zero-copy open ({fz_open:.4}s) must beat read-and-materialize ({full_open:.4}s)"
    );
    eprintln!(
        "[index_bench] frozen open: mmap {:.1}ms vs full {:.1}ms → {:.1}x (mapped: {mapped}, snapshot {:.1} MiB, sidecar {:.1} MiB)",
        fz_open * 1e3,
        full_open * 1e3,
        full_open / fz_open,
        snap_bytes as f64 / (1 << 20) as f64,
        sidecar_bytes as f64 / (1 << 20) as f64,
    );
    std::fs::remove_dir_all(&frozen_dir).ok();
    drop(fcoll);

    // -------- catalog: cold open vs LRU-warm acquire -------------------
    // A cold acquire pays the full collection open (snapshot load + WAL
    // replay) — the cost an LRU eviction pushes onto the next request for
    // the evicted collection. A warm acquire just pins the open cell. The
    // gap is the budget/latency trade the catalog makes.
    let cat_dir = dir.join("catalog");
    let cat_trees: String = ds
        .newick
        .lines()
        .filter(|l| !l.trim().is_empty())
        .take(300)
        .map(|l| format!("{l}\n"))
        .collect();
    {
        let mut cat = phylo_index::Catalog::open(&cat_dir, None).expect("catalog open");
        cat.create("bench", &cat_trees).expect("catalog create");
    }
    let mut cat_colds = Vec::with_capacity(repeats);
    let mut cat_warms = Vec::with_capacity(repeats);
    const WARM_ACQUIRES: usize = 1000;
    for rep in 0..=repeats {
        // Fresh Catalog per repeat: the open pool starts empty, so the
        // first acquire is genuinely cold.
        let mut cat = phylo_index::Catalog::open(&cat_dir, None).expect("catalog reopen");
        let t = Instant::now();
        drop(cat.acquire("bench").expect("cold acquire"));
        let cold_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        for _ in 0..WARM_ACQUIRES {
            drop(cat.acquire("bench").expect("warm acquire"));
        }
        let warm_s = t.elapsed().as_secs_f64() / WARM_ACQUIRES as f64;
        if rep > 0 {
            cat_colds.push(cold_s);
            cat_warms.push(warm_s);
        }
    }
    let (cat_cold, cat_cold_cv) = (
        bfhrf_bench::stats::median(&cat_colds),
        bfhrf_bench::stats::coeff_of_variation(&cat_colds),
    );
    let (cat_warm, cat_warm_cv) = (
        bfhrf_bench::stats::median(&cat_warms),
        bfhrf_bench::stats::coeff_of_variation(&cat_warms),
    );
    eprintln!(
        "[index_bench] catalog cold open {:.1}us, warm acquire {:.3}us ({:.0}x)",
        cat_cold * 1e6,
        cat_warm * 1e6,
        cat_cold / cat_warm
    );

    // -------- serving: avgrf throughput at 1/4/8 clients ---------------
    let newick = phylo::write_newick(&coll.trees[0], &coll.taxa);
    let query = format!(r#"{{"op":"avgrf","queries":["{newick}"]}}"#);
    let batch_size = 64usize;
    let batch_query = format!(
        r#"{{"v":2,"op":"batch","queries":[{}]}}"#,
        vec![format!("\"{newick}\""); batch_size].join(",")
    );
    // Slots ride well above the 8-client peak: rounds run back-to-back,
    // and a fresh round's connects can race the server's teardown of the
    // previous round's (already-closed) sockets.
    let srv = Server::bind(&ServeConfig {
        index_dir: index_dir.clone(),
        addr: "127.0.0.1:0".into(),
        threads: 32,
        mem_budget: None,
        timeout_ms: None,
        catalog_dir: None,
    })
    .expect("server bind");
    let addr = srv.local_addr();
    let handle = std::thread::spawn(move || srv.run().expect("server run"));

    // per client count: one warmup batch, then `repeats` timed batches.
    // Clients pipeline single-op frames (window of 4 in flight) the way a
    // v2 client does, and connect + park on a barrier first so connect and
    // thread-spawn cost stays outside the timed window.
    let frame = format!("{query}\n").into_bytes();
    let run_batch = |clients: usize, n_requests: usize| -> f64 {
        let barrier = std::sync::Barrier::new(clients + 1);
        let mut t = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let frame = &frame;
                let barrier = &barrier;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("client connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut writer = stream.try_clone().expect("client clone");
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    let mut sent = 0usize;
                    let mut read = 0usize;
                    barrier.wait();
                    while read < n_requests {
                        while sent < n_requests && sent - read < 4 {
                            writer.write_all(frame).expect("client write");
                            sent += 1;
                        }
                        line.clear();
                        reader.read_line(&mut line).expect("client read");
                        assert!(line.contains("\"ok\":true"), "server refused: {line}");
                        read += 1;
                    }
                });
            }
            barrier.wait();
            t = Instant::now();
        });
        t.elapsed().as_secs_f64()
    };
    // Same shape for the v2 batch op: each client pipelines `frames`
    // batch frames (window of 4 in flight) on one connection; the row's
    // batch_qps counts individual queries served per second.
    let batch_frame = format!("{batch_query}\n").into_bytes();
    let run_batch_op = |clients: usize, frames: usize| -> f64 {
        let barrier = std::sync::Barrier::new(clients + 1);
        let mut t = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let batch_frame = &batch_frame;
                let barrier = &barrier;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("client connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut writer = stream.try_clone().expect("client clone");
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    let mut sent = 0usize;
                    let mut read = 0usize;
                    barrier.wait();
                    while read < frames {
                        while sent < frames && sent - read < 2 {
                            writer.write_all(batch_frame).expect("client write");
                            sent += 1;
                        }
                        line.clear();
                        reader.read_line(&mut line).expect("client read");
                        assert!(line.contains("\"ok\":true"), "server refused: {line}");
                        read += 1;
                    }
                });
            }
            barrier.wait();
            t = Instant::now();
        });
        t.elapsed().as_secs_f64()
    };
    // Rounds interleave the client counts (1, 4, 8, 1, 4, 8, ...) so any
    // slow drift on the host — cache warming, background load — taxes
    // every row equally instead of biasing whichever count ran last.
    let batch_frames = (requests / 4).max(4);
    const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];
    let serve_repeats = repeats.max(5);
    for &clients in &CLIENT_COUNTS {
        run_batch(clients, (requests / 4).max(5)); // warmup
        run_batch_op(clients, (batch_frames / 2).max(2)); // warmup
    }
    let mut secs_by = [const { Vec::new() }; CLIENT_COUNTS.len()];
    let mut qps_by = [const { Vec::new() }; CLIENT_COUNTS.len()];
    let mut batch_qps_by = [const { Vec::new() }; CLIENT_COUNTS.len()];
    for _ in 0..serve_repeats {
        for (i, &clients) in CLIENT_COUNTS.iter().enumerate() {
            let seconds = run_batch(clients, requests);
            secs_by[i].push(seconds);
            qps_by[i].push((clients * requests) as f64 / seconds);
            let seconds = run_batch_op(clients, batch_frames);
            batch_qps_by[i].push((clients * batch_frames * batch_size) as f64 / seconds);
        }
    }
    // Rows carry peak q/s over the rounds (noise — a preempting neighbour,
    // a cold cache — only ever subtracts from a throughput sample, so the
    // maximum is the closest estimate of true capacity; same argument the
    // obs-overhead bench documents), with the CV across rounds for honesty.
    let peak = |xs: &[f64]| xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut serve_rows = Vec::new();
    for (i, &clients) in CLIENT_COUNTS.iter().enumerate() {
        let total = clients * requests;
        let seconds = secs_by[i].iter().copied().fold(f64::INFINITY, f64::min);
        let qps = peak(&qps_by[i]);
        let cv = bfhrf_bench::stats::coeff_of_variation(&qps_by[i]);
        let batch_qps = peak(&batch_qps_by[i]);
        let batch_cv = bfhrf_bench::stats::coeff_of_variation(&batch_qps_by[i]);
        eprintln!(
            "[index_bench] {clients} client(s): {total} requests in {seconds:.4}s ({qps:.1}/s, cv {cv:.3}); batch op {batch_qps:.1} q/s (cv {batch_cv:.3})"
        );
        serve_rows.push((clients, total, seconds, qps, cv, batch_qps, batch_cv));
    }

    let mut bye = TcpStream::connect(addr).expect("shutdown connect");
    bye.write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("shutdown write");
    drop(bye);
    handle.join().expect("server thread");

    // -------- emit ------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"name\": \"insect\", \"n_taxa\": {}, \"n_trees\": {}, \"distinct\": {}}},",
        coll.taxa.len(),
        coll.len(),
        bfh.distinct()
    );
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    json.push_str("  \"warmup\": 1,\n");
    let _ = writeln!(json, "  \"cold_build_seconds\": {cold:.6},");
    let _ = writeln!(json, "  \"cold_build_cv\": {cold_cv:.4},");
    let _ = writeln!(json, "  \"snapshot_save_seconds\": {save:.6},");
    let _ = writeln!(json, "  \"snapshot_save_cv\": {save_cv:.4},");
    let _ = writeln!(json, "  \"snapshot_load_seconds\": {load:.6},");
    let _ = writeln!(json, "  \"snapshot_load_cv\": {load_cv:.4},");
    let _ = writeln!(
        json,
        "  \"load_speedup_vs_cold_build\": {:.3},",
        cold / load
    );
    let _ = writeln!(json, "  \"frozen_trees\": {frozen_trees},");
    let _ = writeln!(json, "  \"frozen_snapshot_bytes\": {snap_bytes},");
    let _ = writeln!(json, "  \"frozen_sidecar_bytes\": {sidecar_bytes},");
    let _ = writeln!(json, "  \"frozen_mapped\": {mapped},");
    let _ = writeln!(json, "  \"frozen_open_seconds\": {fz_open:.6},");
    let _ = writeln!(json, "  \"frozen_open_cv\": {fz_open_cv:.4},");
    let _ = writeln!(json, "  \"full_open_seconds\": {full_open:.6},");
    let _ = writeln!(json, "  \"full_open_cv\": {full_open_cv:.4},");
    let _ = writeln!(
        json,
        "  \"frozen_open_speedup_vs_full\": {:.3},",
        full_open / fz_open
    );
    let _ = writeln!(json, "  \"catalog_cold_open_seconds\": {cat_cold:.9},");
    let _ = writeln!(json, "  \"catalog_cold_open_cv\": {cat_cold_cv:.4},");
    let _ = writeln!(json, "  \"catalog_warm_acquire_seconds\": {cat_warm:.9},");
    let _ = writeln!(json, "  \"catalog_warm_acquire_cv\": {cat_warm_cv:.4},");
    let _ = writeln!(
        json,
        "  \"catalog_warm_speedup_vs_cold\": {:.3},",
        cat_cold / cat_warm
    );
    let _ = writeln!(json, "  \"batch_size\": {batch_size},");
    json.push_str("  \"serve\": [\n");
    for (i, (clients, total, seconds, qps, cv, batch_qps, batch_cv)) in
        serve_rows.iter().enumerate()
    {
        let _ = write!(
            json,
            "    {{\"clients\": {clients}, \"requests\": {total}, \"seconds\": {seconds:.6}, \"qps\": {qps:.1}, \"cv\": {cv:.4}, \"batch_qps\": {batch_qps:.1}, \"batch_cv\": {batch_cv:.4}}}"
        );
        json.push_str(if i + 1 < serve_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "snapshot load vs cold rebuild: {:.2}x (written to {out_path})",
        cold / load
    );
}
