//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro <datasets|fig1|tbl3|tbl4|tbl5|ablations|all> [--full] [--out FILE]
//! ```
//!
//! Default sizes finish in minutes on a laptop; `--full` uses the paper's
//! exact `n`/`r` (the sequential baselines are then rate-extrapolated
//! exactly as the paper extrapolated DS). Output goes to stdout and, with
//! `--out`, to a file.

use bfhrf_bench::{Experiment, Scale};
use std::io::Write;

// Install the byte-exact peak tracker so Memory(MB) columns are real.
#[global_allocator]
static ALLOC: bfhrf_bench::peak_alloc::InstallPeakAlloc = bfhrf_bench::peak_alloc::InstallPeakAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut scale = Scale::Default;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--out" => {
                out_path = it.next().cloned();
                if out_path.is_none() {
                    eprintln!("repro: --out needs a file path");
                    std::process::exit(2);
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!("repro: unknown flag {flag}");
                std::process::exit(2);
            }
            cmd => {
                if which.replace(cmd.to_string()).is_some() {
                    eprintln!("repro: give exactly one experiment");
                    std::process::exit(2);
                }
            }
        }
    }
    let which = which.unwrap_or_else(|| "all".to_string());
    let exp = Experiment::new(scale);
    let mut report = String::new();
    let run = |name: &str, exp: &Experiment, report: &mut String| {
        eprintln!("[repro] running {name} ...");
        let start = std::time::Instant::now();
        let section = match name {
            "datasets" => exp.datasets(),
            "fig1" => exp.fig1(),
            "tbl3" => exp.tbl3(),
            "tbl4" => exp.tbl4(),
            "tbl5" => exp.tbl5(),
            "ablations" => exp.ablations(),
            _ => unreachable!(),
        };
        eprintln!(
            "[repro] {name} done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
        report.push_str(&section);
    };
    match which.as_str() {
        "all" => {
            for name in ["datasets", "fig1", "tbl3", "tbl4", "tbl5", "ablations"] {
                run(name, &exp, &mut report);
            }
        }
        name @ ("datasets" | "fig1" | "tbl3" | "tbl4" | "tbl5" | "ablations") => {
            run(name, &exp, &mut report);
        }
        other => {
            eprintln!(
                "repro: unknown experiment {other:?} (expected datasets, fig1, tbl3, tbl4, tbl5, ablations, all)"
            );
            std::process::exit(2);
        }
    }
    print!("{report}");
    if let Some(path) = out_path {
        let mut f =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("[repro] report written to {path}");
    }
}
