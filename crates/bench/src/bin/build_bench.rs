//! Hash-build ablation on the Insect-scale preset (n = 144), emitted as
//! machine-readable JSON.
//!
//! ```text
//! build_bench [--trees R] [--repeats K] [--out FILE]
//! ```
//!
//! Builds the same bipartition frequency hash three ways — sequential
//! `Bfh::build`, the rayon fold/merge baseline (kept locally in the bench
//! crate), and the sharded two-phase `Bfh::build_sharded` — across pool
//! sizes 1/2/4/8,
//! checks the three produce identical hashes, and writes `BENCH_build.json`
//! with the full grid plus the headline ratio: sharded vs fold-merge at
//! 8 threads (target: ≥ 1.5×).

use bfhrf_bench::runner::{build_ablation, BuildCell};
use phylo_sim::DatasetSpec;
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trees = 5000usize;
    let mut repeats = 5usize;
    let mut out_path = "BENCH_build.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("build_bench: {name} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match a.as_str() {
            "--trees" => {
                trees = grab("--trees").parse().unwrap_or_else(|e| {
                    eprintln!("build_bench: bad --trees: {e}");
                    std::process::exit(2);
                })
            }
            "--repeats" => {
                repeats = grab("--repeats").parse().unwrap_or_else(|e| {
                    eprintln!("build_bench: bad --repeats: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = grab("--out"),
            other => {
                eprintln!("build_bench: unknown argument {other:?}");
                eprintln!("usage: build_bench [--trees R] [--repeats K] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("[build_bench] generating insect preset (n=144, r={trees}) ...");
    let spec = DatasetSpec::insect().with_trees(trees);
    let ds = bfhrf_bench::datasets::prepare(&spec);
    let coll = phylo::TreeCollection::parse(&ds.newick).expect("simulated trees parse");

    // One unmeasured warmup round (page cache, allocator, lazy pools),
    // then median-of-K with CV so scheduler noise is visible in the
    // artifact instead of silently shaved; the checksums must agree on
    // every round, warmup included.
    eprintln!("[build_bench] warmup round ...");
    let warm = build_ablation(&coll, &[1, 2, 4, 8]);
    let (d0, s0) = (warm[0].distinct, warm[0].sum);
    let mut rounds: Vec<Vec<BuildCell>> = Vec::new();
    for rep in 0..repeats.max(1) {
        eprintln!("[build_bench] repeat {}/{repeats} ...", rep + 1);
        let cells = build_ablation(&coll, &[1, 2, 4, 8]);
        for c in &cells {
            assert_eq!(
                (c.distinct, c.sum),
                (d0, s0),
                "{} build diverged from sequential",
                c.mode
            );
        }
        rounds.push(cells);
    }
    let mut best: Vec<BuildCell> = rounds[0].clone();
    let mut cvs = vec![0.0f64; best.len()];
    for (i, cell) in best.iter_mut().enumerate() {
        let times: Vec<f64> = rounds.iter().map(|r| r[i].seconds).collect();
        cell.seconds = bfhrf_bench::stats::median(&times);
        cvs[i] = bfhrf_bench::stats::coeff_of_variation(&times);
    }

    let time_of = |mode: &str, threads: usize| {
        best.iter()
            .find(|c| c.mode == mode && c.threads == threads)
            .map(|c| c.seconds)
            .expect("grid cell present")
    };
    let speedup = time_of("fold-merge", 8) / time_of("sharded", 8);

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"name\": \"insect\", \"n_taxa\": {}, \"n_trees\": {}}},",
        coll.taxa.len(),
        coll.len()
    );
    let _ = writeln!(json, "  \"repeats\": {},", repeats.max(1));
    json.push_str("  \"warmup\": 1,\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in best.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"shards\": {}, \"seconds\": {:.6}, \"cv\": {:.4}, \"distinct\": {}, \"sum\": {}}}",
            c.mode, c.threads, c.shards, c.seconds, cvs[i], c.distinct, c.sum
        );
        json.push_str(if i + 1 < best.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup_sharded_vs_fold_merge_at_8_threads\": {speedup:.3}"
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    for c in &best {
        eprintln!(
            "[build_bench] {:<10} threads={:<2} shards={:<2} {:.4}s",
            c.mode, c.threads, c.shards, c.seconds
        );
    }
    println!("sharded vs fold-merge at 8 threads: {speedup:.2}x (written to {out_path})");
}
