//! Query-path benchmark: frozen probe-optimized kernel vs the live
//! hashbrown hash, emitted as machine-readable JSON (`BENCH_query.json`).
//!
//! ```text
//! query_bench [--fast] [--trees R] [--queries Q] [--repeats K] [--out FILE]
//! ```
//!
//! Eight sections, one file:
//!
//! 1. **Single-thread probe path**: the headline. Query splits are
//!    extracted and hashed once up front (both paths share that cost in
//!    production), then the pure probe kernels race over the same
//!    batches: the hashbrown map probe (`split_frequency_words` per
//!    split) vs the frozen pipelined kernel
//!    (`FrozenBfh::frequency_sum_batch`). Target: ≥ 1.5× (measured
//!    ~2×). Reported as median seconds with CV and probes/second.
//! 2. **Probe-engine ablation**: the frozen kernel raced against itself
//!    with the group scan forced scalar (`ProbeMode::Scalar`) vs forced
//!    vector (`ProbeMode::Simd`), sums asserted bit-identical first.
//!    The two engines differ by a few ns/probe — inside run-to-run
//!    noise on a busy host — so rounds alternate scalar/simd and each
//!    side keeps its best round, the same protocol the obs section
//!    uses. The cell names the auto-resolved engine
//!    ("sse2"/"neon"/"scalar") and whether a vector engine is actually
//!    available, so a reader can tell a genuine SIMD win from a
//!    scalar-vs-scalar tie on a host without one.
//! 3. **Extraction ablation**: `batch_splits` (word-striped unions,
//!    striped popcounts, branchless canonical orientation) vs its
//!    retained scalar twin `batch_splits_scalar`, masks and hashes
//!    asserted identical before timing; same interleaved best-of-N
//!    protocol.
//! 4. **Wire ablation**: rebuilding a `Tree` per wire item by Newick
//!    parse vs phylo-wire binary decode (`decode_tree_exact`), splits
//!    asserted bitwise identical (masks and hashes) before timing; same
//!    interleaved best-of-N protocol. Target: decode ≥ 5× faster per
//!    tree. The cell also records the payload sizes of both encodings.
//! 5. **End-to-end**: full single-thread query scoring — extraction +
//!    hashing + probing + Algorithm 2 — live (`bfhrf_average_scratch`
//!    over `Bfh`) vs frozen (`FrozenBfh::average_scratch`). Extraction
//!    dominates here (~70% of a query at n = 144), so this speedup is
//!    the diluted, whole-pipeline view of the same kernel win.
//! 6. **Multi-thread**: the same batch through the parallel comparators.
//!    The cell records the detected core count — on a 1-core host the
//!    rayon pools serialize and the frozen-vs-live ratio collapses
//!    toward the end-to-end ratio, which is expected, not a regression.
//! 7. **Serve**: q/s of a real `bfhrf serve` daemon (frozen snapshot
//!    path) over one connection, three ways — strict request/response
//!    single-op frames, the same frames pipelined (window of 32 in
//!    flight), and v2 `batch` frames (64 queries each) — next to an
//!    in-process emulation of the pre-freeze request path (parse + live
//!    sequential probe per request) for the before/after contrast. Each
//!    cell keeps its peak q/s over `repeats` rounds.
//! 8. **Obs overhead**: the frozen probe loop bare vs wrapped in the
//!    same request-boundary instrumentation the serve daemon uses (one
//!    clock pair + histogram record + counter bump per request, where
//!    one request covers the whole query batch, as served avgrf does).
//!    Measured
//!    as best-of-N interleaved rounds (noise only inflates a round) and
//!    asserted within 3%, re-measured up to three times on a miss.
//!
//! Every frozen answer is asserted equal to the live answer before any
//! timing is reported — a throughput win can never hide a correctness
//! loss.

use bfhrf::{BfhrfComparator, Comparator, FrozenComparator};
use bfhrf_bench::measure::measured_repeats;
use phylo::BipartitionScratch;
use phylo_obs::json::Json;
use phylo_sim::DatasetSpec;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trees = 2000usize;
    let mut queries = 200usize;
    let mut repeats = 5usize;
    let mut requests = 300usize;
    let mut out_path = "BENCH_query.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("query_bench: {name} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        let parse = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|e| {
                eprintln!("query_bench: bad {name}: {e}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--fast" => {
                trees = 300;
                queries = 50;
                repeats = 2;
                requests = 50;
            }
            "--trees" => trees = parse("--trees", grab("--trees")),
            "--queries" => queries = parse("--queries", grab("--queries")),
            "--repeats" => repeats = parse("--repeats", grab("--repeats")),
            "--requests" => requests = parse("--requests", grab("--requests")),
            "--out" => out_path = grab("--out"),
            other => {
                eprintln!("query_bench: unknown argument {other:?}");
                eprintln!(
                    "usage: query_bench [--fast] [--trees R] [--queries Q] [--repeats K] [--requests N] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    let repeats = repeats.max(1);
    let queries = queries.max(1);

    eprintln!("[query_bench] generating insect preset (n=144, r={trees}) ...");
    let spec = DatasetSpec::insect().with_trees(trees);
    let ds = bfhrf_bench::datasets::prepare(&spec);
    let coll = phylo::TreeCollection::parse(&ds.newick).expect("simulated trees parse");
    let q: Vec<phylo::Tree> = coll.trees.iter().take(queries).cloned().collect();

    eprintln!("[query_bench] building + freezing the hash ...");
    let bfh = bfhrf::Bfh::build_sharded(&coll.trees, &coll.taxa, 8);
    let frozen = bfh.freeze();

    // Correctness first: frozen must answer exactly like live on every
    // query before any throughput number is written down.
    {
        let mut scratch = BipartitionScratch::new();
        for tree in &q {
            assert_eq!(
                bfhrf::bfhrf_average(tree, &coll.taxa, &bfh),
                frozen.average_scratch(tree, &coll.taxa, &mut scratch),
                "frozen diverged from live"
            );
        }
    }

    // -------- single-thread probe path (the headline) ------------------
    // Extract + hash every query's splits once, as production batched
    // scoring does, then race the two probe kernels over identical input.
    eprintln!("[query_bench] probe path: hashbrown vs frozen kernel ...");
    use bfhrf::SplitFrequency;
    let batches: Vec<(usize, Vec<u64>, Vec<u128>)> = {
        let mut scratch = BipartitionScratch::new();
        q.iter()
            .map(|tree| {
                let b = scratch.batch_splits(tree, &coll.taxa);
                let masks: Vec<u64> = (0..b.len())
                    .flat_map(|i| b.mask(i).iter().copied())
                    .collect();
                (b.words(), masks, b.hashes().to_vec())
            })
            .collect()
    };
    let total_probes: usize = batches.iter().map(|(_, _, h)| h.len()).sum();
    {
        // both kernels must sum the same frequencies over the same batches
        let mut live_sum = 0u64;
        let mut frozen_sum = 0u64;
        for (words, masks, hashes) in &batches {
            for i in 0..hashes.len() {
                let w = &masks[i * words..(i + 1) * words];
                live_sum += u64::from(bfh.split_frequency_words(coll.taxa.len(), w));
            }
            let batch = phylo::SplitBatch::from_parts(*words, masks, hashes);
            frozen_sum += frozen.frequency_sum_batch(&batch);
        }
        assert_eq!(live_sum, frozen_sum, "probe kernels diverged");
    }
    let live_probe = measured_repeats(1, repeats, || {
        let mut acc = 0u64;
        for (words, masks, hashes) in &batches {
            for i in 0..hashes.len() {
                let w = &masks[i * words..(i + 1) * words];
                acc += u64::from(bfh.split_frequency_words(coll.taxa.len(), w));
            }
        }
        acc
    });
    let frozen_probe = measured_repeats(1, repeats, || {
        let mut acc = 0u64;
        for (words, masks, hashes) in &batches {
            let batch = phylo::SplitBatch::from_parts(*words, masks, hashes);
            acc += frozen.frequency_sum_batch(&batch);
        }
        acc
    });
    let probe_speedup = live_probe.median_s / frozen_probe.median_s;
    eprintln!(
        "[query_bench] probe path: live {:.1} ns/probe (cv {:.3}), frozen {:.1} ns/probe (cv {:.3}) → {probe_speedup:.2}x",
        live_probe.median_s * 1e9 / total_probes as f64,
        live_probe.cv,
        frozen_probe.median_s * 1e9 / total_probes as f64,
        frozen_probe.cv
    );

    // -------- probe-engine ablation: scalar vs SIMD group scan ---------
    // Same frozen table, same batches, only the group-scan engine
    // differs. Bit-identical sums are asserted before any timing so the
    // ablation can never trade correctness for throughput.
    let engine_auto = bfhrf::ProbeMode::Auto.engine().name();
    let simd_real = bfhrf::simd_available();
    eprintln!(
        "[query_bench] probe ablation: scalar vs simd group scan (auto engine: {engine_auto}, simd available: {simd_real}) ..."
    );
    {
        let mut scalar_sum = 0u64;
        let mut simd_sum = 0u64;
        for (words, masks, hashes) in &batches {
            let batch = phylo::SplitBatch::from_parts(*words, masks, hashes);
            scalar_sum += frozen.frequency_sum_batch_with(bfhrf::ProbeMode::Scalar, &batch);
            simd_sum += frozen.frequency_sum_batch_with(bfhrf::ProbeMode::Simd, &batch);
        }
        assert_eq!(scalar_sum, simd_sum, "scalar and simd probes diverged");
    }
    // The two engines differ by a handful of ns/probe, well inside this
    // host's run-to-run noise, so the ablation uses the same protocol as
    // the obs section below: rounds alternate scalar/simd so a noisy
    // neighbour taxes both sides equally, and each side is scored by its
    // best round — additive noise only ever inflates a round, so the
    // minimum is the closest estimate of the true kernel cost.
    let probe_round = |mode: bfhrf::ProbeMode| {
        let t = Instant::now();
        let mut acc = 0u64;
        for (words, masks, hashes) in &batches {
            let batch = phylo::SplitBatch::from_parts(*words, masks, hashes);
            acc += frozen.frequency_sum_batch_with(mode, &batch);
        }
        std::hint::black_box(acc);
        t.elapsed().as_secs_f64()
    };
    let ablation_rounds = repeats.max(5) * 2;
    let (scalar_probe, simd_probe) = {
        probe_round(bfhrf::ProbeMode::Scalar); // warmup
        probe_round(bfhrf::ProbeMode::Simd);
        let mut scalar_times = Vec::with_capacity(ablation_rounds);
        let mut simd_times = Vec::with_capacity(ablation_rounds);
        for _ in 0..ablation_rounds {
            scalar_times.push(probe_round(bfhrf::ProbeMode::Scalar));
            simd_times.push(probe_round(bfhrf::ProbeMode::Simd));
        }
        let best = |ts: &[f64]| ts.iter().copied().fold(f64::INFINITY, f64::min);
        let cv = bfhrf_bench::stats::coeff_of_variation;
        (
            (best(&scalar_times), cv(&scalar_times)),
            (best(&simd_times), cv(&simd_times)),
        )
    };
    let probe_ablation_speedup = scalar_probe.0 / simd_probe.0;
    eprintln!(
        "[query_bench] probe ablation: scalar {:.1} ns/probe (cv {:.3}), simd {:.1} ns/probe (cv {:.3}) → {probe_ablation_speedup:.2}x",
        scalar_probe.0 * 1e9 / total_probes as f64,
        scalar_probe.1,
        simd_probe.0 * 1e9 / total_probes as f64,
        simd_probe.1
    );

    // -------- extraction ablation: vectorized vs scalar batch_splits ----
    // The word-striped extractor vs its retained scalar twin, over the
    // same trees with the same arena. Masks and hashes must agree word
    // for word before either side is timed.
    eprintln!("[query_bench] extraction ablation: vectorized vs scalar batch_splits ...");
    {
        let mut sv = BipartitionScratch::new();
        let mut ss = BipartitionScratch::new();
        for tree in &q {
            let (vw, vm, vh) = {
                let b = sv.batch_splits(tree, &coll.taxa);
                let masks: Vec<u64> = (0..b.len())
                    .flat_map(|i| b.mask(i).iter().copied())
                    .collect();
                (b.words(), masks, b.hashes().to_vec())
            };
            let b = ss.batch_splits_scalar(tree, &coll.taxa);
            let sm: Vec<u64> = (0..b.len())
                .flat_map(|i| b.mask(i).iter().copied())
                .collect();
            assert_eq!(vw, b.words(), "extraction word widths diverged");
            assert_eq!(vm, sm, "extraction masks diverged");
            assert_eq!(vh, b.hashes(), "extraction hashes diverged");
        }
    }
    // Same interleaved best-of-N protocol as the probe ablation above.
    let extract_round = |scalar: bool| {
        let mut scratch = BipartitionScratch::new();
        let t = Instant::now();
        let mut acc = 0usize;
        for tree in &q {
            acc += if scalar {
                scratch.batch_splits_scalar(tree, &coll.taxa).len()
            } else {
                scratch.batch_splits(tree, &coll.taxa).len()
            };
        }
        std::hint::black_box(acc);
        t.elapsed().as_secs_f64()
    };
    let (extract_scalar, extract_vec) = {
        extract_round(true); // warmup
        extract_round(false);
        let mut scalar_times = Vec::with_capacity(ablation_rounds);
        let mut vec_times = Vec::with_capacity(ablation_rounds);
        for _ in 0..ablation_rounds {
            scalar_times.push(extract_round(true));
            vec_times.push(extract_round(false));
        }
        let best = |ts: &[f64]| ts.iter().copied().fold(f64::INFINITY, f64::min);
        let cv = bfhrf_bench::stats::coeff_of_variation;
        (
            (best(&scalar_times), cv(&scalar_times)),
            (best(&vec_times), cv(&vec_times)),
        )
    };
    let extract_speedup = extract_scalar.0 / extract_vec.0;
    eprintln!(
        "[query_bench] extraction ablation: scalar {:.4}s (cv {:.3}), vectorized {:.4}s (cv {:.3}) → {extract_speedup:.2}x",
        extract_scalar.0, extract_scalar.1, extract_vec.0, extract_vec.1
    );

    // -------- wire ablation: Newick parse vs binary record decode -------
    // The serve payload path rebuilds a `Tree` per wire item either by
    // parsing Newick text or by decoding a phylo-wire record. Both
    // reconstructions must yield bitwise-identical splits (masks *and*
    // hashes) before either is timed, so the decode speedup can never
    // hide a topology change.
    eprintln!("[query_bench] wire ablation: newick parse vs binary decode ...");
    let wire_newicks: Vec<String> = q
        .iter()
        .map(|t| phylo::write_newick(t, &coll.taxa))
        .collect();
    let wire_records: Vec<Vec<u8>> = q
        .iter()
        .map(|t| phylo_wire::encode_tree_vec(t).expect("simulated trees encode"))
        .collect();
    let wire_newick_bytes: usize = wire_newicks.iter().map(String::len).sum();
    let wire_bin_bytes: usize = wire_records.iter().map(Vec::len).sum();
    {
        let mut sp = BipartitionScratch::new();
        let mut sd = BipartitionScratch::new();
        for (newick, record) in wire_newicks.iter().zip(&wire_records) {
            let parsed = phylo::parse_newick_readonly(newick, &coll.taxa).expect("query parses");
            let decoded =
                phylo_wire::decode_tree_exact(record, coll.taxa.len()).expect("record decodes");
            let bp = sp.batch_splits(&parsed, &coll.taxa);
            let pm: Vec<u64> = (0..bp.len())
                .flat_map(|i| bp.mask(i).iter().copied())
                .collect();
            let ph = bp.hashes().to_vec();
            let bd = sd.batch_splits(&decoded, &coll.taxa);
            let dm: Vec<u64> = (0..bd.len())
                .flat_map(|i| bd.mask(i).iter().copied())
                .collect();
            assert_eq!(pm, dm, "decoded splits diverged from parsed splits");
            assert_eq!(ph, bd.hashes(), "decoded split hashes diverged");
        }
    }
    // Same interleaved best-of-N protocol as the other micro-ablations.
    let wire_round = |decode: bool| {
        let t = Instant::now();
        let mut acc = 0usize;
        if decode {
            for record in &wire_records {
                acc += phylo_wire::decode_tree_exact(record, coll.taxa.len())
                    .expect("record decodes")
                    .num_nodes();
            }
        } else {
            for newick in &wire_newicks {
                acc += phylo::parse_newick_readonly(newick, &coll.taxa)
                    .expect("query parses")
                    .num_nodes();
            }
        }
        std::hint::black_box(acc);
        t.elapsed().as_secs_f64()
    };
    let (wire_parse, wire_decode) = {
        wire_round(false); // warmup
        wire_round(true);
        let mut parse_times = Vec::with_capacity(ablation_rounds);
        let mut decode_times = Vec::with_capacity(ablation_rounds);
        for _ in 0..ablation_rounds {
            parse_times.push(wire_round(false));
            decode_times.push(wire_round(true));
        }
        let best = |ts: &[f64]| ts.iter().copied().fold(f64::INFINITY, f64::min);
        let cv = bfhrf_bench::stats::coeff_of_variation;
        (
            (best(&parse_times), cv(&parse_times)),
            (best(&decode_times), cv(&decode_times)),
        )
    };
    let wire_speedup = wire_parse.0 / wire_decode.0;
    eprintln!(
        "[query_bench] wire ablation: parse {:.1} us/tree (cv {:.3}), decode {:.1} us/tree (cv {:.3}) → {wire_speedup:.2}x ({wire_bin_bytes} B bin vs {wire_newick_bytes} B newick)",
        wire_parse.0 * 1e6 / q.len() as f64,
        wire_parse.1,
        wire_decode.0 * 1e6 / q.len() as f64,
        wire_decode.1
    );

    // -------- end-to-end single-thread query scoring -------------------
    eprintln!("[query_bench] end-to-end: live vs frozen ...");
    let live_st = measured_repeats(1, repeats, || {
        let mut scratch = BipartitionScratch::new();
        let mut acc = 0u64;
        for tree in &q {
            let rf = bfhrf::rf::bfhrf_average_scratch(tree, &coll.taxa, &bfh, &mut scratch);
            acc = acc.wrapping_add(rf.left + rf.right);
        }
        acc
    });
    let frozen_st = measured_repeats(1, repeats, || {
        let mut scratch = BipartitionScratch::new();
        let mut acc = 0u64;
        for tree in &q {
            let rf = frozen.average_scratch(tree, &coll.taxa, &mut scratch);
            acc = acc.wrapping_add(rf.left + rf.right);
        }
        acc
    });
    let st_speedup = live_st.median_s / frozen_st.median_s;
    eprintln!(
        "[query_bench] end-to-end: live {:.4}s (cv {:.3}), frozen {:.4}s (cv {:.3}) → {st_speedup:.2}x",
        live_st.median_s, live_st.cv, frozen_st.median_s, frozen_st.cv
    );

    // -------- multi-thread comparator throughput -----------------------
    // Record the detected core count next to the ratio: on a 1-core host
    // both rayon pools serialize, so live and frozen pay the same
    // extraction cost sequentially and the frozen speedup collapses
    // toward the end-to-end ratio. That near-1.0x is host topology, not
    // a kernel regression — the cell says so.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("[query_bench] multi-thread comparators ({cores} core(s)) ...");
    let live_cmp = BfhrfComparator::new(&bfh, &coll.taxa).parallel(true);
    let frozen_cmp = FrozenComparator::new(&frozen, &coll.taxa).parallel(true);
    assert_eq!(
        live_cmp.average_all(&q).expect("live batch"),
        frozen_cmp.average_all(&q).expect("frozen batch"),
        "parallel frozen diverged from live"
    );
    let live_mt = measured_repeats(1, repeats, || live_cmp.average_all(&q).expect("live batch"));
    let frozen_mt = measured_repeats(1, repeats, || {
        frozen_cmp.average_all(&q).expect("frozen batch")
    });
    let mt_speedup = live_mt.median_s / frozen_mt.median_s;
    eprintln!(
        "[query_bench] multi-thread: live {:.4}s, frozen {:.4}s → {mt_speedup:.2}x",
        live_mt.median_s, frozen_mt.median_s
    );

    // -------- serve: daemon qps vs pre-freeze request-path emulation ---
    eprintln!("[query_bench] serve daemon ({requests} requests, 1 client) ...");
    let dir = std::env::temp_dir().join(format!("bfhrf-query-bench-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing scratch dir");
    }
    let index_dir = dir.join("index");
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    phylo_index::Index::create(&index_dir, bfh.clone(), coll.taxa.clone()).expect("index create");

    let newick = phylo::write_newick(&coll.trees[0], &coll.taxa);
    let query_line = format!(r#"{{"op":"avgrf","queries":["{newick}"]}}"#);
    let srv = bfhrf_cli::server::Server::bind(&bfhrf_cli::server::ServeConfig {
        index_dir: index_dir.clone(),
        addr: "127.0.0.1:0".into(),
        threads: 4,
        mem_budget: None,
        timeout_ms: None,
        catalog_dir: None,
    })
    .expect("server bind");
    let addr = srv.local_addr();
    let handle = std::thread::spawn(move || srv.run().expect("server run"));
    // Each serve cell runs one warmup round plus `repeats` timed rounds on
    // a persistent connection and keeps the peak q/s — noise (a preempting
    // neighbour, a cold cache) only ever subtracts from a throughput
    // sample, so the maximum is the closest estimate of true capacity.
    let serve_qps = {
        let stream = TcpStream::connect(addr).expect("client connect");
        let mut writer = stream.try_clone().expect("client clone");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let frame = format!("{query_line}\n").into_bytes();
        let mut send = |n: usize| {
            for _ in 0..n {
                writer.write_all(&frame).expect("client write");
                line.clear();
                reader.read_line(&mut line).expect("client read");
                assert!(line.contains("\"ok\":true"), "server refused: {line}");
            }
        };
        send((requests / 4).max(5)); // warmup
        let mut best = 0f64;
        for _ in 0..repeats {
            let t = Instant::now();
            send(requests);
            best = best.max(requests as f64 / t.elapsed().as_secs_f64());
        }
        best
    };

    // Pipelined: the same single-query op, but with a window of frames in
    // flight on one connection so framing and scoring overlap instead of
    // alternating. This is what `bfhrf query --batch 1` does on the wire.
    eprintln!("[query_bench] serve daemon, pipelined single-op frames ...");
    let pipeline_window = 32usize;
    let pipelined_qps = {
        let stream = TcpStream::connect(addr).expect("client connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut writer = stream.try_clone().expect("client clone");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let frame = format!("{query_line}\n").into_bytes();
        let mut run = |n: usize| {
            let mut sent = 0usize;
            let mut read = 0usize;
            while read < n {
                while sent < n && sent - read < pipeline_window {
                    writer.write_all(&frame).expect("client write");
                    sent += 1;
                }
                line.clear();
                reader.read_line(&mut line).expect("client read");
                assert!(line.contains("\"ok\":true"), "server refused: {line}");
                read += 1;
            }
        };
        run((requests / 4).max(5)); // warmup
        let mut best = 0f64;
        for _ in 0..repeats {
            let t = Instant::now();
            run(requests);
            best = best.max(requests as f64 / t.elapsed().as_secs_f64());
        }
        best
    };

    // Batch: the v2 headline op — many queries per frame, one snapshot,
    // one response. Framing + JSON + syscall cost amortize over the whole
    // frame, which is where the wire path finally catches the kernel.
    let batch_size = 64usize;
    let batch_frames = (requests / 4).max(8);
    eprintln!(
        "[query_bench] serve daemon, batch op ({batch_frames} frames x {batch_size} queries) ..."
    );
    let batch_line = format!(
        r#"{{"v":2,"op":"batch","queries":[{}]}}"#,
        vec![format!("\"{newick}\""); batch_size].join(",")
    );
    let batch_qps = {
        let stream = TcpStream::connect(addr).expect("client connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut writer = stream.try_clone().expect("client clone");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let frame = format!("{batch_line}\n").into_bytes();
        let mut run = |frames: usize| {
            let mut sent = 0usize;
            let mut read = 0usize;
            while read < frames {
                while sent < frames && sent - read < 2 {
                    writer.write_all(&frame).expect("client write");
                    sent += 1;
                }
                line.clear();
                reader.read_line(&mut line).expect("client read");
                assert!(line.contains("\"ok\":true"), "server refused: {line}");
                read += 1;
            }
        };
        run((batch_frames / 4).max(2)); // warmup
        let mut best = 0f64;
        for _ in 0..repeats {
            let t = Instant::now();
            run(batch_frames);
            best = best.max((batch_frames * batch_size) as f64 / t.elapsed().as_secs_f64());
        }
        best
    };
    eprintln!(
        "[query_bench] serve: sequential {serve_qps:.1} q/s, pipelined {pipelined_qps:.1} q/s, batch {batch_qps:.1} q/s"
    );

    let mut bye = TcpStream::connect(addr).expect("shutdown connect");
    bye.write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("shutdown write");
    drop(bye);
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();

    // The pre-freeze request path, minus the socket: clone-namespace
    // parse + live sequential probe per request (what each served query
    // cost before the frozen snapshot existed).
    let newick0 = phylo::write_newick(&coll.trees[0], &coll.taxa);
    let inproc_live = measured_repeats(1, repeats, || {
        let mut acc = 0u64;
        for _ in 0..requests {
            let mut scratch_taxa = coll.taxa.clone();
            let tree = phylo::parse_newick(&newick0, &mut scratch_taxa, phylo::TaxaPolicy::Require)
                .expect("query parses");
            let rf = bfhrf::bfhrf_average(&tree, &coll.taxa, &bfh);
            acc = acc.wrapping_add(rf.left + rf.right);
        }
        acc
    });
    let inproc_frozen = measured_repeats(1, repeats, || {
        let mut scratch = BipartitionScratch::new();
        let mut acc = 0u64;
        for _ in 0..requests {
            let tree = phylo::parse_newick_readonly(&newick0, &coll.taxa).expect("query parses");
            let rf = frozen.average_scratch(&tree, &coll.taxa, &mut scratch);
            acc = acc.wrapping_add(rf.left + rf.right);
        }
        acc
    });
    let inproc_live_qps = requests as f64 / inproc_live.median_s;
    let inproc_frozen_qps = requests as f64 / inproc_frozen.median_s;
    eprintln!(
        "[query_bench] serve {serve_qps:.1} q/s; in-process request path: live {inproc_live_qps:.1} q/s, frozen {inproc_frozen_qps:.1} q/s"
    );

    // -------- obs overhead: bare vs instrumented probe loop -------------
    // The serve daemon instruments at request boundaries only: one clock
    // pair, one histogram record, one counter bump per request. Replay
    // exactly that pattern around the frozen probe kernel and require the
    // overhead to stay within 3%. The quantity under test is a
    // nanoseconds-per-query delta, so a noisy CI neighbour can fake a
    // regression — re-measure up to three times before believing one.
    eprintln!("[query_bench] obs overhead: bare vs instrumented probe loop ...");
    const OBS_MAX_RATIO: f64 = 1.03;
    // The daemon records once per request — one avgrf request covers a
    // whole query file — so one pass over all the batches is the honest
    // request analogue here. A single pass is sub-millisecond, far too
    // short to resolve a 3% delta against timer jitter, so each timed
    // round runs many request-passes back to back. Rounds alternate
    // bare/instrumented so a noisy neighbour taxes both sides equally,
    // and each side is scored by its best round (additive noise only
    // ever inflates a round, so the minimum is the closest estimate of
    // the true cost).
    const OBS_PASSES: usize = 16;
    let obs_lat = phylo_obs::global().histogram("bench_probe_ns", &[]);
    let obs_ctr = phylo_obs::global().counter("bench_probe_total", &[]);
    let bare_pass = || {
        let mut acc = 0u64;
        for _ in 0..OBS_PASSES {
            for (words, masks, hashes) in &batches {
                let batch = phylo::SplitBatch::from_parts(*words, masks, hashes);
                acc += frozen.frequency_sum_batch(&batch);
            }
        }
        acc
    };
    let inst_pass = || {
        let mut acc = 0u64;
        for _ in 0..OBS_PASSES {
            let t = Instant::now();
            for (words, masks, hashes) in &batches {
                let batch = phylo::SplitBatch::from_parts(*words, masks, hashes);
                acc += frozen.frequency_sum_batch(&batch);
            }
            obs_lat.record_duration(t.elapsed());
            obs_ctr.inc();
        }
        acc
    };
    let timed = |f: &dyn Fn() -> u64| {
        let t = Instant::now();
        std::hint::black_box(f());
        t.elapsed().as_secs_f64()
    };
    let obs_rounds = repeats.max(5) * 2;
    let (obs_bare, obs_inst, obs_ratio, obs_attempts) = {
        let mut attempt = 0usize;
        loop {
            attempt += 1;
            std::hint::black_box(bare_pass());
            std::hint::black_box(inst_pass());
            let mut bare_times = Vec::with_capacity(obs_rounds);
            let mut inst_times = Vec::with_capacity(obs_rounds);
            for _ in 0..obs_rounds {
                bare_times.push(timed(&bare_pass));
                inst_times.push(timed(&inst_pass));
            }
            let best = |ts: &[f64]| ts.iter().copied().fold(f64::INFINITY, f64::min);
            let (bare_s, inst_s) = (best(&bare_times), best(&inst_times));
            let ratio = inst_s / bare_s;
            if ratio <= OBS_MAX_RATIO || attempt >= 3 {
                let cv = bfhrf_bench::stats::coeff_of_variation;
                break (
                    (bare_s, cv(&bare_times)),
                    (inst_s, cv(&inst_times)),
                    ratio,
                    attempt,
                );
            }
            eprintln!(
                "[query_bench] obs overhead {ratio:.4}x > {OBS_MAX_RATIO:.2}x, re-measuring (attempt {attempt}/3) ..."
            );
        }
    };
    eprintln!(
        "[query_bench] obs overhead: bare {:.6}s, instrumented {:.6}s → {obs_ratio:.4}x ({obs_attempts} attempt(s))",
        obs_bare.0, obs_inst.0
    );
    assert!(
        obs_ratio <= OBS_MAX_RATIO,
        "request-boundary instrumentation costs {obs_ratio:.4}x (> {OBS_MAX_RATIO:.2}x) \
         over the bare probe loop after {obs_attempts} attempts"
    );

    // -------- emit ------------------------------------------------------
    let q_per_run = q.len() as f64;
    let doc = Json::obj(vec![
        (
            "dataset",
            Json::obj(vec![
                ("name", "insect".into()),
                ("n_taxa", coll.taxa.len().into()),
                ("n_trees", coll.len().into()),
                ("distinct", frozen.distinct().into()),
            ]),
        ),
        ("queries", q.len().into()),
        ("repeats", repeats.into()),
        ("warmup", 1u64.into()),
        (
            "single_thread",
            Json::obj(vec![
                ("probes", total_probes.into()),
                ("live_seconds", live_probe.median_s.into()),
                ("live_cv", live_probe.cv.into()),
                (
                    "live_mprobes_per_s",
                    (total_probes as f64 / live_probe.median_s / 1e6).into(),
                ),
                ("frozen_seconds", frozen_probe.median_s.into()),
                ("frozen_cv", frozen_probe.cv.into()),
                (
                    "frozen_mprobes_per_s",
                    (total_probes as f64 / frozen_probe.median_s / 1e6).into(),
                ),
                ("speedup", probe_speedup.into()),
            ]),
        ),
        (
            "probe_ablation",
            Json::obj(vec![
                ("engine", engine_auto.into()),
                ("simd_available", simd_real.into()),
                ("scalar_seconds", scalar_probe.0.into()),
                ("scalar_cv", scalar_probe.1.into()),
                (
                    "scalar_mprobes_per_s",
                    (total_probes as f64 / scalar_probe.0 / 1e6).into(),
                ),
                ("simd_seconds", simd_probe.0.into()),
                ("simd_cv", simd_probe.1.into()),
                (
                    "simd_mprobes_per_s",
                    (total_probes as f64 / simd_probe.0 / 1e6).into(),
                ),
                ("speedup", probe_ablation_speedup.into()),
            ]),
        ),
        (
            "extract_ablation",
            Json::obj(vec![
                ("scalar_seconds", extract_scalar.0.into()),
                ("scalar_cv", extract_scalar.1.into()),
                ("vectorized_seconds", extract_vec.0.into()),
                ("vectorized_cv", extract_vec.1.into()),
                ("speedup", extract_speedup.into()),
            ]),
        ),
        (
            "wire",
            Json::obj(vec![
                ("trees", q.len().into()),
                ("newick_bytes", wire_newick_bytes.into()),
                ("bin_bytes", wire_bin_bytes.into()),
                ("parse_seconds", wire_parse.0.into()),
                ("parse_cv", wire_parse.1.into()),
                (
                    "parse_us_per_tree",
                    (wire_parse.0 * 1e6 / q.len() as f64).into(),
                ),
                ("decode_seconds", wire_decode.0.into()),
                ("decode_cv", wire_decode.1.into()),
                (
                    "decode_us_per_tree",
                    (wire_decode.0 * 1e6 / q.len() as f64).into(),
                ),
                ("speedup", wire_speedup.into()),
            ]),
        ),
        (
            "end_to_end",
            Json::obj(vec![
                ("live_seconds", live_st.median_s.into()),
                ("live_cv", live_st.cv.into()),
                ("live_qps", (q_per_run / live_st.median_s).into()),
                ("frozen_seconds", frozen_st.median_s.into()),
                ("frozen_cv", frozen_st.cv.into()),
                ("frozen_qps", (q_per_run / frozen_st.median_s).into()),
                ("speedup", st_speedup.into()),
            ]),
        ),
        (
            "multi_thread",
            Json::obj(vec![
                ("cores", cores.into()),
                ("live_seconds", live_mt.median_s.into()),
                ("live_cv", live_mt.cv.into()),
                ("frozen_seconds", frozen_mt.median_s.into()),
                ("frozen_cv", frozen_mt.cv.into()),
                ("speedup", mt_speedup.into()),
            ]),
        ),
        (
            "serve",
            Json::obj(vec![
                ("requests", requests.into()),
                ("clients", 1u64.into()),
                ("qps", serve_qps.into()),
                ("pipeline_window", pipeline_window.into()),
                ("pipelined_qps", pipelined_qps.into()),
                ("batch_size", batch_size.into()),
                ("batch_frames", batch_frames.into()),
                ("batch_qps", batch_qps.into()),
                ("inproc_live_qps", inproc_live_qps.into()),
                ("inproc_frozen_qps", inproc_frozen_qps.into()),
            ]),
        ),
        (
            "obs",
            Json::obj(vec![
                ("bare_seconds", obs_bare.0.into()),
                ("bare_cv", obs_bare.1.into()),
                ("instrumented_seconds", obs_inst.0.into()),
                ("instrumented_cv", obs_inst.1.into()),
                ("overhead_ratio", obs_ratio.into()),
                ("max_ratio", OBS_MAX_RATIO.into()),
                ("attempts", obs_attempts.into()),
            ]),
        ),
    ]);
    let json = format!("{doc}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "single-thread probe path frozen vs hashbrown: {probe_speedup:.2}x, end-to-end {st_speedup:.2}x, served batch {batch_qps:.0} q/s (written to {out_path})"
    );
}
