//! Wall-clock + peak-memory measurement of one computation.

use crate::peak_alloc::GLOBAL;
use std::time::{Duration, Instant};

/// One measured run.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Peak live heap bytes during the run (0 when the counting allocator
    /// is not installed in this binary).
    pub peak_bytes: usize,
    /// Whether the time was extrapolated from a prefix rather than fully
    /// measured — rendered as `est.` like the paper's `*` footnote.
    pub estimated: bool,
}

impl Measurement {
    /// Runtime in minutes — the unit the paper's tables use.
    pub fn minutes(&self) -> f64 {
        self.elapsed.as_secs_f64() / 60.0
    }

    /// Peak memory in MB (decimal, like the paper).
    pub fn memory_mb(&self) -> f64 {
        self.peak_bytes as f64 / 1.0e6
    }

    /// Scale the runtime by `factor` and mark the result as estimated.
    pub fn extrapolated(self, factor: f64) -> Measurement {
        Measurement {
            elapsed: Duration::from_secs_f64(self.elapsed.as_secs_f64() * factor),
            peak_bytes: self.peak_bytes,
            estimated: true,
        }
    }

    /// `"12.34"` or `"12.34 est."` for table cells.
    pub fn format_minutes(&self) -> String {
        if self.estimated {
            format!("{:.3} est.", self.minutes())
        } else {
            format!("{:.3}", self.minutes())
        }
    }
}

/// Run `f`, measuring wall time and peak heap. The peak counter is reset
/// first, so the figure is "memory this phase needed on top of what was
/// already live" — the closest analogue of the paper's per-job maximum
/// resident memory.
pub fn measured<T>(f: impl FnOnce() -> T) -> (T, Measurement) {
    GLOBAL.reset_peak();
    let base = GLOBAL.current_bytes();
    let start = Instant::now();
    let value = f();
    let elapsed = start.elapsed();
    let peak = GLOBAL.peak_bytes().saturating_sub(base);
    (
        value,
        Measurement {
            elapsed,
            peak_bytes: peak,
            estimated: false,
        },
    )
}

/// Summary of a warmed-up, repeated measurement: the robust center plus
/// the dispersion that tells a reader whether to trust it.
#[derive(Debug, Clone, Copy)]
pub struct RepeatStats {
    /// Median wall-clock seconds across the measured repeats.
    pub median_s: f64,
    /// Coefficient of variation of the repeat times (0 for one repeat).
    pub cv: f64,
    /// Measured repeats (warmup excluded).
    pub repeats: usize,
    /// Warmup runs discarded before measuring.
    pub warmup: usize,
    /// Peak heap bytes of the last measured repeat.
    pub peak_bytes: usize,
}

/// Run `f` `warmup` times unmeasured (fault the page cache, settle the
/// allocator, finish lazy init), then `repeats` measured times; report the
/// median and CV of the measured runs. `repeats` is clamped to ≥ 1.
pub fn measured_repeats<T>(warmup: usize, repeats: usize, mut f: impl FnMut() -> T) -> RepeatStats {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let repeats = repeats.max(1);
    let mut times = Vec::with_capacity(repeats);
    let mut peak_bytes = 0;
    for _ in 0..repeats {
        let (value, m) = measured(&mut f);
        std::hint::black_box(value);
        times.push(m.elapsed.as_secs_f64());
        peak_bytes = m.peak_bytes;
    }
    RepeatStats {
        median_s: crate::stats::median(&times),
        cv: crate::stats::coeff_of_variation(&times),
        repeats,
        warmup,
        peak_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeats_take_the_median_and_count_runs() {
        let mut calls = 0usize;
        let stats = measured_repeats(2, 3, || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(5));
        });
        assert_eq!(calls, 5, "2 warmup + 3 measured");
        assert_eq!(stats.repeats, 3);
        assert_eq!(stats.warmup, 2);
        assert!(stats.median_s >= 0.004, "{stats:?}");
        assert!(stats.cv >= 0.0);
    }

    #[test]
    fn measures_time() {
        let (v, m) = measured(|| {
            std::thread::sleep(Duration::from_millis(20));
            7
        });
        assert_eq!(v, 7);
        assert!(m.elapsed >= Duration::from_millis(19));
        assert!(!m.estimated);
    }

    #[test]
    fn extrapolation_scales_and_marks() {
        let m = Measurement {
            elapsed: Duration::from_secs(60),
            peak_bytes: 1_000_000,
            estimated: false,
        };
        let e = m.extrapolated(10.0);
        assert!((e.minutes() - 10.0).abs() < 1e-9);
        assert!(e.estimated);
        assert!(e.format_minutes().ends_with("est."));
        assert!((m.memory_mb() - 1.0).abs() < 1e-12);
    }
}
