//! Budgeted benchmark cells.
//!
//! The paper's baseline runs died two ways: OOM-killed by the kernel
//! (HashRF at large `r`) or simply never finishing (DS at large `r`). The
//! harness reproduces both failure modes *deterministically* by running
//! each (algorithm, dataset) cell under a [`RunGuard`] and classifying the
//! result instead of letting the process die:
//!
//! * over the byte ceiling → [`CellOutcome::Refused`] (the paper's `-`
//!   table entries);
//! * past the wall-clock deadline or cancelled → [`CellOutcome::Cancelled`]
//!   (the paper's "did not finish" cells);
//! * a worker panic → [`CellOutcome::Panicked`] — the cell is lost, the
//!   sweep continues.

use bfhrf::guard::isolate;
use bfhrf::{CoreError, RunBudget, RunGuard};
use std::time::{Duration, Instant};

/// How one budgeted cell ended.
#[derive(Debug)]
pub enum CellOutcome<T> {
    /// The cell ran to completion.
    Done(T),
    /// Refused up front or mid-run by the byte ceiling.
    Refused(String),
    /// Stopped by the deadline or a cancellation request.
    Cancelled(String),
    /// A worker panicked; the panic was isolated to this cell.
    Panicked(String),
    /// Any other typed failure (bad input, structure error).
    Failed(String),
}

impl<T> CellOutcome<T> {
    /// The completed value, if any.
    pub fn done(self) -> Option<T> {
        match self {
            CellOutcome::Done(v) => Some(v),
            _ => None,
        }
    }

    /// The paper-table rendering of a non-result: `-` for refusals (the
    /// paper's notation for killed jobs), `dnf` for deadline/cancel.
    pub fn table_cell(&self) -> &'static str {
        match self {
            CellOutcome::Done(_) => "ok",
            CellOutcome::Refused(_) => "-",
            CellOutcome::Cancelled(_) => "dnf",
            CellOutcome::Panicked(_) | CellOutcome::Failed(_) => "err",
        }
    }

    /// The failure description, if the cell did not complete.
    pub fn reason(&self) -> Option<&str> {
        match self {
            CellOutcome::Done(_) => None,
            CellOutcome::Refused(r)
            | CellOutcome::Cancelled(r)
            | CellOutcome::Panicked(r)
            | CellOutcome::Failed(r) => Some(r),
        }
    }
}

/// One cell's resource envelope: a [`RunGuard`] plus the classification
/// logic from [`CoreError`] to [`CellOutcome`].
#[derive(Debug, Clone, Default)]
pub struct CellBudget {
    /// The guard handed to the cell body.
    pub guard: RunGuard,
}

impl CellBudget {
    /// No limits — every cell completes or fails on its own terms.
    pub fn unlimited() -> Self {
        CellBudget::default()
    }

    /// Cap the cell's guarded allocations at `max_bytes`.
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        CellBudget {
            guard: RunGuard::with_budget(RunBudget::with_max_bytes(max_bytes)),
        }
    }

    /// Cancel the cell `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        CellBudget {
            guard: RunGuard::with_budget(RunBudget {
                max_bytes: None,
                deadline: Some(Instant::now() + limit),
            }),
        }
    }

    /// Run one cell body under the guard with panic isolation, classifying
    /// the outcome. The body receives the guard to thread into the guarded
    /// core APIs (`try_build_sharded`, `rf_matrix_exact_guarded`, ...).
    pub fn run<T>(
        &self,
        what: &str,
        body: impl FnOnce(&RunGuard) -> Result<T, CoreError>,
    ) -> CellOutcome<T> {
        match isolate(what, || body(&self.guard)) {
            Ok(v) => CellOutcome::Done(v),
            Err(CoreError::ResourceLimit(msg)) => {
                CellOutcome::Refused(format!("resource limit: {msg}"))
            }
            Err(e @ CoreError::Cancelled(_)) => CellOutcome::Cancelled(e.to_string()),
            Err(e @ CoreError::WorkerPanic(_)) => CellOutcome::Panicked(e.to_string()),
            Err(e) => CellOutcome::Failed(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfhrf::{Bfh, CancelToken};
    use phylo::TreeCollection;

    fn coll() -> TreeCollection {
        TreeCollection::parse("((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));").unwrap()
    }

    #[test]
    fn unlimited_cell_completes() {
        let c = coll();
        let out = CellBudget::unlimited()
            .run("build", |g| Bfh::try_build_sharded(&c.trees, &c.taxa, 2, g));
        let bfh = out.done().expect("cell completes");
        assert_eq!(bfh.n_trees(), 3);
    }

    #[test]
    fn byte_ceiling_refuses_with_dash() {
        let c = coll();
        let out = CellBudget::with_max_bytes(1)
            .run("build", |g| Bfh::try_build_sharded(&c.trees, &c.taxa, 2, g));
        assert_eq!(out.table_cell(), "-");
        assert!(out.reason().unwrap().contains("resource limit"));
    }

    #[test]
    fn elapsed_deadline_is_dnf() {
        let c = coll();
        let out = CellBudget::with_deadline(Duration::from_secs(0))
            .run("build", |g| Bfh::try_build_sharded(&c.trees, &c.taxa, 2, g));
        assert_eq!(out.table_cell(), "dnf");
        assert!(out.reason().unwrap().contains("deadline"));
    }

    #[test]
    fn cancellation_is_dnf() {
        let c = coll();
        let budget = CellBudget::unlimited();
        let token: CancelToken = budget.guard.cancel.clone();
        token.cancel();
        let out = budget.run("build", |g| Bfh::try_build_sharded(&c.trees, &c.taxa, 2, g));
        assert_eq!(out.table_cell(), "dnf");
    }

    #[test]
    fn panics_are_isolated_to_the_cell() {
        let out: CellOutcome<()> =
            CellBudget::unlimited().run("poisoned cell", |_| panic!("poisoned tree"));
        assert_eq!(out.table_cell(), "err");
        assert!(out.reason().unwrap().contains("poisoned"));
        // and the harness thread is still alive to run the next cell
        let next = CellBudget::unlimited().run("next", |_| Ok(1u32));
        assert!(matches!(next, CellOutcome::Done(1)));
    }
}
