//! Small statistics helpers for the paper's §VI.C linearity analysis:
//! least-squares R² and the Pearson correlation coefficient of runtime
//! series against `n` or `r`.

/// Pearson correlation coefficient of paired samples.
///
/// # Panics
/// Panics if the slices differ in length or have fewer than 2 points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Least-squares linear fit `y ≈ a + b·x`; returns `(a, b, r_squared)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    let b = sxy / sxx;
    let a = my - b * mx;
    // R² = 1 − SS_res / SS_tot
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let pred = a + b * x;
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - my) * (y - my);
    }
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, b, r2)
}

/// Median of a sample (mean of the middle pair for even sizes).
///
/// # Panics
/// Panics on an empty sample.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Coefficient of variation (population std-dev / mean) — the dispersion
/// figure every BENCH_*.json records next to its median so a noisy run is
/// visible in the artifact. Zero for a single sample or a zero mean.
pub fn coeff_of_variation(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_and_unsorted() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        assert_eq!(coeff_of_variation(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(coeff_of_variation(&[5.0]), 0.0);
        let cv = coeff_of_variation(&[9.0, 11.0]);
        assert!((cv - 0.1).abs() < 1e-12, "{cv}");
    }

    #[test]
    fn perfect_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_correlation() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [4.0, 2.0, 0.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_quadratic_has_lower_r2_than_line() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let line: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let quad: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let (_, _, r2_line) = linear_fit(&xs, &line);
        let (_, _, r2_quad) = linear_fit(&xs, &quad);
        assert!(r2_line > r2_quad);
        assert!(r2_quad > 0.9, "a quadratic still correlates strongly");
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0, 2.0], &[1.0]);
    }
}
