//! Dataset preparation for the harness.
//!
//! Experiments measure algorithms from Newick text to result, the way the
//! paper's tools read files — parsing cost and (for streaming algorithms)
//! parsing *memory behaviour* are part of what Figure 1 and Table III
//! show. Generation itself happens once per shape and is excluded from
//! every measurement.

use phylo::TreeCollection;
use phylo_sim::DatasetSpec;

/// A dataset rendered to Newick, plus its ground-truth shape.
pub struct PreparedDataset {
    /// Dataset name (paper Table II row).
    pub name: String,
    /// Number of taxa `n`.
    pub n_taxa: usize,
    /// Number of trees `r`.
    pub n_trees: usize,
    /// The whole collection as `;`-separated Newick text.
    pub newick: String,
}

/// Generate `spec` and serialize it.
pub fn prepare(spec: &DatasetSpec) -> PreparedDataset {
    let coll = phylo_sim::generate(spec);
    PreparedDataset {
        name: spec.name.clone(),
        n_taxa: spec.n_taxa,
        n_trees: spec.n_trees,
        newick: to_newick(&coll),
    }
}

/// Serialize a collection, one tree per line.
pub fn to_newick(coll: &TreeCollection) -> String {
    let mut out = String::new();
    for t in &coll.trees {
        out.push_str(&phylo::write_newick(t, &coll.taxa));
        out.push('\n');
    }
    out
}

/// Truncate prepared Newick text to its first `r` trees (Figure 1 measures
/// prefixes of the Avian collection). Cheap: scans for line breaks.
pub fn prefix(ds: &PreparedDataset, r: usize) -> PreparedDataset {
    assert!(r <= ds.n_trees, "prefix larger than dataset");
    let mut end = 0;
    let mut seen = 0;
    for (i, b) in ds.newick.bytes().enumerate() {
        if b == b'\n' {
            seen += 1;
            if seen == r {
                end = i + 1;
                break;
            }
        }
    }
    PreparedDataset {
        name: format!("{}[..{r}]", ds.name),
        n_taxa: ds.n_taxa,
        n_trees: r,
        newick: ds.newick[..end].to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_prefix() {
        let ds = prepare(&DatasetSpec::new("unit", 8, 10, 3));
        assert_eq!(ds.n_trees, 10);
        assert_eq!(ds.newick.lines().count(), 10);
        let p = prefix(&ds, 4);
        assert_eq!(p.n_trees, 4);
        assert_eq!(p.newick.lines().count(), 4);
        assert!(ds.newick.starts_with(&p.newick));
    }

    #[test]
    fn prefix_text_parses_back() {
        let ds = prepare(&DatasetSpec::new("unit", 6, 5, 9));
        let p = prefix(&ds, 2);
        let coll = TreeCollection::parse(&p.newick).unwrap();
        assert_eq!(coll.len(), 2);
        assert_eq!(coll.taxa.len(), 6);
    }
}
