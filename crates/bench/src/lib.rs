//! Benchmark harness reproducing every table and figure of the BFHRF
//! paper's evaluation (§V–§VI).
//!
//! The `repro` binary drives one experiment per paper artifact:
//!
//! | Command          | Paper artifact |
//! |------------------|----------------|
//! | `repro datasets` | Table II (dataset inventory) |
//! | `repro fig1`     | Figure 1 (Avian runtime + memory vs `r`) |
//! | `repro tbl3`     | Table III (Insect, all algorithms) |
//! | `repro tbl4`     | Table IV (variable taxa) + §VI.C linearity stats |
//! | `repro tbl5`     | Table V / Figure 2 (variable trees) |
//! | `repro ablations`| hash-build, thread-scaling, ID-width, filter ablations |
//! | `repro all`      | everything above |
//!
//! Measurements follow the paper's protocol: wall-clock runtime, maximum
//! resident memory (here: a byte-exact peak-allocation counter instead of
//! RSS), `Q` is `R`, and sequential baselines too slow to finish are
//! **rate-extrapolated from a prefix and marked `est.`** — the paper did
//! exactly this for DS ("we estimated the rate of trees per minute...").
//! HashRF runs that would exceed the memory budget are reported as `-`,
//! the paper's notation for jobs its kernel killed.

pub mod budget;
pub mod datasets;
pub mod measure;
pub mod peak_alloc;
pub mod runner;
pub mod stats;

pub use budget::{CellBudget, CellOutcome};
pub use measure::{measured, Measurement};
pub use peak_alloc::PeakAlloc;
pub use runner::{Experiment, Scale};
