//! Experiment runners — one per table/figure of the paper.
//!
//! Every algorithm is measured **from Newick text to result**, because
//! that is what the paper timed and because the memory story depends on
//! it: DS must materialize all reference bipartition sets, HashRF its
//! `r × r` matrix, while BFHRF streams both collections and only ever
//! holds the hash. `Q` is `R` throughout, as in the paper's runs.

use crate::datasets::{prefix, prepare, PreparedDataset};
use crate::measure::{measured, Measurement};
use crate::stats;
use bfhrf::{bfhrf_average, Bfh, HashRf, HashRfConfig};
use phylo::newick::NewickStream;
use phylo::{BipartitionSet, TaxaPolicy, TaxonSet, Tree};
use phylo_sim::DatasetSpec;
use rayon::prelude::*;
use std::fmt::Write as _;

/// Experiment sizing: `Default` finishes on a laptop in minutes, `Full`
/// uses the paper's exact `n`/`r` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale points (minutes end-to-end).
    Default,
    /// The paper's exact dataset sizes (can take hours for the baselines).
    Full,
}

/// Outcome of one (algorithm, dataset) cell.
enum Outcome {
    /// Measured (possibly rate-extrapolated) run with its mean average-RF
    /// checksum.
    Ran(Measurement, f64),
    /// Deliberately refused (memory guard) — the paper renders these `-`.
    Refused(String),
}

/// One table row.
struct Row {
    algorithm: String,
    n: usize,
    r: usize,
    outcome: Outcome,
}

/// Sequential-baseline budget: maximum number of tree-vs-tree comparisons
/// actually performed before switching to rate extrapolation.
const PAIR_BUDGET: u64 = 1_500_000;
/// Sequential-baseline budget on the reference-preprocessing phase: at
/// most this many reference trees are parsed into bipartition sets; the
/// (linear) setup time and memory are scaled up beyond it. The paper's DS
/// cells at large `r` are rate estimates of exactly this kind.
const SETUP_TREE_BUDGET: usize = 20_000;
/// Chunk size for streamed parallel processing.
const CHUNK: usize = 512;

fn numbered_taxa(n: usize) -> TaxonSet {
    TaxonSet::with_numbered("t", n)
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
}

/// Parse up to `limit` reference bipartition sets (the DS preprocessing
/// step).
fn parse_ref_sets(text: &str, taxa: &mut TaxonSet, limit: usize) -> Vec<BipartitionSet> {
    let mut stream = NewickStream::new(text.as_bytes(), TaxaPolicy::Require);
    let mut sets = Vec::new();
    while sets.len() < limit {
        match stream.next_tree(taxa).expect("harness data parses") {
            Some(tree) => sets.push(BipartitionSet::from_tree(&tree, taxa)),
            None => break,
        }
    }
    sets
}

/// DS / DSMP (Algorithm 1): `threads = None` is the sequential DS;
/// `Some(k)` parallelizes the query loop on a `k`-thread pool.
///
/// If the full `r × r` comparison count exceeds [`PAIR_BUDGET`], only a
/// query prefix is computed and the query-phase runtime is scaled, exactly
/// the paper's trees-per-minute estimation for DS on large inputs.
fn run_ds(ds: &PreparedDataset, threads: Option<usize>) -> Outcome {
    let full_queries = ds.n_trees;
    // Setup sampling: parse at most SETUP_TREE_BUDGET reference trees;
    // time and memory of this linear phase scale with r.
    let r_parsed = full_queries.min(SETUP_TREE_BUDGET);
    let setup_factor = full_queries as f64 / r_parsed as f64;
    let budget_queries = ((PAIR_BUDGET / r_parsed.max(1) as u64) as usize).clamp(1, full_queries);
    let mut taxa = numbered_taxa(ds.n_taxa);

    let (ref_sets, setup) = measured(|| parse_ref_sets(&ds.newick, &mut taxa, r_parsed));

    let query_phase = |limit: usize| -> (f64, Measurement) {
        let mut taxa_q = taxa.clone();
        let (total, m) = measured(|| {
            let mut stream = NewickStream::new(ds.newick.as_bytes(), TaxaPolicy::Require);
            let mut processed = 0usize;
            let mut total_avg = 0.0f64;
            let mut chunk: Vec<Tree> = Vec::with_capacity(CHUNK);
            let score = |q: &Tree| -> f64 {
                let q_set = BipartitionSet::from_tree(q, &taxa);
                let sum: u64 = ref_sets
                    .iter()
                    .map(|rs| {
                        let shared = q_set.iter().filter(|b| rs.contains_bits(b)).count();
                        (rs.len() + q_set.len() - 2 * shared) as u64
                    })
                    .sum();
                sum as f64 / ref_sets.len() as f64
            };
            while processed < limit {
                chunk.clear();
                while chunk.len() < CHUNK && processed + chunk.len() < limit {
                    match stream.next_tree(&mut taxa_q).expect("parses") {
                        Some(t) => chunk.push(t),
                        None => break,
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                total_avg += match threads {
                    None => chunk.iter().map(score).sum::<f64>(),
                    Some(_) => chunk.par_iter().map(score).sum::<f64>(),
                };
                processed += chunk.len();
            }
            total_avg
        });
        (total, m)
    };

    let run = |limit: usize| match threads {
        None => query_phase(limit),
        Some(k) => pool(k).install(|| query_phase(limit)),
    };

    let (total, q) = run(budget_queries);
    let mean = total / budget_queries as f64;
    // full work = q_full · r_full comparisons; measured = q' · r_parsed
    let query_factor =
        (full_queries as f64 * full_queries as f64) / (budget_queries as f64 * r_parsed as f64);
    Outcome::Ran(combine(setup, setup_factor, q, query_factor), mean)
}

/// Combine (scaled) setup + (scaled) query measurements into one cell.
/// Setup memory scales too: the DS footprint is the `O(n²r)` reference
/// sets, which grow linearly with the unparsed remainder.
fn combine(
    setup: Measurement,
    setup_factor: f64,
    query: Measurement,
    query_factor: f64,
) -> Measurement {
    let setup_scaled = if setup_factor > 1.0 {
        let mut s = setup.extrapolated(setup_factor);
        s.peak_bytes = (setup.peak_bytes as f64 * setup_factor) as usize;
        s
    } else {
        setup
    };
    let query_scaled = if query_factor > 1.0 {
        query.extrapolated(query_factor)
    } else {
        query
    };
    Measurement {
        elapsed: setup_scaled.elapsed + query_scaled.elapsed,
        peak_bytes: setup_scaled.peak_bytes.max(query_scaled.peak_bytes),
        estimated: setup_scaled.estimated || query_scaled.estimated,
    }
}

/// BFHRF: stream references into the hash, stream queries against it.
/// `threads = None` is the fully sequential variant; `Some(k)` processes
/// parsed chunks on a `k`-thread pool (the paper's tree-level
/// parallelism).
fn run_bfhrf(ds: &PreparedDataset, threads: Option<usize>) -> Outcome {
    let body = || {
        let mut taxa = numbered_taxa(ds.n_taxa);
        let (result, m) = measured(|| {
            // Phase 1: build the hash from the reference stream.
            let mut bfh = Bfh::empty(taxa.len());
            let mut stream = NewickStream::new(ds.newick.as_bytes(), TaxaPolicy::Require);
            let mut chunk: Vec<Tree> = Vec::with_capacity(CHUNK);
            loop {
                chunk.clear();
                while chunk.len() < CHUNK {
                    match stream.next_tree(&mut taxa).expect("parses") {
                        Some(t) => chunk.push(t),
                        None => break,
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                match threads {
                    None => {
                        for t in &chunk {
                            bfh.add_tree(t, &taxa);
                        }
                    }
                    Some(_) => {
                        // extract split lists in parallel, fold sequentially
                        let split_lists: Vec<Vec<phylo::Bipartition>> =
                            chunk.par_iter().map(|t| t.bipartitions(&taxa)).collect();
                        for splits in split_lists {
                            bfh.add_splits(splits);
                        }
                    }
                }
            }
            // Phase 2: stream queries against the hash.
            let mut stream = NewickStream::new(ds.newick.as_bytes(), TaxaPolicy::Require);
            let mut total_avg = 0.0f64;
            let mut q_count = 0usize;
            loop {
                chunk.clear();
                while chunk.len() < CHUNK {
                    match stream.next_tree(&mut taxa).expect("parses") {
                        Some(t) => chunk.push(t),
                        None => break,
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                total_avg += match threads {
                    None => chunk
                        .iter()
                        .map(|q| bfhrf_average(q, &taxa, &bfh).average())
                        .sum::<f64>(),
                    Some(_) => chunk
                        .par_iter()
                        .map(|q| bfhrf_average(q, &taxa, &bfh).average())
                        .sum::<f64>(),
                };
                q_count += chunk.len();
            }
            total_avg / q_count as f64
        });
        Outcome::Ran(m, result)
    };
    match threads {
        None => body(),
        Some(k) => pool(k).install(body),
    }
}

/// HashRF: materialize the collection (it computes all-vs-all) and run the
/// two-level-hash matrix algorithm. Refuses — like the paper's `-`
/// entries — when the matrix would exceed `mem_budget` bytes.
fn run_hashrf(ds: &PreparedDataset, mem_budget: usize) -> Outcome {
    // The footprint is known from (n, r) alone — refuse before wasting
    // minutes parsing a collection the computation cannot hold.
    let cfg = HashRfConfig {
        memory_budget_bytes: mem_budget,
        ..HashRfConfig::default()
    };
    let cell = crate::budget::CellBudget::with_max_bytes(mem_budget);
    if let Err(e) = cell.guard.check_alloc(
        &format!("HashRF run for r={}", ds.n_trees),
        HashRf::estimate_bytes(ds.n_trees, ds.n_taxa, &cfg),
    ) {
        return Outcome::Refused(e.to_string());
    }
    let mut taxa = numbered_taxa(ds.n_taxa);
    let (out, m) = measured(|| {
        let mut stream = NewickStream::new(ds.newick.as_bytes(), TaxaPolicy::Require);
        let mut trees = Vec::new();
        while let Some(t) = stream.next_tree(&mut taxa).expect("parses") {
            trees.push(t);
        }
        HashRf::compute(&trees, &taxa, &cfg).map(|h| {
            let avgs = h.averages();
            avgs.iter().sum::<f64>() / avgs.len() as f64
        })
    });
    match out {
        Ok(mean) => Outcome::Ran(m, mean),
        Err(e) => Outcome::Refused(e.to_string()),
    }
}

/// Run the full algorithm roster on one dataset.
fn roster(ds: &PreparedDataset, hashrf_budget: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut push = |name: &str, outcome: Outcome| {
        rows.push(Row {
            algorithm: name.to_string(),
            n: ds.n_taxa,
            r: ds.n_trees,
            outcome,
        });
    };
    push("DS", run_ds(ds, None));
    push("DSMP8", run_ds(ds, Some(8)));
    push("DSMP16", run_ds(ds, Some(16)));
    push("HashRF", run_hashrf(ds, hashrf_budget));
    push("BFHRF1", run_bfhrf(ds, None));
    push("BFHRF8", run_bfhrf(ds, Some(8)));
    push("BFHRF16", run_bfhrf(ds, Some(16)));
    rows
}

fn render(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>8} {:>14} {:>12} {:>12}",
        "Algorithm", "n", "R", "Time(m)", "Memory(MB)", "MeanAvgRF"
    );
    for row in rows {
        match &row.outcome {
            Outcome::Ran(m, mean) => {
                let _ = writeln!(
                    out,
                    "{:<10} {:>6} {:>8} {:>14} {:>12.1} {:>12.4}",
                    row.algorithm,
                    row.n,
                    row.r,
                    m.format_minutes(),
                    m.memory_mb(),
                    mean
                );
            }
            Outcome::Refused(why) => {
                let _ = writeln!(
                    out,
                    "{:<10} {:>6} {:>8} {:>14} {:>12} {:>12}    # {}",
                    row.algorithm, row.n, row.r, "-", "-", "-", why
                );
            }
        }
    }
    out.push('\n');
    out
}

/// The experiment driver.
pub struct Experiment {
    /// Sizing of every dataset.
    pub scale: Scale,
    /// Memory guard for HashRF matrices (bytes).
    pub hashrf_budget: usize,
}

impl Experiment {
    /// Create a driver at the given scale with the default 2 GiB (Default)
    /// / 6 GiB (Full) HashRF budget.
    pub fn new(scale: Scale) -> Self {
        Experiment {
            scale,
            hashrf_budget: match scale {
                Scale::Default => 2 << 30,
                Scale::Full => 6 << 30,
            },
        }
    }

    fn avian_points(&self) -> Vec<usize> {
        match self.scale {
            Scale::Default => vec![1000, 2500, 5000],
            Scale::Full => vec![1000, 5000, 10000, 14446],
        }
    }

    fn insect_points(&self) -> Vec<usize> {
        match self.scale {
            Scale::Default => vec![1000, 5000, 10000],
            Scale::Full => vec![1000, 50000, 100000, 149278],
        }
    }

    fn taxa_points(&self) -> (usize, Vec<usize>) {
        match self.scale {
            Scale::Default => (200, vec![100, 250, 500]),
            Scale::Full => (1000, vec![100, 250, 500, 750, 1000]),
        }
    }

    fn tree_points(&self) -> Vec<usize> {
        match self.scale {
            Scale::Default => vec![1000, 5000, 10000],
            Scale::Full => vec![1000, 25000, 50000, 75000, 100000],
        }
    }

    /// Table II: the dataset inventory actually used at this scale.
    pub fn datasets(&self) -> String {
        let mut out = String::from("## Table II — datasets\n");
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:<6} Source substitute",
            "Name", "Taxa n", "Trees R", "Type"
        );
        let avian = self.avian_points();
        let insect = self.insect_points();
        let (taxa_r, taxa_ns) = self.taxa_points();
        let trees = self.tree_points();
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:<6} MSC stand-in for Jarvis et al. 2014",
            "avian",
            48,
            avian.last().unwrap(),
            "Sim"
        );
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:<6} MSC stand-in for Sayyari et al. 2017",
            "insect",
            144,
            insect.last().unwrap(),
            "Sim"
        );
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:<6} MSC (SimPhy/ASTRAL-II S100 protocol)",
            "var-trees",
            100,
            format!("{}:{}", trees.first().unwrap(), trees.last().unwrap()),
            "Sim"
        );
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:<6} MSC (SimPhy/ASTRAL-II S100 protocol)",
            "var-taxa",
            format!("{}:{}", taxa_ns.first().unwrap(), taxa_ns.last().unwrap()),
            taxa_r,
            "Sim"
        );
        out.push('\n');
        out
    }

    /// Figure 1: Avian runtime & memory over prefixes of the collection.
    pub fn fig1(&self) -> String {
        let points = self.avian_points();
        let full = prepare(&DatasetSpec::avian().with_trees(*points.last().unwrap()));
        let mut rows = Vec::new();
        for &r in &points {
            let ds = prefix(&full, r);
            rows.extend(roster(&ds, self.hashrf_budget));
        }
        render("Figure 1 — Avian (n=48) runtime and memory vs r", &rows)
    }

    /// Table III: the Insect-shaped dataset across all algorithms.
    pub fn tbl3(&self) -> String {
        let points = self.insect_points();
        let full = prepare(&DatasetSpec::insect().with_trees(*points.last().unwrap()));
        let mut rows = Vec::new();
        for &r in &points {
            let ds = prefix(&full, r);
            rows.extend(roster(&ds, self.hashrf_budget));
        }
        render("Table III — Insect (n=144)", &rows)
    }

    /// Table IV: variable taxa at fixed r, plus the §VI.C linearity fit of
    /// the BFHRF series.
    pub fn tbl4(&self) -> String {
        let (r, ns) = self.taxa_points();
        let mut rows = Vec::new();
        let mut bfhrf_times: Vec<(f64, f64)> = Vec::new();
        for &n in &ns {
            let ds = prepare(&DatasetSpec::variable_taxa(n).with_trees(r));
            let batch = roster(&ds, self.hashrf_budget);
            for row in &batch {
                if row.algorithm == "BFHRF16" {
                    if let Outcome::Ran(m, _) = &row.outcome {
                        bfhrf_times.push((n as f64, m.minutes()));
                    }
                }
            }
            rows.extend(batch);
        }
        let mut out = render("Table IV — variable taxa (R=1000 shape)", &rows);
        if bfhrf_times.len() >= 2 {
            let xs: Vec<f64> = bfhrf_times.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = bfhrf_times.iter().map(|p| p.1).collect();
            let (_, _, r2) = stats::linear_fit(&xs, &ys);
            let rho = stats::pearson(&xs, &ys);
            let _ = writeln!(
                out,
                "BFHRF16 runtime vs n: R-squared = {r2:.3}, Pearson = {rho:.3} (paper: 0.997 / 0.999)\n"
            );
        }
        out
    }

    /// Table V / Figure 2: variable number of trees at n=100.
    pub fn tbl5(&self) -> String {
        let points = self.tree_points();
        let full = prepare(&DatasetSpec::variable_trees(*points.last().unwrap()));
        let mut rows = Vec::new();
        for &r in &points {
            let ds = prefix(&full, r);
            rows.extend(roster(&ds, self.hashrf_budget));
        }
        render("Table V / Figure 2 — variable trees (n=100)", &rows)
    }

    /// Ablations on the design choices: parallel hash build, thread
    /// scaling, HashRF ID width vs error, size-filter overhead.
    pub fn ablations(&self) -> String {
        let mut out = String::from("## Ablations\n");
        let (n, r) = match self.scale {
            Scale::Default => (100usize, 2000usize),
            Scale::Full => (100, 10000),
        };
        let ds = prepare(&DatasetSpec::new("ablation", n, r, 99));
        let coll = phylo::TreeCollection::parse(&ds.newick).unwrap();

        // 1. hash build: sequential vs fold-merge vs sharded, across pool
        // sizes (the build_bench binary runs the same grid on the Insect
        // preset and emits BENCH_build.json)
        for cell in build_ablation(&coll, &[1, 2, 4, 8]) {
            let _ = writeln!(
                out,
                "hash build (n={n}, r={r}): {:<10} threads={:<2} shards={:<2} {:.3}s (distinct {})",
                cell.mode, cell.threads, cell.shards, cell.seconds, cell.distinct
            );
        }

        // 2. thread scaling of the query phase
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        for threads in [1usize, 2, 4, 8, 16] {
            let (_, m) = pool(threads).install(|| {
                measured(|| {
                    coll.trees
                        .par_iter()
                        .map(|q| bfhrf_average(q, &coll.taxa, &bfh).average())
                        .sum::<f64>()
                })
            });
            let _ = writeln!(
                out,
                "query phase, {threads:>2} threads: {:.3}s",
                m.elapsed.as_secs_f64()
            );
        }

        // 3. HashRF ID width vs collision error rate
        let small = phylo::TreeCollection::parse(
            &crate::datasets::prepare(&DatasetSpec::new("idw", 32, 200, 5)).newick,
        )
        .unwrap();
        let exact = bfhrf::matrix::rf_matrix_exact(&small.trees, &small.taxa, usize::MAX).unwrap();
        for id_bits in [8u32, 12, 16, 24, 32, 64] {
            let cfg = HashRfConfig {
                id_bits,
                ..HashRfConfig::default()
            };
            let h = HashRf::compute(&small.trees, &small.taxa, &cfg).unwrap();
            let _ = writeln!(
                out,
                "HashRF id width {id_bits:>2} bits: matrix error rate {:.4}",
                h.error_rate_against(&exact)
            );
        }

        // 4. compressed-key hash: memory vs the plain hash (§IX extension)
        let wide = prepare(&DatasetSpec::new("compact", 500, 200, 12));
        let wide_coll = phylo::TreeCollection::parse(&wide.newick).unwrap();
        let (plain, plain_m) = measured(|| Bfh::build(&wide_coll.trees, &wide_coll.taxa));
        let (compact, compact_m) = measured(|| bfhrf::CompactBfh::from_bfh(&plain));
        let _ = writeln!(
            out,
            "compact hash (n=500, r=200): plain build {:.1} MB peak, compact conversion {:.1} MB peak, key bytes {:.2} MB compressed",
            plain_m.memory_mb(),
            compact_m.memory_mb(),
            compact.key_bytes() as f64 / 1e6,
        );
        let checks: Vec<_> = wide_coll.trees.iter().take(3).collect();
        for q in checks {
            assert_eq!(
                bfhrf_average(q, &wide_coll.taxa, &plain),
                compact.average_rf(q, &wide_coll.taxa),
                "compact hash must answer identically"
            );
        }

        // 5. bipartition-size filter overhead
        let (_, unfiltered) = measured(|| {
            coll.trees
                .iter()
                .map(|q| bfhrf_average(q, &coll.taxa, &bfh).average())
                .sum::<f64>()
        });
        let filt = bfhrf::variants::SizeFilteredRf::new(&coll.trees, &coll.taxa, 2, 10);
        let (_, filtered) = measured(|| {
            coll.trees
                .iter()
                .map(|q| filt.average(q, &coll.taxa).average())
                .sum::<f64>()
        });
        let _ = writeln!(
            out,
            "size filter (2..=10) query overhead: {:.3}s vs {:.3}s unfiltered",
            filtered.elapsed.as_secs_f64(),
            unfiltered.elapsed.as_secs_f64()
        );
        out.push('\n');
        out
    }
}

/// One cell of the hash-build ablation grid (see [`build_ablation`]).
#[derive(Debug, Clone)]
pub struct BuildCell {
    /// `"sequential"`, `"fold-merge"`, or `"sharded"`.
    pub mode: &'static str,
    /// Pool size the build ran on.
    pub threads: usize,
    /// Shard count (1 unless sharded).
    pub shards: usize,
    /// Wall-clock build time.
    pub seconds: f64,
    /// Distinct bipartitions in the resulting hash — identical across
    /// modes by construction, recorded as the correctness checksum.
    pub distinct: usize,
    /// `Bfh::sum` — second checksum (total split occurrences).
    pub sum: u64,
}

/// The rayon fold/merge baseline under measurement: per-worker hashes
/// folded over disjoint tree chunks, then merged pairwise. This WAS
/// `Bfh::build_parallel` before the sharded pipeline replaced it; the
/// bench keeps a local copy because the strategy itself is the thing
/// being compared against.
pub fn fold_merge_build(coll: &phylo::TreeCollection) -> Bfh {
    coll.trees
        .par_iter()
        .fold(
            || Bfh::empty(coll.taxa.len()),
            |mut acc, tree| {
                acc.add_tree(tree, &coll.taxa);
                acc
            },
        )
        .reduce(|| Bfh::empty(coll.taxa.len()), |a, b| a.merged(b))
}

/// The tentpole ablation: build the same hash three ways — sequential,
/// rayon fold/merge ([`fold_merge_build`]), and the sharded two-phase
/// pipeline ([`Bfh::build_sharded`]) — across pool sizes. The fold-merge
/// baseline allocates one map per worker and pays an `O(distinct)` merge;
/// the sharded build spills raw mask words into per-shard buckets and
/// folds each shard exactly once, so it wins even on a single core.
pub fn build_ablation(coll: &phylo::TreeCollection, thread_counts: &[usize]) -> Vec<BuildCell> {
    let mut cells = Vec::new();
    let mut push = |mode, threads, shards, m: &Measurement, bfh: &Bfh| {
        cells.push(BuildCell {
            mode,
            threads,
            shards,
            seconds: m.elapsed.as_secs_f64(),
            distinct: bfh.distinct(),
            sum: bfh.sum(),
        });
    };
    let (bfh, m) = measured(|| Bfh::build(&coll.trees, &coll.taxa));
    push("sequential", 1, 1, &m, &bfh);
    for &t in thread_counts {
        let p = pool(t);
        let (bfh, m) = p.install(|| measured(|| fold_merge_build(coll)));
        push("fold-merge", t, 1, &m, &bfh);
        let shards = t.max(2);
        let (bfh, m) =
            p.install(|| measured(|| Bfh::build_sharded(&coll.trees, &coll.taxa, shards)));
        push("sharded", t, shards, &m, &bfh);
    }
    cells
}

/// Expose the per-algorithm runners for the criterion benches: each bench
/// wants one algorithm on one prepared dataset without the table plumbing.
pub mod algorithms {
    use super::*;

    /// BFHRF text-to-result; returns the mean average RF.
    pub fn bfhrf_mean(ds: &PreparedDataset, threads: Option<usize>) -> f64 {
        match run_bfhrf(ds, threads) {
            Outcome::Ran(_, mean) => mean,
            Outcome::Refused(w) => panic!("bfhrf refused: {w}"),
        }
    }

    /// DS/DSMP text-to-result (no extrapolation guard — keep datasets
    /// small in benches); returns the mean average RF of the measured
    /// prefix.
    pub fn ds_mean(ds: &PreparedDataset, threads: Option<usize>) -> f64 {
        match run_ds(ds, threads) {
            Outcome::Ran(_, mean) => mean,
            Outcome::Refused(w) => panic!("ds refused: {w}"),
        }
    }

    /// HashRF text-to-result; returns the mean of the matrix row averages.
    pub fn hashrf_mean(ds: &PreparedDataset, mem_budget: usize) -> f64 {
        match run_hashrf(ds, mem_budget) {
            Outcome::Ran(_, mean) => mean,
            Outcome::Refused(w) => panic!("hashrf refused: {w}"),
        }
    }

    /// Day's algorithm summed over all pairs of the first `k` trees
    /// (pairwise-oracle bench).
    pub fn day_pairs(ds: &PreparedDataset, k: usize) -> u64 {
        let coll = phylo::TreeCollection::parse(&ds.newick).unwrap();
        let k = k.min(coll.len());
        let mut total = 0u64;
        for i in 0..k {
            for j in (i + 1)..k {
                total += bfhrf::day_rf(&coll.trees[i], &coll.trees[j], &coll.taxa) as u64;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PreparedDataset {
        prepare(&DatasetSpec::new("tiny", 10, 40, 7))
    }

    #[test]
    fn all_runners_agree_on_checksum() {
        let ds = tiny();
        let a = algorithms::bfhrf_mean(&ds, None);
        let b = algorithms::bfhrf_mean(&ds, Some(2));
        let c = algorithms::ds_mean(&ds, None);
        let d = algorithms::ds_mean(&ds, Some(2));
        let e = algorithms::hashrf_mean(&ds, usize::MAX);
        assert!((a - b).abs() < 1e-9);
        assert!((a - c).abs() < 1e-9, "bfhrf {a} vs ds {c}");
        assert!((a - d).abs() < 1e-9);
        assert!((a - e).abs() < 1e-9, "bfhrf {a} vs hashrf {e}");
    }

    #[test]
    fn ds_extrapolates_past_budget() {
        // r² = 640000 > tiny budget once r = 800+... use a small custom
        // budget by shrinking the dataset instead: 40² = 1600 pairs is
        // under PAIR_BUDGET so this runs fully; check non-estimated.
        let ds = tiny();
        match run_ds(&ds, None) {
            Outcome::Ran(m, _) => assert!(!m.estimated),
            Outcome::Refused(w) => panic!("{w}"),
        }
    }

    #[test]
    fn hashrf_refusal_renders_as_dash() {
        let ds = tiny();
        let rows = vec![Row {
            algorithm: "HashRF".into(),
            n: ds.n_taxa,
            r: ds.n_trees,
            outcome: run_hashrf(&ds, 1),
        }];
        let table = render("refusal", &rows);
        assert!(table.contains('-'), "{table}");
        assert!(table.contains("resource limit"), "{table}");
    }

    #[test]
    fn datasets_table_mentions_all_shapes() {
        let e = Experiment::new(Scale::Default);
        let t = e.datasets();
        for name in ["avian", "insect", "var-trees", "var-taxa"] {
            assert!(t.contains(name), "{t}");
        }
    }

    #[test]
    fn day_pairs_runs() {
        let ds = tiny();
        let total = algorithms::day_pairs(&ds, 5);
        // 10-leaf random coalescent trees: some pairs must differ
        assert!(total > 0);
    }
}
