//! A peak-tracking global allocator.
//!
//! The paper reports "maximum resident memory" per run. Rather than
//! scraping `/proc`, the harness counts live heap bytes exactly: every
//! allocation adds to a counter, every deallocation subtracts, and a
//! monotone peak is maintained with `fetch_max`. The binary installs it
//! with `#[global_allocator]`; [`PeakAlloc::reset_peak`] is called before
//! each measured phase so per-experiment peaks are isolated.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counting wrapper around the system allocator.
pub struct PeakAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl PeakAlloc {
    /// A fresh counter (use as a `static`).
    pub const fn new() -> Self {
        PeakAlloc {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Live heap bytes right now.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// Highest live-byte count since the last [`PeakAlloc::reset_peak`].
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restart peak tracking from the current live size.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    #[inline]
    fn add(&self, size: usize) {
        let now = self.current.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    #[inline]
    fn sub(&self, size: usize) {
        self.current.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for PeakAlloc {
    fn default() -> Self {
        PeakAlloc::new()
    }
}

// SAFETY: defers all allocation to `System`; the counters are plain
// atomics with no further invariants.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.sub(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                self.add(new_size - layout.size());
            } else {
                self.sub(layout.size() - new_size);
            }
        }
        p
    }
}

/// The harness-wide instance. Binaries install [`InstallPeakAlloc`] to
/// feed it; when not installed the counters stay at zero and memory
/// columns read 0.
pub static GLOBAL: PeakAlloc = PeakAlloc::new();

/// Zero-sized delegator so binaries can write
/// `#[global_allocator] static A: InstallPeakAlloc = InstallPeakAlloc;`
/// while the counters live in the shared [`GLOBAL`] the library reads.
pub struct InstallPeakAlloc;

// SAFETY: pure delegation to `GLOBAL`, which delegates to `System`.
unsafe impl GlobalAlloc for InstallPeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        GLOBAL.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        GLOBAL.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        GLOBAL.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_manual_alloc() {
        // Exercise the wrapper directly (it is not the test binary's
        // global allocator, so counters start at zero).
        let a = PeakAlloc::new();
        unsafe {
            let layout = Layout::from_size_align(1024, 8).unwrap();
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(a.current_bytes(), 1024);
            assert_eq!(a.peak_bytes(), 1024);
            let p2 = a.realloc(p, layout, 4096);
            assert!(!p2.is_null());
            assert_eq!(a.current_bytes(), 4096);
            assert_eq!(a.peak_bytes(), 4096);
            let layout2 = Layout::from_size_align(4096, 8).unwrap();
            a.dealloc(p2, layout2);
            assert_eq!(a.current_bytes(), 0);
            assert_eq!(a.peak_bytes(), 4096, "peak survives dealloc");
            a.reset_peak();
            assert_eq!(a.peak_bytes(), 0);
        }
    }

    #[test]
    fn shrinking_realloc_subtracts() {
        let a = PeakAlloc::new();
        unsafe {
            let layout = Layout::from_size_align(4096, 8).unwrap();
            let p = a.alloc(layout);
            let p2 = a.realloc(p, layout, 1000);
            assert_eq!(a.current_bytes(), 1000);
            let small = Layout::from_size_align(1000, 8).unwrap();
            a.dealloc(p2, small);
            assert_eq!(a.current_bytes(), 0);
        }
    }
}
