//! Criterion bench for Table III: Insect-shaped dataset (n=144). The
//! paper's headline comparison — BFHRF handles the wide-taxa collection
//! where the baselines blow up; here the shape is measured at bench-sized
//! prefixes (the `repro tbl3` harness runs the larger points with the
//! paper's extrapolation protocol).

use bfhrf_bench::datasets::{prefix, prepare};
use bfhrf_bench::runner::algorithms;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phylo_sim::DatasetSpec;
use std::hint::black_box;

fn tbl3(c: &mut Criterion) {
    let full = prepare(&DatasetSpec::insect().with_trees(1000));
    let mut group = c.benchmark_group("tbl3_insect_n144");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for r in [250usize, 500, 1000] {
        let ds = prefix(&full, r);
        group.bench_with_input(BenchmarkId::new("BFHRF", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::bfhrf_mean(ds, None)))
        });
        group.bench_with_input(BenchmarkId::new("BFHRF-par", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::bfhrf_mean(ds, Some(8))))
        });
        group.bench_with_input(BenchmarkId::new("HashRF", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::hashrf_mean(ds, usize::MAX)))
        });
        if r <= 250 {
            group.bench_with_input(BenchmarkId::new("DS", r), &ds, |b, ds| {
                b.iter(|| black_box(algorithms::ds_mean(ds, None)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, tbl3);
criterion_main!(benches);
