//! Ablation benches on the design choices DESIGN.md calls out:
//!
//! * `hash_build` — sequential vs rayon fold/merge vs sharded BFH
//!   construction;
//! * `query_threads` — BFHRF query-phase thread scaling;
//! * `day_vs_sets` — Day's O(n) pairwise RF vs the set-difference RF;
//! * `idwidth` — HashRF compressed-ID width (collision cost is paid in
//!   accuracy, not time, so this measures that time is flat across widths).

use bfhrf::{day_rf, Bfh, HashRf, HashRfConfig};
use bfhrf_bench::datasets::prepare;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phylo::{BipartitionSet, TreeCollection};
use phylo_sim::DatasetSpec;
use rayon::prelude::*;
use std::hint::black_box;

fn load(n: usize, r: usize, seed: u64) -> TreeCollection {
    TreeCollection::parse(&prepare(&DatasetSpec::new("abl", n, r, seed)).newick).unwrap()
}

fn hash_build(c: &mut Criterion) {
    let coll = load(100, 1000, 1);
    let mut group = c.benchmark_group("ablation_hash_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(Bfh::build(&coll.trees, &coll.taxa).sum()))
    });
    group.bench_function("fold_merge", |b| {
        b.iter(|| black_box(bfhrf_bench::runner::fold_merge_build(&coll).sum()))
    });
    group.bench_function("sharded_8", |b| {
        b.iter(|| black_box(Bfh::build_sharded(&coll.trees, &coll.taxa, 8).sum()))
    });
    group.finish();
}

fn query_threads(c: &mut Criterion) {
    let coll = load(100, 1000, 2);
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let mut group = c.benchmark_group("ablation_query_threads");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                pool.install(|| {
                    black_box(
                        coll.trees
                            .par_iter()
                            .map(|q| bfhrf::bfhrf_average(q, &coll.taxa, &bfh).average())
                            .sum::<f64>(),
                    )
                })
            })
        });
    }
    group.finish();
}

fn day_vs_sets(c: &mut Criterion) {
    let coll = load(500, 2, 3);
    let (a, b_tree) = (&coll.trees[0], &coll.trees[1]);
    let mut group = c.benchmark_group("ablation_pairwise_rf");
    group.bench_function("day_linear", |bch| {
        bch.iter(|| black_box(day_rf(a, b_tree, &coll.taxa)))
    });
    group.bench_function("set_difference", |bch| {
        bch.iter(|| {
            let sa = BipartitionSet::from_tree(a, &coll.taxa);
            let sb = BipartitionSet::from_tree(b_tree, &coll.taxa);
            black_box(sa.rf_distance(&sb))
        })
    });
    group.finish();
}

fn idwidth(c: &mut Criterion) {
    let coll = load(64, 300, 4);
    let mut group = c.benchmark_group("ablation_hashrf_idwidth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for id_bits in [16u32, 32, 64] {
        let cfg = HashRfConfig {
            id_bits,
            ..HashRfConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(id_bits), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    HashRf::compute(&coll.trees, &coll.taxa, cfg)
                        .unwrap()
                        .averages()
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn compact_keys(c: &mut Criterion) {
    // §IX compressed-key hash: query throughput of plain vs compact keys
    // (compact trades a compress() per probe for smaller resident keys)
    let coll = load(500, 200, 5);
    let plain = Bfh::build(&coll.trees, &coll.taxa);
    let compact = bfhrf::CompactBfh::from_bfh(&plain);
    let mut group = c.benchmark_group("ablation_compact_keys");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("plain_queries", |b| {
        b.iter(|| {
            black_box(
                coll.trees
                    .iter()
                    .map(|q| bfhrf::bfhrf_average(q, &coll.taxa, &plain).total())
                    .sum::<u64>(),
            )
        })
    });
    group.bench_function("compact_queries", |b| {
        b.iter(|| {
            black_box(
                coll.trees
                    .iter()
                    .map(|q| compact.average_rf(q, &coll.taxa).total())
                    .sum::<u64>(),
            )
        })
    });
    group.finish();
}

fn pgm_vs_bfhrf(c: &mut Criterion) {
    // PGM-Hashed stays 1-vs-1: q·r signature merges per batch, vs BFHRF's
    // q hash probes. Both get preprocessed inputs here, isolating the
    // comparison structure itself.
    let coll = load(100, 500, 6);
    let hasher = bfhrf::pgm::PgmHasher::new(100, 64, 9);
    let sigs: Vec<_> = coll
        .trees
        .iter()
        .map(|t| hasher.signature(t, &coll.taxa))
        .collect();
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let mut group = c.benchmark_group("ablation_pgm_vs_bfhrf");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("pgm_one_vs_one", |b| {
        b.iter(|| {
            black_box(
                sigs.iter()
                    .map(|q| hasher.average_rf(q, &sigs))
                    .sum::<f64>(),
            )
        })
    });
    group.bench_function("bfhrf_tree_vs_hash", |b| {
        b.iter(|| {
            black_box(
                coll.trees
                    .iter()
                    .map(|q| bfhrf::bfhrf_average(q, &coll.taxa, &bfh).average())
                    .sum::<f64>(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    hash_build,
    query_threads,
    day_vs_sets,
    idwidth,
    compact_keys,
    pgm_vs_bfhrf
);
criterion_main!(benches);
