//! Criterion bench for Figure 1: Avian-shaped dataset (n=48), runtime of
//! each algorithm over growing prefixes. Absolute values differ from the
//! paper's server, but the ordering (BFHRF ≲ HashRF ≪ DSMP ≪ DS) and the
//! growth in `r` are the reproduced shape.

use bfhrf_bench::datasets::{prefix, prepare};
use bfhrf_bench::runner::algorithms;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phylo_sim::DatasetSpec;
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    // bench-sized prefixes: criterion repeats each point many times
    let full = prepare(&DatasetSpec::avian().with_trees(1000));
    let mut group = c.benchmark_group("fig1_avian_n48");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for r in [250usize, 500, 1000] {
        let ds = prefix(&full, r);
        group.bench_with_input(BenchmarkId::new("BFHRF", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::bfhrf_mean(ds, None)))
        });
        group.bench_with_input(BenchmarkId::new("BFHRF-par", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::bfhrf_mean(ds, Some(8))))
        });
        group.bench_with_input(BenchmarkId::new("HashRF", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::hashrf_mean(ds, usize::MAX)))
        });
        // DS only at the smallest points — it is the O(n²qr) baseline
        if r <= 500 {
            group.bench_with_input(BenchmarkId::new("DS", r), &ds, |b, ds| {
                b.iter(|| black_box(algorithms::ds_mean(ds, None)))
            });
            group.bench_with_input(BenchmarkId::new("DSMP", r), &ds, |b, ds| {
                b.iter(|| black_box(algorithms::ds_mean(ds, Some(8))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
