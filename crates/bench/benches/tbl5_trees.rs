//! Criterion bench for Table V / Figure 2: runtime vs number of trees at
//! n=100. Reproduced shape: BFHRF linear in r; HashRF superlinear (its
//! pair-counting and r×r matrix grow quadratically); DS quadratic.

use bfhrf_bench::datasets::{prefix, prepare};
use bfhrf_bench::runner::algorithms;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phylo_sim::DatasetSpec;
use std::hint::black_box;

fn tbl5(c: &mut Criterion) {
    let full = prepare(&DatasetSpec::variable_trees(2000));
    let mut group = c.benchmark_group("tbl5_variable_trees_n100");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for r in [500usize, 1000, 2000] {
        let ds = prefix(&full, r);
        group.bench_with_input(BenchmarkId::new("BFHRF", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::bfhrf_mean(ds, None)))
        });
        group.bench_with_input(BenchmarkId::new("BFHRF-par", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::bfhrf_mean(ds, Some(8))))
        });
        group.bench_with_input(BenchmarkId::new("HashRF", r), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::hashrf_mean(ds, usize::MAX)))
        });
        if r <= 500 {
            group.bench_with_input(BenchmarkId::new("DS", r), &ds, |b, ds| {
                b.iter(|| black_box(algorithms::ds_mean(ds, None)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, tbl5);
criterion_main!(benches);
