//! Criterion bench for Table IV: runtime vs number of taxa at fixed r.
//! The reproduced claim (§VI.C): BFHRF runtime grows linearly in n in
//! practice, and hash-based methods grow much slower than the sequential
//! baselines.

use bfhrf_bench::datasets::prepare;
use bfhrf_bench::runner::algorithms;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phylo_sim::DatasetSpec;
use std::hint::black_box;

fn tbl4(c: &mut Criterion) {
    let mut group = c.benchmark_group("tbl4_variable_taxa_r100");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [100usize, 250, 500] {
        let ds = prepare(&DatasetSpec::variable_taxa(n).with_trees(100));
        group.bench_with_input(BenchmarkId::new("BFHRF", n), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::bfhrf_mean(ds, None)))
        });
        group.bench_with_input(BenchmarkId::new("HashRF", n), &ds, |b, ds| {
            b.iter(|| black_box(algorithms::hashrf_mean(ds, usize::MAX)))
        });
        if n <= 250 {
            group.bench_with_input(BenchmarkId::new("DS", n), &ds, |b, ds| {
                b.iter(|| black_box(algorithms::ds_mean(ds, None)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, tbl4);
criterion_main!(benches);
