//! Parser robustness: arbitrary byte soup must produce `Err`, never a
//! panic, and valid inputs perturbed by mutation must either parse or
//! error cleanly. The streaming reader and the lenient recovery reader get
//! the same treatment.

use phylo::ingest::read_collection;
use phylo::newick::NewickStream;
use phylo::{parse_newick, IngestPolicy, PhyloError, TaxaPolicy, TaxonSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_strings_never_panic(s in "\\PC{0,120}") {
        let mut taxa = TaxonSet::new();
        let _ = parse_newick(&s, &mut taxa, TaxaPolicy::Grow);
    }

    #[test]
    fn newick_flavored_soup_never_panics(
        s in "[(),;:A-Ea-e0-9.'\\[\\] _-]{0,160}",
    ) {
        let mut taxa = TaxonSet::new();
        let _ = parse_newick(&s, &mut taxa, TaxaPolicy::Grow);
        // the streaming splitter must also survive and terminate
        let mut taxa2 = TaxonSet::new();
        let mut stream = NewickStream::new(s.as_bytes(), TaxaPolicy::Grow);
        for _ in 0..200 {
            match stream.next_tree(&mut taxa2) {
                Ok(None) | Err(_) => break,
                Ok(Some(_)) => {}
            }
        }
    }

    #[test]
    fn mutated_valid_tree_parses_or_errors(
        idx in 0usize..28,
        replacement in "[(),;:A-D0-9.]",
    ) {
        let base = "((A:1.5,B):2,(C,D):1e-2);";
        let mut bytes = base.as_bytes().to_vec();
        let i = idx % bytes.len();
        bytes[i] = replacement.as_bytes()[0];
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let mut taxa = TaxonSet::new();
            if let Ok(tree) = parse_newick(s, &mut taxa, TaxaPolicy::Grow) {
                // a successful parse must produce a structurally sound tree
                prop_assert!(tree.root().is_some());
                prop_assert!(tree.leaf_count() >= 1);
            }
        }
    }

    #[test]
    fn mutated_collection_survives_lenient_and_errors_strict(
        cut in 0usize..90,
        flip_pos in 0usize..90,
        flip_byte in any::<u8>(),
    ) {
        // Truncation + one arbitrary byte flip (including NUL and invalid
        // UTF-8) over a multi-record collection.
        let base = "((A:1.5,B):2,(C,D):1e-2);\n(('x y',C),(B,A));\n((A,(B,C)),D);\n((D,C),(B,A));\n";
        let mut bytes = base.as_bytes().to_vec();
        bytes.truncate(cut.min(bytes.len()));
        if !bytes.is_empty() {
            let i = flip_pos % bytes.len();
            bytes[i] = flip_byte;
        }
        // Lenient: never panics, never errors with an unlimited skip
        // budget; every accepted tree is structurally sound.
        let (coll, report) = read_collection(&bytes[..], IngestPolicy::lenient()).unwrap();
        prop_assert_eq!(coll.trees.len(), report.accepted);
        for t in &coll.trees {
            prop_assert!(t.root().is_some());
            prop_assert!(t.leaf_count() >= 1);
        }
        // Strict: success means nothing was skipped; a parse failure
        // carries an absolute byte offset inside the input.
        match read_collection(&bytes[..], IngestPolicy::Strict) {
            Ok((strict_coll, strict_report)) => {
                prop_assert!(!strict_report.is_partial());
                prop_assert_eq!(strict_coll.trees.len(), strict_report.accepted);
            }
            Err(PhyloError::Parse { offset, .. }) => prop_assert!(offset <= bytes.len()),
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn unbalanced_parens_and_nul_bytes_recover(
        extra_open in 0usize..4,
        extra_close in 0usize..4,
        nul_at in 0usize..60,
    ) {
        // Unbalance the first record, then stamp a NUL byte somewhere; the
        // second record must still be reachable whenever it survives the
        // NUL intact.
        let mut s = String::new();
        for _ in 0..extra_open {
            s.push('(');
        }
        s.push_str("((A,B),(C,D))");
        for _ in 0..extra_close {
            s.push(')');
        }
        s.push_str(";\n((A,C),(B,D));\n");
        let mut bytes = s.into_bytes();
        let i = nul_at % bytes.len();
        bytes[i] = 0;
        let (coll, report) = read_collection(&bytes[..], IngestPolicy::lenient()).unwrap();
        prop_assert_eq!(coll.trees.len(), report.accepted);
        prop_assert_eq!(report.records(), report.accepted + report.skipped.len());
        // Skip positions stay inside the input.
        for rec in &report.skipped {
            prop_assert!(rec.byte <= bytes.len());
            prop_assert!(rec.line >= 1);
        }
        // Strict never panics either.
        let _ = read_collection(&bytes[..], IngestPolicy::Strict);
    }

    #[test]
    fn parse_write_parse_fixpoint(seed in any::<u64>(), n in 4usize..24) {
        // generated trees → text → tree → text must be a fixpoint
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tree = phylo_sim_free_random_tree(n, &mut rng);
        let taxa = TaxonSet::with_numbered("t", n);
        let s1 = phylo::write_newick(&tree, &taxa);
        let mut taxa2 = taxa.clone();
        let t2 = parse_newick(&s1, &mut taxa2, TaxaPolicy::Require).unwrap();
        let s2 = phylo::write_newick(&t2, &taxa2);
        prop_assert_eq!(s1, s2);
    }
}

/// Local random-tree builder (this crate cannot depend on phylo-sim).
fn phylo_sim_free_random_tree(n: usize, rng: &mut rand::rngs::StdRng) -> phylo::Tree {
    use rand::RngExt;
    let (mut t, root) = phylo::Tree::with_root();
    t.add_leaf(root, phylo::TaxonId(0));
    t.add_leaf(root, phylo::TaxonId(1));
    for i in 2..n {
        let edges: Vec<_> = t.edges().collect();
        let (p, c) = edges[rng.random_range(0..edges.len())];
        t.detach_child(p, c);
        let mid = t.add_child(p);
        t.attach_child(mid, c);
        t.add_leaf(mid, phylo::TaxonId(i as u32));
    }
    t
}
