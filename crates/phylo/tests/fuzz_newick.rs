//! Parser robustness: arbitrary byte soup must produce `Err`, never a
//! panic, and valid inputs perturbed by mutation must either parse or
//! error cleanly. The streaming reader gets the same treatment.

use phylo::newick::NewickStream;
use phylo::{parse_newick, TaxaPolicy, TaxonSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_strings_never_panic(s in "\\PC{0,120}") {
        let mut taxa = TaxonSet::new();
        let _ = parse_newick(&s, &mut taxa, TaxaPolicy::Grow);
    }

    #[test]
    fn newick_flavored_soup_never_panics(
        s in "[(),;:A-Ea-e0-9.'\\[\\] _-]{0,160}",
    ) {
        let mut taxa = TaxonSet::new();
        let _ = parse_newick(&s, &mut taxa, TaxaPolicy::Grow);
        // the streaming splitter must also survive and terminate
        let mut taxa2 = TaxonSet::new();
        let mut stream = NewickStream::new(s.as_bytes(), TaxaPolicy::Grow);
        for _ in 0..200 {
            match stream.next_tree(&mut taxa2) {
                Ok(None) | Err(_) => break,
                Ok(Some(_)) => {}
            }
        }
    }

    #[test]
    fn mutated_valid_tree_parses_or_errors(
        idx in 0usize..28,
        replacement in "[(),;:A-D0-9.]",
    ) {
        let base = "((A:1.5,B):2,(C,D):1e-2);";
        let mut bytes = base.as_bytes().to_vec();
        let i = idx % bytes.len();
        bytes[i] = replacement.as_bytes()[0];
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let mut taxa = TaxonSet::new();
            if let Ok(tree) = parse_newick(s, &mut taxa, TaxaPolicy::Grow) {
                // a successful parse must produce a structurally sound tree
                prop_assert!(tree.root().is_some());
                prop_assert!(tree.leaf_count() >= 1);
            }
        }
    }

    #[test]
    fn parse_write_parse_fixpoint(seed in any::<u64>(), n in 4usize..24) {
        // generated trees → text → tree → text must be a fixpoint
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tree = phylo_sim_free_random_tree(n, &mut rng);
        let taxa = TaxonSet::with_numbered("t", n);
        let s1 = phylo::write_newick(&tree, &taxa);
        let mut taxa2 = taxa.clone();
        let t2 = parse_newick(&s1, &mut taxa2, TaxaPolicy::Require).unwrap();
        let s2 = phylo::write_newick(&t2, &taxa2);
        prop_assert_eq!(s1, s2);
    }
}

/// Local random-tree builder (this crate cannot depend on phylo-sim).
fn phylo_sim_free_random_tree(n: usize, rng: &mut rand::rngs::StdRng) -> phylo::Tree {
    use rand::RngExt;
    let (mut t, root) = phylo::Tree::with_root();
    t.add_leaf(root, phylo::TaxonId(0));
    t.add_leaf(root, phylo::TaxonId(1));
    for i in 2..n {
        let edges: Vec<_> = t.edges().collect();
        let (p, c) = edges[rng.random_range(0..edges.len())];
        t.detach_child(p, c);
        let mid = t.add_child(p);
        t.attach_child(mid, c);
        t.add_leaf(mid, phylo::TaxonId(i as u32));
    }
    t
}
