//! Property-based tests for the phylo substrate: random binary trees must
//! satisfy the textbook invariants (split counts, round-trips, edit-move
//! distances) for every topology, not just hand-picked examples.

use phylo::{parse_newick, write_newick, TaxaPolicy, TaxonSet, Tree};
use phylo_bitset::Bits;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Build a uniform-ish random binary tree on `n` taxa by sequential leaf
/// insertion: each new leaf subdivides a uniformly chosen existing edge.
fn random_binary_tree(n: usize, seed: u64) -> (Tree, TaxonSet) {
    assert!(n >= 2);
    let taxa = TaxonSet::with_numbered("t", n);
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut t, root) = Tree::with_root();
    t.add_leaf(root, phylo::TaxonId(0));
    t.add_leaf(root, phylo::TaxonId(1));
    for i in 2..n {
        // collect current edges (parent, child)
        let edges: Vec<_> = t.edges().collect();
        let (p, c) = edges[rng.random_range(0..edges.len())];
        t.detach_child(p, c);
        let mid = t.add_child(p);
        t.attach_child(mid, c);
        t.add_leaf(mid, phylo::TaxonId(i as u32));
    }
    (t, taxa)
}

fn split_set(t: &Tree, taxa: &TaxonSet) -> Vec<Bits> {
    let mut v: Vec<Bits> = t
        .bipartitions(taxa)
        .into_iter()
        .map(|b| b.into_bits())
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_trees_have_n_minus_3_splits(n in 4usize..60, seed in any::<u64>()) {
        let (t, taxa) = random_binary_tree(n, seed);
        prop_assert!(t.is_binary());
        prop_assert_eq!(t.validate(&taxa).unwrap(), n);
        prop_assert_eq!(t.bipartitions(&taxa).len(), n - 3);
    }

    #[test]
    fn newick_roundtrip_preserves_splits(n in 4usize..50, seed in any::<u64>()) {
        let (t, taxa) = random_binary_tree(n, seed);
        let text = write_newick(&t, &taxa);
        let mut taxa2 = taxa.clone();
        let t2 = parse_newick(&text, &mut taxa2, TaxaPolicy::Require).unwrap();
        prop_assert_eq!(taxa2.len(), taxa.len());
        prop_assert_eq!(split_set(&t2, &taxa2), split_set(&t, &taxa));
    }

    #[test]
    fn compaction_preserves_splits(n in 4usize..40, seed in any::<u64>()) {
        let (t, taxa) = random_binary_tree(n, seed);
        let c = t.compacted();
        prop_assert_eq!(c.num_nodes(), 2 * n - 1);
        prop_assert_eq!(split_set(&c, &taxa), split_set(&t, &taxa));
    }

    #[test]
    fn nni_move_is_rf_two(n in 5usize..40, seed in any::<u64>(), pick in any::<u64>()) {
        let (mut t, taxa) = random_binary_tree(n, seed);
        let before = split_set(&t, &taxa);
        let edges = t.nni_edges();
        prop_assume!(!edges.is_empty());
        let (p, c) = edges[(pick as usize) % edges.len()];
        t.nni(p, c, (pick as usize / 7) % 2, 0).unwrap();
        prop_assert!(t.validate(&taxa).is_ok());
        prop_assert!(t.is_binary());
        let after = split_set(&t, &taxa);
        let removed = before.iter().filter(|b| !after.contains(b)).count();
        let added = after.iter().filter(|b| !before.contains(b)).count();
        // an NNI replaces exactly one internal split
        prop_assert_eq!((removed, added), (1, 1));
    }

    #[test]
    fn restriction_is_valid_and_monotone(n in 6usize..40, seed in any::<u64>(), mask_seed in any::<u64>()) {
        let (t, taxa) = random_binary_tree(n, seed);
        let mut rng = StdRng::seed_from_u64(mask_seed);
        let mut keep = Bits::zeros(n);
        for i in 0..n {
            if rng.random_range(0..3) != 0 {
                keep.set(i);
            }
        }
        prop_assume!(keep.count_ones() >= 1);
        let r = t.restricted(&keep).unwrap();
        prop_assert_eq!(r.leaf_count() as u32, keep.count_ones());
        prop_assert!(r.validate(&taxa).is_ok());
        // every split of the restriction is the restriction of some split
        let leafset = t.leafset(n);
        let restricted_originals: Vec<Bits> = t
            .bipartitions(&taxa)
            .iter()
            .map(|b| {
                let side = b.bits().intersection(&keep);
                // canonicalize within the kept leafset
                let kept_leaves = leafset.intersection(&keep);
                let anchor = kept_leaves.first_one().unwrap();
                if side.get(anchor) { side } else { kept_leaves.difference(&side) }
            })
            .collect();
        for split in r.bipartitions(&taxa) {
            prop_assert!(
                restricted_originals.contains(split.bits()),
                "split {} of restriction not induced by any original split",
                split
            );
        }
    }

    #[test]
    fn spr_keeps_tree_valid(n in 6usize..40, seed in any::<u64>(), pick in any::<u64>()) {
        let (mut t, taxa) = random_binary_tree(n, seed);
        let root = t.root().unwrap();
        let nodes: Vec<_> = t
            .postorder()
            .into_iter()
            .filter(|&x| x != root)
            .collect();
        let prune = nodes[(pick as usize) % nodes.len()];
        let target = nodes[(pick as usize / 13) % nodes.len()];
        match t.spr(prune, target) {
            Ok(()) => {
                let t = t.compacted();
                prop_assert!(t.validate(&taxa).is_ok());
                prop_assert_eq!(t.leaf_count(), n);
                prop_assert!(t.is_binary());
            }
            Err(_) => {
                // rejected moves must not corrupt arithmetic invariants:
                // the tree may have been partially modified only in ways
                // that keep it a valid tree
                prop_assert!(t.compacted().validate(&taxa).is_ok());
            }
        }
    }

    #[test]
    fn rf_distance_is_a_metric_on_samples(
        n in 4usize..30,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        s3 in any::<u64>(),
    ) {
        use phylo::BipartitionSet;
        let (t1, taxa) = random_binary_tree(n, s1);
        let (t2, _) = random_binary_tree(n, s2);
        let (t3, _) = random_binary_tree(n, s3);
        let b1 = BipartitionSet::from_tree(&t1, &taxa);
        let b2 = BipartitionSet::from_tree(&t2, &taxa);
        let b3 = BipartitionSet::from_tree(&t3, &taxa);
        // identity, symmetry, triangle inequality
        prop_assert_eq!(b1.rf_distance(&b1), 0);
        prop_assert_eq!(b1.rf_distance(&b2), b2.rf_distance(&b1));
        prop_assert!(b1.rf_distance(&b3) <= b1.rf_distance(&b2) + b2.rf_distance(&b3));
        // bound: at most (n-3) + (n-3)
        prop_assert!(b1.rf_distance(&b2) <= 2 * (n - 3));
    }
}
