//! Arena-allocated phylogenetic trees.

use crate::taxa::{TaxonId, TaxonSet};
use crate::PhyloError;
use std::fmt;

/// Index of a node within one [`Tree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Child slots kept inline before spilling to the heap. Bifurcating trees
/// (the overwhelmingly common shape) have at most 2 children per internal
/// node and at most 3 at an unrooted-style root, so 4 inline slots make
/// child storage allocation-free for them; the enum rounds to the same
/// 32 bytes either way.
const INLINE_CHILDREN: usize = 4;

/// A node's child list: inline up to [`INLINE_CHILDREN`], heap `Vec`
/// beyond. Building a bifurcating tree touches the allocator only for the
/// node arena itself — this matters because the workloads parse and decode
/// hundreds of thousands of trees (one child list per internal node).
#[derive(Debug, Clone)]
pub(crate) enum ChildList {
    Inline {
        buf: [NodeId; INLINE_CHILDREN],
        len: u8,
    },
    Spilled(Vec<NodeId>),
}

impl ChildList {
    pub(crate) const fn new() -> Self {
        ChildList::Inline {
            buf: [NodeId(0); INLINE_CHILDREN],
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, id: NodeId) {
        match self {
            ChildList::Inline { buf, len } => {
                let n = *len as usize;
                if n < INLINE_CHILDREN {
                    buf[n] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_CHILDREN * 2);
                    v.extend_from_slice(&buf[..n]);
                    v.push(id);
                    *self = ChildList::Spilled(v);
                }
            }
            ChildList::Spilled(v) => v.push(id),
        }
    }

    pub(crate) fn clear(&mut self) {
        *self = ChildList::new();
    }

    /// Remove the child at `pos`, shifting the rest left (insertion order
    /// is meaningful — Newick output preserves it).
    pub(crate) fn remove(&mut self, pos: usize) {
        match self {
            ChildList::Inline { buf, len } => {
                let n = *len as usize;
                assert!(pos < n, "child index out of range");
                buf.copy_within(pos + 1..n, pos);
                *len -= 1;
            }
            ChildList::Spilled(v) => {
                v.remove(pos);
            }
        }
    }
}

impl std::ops::Deref for ChildList {
    type Target = [NodeId];

    #[inline]
    fn deref(&self) -> &[NodeId] {
        match self {
            ChildList::Inline { buf, len } => &buf[..*len as usize],
            ChildList::Spilled(v) => v,
        }
    }
}

impl std::ops::DerefMut for ChildList {
    #[inline]
    fn deref_mut(&mut self) -> &mut [NodeId] {
        match self {
            ChildList::Inline { buf, len } => &mut buf[..*len as usize],
            ChildList::Spilled(v) => v,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: ChildList,
    pub(crate) taxon: Option<TaxonId>,
    pub(crate) length: Option<f64>,
}

/// A rooted tree over taxa from a shared [`TaxonSet`].
///
/// Nodes live in a flat arena (`Vec`), children as index lists; this is the
/// cache-friendly layout the workloads need — the Insect experiment parses
/// 149k trees of 144 taxa, so per-node allocation overhead matters.
///
/// RF is defined on *unrooted* trees; rooting is a representation artifact
/// and the bipartition extraction in [`crate::bipartition`] is
/// rooting-invariant. Leaves carry a [`TaxonId`]; internal nodes may carry
/// branch lengths (used by the weighted-RF variant).
#[derive(Clone, Default)]
pub struct Tree {
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Tree {
    /// Create an empty tree (no nodes).
    pub fn new() -> Self {
        Tree::default()
    }

    /// Create an empty tree whose arena is pre-sized for `n` nodes.
    ///
    /// Decoders that learn the node count from a header (the phylo-wire
    /// record codec does) avoid every arena reallocation this way.
    pub fn with_node_capacity(n: usize) -> Self {
        Tree {
            nodes: Vec::with_capacity(n),
            root: None,
        }
    }

    /// Create a tree with a fresh root node.
    pub fn with_root() -> (Self, NodeId) {
        let mut t = Tree::new();
        let r = t.add_root();
        (t, r)
    }

    /// Add the root node. Panics if a root already exists.
    pub fn add_root(&mut self) -> NodeId {
        assert!(self.root.is_none(), "tree already has a root");
        let id = self.push(Node {
            parent: None,
            children: ChildList::new(),
            taxon: None,
            length: None,
        });
        self.root = Some(id);
        id
    }

    /// Add a new child under `parent`.
    pub fn add_child(&mut self, parent: NodeId) -> NodeId {
        let id = self.push(Node {
            parent: Some(parent),
            children: ChildList::new(),
            taxon: None,
            length: None,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Add a leaf with `taxon` under `parent`.
    pub fn add_leaf(&mut self, parent: NodeId, taxon: TaxonId) -> NodeId {
        let id = self.add_child(parent);
        self.nodes[id.index()].taxon = Some(taxon);
        id
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The root node, if any node exists.
    #[inline]
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Total number of nodes in the arena (including detached ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Parent of `node` (`None` for the root).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Children of `node`, in insertion order.
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Whether `node` has no children.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node.index()].children.is_empty()
    }

    /// The taxon attached to `node`, if any.
    #[inline]
    pub fn taxon(&self, node: NodeId) -> Option<TaxonId> {
        self.nodes[node.index()].taxon
    }

    /// Attach `taxon` to `node`.
    pub fn set_taxon(&mut self, node: NodeId, taxon: Option<TaxonId>) {
        self.nodes[node.index()].taxon = taxon;
    }

    /// Branch length of the edge above `node`, if any.
    #[inline]
    pub fn length(&self, node: NodeId) -> Option<f64> {
        self.nodes[node.index()].length
    }

    /// Set the branch length of the edge above `node`.
    pub fn set_length(&mut self, node: NodeId, length: Option<f64>) {
        self.nodes[node.index()].length = length;
    }

    /// All leaf node ids reachable from the root, in postorder.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.postorder()
            .into_iter()
            .filter(|&n| self.is_leaf(n))
            .collect()
    }

    /// Number of leaves reachable from the root.
    pub fn leaf_count(&self) -> usize {
        match self.root {
            None => 0,
            Some(_) => self
                .postorder()
                .iter()
                .filter(|&&n| self.is_leaf(n))
                .count(),
        }
    }

    /// Detach `child` from `parent`'s child list (the subtree stays in the
    /// arena, unreachable). Panics if `child` is not a child of `parent`.
    pub fn detach_child(&mut self, parent: NodeId, child: NodeId) {
        let kids = &mut self.nodes[parent.index()].children;
        let pos = kids
            .iter()
            .position(|&c| c == child)
            .expect("detach_child: not a child of parent");
        kids.remove(pos);
        self.nodes[child.index()].parent = None;
    }

    /// Attach an existing (detached) node `child` under `parent`.
    pub fn attach_child(&mut self, parent: NodeId, child: NodeId) {
        assert!(
            self.nodes[child.index()].parent.is_none(),
            "attach_child: child already attached"
        );
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// Collapse reachable internal nodes that have exactly one child,
    /// splicing the child into the grandparent and summing branch lengths.
    /// A unary root is replaced by its child. Needed after restriction to a
    /// taxa subset (paper §VII.E) and after SPR pruning.
    pub fn suppress_unifurcations(&mut self) {
        let Some(mut root) = self.root else { return };
        // Repeatedly shrink a unary root.
        while self.nodes[root.index()].children.len() == 1 && self.taxon(root).is_none() {
            let child = self.nodes[root.index()].children[0];
            self.nodes[child.index()].parent = None;
            // Root edges carry no meaningful length; drop the child's.
            self.nodes[root.index()].children.clear();
            self.root = Some(child);
            root = child;
        }
        for node in self.postorder() {
            if node == root {
                continue;
            }
            let n = &self.nodes[node.index()];
            if n.children.len() == 1 && n.taxon.is_none() {
                let child = n.children[0];
                let parent = n.parent.expect("non-root has parent");
                let extra = self.nodes[node.index()].length;
                // splice child into parent at node's position
                let kids = &mut self.nodes[parent.index()].children;
                let pos = kids.iter().position(|&c| c == node).unwrap();
                kids[pos] = child;
                self.nodes[child.index()].parent = Some(parent);
                self.nodes[node.index()].children.clear();
                self.nodes[node.index()].parent = None;
                if let Some(e) = extra {
                    let cl = &mut self.nodes[child.index()].length;
                    *cl = Some(cl.unwrap_or(0.0) + e);
                }
            }
        }
    }

    /// Check structural invariants and taxon uniqueness; returns the leaf
    /// count on success.
    ///
    /// Verified: a root exists, every reachable leaf carries a taxon, no
    /// taxon appears twice, parent/child links are mutually consistent.
    pub fn validate(&self, taxa: &TaxonSet) -> Result<usize, PhyloError> {
        let root = self.root.ok_or(PhyloError::Empty("tree"))?;
        if self.nodes[root.index()].parent.is_some() {
            return Err(PhyloError::Structure("root has a parent".into()));
        }
        let mut seen = vec![false; taxa.len()];
        let mut leaves = 0usize;
        for node in self.postorder() {
            for &c in self.children(node) {
                if self.parent(c) != Some(node) {
                    return Err(PhyloError::Structure(format!(
                        "child {c:?} of {node:?} has inconsistent parent link"
                    )));
                }
            }
            if self.is_leaf(node) {
                leaves += 1;
                match self.taxon(node) {
                    None => {
                        return Err(PhyloError::Structure(format!("leaf {node:?} has no taxon")))
                    }
                    Some(t) => {
                        if t.index() >= seen.len() {
                            return Err(PhyloError::Structure(format!(
                                "leaf taxon {t} outside namespace of {} taxa",
                                taxa.len()
                            )));
                        }
                        if seen[t.index()] {
                            return Err(PhyloError::DuplicateTaxon(taxa.label(t).to_string()));
                        }
                        seen[t.index()] = true;
                    }
                }
            }
        }
        Ok(leaves)
    }

    /// Whether every reachable internal node has exactly 2 children (the
    /// root may have 2 or 3 — both are standard rooted representations of a
    /// binary unrooted tree).
    pub fn is_binary(&self) -> bool {
        let Some(root) = self.root else { return false };
        self.postorder().into_iter().all(|n| {
            let k = self.children(n).len();
            if n == root {
                k == 2 || k == 3 || k == 0
            } else {
                k == 0 || k == 2
            }
        })
    }

    /// Nodes in postorder (children before parents), root last.
    /// Returns an empty vector for an empty tree.
    pub fn postorder(&self) -> Vec<NodeId> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(self.nodes.len());
        // Two-stack postorder: emit in reverse-preorder with children
        // visited right-to-left, then reverse.
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend_from_slice(self.children(n));
        }
        out.reverse();
        out
    }

    /// Nodes in preorder (parents before children), root first.
    pub fn preorder(&self) -> Vec<NodeId> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            out.push(n);
            // push children reversed so the leftmost is visited first
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tree{{nodes: {}, root: {:?}}}",
            self.nodes.len(),
            self.root
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's example ((A,B),(C,D)) by hand.
    fn example() -> (Tree, TaxonSet) {
        let mut taxa = TaxonSet::new();
        let (a, b, c, d) = (
            taxa.intern("A"),
            taxa.intern("B"),
            taxa.intern("C"),
            taxa.intern("D"),
        );
        let (mut t, root) = Tree::with_root();
        let left = t.add_child(root);
        let right = t.add_child(root);
        t.add_leaf(left, a);
        t.add_leaf(left, b);
        t.add_leaf(right, c);
        t.add_leaf(right, d);
        (t, taxa)
    }

    #[test]
    fn construction_and_queries() {
        let (t, taxa) = example();
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.leaf_count(), 4);
        assert!(t.is_binary());
        assert_eq!(t.validate(&taxa).unwrap(), 4);
        let root = t.root().unwrap();
        assert_eq!(t.children(root).len(), 2);
        assert!(t.parent(root).is_none());
    }

    #[test]
    fn postorder_visits_children_first() {
        let (t, _) = example();
        let order = t.postorder();
        assert_eq!(order.len(), 7);
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        for n in &order {
            for &c in t.children(*n) {
                assert!(pos(c) < pos(*n), "child {c:?} after parent {n:?}");
            }
        }
        assert_eq!(*order.last().unwrap(), t.root().unwrap());
    }

    #[test]
    fn preorder_visits_parents_first() {
        let (t, _) = example();
        let order = t.preorder();
        assert_eq!(order[0], t.root().unwrap());
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        for n in &order {
            for &c in t.children(*n) {
                assert!(pos(c) > pos(*n));
            }
        }
    }

    #[test]
    fn empty_tree_is_safe() {
        let t = Tree::new();
        assert!(t.root().is_none());
        assert!(t.postorder().is_empty());
        assert!(t.preorder().is_empty());
        assert_eq!(t.leaf_count(), 0);
        assert!(!t.is_binary());
    }

    #[test]
    fn validate_rejects_duplicate_taxa() {
        let mut taxa = TaxonSet::new();
        let a = taxa.intern("A");
        let (mut t, root) = Tree::with_root();
        t.add_leaf(root, a);
        t.add_leaf(root, a);
        assert_eq!(
            t.validate(&taxa),
            Err(PhyloError::DuplicateTaxon("A".into()))
        );
    }

    #[test]
    fn validate_rejects_untagged_leaf() {
        let taxa = TaxonSet::new();
        let (mut t, root) = Tree::with_root();
        t.add_child(root);
        assert!(matches!(t.validate(&taxa), Err(PhyloError::Structure(_))));
    }

    #[test]
    fn detach_and_attach() {
        let (mut t, taxa) = example();
        let root = t.root().unwrap();
        let left = t.children(root)[0];
        t.detach_child(root, left);
        assert_eq!(t.children(root).len(), 1);
        assert_eq!(t.leaf_count(), 2);
        t.attach_child(root, left);
        assert_eq!(t.leaf_count(), 4);
        assert!(t.validate(&taxa).is_ok());
    }

    #[test]
    fn suppress_unifurcations_splices_and_sums_lengths() {
        // root -> u -> v -> leaf(A), with lengths 1.0 and 2.5 on v and leaf
        let mut taxa = TaxonSet::new();
        let a = taxa.intern("A");
        let b = taxa.intern("B");
        let (mut t, root) = Tree::with_root();
        let u = t.add_child(root);
        let v = t.add_child(u);
        t.set_length(v, Some(1.0));
        let leaf = t.add_leaf(v, a);
        t.set_length(leaf, Some(2.5));
        let leaf_b = t.add_leaf(root, b);
        t.set_length(leaf_b, Some(0.5));
        t.suppress_unifurcations();
        // u and v collapse: root -> leafA, root -> leafB
        let root = t.root().unwrap();
        assert_eq!(t.children(root).len(), 2);
        assert!(t.children(root).iter().all(|&c| t.is_leaf(c)));
        // A's length accumulated 2.5 + 1.0 (+ u's None)
        let a_node = *t
            .children(root)
            .iter()
            .find(|&&c| t.taxon(c) == Some(a))
            .unwrap();
        assert_eq!(t.length(a_node), Some(3.5));
        assert!(t.validate(&taxa).is_ok());
    }

    #[test]
    fn suppress_unary_root() {
        let mut taxa = TaxonSet::new();
        let a = taxa.intern("A");
        let b = taxa.intern("B");
        let (mut t, root) = Tree::with_root();
        let inner = t.add_child(root);
        t.add_leaf(inner, a);
        t.add_leaf(inner, b);
        t.suppress_unifurcations();
        assert_eq!(t.root(), Some(inner));
        assert_eq!(t.children(inner).len(), 2);
        assert!(t.validate(&taxa).is_ok());
    }

    #[test]
    fn is_binary_accepts_trifurcating_root() {
        let mut taxa = TaxonSet::new();
        let (mut t, root) = Tree::with_root();
        for l in ["A", "B", "C"] {
            let id = taxa.intern(l);
            t.add_leaf(root, id);
        }
        assert!(t.is_binary());
        let extra = taxa.intern("D");
        t.add_leaf(root, extra);
        assert!(!t.is_binary(), "4-child root is not binary");
    }
}
