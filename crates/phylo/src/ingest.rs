//! Fault-tolerant streaming ingestion with structured error reporting.
//!
//! The paper's evaluation is a robustness cautionary tale: HashRF "could not
//! read" the 149k-tree Insect collection at all. Real-world Newick files
//! carry malformed records, editor damage, and encoding junk, and a strict
//! reader aborts a 100k-tree run on the first bad byte. This module adds a
//! recovery mode: [`NewickReader`] splits the byte stream into `;`-terminated
//! records (the same quote/comment-aware scan as
//! [`NewickStream`](crate::newick::NewickStream)) while tracking absolute
//! byte offsets and line numbers, and under [`IngestPolicy::Lenient`] skips a
//! malformed record, resynchronizes at the next record boundary, and logs the
//! failure in an [`IngestReport`] instead of aborting.
//!
//! Two invariants make lenient mode safe to use for RF comparisons:
//!
//! 1. **Namespace rollback.** A record that fails mid-parse may already have
//!    interned labels under [`TaxaPolicy::Grow`]. Those labels are rolled
//!    back ([`TaxonSet::truncate`]) so a skipped record leaves *no trace*:
//!    the accepted trees are bit-for-bit identical to parsing a pre-cleaned
//!    file.
//! 2. **Typed exhaustion.** `Lenient { max_errors }` bounds how much garbage
//!    the reader will wade through; exceeding the budget returns
//!    [`PhyloError::ErrorLimit`] rather than silently producing an empty
//!    collection from a file that was never Newick at all.

use crate::newick::{parse_newick, TaxaPolicy};
use crate::taxa::TaxonSet;
use crate::tree::Tree;
use crate::{PhyloError, TreeCollection};
use std::io::BufRead;

/// How the reader responds to a malformed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestPolicy {
    /// Abort on the first error (the historical behaviour), with the error's
    /// byte offset made absolute within the stream.
    Strict,
    /// Skip malformed records, resynchronizing at the next `;`-terminated
    /// record boundary, until more than `max_errors` records have failed.
    Lenient {
        /// Maximum number of records that may be skipped before the reader
        /// gives up with [`PhyloError::ErrorLimit`].
        max_errors: usize,
    },
}

impl IngestPolicy {
    /// Lenient with an unbounded error budget.
    pub fn lenient() -> Self {
        IngestPolicy::Lenient {
            max_errors: usize::MAX,
        }
    }
}

/// One skipped record: where it was and why it failed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordError {
    /// 0-based index of the record in the stream (counting both accepted
    /// and skipped records).
    pub record: usize,
    /// 1-based line number of the error position.
    pub line: usize,
    /// Absolute byte offset of the error position within the stream.
    pub byte: usize,
    /// The underlying failure.
    pub error: PhyloError,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "record {} (line {}, byte {}): {}",
            self.record, self.line, self.byte, self.error
        )
    }
}

/// Accumulated outcome of an ingestion run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Number of records parsed into trees.
    pub accepted: usize,
    /// Every skipped record, in stream order.
    pub skipped: Vec<RecordError>,
}

impl IngestReport {
    /// Total records seen (accepted + skipped).
    pub fn records(&self) -> usize {
        self.accepted + self.skipped.len()
    }

    /// Whether any record was skipped — the "partial success" condition.
    pub fn is_partial(&self) -> bool {
        !self.skipped.is_empty()
    }

    /// One-line human summary, e.g. for a stderr report.
    pub fn summary(&self) -> String {
        format!(
            "ingest: {} records, {} accepted, {} skipped",
            self.records(),
            self.accepted,
            self.skipped.len()
        )
    }
}

/// Streaming Newick reader with absolute positions and error recovery.
///
/// Like [`NewickStream`](crate::newick::NewickStream) this yields one tree
/// at a time from any `BufRead` source in O(one record) memory, but it also
/// tracks the absolute byte offset and line number of every record so errors
/// point into the *file*, not into an anonymous record, and it supports
/// lenient recovery via [`IngestPolicy`].
pub struct NewickReader<R: BufRead> {
    reader: R,
    taxa_policy: TaxaPolicy,
    policy: IngestPolicy,
    buf: Vec<u8>,
    done: bool,
    /// Absolute byte offset of the next unread byte.
    offset: usize,
    /// 1-based line number at `offset`.
    line: usize,
    report: IngestReport,
}

impl<R: BufRead> NewickReader<R> {
    /// Create a reader over `reader` with the given policies.
    pub fn new(reader: R, taxa_policy: TaxaPolicy, policy: IngestPolicy) -> Self {
        NewickReader {
            reader,
            taxa_policy,
            policy,
            buf: Vec::new(),
            done: false,
            offset: 0,
            line: 1,
            report: IngestReport::default(),
        }
    }

    /// The report accumulated so far (complete once `next_tree` returns
    /// `Ok(None)`).
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Consume the reader, returning the final report.
    pub fn into_report(self) -> IngestReport {
        self.report
    }

    /// Read the next tree, resolving labels against `taxa`.
    ///
    /// Returns `Ok(None)` at end of input. Under `Lenient`, malformed
    /// records are recorded in the report and skipped; under `Strict`, the
    /// first failure is returned with its byte offset made absolute.
    pub fn next_tree(&mut self, taxa: &mut TaxonSet) -> Result<Option<Tree>, PhyloError> {
        loop {
            let Some((start_offset, start_line, complete)) = self.next_record()? else {
                return Ok(None);
            };
            let mark = taxa.len();
            let parsed = if !complete {
                Err(PhyloError::parse(
                    self.buf.len(),
                    "unterminated tree at end of input (missing ';')",
                ))
            } else {
                match std::str::from_utf8(&self.buf) {
                    Ok(text) => parse_newick(text, taxa, self.taxa_policy),
                    Err(e) => Err(PhyloError::parse(
                        e.valid_up_to(),
                        "invalid UTF-8 in newick stream",
                    )),
                }
            };
            match parsed {
                Ok(tree) => {
                    self.report.accepted += 1;
                    return Ok(Some(tree));
                }
                Err(error) => {
                    // A failed record must leave no trace in the namespace.
                    taxa.truncate(mark);
                    let rel = match &error {
                        PhyloError::Parse { offset, .. } => *offset,
                        _ => 0,
                    }
                    .min(self.buf.len());
                    let byte = start_offset + rel;
                    let line = start_line + self.buf[..rel].iter().filter(|&&b| b == b'\n').count();
                    match self.policy {
                        IngestPolicy::Strict => {
                            return Err(match error {
                                PhyloError::Parse { message, .. } => PhyloError::Parse {
                                    offset: byte,
                                    message,
                                },
                                other => other,
                            });
                        }
                        IngestPolicy::Lenient { max_errors } => {
                            let record = self.report.records();
                            self.report.skipped.push(RecordError {
                                record,
                                line,
                                byte,
                                error,
                            });
                            if self.report.skipped.len() > max_errors {
                                return Err(PhyloError::ErrorLimit {
                                    errors: self.report.skipped.len(),
                                    limit: max_errors,
                                });
                            }
                            if !complete {
                                // The bad record was the unterminated tail.
                                return Ok(None);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Fill `self.buf` with the next `;`-terminated record, returning its
    /// absolute start offset, start line, and whether the terminator was
    /// found (`false` means the stream ended mid-record). `Ok(None)` means
    /// clean end of input.
    fn next_record(&mut self) -> Result<Option<(usize, usize, bool)>, PhyloError> {
        if self.done {
            return Ok(None);
        }
        self.buf.clear();
        // Skip inter-record whitespace so start positions point at content.
        loop {
            let (skip, len) = {
                let chunk = self.reader.fill_buf().map_err(|e| {
                    PhyloError::parse(self.offset, format!("I/O error reading newick stream: {e}"))
                })?;
                if chunk.is_empty() {
                    self.done = true;
                    return Ok(None);
                }
                let mut skip = 0;
                for &b in chunk {
                    if !b.is_ascii_whitespace() {
                        break;
                    }
                    if b == b'\n' {
                        self.line += 1;
                    }
                    skip += 1;
                }
                (skip, chunk.len())
            };
            self.offset += skip;
            self.reader.consume(skip);
            if skip < len {
                break;
            }
        }

        let start_offset = self.offset;
        let start_line = self.line;
        let mut in_quote = false;
        let mut comment_depth = 0usize;
        loop {
            let (consumed, complete, newlines, empty) = {
                let chunk = self.reader.fill_buf().map_err(|e| {
                    PhyloError::parse(self.offset, format!("I/O error reading newick stream: {e}"))
                })?;
                if chunk.is_empty() {
                    (0, false, 0, true)
                } else {
                    let mut consumed = chunk.len();
                    let mut complete = false;
                    for (i, &b) in chunk.iter().enumerate() {
                        self.buf.push(b);
                        if in_quote {
                            if b == b'\'' {
                                in_quote = false; // '' escape re-enters on next quote
                            }
                        } else if comment_depth > 0 {
                            match b {
                                b'[' => comment_depth += 1,
                                b']' => comment_depth -= 1,
                                _ => {}
                            }
                        } else {
                            match b {
                                b'\'' => in_quote = true,
                                b'[' => comment_depth = 1,
                                b';' => {
                                    consumed = i + 1;
                                    complete = true;
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                    let newlines = chunk[..consumed].iter().filter(|&&b| b == b'\n').count();
                    (consumed, complete, newlines, false)
                }
            };
            if empty {
                self.done = true;
                return Ok(Some((start_offset, start_line, false)));
            }
            self.offset += consumed;
            self.line += newlines;
            self.reader.consume(consumed);
            if complete {
                return Ok(Some((start_offset, start_line, true)));
            }
        }
    }
}

/// Read every tree from `reader` into a fresh [`TreeCollection`] under the
/// given policy, returning the collection together with its [`IngestReport`].
pub fn read_collection<R: BufRead>(
    reader: R,
    policy: IngestPolicy,
) -> Result<(TreeCollection, IngestReport), PhyloError> {
    let mut taxa = TaxonSet::new();
    let mut stream = NewickReader::new(reader, TaxaPolicy::Grow, policy);
    let mut trees = Vec::new();
    while let Some(t) = stream.next_tree(&mut taxa)? {
        trees.push(t);
    }
    Ok((TreeCollection { taxa, trees }, stream.into_report()))
}

/// Read every tree from `reader` against an existing namespace.
pub fn read_trees<R: BufRead>(
    reader: R,
    taxa: &mut TaxonSet,
    taxa_policy: TaxaPolicy,
    policy: IngestPolicy,
) -> Result<(Vec<Tree>, IngestReport), PhyloError> {
    let mut stream = NewickReader::new(reader, taxa_policy, policy);
    let mut trees = Vec::new();
    while let Some(t) = stream.next_tree(taxa)? {
        trees.push(t);
    }
    Ok((trees, stream.into_report()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write_newick;

    fn lenient() -> IngestPolicy {
        IngestPolicy::lenient()
    }

    #[test]
    fn clean_input_matches_strict_stream() {
        let data = "((A,B),(C,D));\n((A,C),(B,D)); [note] ((A,D),(B,C));";
        let (coll, report) = read_collection(data.as_bytes(), IngestPolicy::Strict).unwrap();
        assert_eq!(coll.trees.len(), 3);
        assert_eq!(coll.taxa.len(), 4);
        assert_eq!(report.accepted, 3);
        assert!(!report.is_partial());
    }

    #[test]
    fn lenient_skips_malformed_records() {
        let data = "((A,B),(C,D));\n((A,C),(B,D);\n((A,D),(B,C));\n";
        let (coll, report) = read_collection(data.as_bytes(), lenient()).unwrap();
        assert_eq!(coll.trees.len(), 2);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.skipped.len(), 1);
        let skip = &report.skipped[0];
        assert_eq!(skip.record, 1);
        assert_eq!(skip.line, 2);
        assert!(matches!(skip.error, PhyloError::Parse { .. }));
    }

    #[test]
    fn lenient_output_identical_to_precleaned_input() {
        let dirty = "((A,B),(C,D));\n(A,,B);\n((A,C),(B,D));\n(Zed,;\n((A,D),(B,C));\n";
        let clean = "((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));\n";
        let (dc, dr) = read_collection(dirty.as_bytes(), lenient()).unwrap();
        let (cc, cr) = read_collection(clean.as_bytes(), IngestPolicy::Strict).unwrap();
        assert_eq!(dr.skipped.len(), 2);
        assert!(!cr.is_partial());
        // Namespace rollback makes both runs bit-for-bit identical.
        assert_eq!(dc.taxa.len(), cc.taxa.len());
        let d: Vec<String> = dc.trees.iter().map(|t| write_newick(t, &dc.taxa)).collect();
        let c: Vec<String> = cc.trees.iter().map(|t| write_newick(t, &cc.taxa)).collect();
        assert_eq!(d, c);
    }

    #[test]
    fn skipped_record_rolls_back_interned_taxa() {
        // "Zed" appears only in the broken record and must not survive.
        let data = "((A,B),(C,D));\n(Zed,;\n((A,C),(B,D));\n";
        let (coll, report) = read_collection(data.as_bytes(), lenient()).unwrap();
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(coll.taxa.len(), 4);
        assert!(coll.taxa.get("Zed").is_none());
    }

    #[test]
    fn strict_errors_carry_absolute_offsets() {
        let data = "((A,B),(C,D));\n((A,C),(B,D);\n";
        let err = read_collection(data.as_bytes(), IngestPolicy::Strict).unwrap_err();
        let PhyloError::Parse { offset, .. } = err else {
            panic!("expected parse error, got {err:?}");
        };
        // The bad record starts at byte 15; its error offset is inside it.
        assert!(offset >= 15, "offset {offset} should be absolute");
        assert!(offset <= data.len());
    }

    #[test]
    fn error_limit_is_enforced() {
        let data = "(A,;\n(B,;\n(C,;\n(A,B);\n";
        let err =
            read_collection(data.as_bytes(), IngestPolicy::Lenient { max_errors: 2 }).unwrap_err();
        assert_eq!(
            err,
            PhyloError::ErrorLimit {
                errors: 3,
                limit: 2
            }
        );
    }

    #[test]
    fn max_errors_zero_behaves_like_counted_strict() {
        let data = "(A,B);\n(A,;\n";
        let err =
            read_collection(data.as_bytes(), IngestPolicy::Lenient { max_errors: 0 }).unwrap_err();
        assert!(matches!(
            err,
            PhyloError::ErrorLimit {
                errors: 1,
                limit: 0
            }
        ));
    }

    #[test]
    fn unterminated_tail_is_skipped_leniently() {
        let data = "((A,B),(C,D));\n((A,C),(B,D))";
        let (coll, report) = read_collection(data.as_bytes(), lenient()).unwrap();
        assert_eq!(coll.trees.len(), 1);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0]
            .error
            .to_string()
            .contains("unterminated tree"));
    }

    #[test]
    fn unterminated_tail_is_strict_error_with_in_bounds_offset() {
        let data = "((A,B),(C,D));\n((A,C),(B,D))";
        let err = read_collection(data.as_bytes(), IngestPolicy::Strict).unwrap_err();
        let PhyloError::Parse { offset, .. } = err else {
            panic!("expected parse error, got {err:?}");
        };
        assert!(offset <= data.len());
    }

    #[test]
    fn semicolons_in_quotes_and_comments_do_not_split() {
        let data = "('a;b',C);[x;y](C,'a;b');";
        let (coll, report) = read_collection(data.as_bytes(), lenient()).unwrap();
        assert_eq!(coll.trees.len(), 2);
        assert_eq!(coll.taxa.len(), 2);
        assert!(!report.is_partial());
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let data = "(A,B);\n\n\n(C,;\n(A,C);\n";
        let (_, report) = read_collection(data.as_bytes(), lenient()).unwrap();
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].line, 4);
    }

    #[test]
    fn nul_bytes_and_binary_junk_are_survivable() {
        let data = b"((A,B),(C,D));\n\x00\xff\xfe;\n((A,C),(B,D));\n";
        let (coll, report) = read_collection(&data[..], lenient()).unwrap();
        assert_eq!(coll.trees.len(), 2);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn report_summary_mentions_counts() {
        let data = "(A,B);\n(A,;\n(A,C);\n";
        let (_, report) = read_collection(data.as_bytes(), lenient()).unwrap();
        let s = report.summary();
        assert!(s.contains("3 records"), "{s}");
        assert!(s.contains("2 accepted"), "{s}");
        assert!(s.contains("1 skipped"), "{s}");
    }

    #[test]
    fn empty_and_whitespace_inputs_yield_nothing() {
        for data in ["", "   \n\t \n"] {
            let (coll, report) = read_collection(data.as_bytes(), lenient()).unwrap();
            assert!(coll.trees.is_empty());
            assert_eq!(report.records(), 0);
        }
    }

    #[test]
    fn require_policy_errors_are_recoverable_too() {
        let mut taxa = TaxonSet::new();
        taxa.intern("A");
        taxa.intern("B");
        let data = "(A,B);\n(A,X);\n(B,A);\n";
        let (trees, report) =
            read_trees(data.as_bytes(), &mut taxa, TaxaPolicy::Require, lenient()).unwrap();
        assert_eq!(trees.len(), 2);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(
            report.skipped[0].error,
            PhyloError::UnknownTaxon("X".into())
        );
        assert_eq!(taxa.len(), 2);
    }
}
