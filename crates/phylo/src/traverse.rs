//! Allocation-light traversal iterators.
//!
//! [`Tree::postorder`]/[`Tree::preorder`] return materialized `Vec`s, which
//! the hot paths want anyway (they iterate the full order at least once).
//! The iterators here serve callers that may stop early or only need a
//! slice of the tree: ancestors walks, level-order, and the edge stream.

use crate::tree::{NodeId, Tree};

/// Iterator over `(parent, child)` edges in preorder of the child.
pub struct Edges<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Edges<'a> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let child = self.stack.pop()?;
        for &c in self.tree.children(child).iter().rev() {
            self.stack.push(c);
        }
        let parent = self.tree.parent(child)?;
        Some((parent, child))
    }
}

/// Iterator walking from a node up to the root.
pub struct Ancestors<'a> {
    tree: &'a Tree,
    current: Option<NodeId>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.current?;
        self.current = self.tree.parent(n);
        Some(n)
    }
}

/// Breadth-first (level order) iterator.
pub struct LevelOrder<'a> {
    tree: &'a Tree,
    queue: std::collections::VecDeque<NodeId>,
}

impl<'a> Iterator for LevelOrder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.queue.pop_front()?;
        self.queue.extend(self.tree.children(n));
        Some(n)
    }
}

impl Tree {
    /// Stream of `(parent, child)` edges. The virtual "root edge" is not an
    /// edge, so a tree with `k` reachable nodes yields `k - 1` pairs.
    pub fn edges(&self) -> Edges<'_> {
        let mut stack = Vec::new();
        if let Some(root) = self.root() {
            // Seed with root's children; the root itself has no parent edge.
            for &c in self.children(root).iter().rev() {
                stack.push(c);
            }
        }
        Edges { tree: self, stack }
    }

    /// Walk from `node` (inclusive) up to the root (inclusive).
    pub fn ancestors(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            current: Some(node),
        }
    }

    /// Breadth-first traversal from the root.
    pub fn level_order(&self) -> LevelOrder<'_> {
        let mut queue = std::collections::VecDeque::new();
        if let Some(root) = self.root() {
            queue.push_back(root);
        }
        LevelOrder { tree: self, queue }
    }

    /// Depth (number of edges from the root) of `node`.
    pub fn depth(&self, node: NodeId) -> usize {
        self.ancestors(node).count() - 1
    }

    /// Sum of branch lengths from `node` to the root (missing lengths count
    /// as zero).
    pub fn root_distance(&self, node: NodeId) -> f64 {
        self.ancestors(node)
            .map(|n| self.length(n).unwrap_or(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxa::TaxonSet;

    fn caterpillar(n: usize) -> (Tree, TaxonSet, Vec<NodeId>) {
        // (((t0,t1),t2),t3)... a ladder; returns leaves in taxon order.
        let taxa = TaxonSet::with_numbered("t", n);
        let (mut t, root) = Tree::with_root();
        let mut leaves = Vec::new();
        let mut spine = root;
        // build top-down: root has child (spine) and leaf t_{n-1}, etc.
        for i in (2..n).rev() {
            let leaf = t.add_leaf(spine, crate::TaxonId(i as u32));
            leaves.push(leaf);
            spine = t.add_child(spine);
        }
        leaves.push(t.add_leaf(spine, crate::TaxonId(1)));
        leaves.push(t.add_leaf(spine, crate::TaxonId(0)));
        leaves.reverse();
        let _ = taxa.len();
        (t, taxa, leaves)
    }

    #[test]
    fn edges_count_is_nodes_minus_one() {
        let (t, _, _) = caterpillar(6);
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges.len(), t.num_nodes() - 1);
        for (p, c) in edges {
            assert_eq!(t.parent(c), Some(p));
        }
    }

    #[test]
    fn ancestors_ends_at_root() {
        let (t, _, leaves) = caterpillar(5);
        let chain: Vec<_> = t.ancestors(leaves[0]).collect();
        assert_eq!(chain.first(), Some(&leaves[0]));
        assert_eq!(chain.last().copied(), t.root());
        // deepest leaf in a 5-caterpillar: depth n-2 = 3 + 1 = 4 nodes above
        assert_eq!(t.depth(leaves[0]), chain.len() - 1);
    }

    #[test]
    fn level_order_covers_all_nodes_once() {
        let (t, _, _) = caterpillar(7);
        let seen: Vec<_> = t.level_order().collect();
        assert_eq!(seen.len(), t.num_nodes());
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len());
        assert_eq!(seen[0], t.root().unwrap());
    }

    #[test]
    fn root_distance_sums_lengths() {
        let mut taxa = TaxonSet::new();
        let a = taxa.intern("A");
        let (mut t, root) = Tree::with_root();
        let mid = t.add_child(root);
        t.set_length(mid, Some(1.5));
        let leaf = t.add_leaf(mid, a);
        t.set_length(leaf, Some(2.0));
        assert_eq!(t.root_distance(leaf), 3.5);
        assert_eq!(t.root_distance(root), 0.0);
    }

    #[test]
    fn empty_tree_traversals() {
        let t = Tree::new();
        assert_eq!(t.edges().count(), 0);
        assert_eq!(t.level_order().count(), 0);
    }
}
