//! Phylogenetic tree substrate for the BFHRF workspace.
//!
//! This crate plays the role Dendropy plays for the paper's Python
//! implementation: it owns the tree data model, Newick I/O, taxon
//! namespaces, and bipartition (bitmask) extraction. Everything downstream —
//! the BFHRF algorithm, the baselines, the simulators — is built on these
//! types.
//!
//! # Data model
//!
//! * [`TaxonSet`] — an interned, ordered namespace of taxon labels. Taxa are
//!   assigned consecutive [`TaxonId`]s in insertion order; the id doubles as
//!   the taxon's bit position in bipartition encodings (taxon 0 is bit 0,
//!   the paper's "species A").
//! * [`Tree`] — an arena-allocated rooted tree whose leaves carry
//!   [`TaxonId`]s. Unrooted semantics (what RF is defined over) live at the
//!   bipartition level: two rootings of the same unrooted tree produce the
//!   same bipartition set.
//! * [`Bipartition`] — a canonicalized leaf-set bitmask: the side containing
//!   taxon 0 is stored as the set bits, exactly Dendropy's normalization
//!   used in the paper's examples.
//!
//! # Example
//!
//! ```
//! use phylo::{TaxonSet, parse_newick, TaxaPolicy};
//!
//! let mut taxa = TaxonSet::new();
//! let t1 = parse_newick("((A,B),(C,D));", &mut taxa, TaxaPolicy::Grow).unwrap();
//! let t2 = parse_newick("((D,B),(C,A));", &mut taxa, TaxaPolicy::Require).unwrap();
//!
//! // Non-trivial bipartitions: one internal edge each.
//! let b1 = t1.bipartitions(&taxa);
//! let b2 = t2.bipartitions(&taxa);
//! assert_eq!(b1.len(), 1);
//! assert_eq!(b1[0].bits().to_string(), "0011"); // {A,B} | {C,D}
//! assert_eq!(b2[0].bits().to_string(), "0101"); // {A,C} | {B,D}
//! ```

pub mod bipartition;
pub mod edit;
pub mod error;
pub mod ingest;
pub mod newick;
pub mod reroot;
pub mod restrict;
pub mod scratch;
pub mod stats;
pub mod taxa;
pub mod traverse;
pub mod tree;

pub use bipartition::{Bipartition, BipartitionSet};
pub use error::PhyloError;
pub use ingest::{IngestPolicy, IngestReport, NewickReader, RecordError};
pub use newick::{
    parse_newick, parse_newick_readonly, read_trees_from_str, write_newick, TaxaPolicy,
};
pub use scratch::{BipartitionScratch, SplitBatch};
pub use taxa::{TaxonId, TaxonSet};
pub use tree::{NodeId, Tree};

/// A tree collection sharing one taxon namespace — the paper's `R` or `Q`.
#[derive(Debug, Clone, Default)]
pub struct TreeCollection {
    /// The shared namespace; bipartitions of every member are encoded over it.
    pub taxa: TaxonSet,
    /// The member trees, in input order.
    pub trees: Vec<Tree>,
}

impl TreeCollection {
    /// Parse a collection from newline/semicolon-separated Newick text,
    /// growing a fresh namespace as new labels appear.
    pub fn parse(text: &str) -> Result<Self, PhyloError> {
        let mut taxa = TaxonSet::new();
        let trees = read_trees_from_str(text, &mut taxa, TaxaPolicy::Grow)?;
        Ok(TreeCollection { taxa, trees })
    }

    /// Number of member trees (`r` in the paper).
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the collection has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}
