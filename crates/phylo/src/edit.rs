//! Deterministic topology edits: NNI and SPR.
//!
//! The simulation crate drives these with random choices to generate tree
//! collections of controlled spread around a model tree (the structure the
//! paper's coalescent datasets have). The operations themselves are
//! deterministic given their arguments, which keeps this crate RNG-free and
//! the edits unit-testable.

use crate::tree::{NodeId, Tree};
use crate::PhyloError;

impl Tree {
    /// Internal edges eligible for NNI: `(parent, child)` pairs where
    /// `child` is an internal, non-root node.
    ///
    /// Edges whose parent is a **bifurcating root** are excluded: the two
    /// root edges represent one unrooted edge, and "swapping" a subtree
    /// with the other root child is a rotation that leaves the unrooted
    /// topology unchanged.
    pub fn nni_edges(&self) -> Vec<(NodeId, NodeId)> {
        let bifurcating_root = self.root().filter(|&r| self.children(r).len() == 2);
        self.edges()
            .filter(|&(p, c)| !self.is_leaf(c) && Some(p) != bifurcating_root)
            .collect()
    }

    /// Nearest-neighbour interchange across the edge `(parent, child)`:
    /// swaps `child`'s `child_idx`-th child with `parent`'s `sib_idx`-th
    /// other child (index into the sibling list excluding `child` itself).
    ///
    /// On a binary tree each internal edge admits the two classic NNI
    /// rearrangements: `(child_idx, sib_idx)` ∈ {(0,0), (1,0)}.
    pub fn nni(
        &mut self,
        parent: NodeId,
        child: NodeId,
        child_idx: usize,
        sib_idx: usize,
    ) -> Result<(), PhyloError> {
        if self.parent(child) != Some(parent) {
            return Err(PhyloError::Structure(
                "nni: (parent, child) is not an edge".into(),
            ));
        }
        if self.is_leaf(child) {
            return Err(PhyloError::Structure("nni: child must be internal".into()));
        }
        let grandchildren = self.children(child);
        let &moved_down = grandchildren.get(child_idx).ok_or_else(|| {
            PhyloError::Structure(format!("nni: child index {child_idx} out of range"))
        })?;
        let siblings: Vec<NodeId> = self
            .children(parent)
            .iter()
            .copied()
            .filter(|&c| c != child)
            .collect();
        let &moved_up = siblings.get(sib_idx).ok_or_else(|| {
            PhyloError::Structure(format!("nni: sibling index {sib_idx} out of range"))
        })?;
        self.detach_child(child, moved_down);
        self.detach_child(parent, moved_up);
        self.attach_child(parent, moved_down);
        self.attach_child(child, moved_up);
        Ok(())
    }

    /// Subtree prune and regraft: detach the subtree rooted at `prune`,
    /// then insert it in the middle of the edge above `graft_child` via a
    /// fresh attachment node.
    ///
    /// Both nodes must be non-root; `graft_child` must not lie inside the
    /// pruned subtree (it would disconnect the tree). The tree is left
    /// without unifurcations; node ids remain valid (the arena only grows).
    pub fn spr(&mut self, prune: NodeId, graft_child: NodeId) -> Result<(), PhyloError> {
        let root = self.root().ok_or(PhyloError::Empty("tree"))?;
        if prune == root || graft_child == root {
            return Err(PhyloError::Structure("spr: root cannot take part".into()));
        }
        if self.ancestors(graft_child).any(|a| a == prune) {
            return Err(PhyloError::Structure(
                "spr: graft target lies inside the pruned subtree".into(),
            ));
        }
        let old_parent = self.parent(prune).expect("non-root");
        self.detach_child(old_parent, prune);
        // The old parent may now be unary (or the graft target's parent may
        // change during suppression), so re-resolve the graft edge after
        // suppressing: record the graft child's identity, which survives.
        self.suppress_unifurcations();
        if self
            .ancestors(graft_child)
            .all(|a| a != self.root().unwrap())
        {
            // graft target was detached by suppression of a unary root —
            // re-resolve to the new root's position by grafting at root edge
            return Err(PhyloError::Structure(
                "spr: graft target no longer reachable; choose another edge".into(),
            ));
        }
        let graft_parent = self.parent(graft_child).ok_or_else(|| {
            PhyloError::Structure("spr: graft target became the root; choose another edge".into())
        })?;
        self.detach_child(graft_parent, graft_child);
        let mid = self.add_child(graft_parent);
        self.attach_child(mid, graft_child);
        self.attach_child(mid, prune);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::{parse_newick, TaxaPolicy};
    use crate::taxa::TaxonSet;

    fn setup(s: &str) -> (Tree, TaxonSet) {
        let mut taxa = TaxonSet::new();
        let t = parse_newick(s, &mut taxa, TaxaPolicy::Grow).unwrap();
        (t, taxa)
    }

    fn split_strings(t: &Tree, taxa: &TaxonSet) -> Vec<String> {
        let mut v: Vec<String> = t.bipartitions(taxa).iter().map(|b| b.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn nni_produces_valid_different_binary_tree() {
        let (mut t, taxa) = setup("((((A,B),C),D),((E,F),(G,H)));");
        let before = split_strings(&t, &taxa);
        let (p, c) = t.nni_edges()[0];
        t.nni(p, c, 0, 0).unwrap();
        assert!(t.validate(&taxa).is_ok());
        assert!(t.is_binary());
        assert_eq!(t.leaf_count(), 8);
        let after = split_strings(&t, &taxa);
        assert_ne!(before, after, "NNI must change the topology");
    }

    #[test]
    fn nni_changes_exactly_one_split_on_binary_trees() {
        let (mut t, taxa) = setup("((((A,B),C),D),((E,F),(G,H)));");
        let before = split_strings(&t, &taxa);
        // pick an edge whose child is internal and non-root
        let (p, c) = t.nni_edges()[1];
        t.nni(p, c, 1, 0).unwrap();
        let after = split_strings(&t, &taxa);
        let removed = before.iter().filter(|s| !after.contains(s)).count();
        let added = after.iter().filter(|s| !before.contains(s)).count();
        assert_eq!((removed, added), (1, 1), "NNI is an RF-2 move");
    }

    #[test]
    fn nni_rejects_bad_arguments() {
        let (mut t, _) = setup("((A,B),(C,D));");
        let root = t.root().unwrap();
        let left = t.children(root)[0];
        let leaf = t.children(left)[0];
        assert!(t.nni(root, leaf, 0, 0).is_err(), "leaf child");
        assert!(t.nni(left, root, 0, 0).is_err(), "not an edge");
        assert!(t.nni(root, left, 5, 0).is_err(), "child index range");
        assert!(t.nni(root, left, 0, 5).is_err(), "sibling index range");
    }

    #[test]
    fn spr_moves_subtree_and_stays_valid() {
        let (mut t, taxa) = setup("((((A,B),C),D),((E,F),(G,H)));");
        // prune the (A,B) cherry, regraft above leaf G
        let leaves = t.leaves();
        let a = leaves
            .iter()
            .copied()
            .find(|&l| t.taxon(l) == Some(taxa.get("A").unwrap()))
            .unwrap();
        let cherry = t.parent(a).unwrap();
        let g = leaves
            .iter()
            .copied()
            .find(|&l| t.taxon(l) == Some(taxa.get("G").unwrap()))
            .unwrap();
        t.spr(cherry, g).unwrap();
        let t = t.compacted();
        assert!(t.validate(&taxa).is_ok());
        assert!(t.is_binary());
        assert_eq!(t.leaf_count(), 8);
        // A and B are now adjacent to G: the split {A,B,G} must exist
        let want = phylo_bitset::Bits::from_indices(
            taxa.len(),
            ["A", "B", "G"].iter().map(|l| taxa.get(l).unwrap().index()),
        );
        let has = t.bipartitions(&taxa).iter().any(|b| {
            b.bits() == &want
                || b.bits()
                    == &{
                        let mut c = want.clone();
                        c.complement();
                        c
                    }
        });
        assert!(has, "regrafted cherry must sit next to G");
    }

    #[test]
    fn spr_rejects_graft_inside_pruned_subtree() {
        let (mut t, taxa) = setup("((((A,B),C),D),((E,F),(G,H)));");
        let a = t
            .leaves()
            .into_iter()
            .find(|&l| t.taxon(l) == Some(taxa.get("A").unwrap()))
            .unwrap();
        let cherry = t.parent(a).unwrap();
        assert!(t.spr(cherry, a).is_err());
        assert!(t.spr(cherry, cherry).is_err());
    }

    #[test]
    fn spr_rejects_root() {
        let (mut t, _) = setup("((A,B),(C,D));");
        let root = t.root().unwrap();
        let left = t.children(root)[0];
        assert!(t.spr(root, left).is_err());
        assert!(t.spr(left, root).is_err());
    }
}
