//! Error types for the phylo substrate.

use std::fmt;

/// Errors produced by tree construction, Newick parsing, and taxon lookups.
///
/// Parsing real collections (the paper's Insect data "could not be read" by
/// HashRF) is exactly where tooling falls over, so every failure mode is a
/// typed variant with enough context to locate the offending input.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyloError {
    /// Newick syntax error with byte offset into the input string.
    Parse {
        /// Byte offset where the error was detected.
        offset: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A label was encountered that is not in the taxon namespace while the
    /// parse policy forbids growing it.
    UnknownTaxon(String),
    /// The same taxon label appears on two leaves of one tree.
    DuplicateTaxon(String),
    /// A structural invariant of the tree was violated.
    Structure(String),
    /// Operation attempted on an empty tree or collection.
    Empty(&'static str),
    /// Two objects that must share a taxon namespace do not.
    TaxaMismatch {
        /// Expected namespace size.
        expected: usize,
        /// Found namespace size.
        found: usize,
    },
    /// Lenient ingestion gave up: more records failed than the error
    /// budget allows.
    ErrorLimit {
        /// Number of malformed records seen so far.
        errors: usize,
        /// The configured maximum.
        limit: usize,
    },
}

impl PhyloError {
    /// Construct a parse error at `offset`.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        PhyloError::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for PhyloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyloError::Parse { offset, message } => {
                // Binary-record errors arrive through the wire crate with a
                // "wire:" prefix; keep that label instead of claiming Newick.
                if let Some(detail) = message.strip_prefix("wire: ") {
                    write!(f, "binary record parse error at byte {offset}: {detail}")
                } else {
                    write!(f, "newick parse error at byte {offset}: {message}")
                }
            }
            PhyloError::UnknownTaxon(label) => {
                write!(f, "unknown taxon label {label:?} (namespace is closed)")
            }
            PhyloError::DuplicateTaxon(label) => {
                write!(f, "duplicate taxon label {label:?} within one tree")
            }
            PhyloError::Structure(msg) => write!(f, "tree structure error: {msg}"),
            PhyloError::Empty(what) => write!(f, "operation on empty {what}"),
            PhyloError::TaxaMismatch { expected, found } => write!(
                f,
                "taxon namespace mismatch: expected {expected} taxa, found {found}"
            ),
            PhyloError::ErrorLimit { errors, limit } => write!(
                f,
                "lenient ingestion aborted: {errors} malformed records exceed the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for PhyloError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = PhyloError::parse(17, "unexpected ')'");
        assert!(e.to_string().contains("byte 17"));
        assert!(e.to_string().contains("unexpected ')'"));
        assert!(PhyloError::UnknownTaxon("Homo".into())
            .to_string()
            .contains("Homo"));
        assert!(PhyloError::TaxaMismatch {
            expected: 4,
            found: 5
        }
        .to_string()
        .contains("expected 4"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PhyloError::Empty("tree"), PhyloError::Empty("tree"));
        assert_ne!(
            PhyloError::UnknownTaxon("A".into()),
            PhyloError::UnknownTaxon("B".into())
        );
    }
}
