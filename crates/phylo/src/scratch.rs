//! Zero-allocation bipartition extraction into a caller-owned arena.
//!
//! [`Tree::bipartitions`] allocates one [`Bits`] per node (the subtree
//! masks), a seen-set for deduplication, and one `Bipartition` per emitted
//! split. That is fine for one tree, but the BFH build and batched RF
//! queries extract B(T) for *thousands* of trees in a row, and the per-tree
//! allocations dominate. [`BipartitionScratch`] is the reusable alternative:
//! a flat `u64` arena sized `num_nodes × words` plus a handful of index
//! buffers, all grown once and reused across trees. Extraction writes
//! subtree masks in place and hands each canonical split to a visitor as a
//! **borrowed** word slice — no allocation on the hot path at all. The
//! in-place pass is word-striped: child masks OR into their parent and
//! popcounts accumulate via the chunked kernels in `phylo_bitset`
//! ([`union_words`]/[`popcount_words`]), and canonical orientation is a
//! branch-free conditional flip ([`orient_words`]) instead of a
//! ~50/50-unpredictable branch per split (the scalar per-word twin is kept
//! as `for_each_split_scalar` for ablation and equivalence tests). Callers
//! that need an owned key (a fresh map insert) rebuild a [`Bits`] from the
//! slice; callers that only probe (queries) pass the slice straight to the
//! borrowed-key lookups in `phylo_bitset`.
//!
//! # Equivalence with `Tree::bipartitions`
//!
//! The visitor sees exactly the canonical masks `bipartitions` would
//! return, in the same (postorder) order. The seen-set is replaced by a
//! structural rule — two non-root internal nodes yield the same canonical
//! mask only if
//!
//! 1. one is an ancestor of the other through nodes of equal leaf count
//!    (unary chains, or interior nodes whose other children carry no taxa):
//!    skipped by testing `ones(child) == ones(node)` — since a child's mask
//!    is a subset of its parent's, equal popcount means equal mask, and the
//!    chain-*bottom* (first in postorder, the one `bipartitions` keeps) has
//!    no such child; or
//! 2. their masks are complements inside the leafset: only possible when
//!    the root has exactly two leaf-bearing children whose leaf counts sum
//!    to the whole leafset, in which case the duplicate is the chain-bottom
//!    under the *second* such child — computed once per tree and skipped.

use crate::taxa::TaxonSet;
use crate::tree::{NodeId, Tree};
use phylo_bitset::{
    orient_words, popcount_words, split_hash128, union_words, words_for, Bits, WORD_BITS,
};

/// One query tree's canonical splits with their 128-bit hashes, borrowed
/// from the [`BipartitionScratch`] that extracted them.
///
/// Masks are packed contiguously at stride [`words`](Self::words) in visit
/// order; `hashes[i]` is `split_hash128` of `mask(i)`. Frozen probe tables
/// consume the whole batch in one pipelined loop instead of re-hashing
/// split by split.
#[derive(Debug, Clone, Copy)]
pub struct SplitBatch<'a> {
    words: usize,
    masks: &'a [u64],
    hashes: &'a [u128],
}

impl<'a> SplitBatch<'a> {
    /// Assemble a batch from caller-owned buffers: `masks` packed at stride
    /// `words` in split order, `hashes[i]` the `split_hash128` of mask `i`.
    /// Lets callers that cache extracted splits (benchmarks, repeated
    /// scoring of a fixed query set) re-enter the batched probe kernel
    /// without re-extracting.
    ///
    /// # Panics
    /// Panics if `masks.len() != hashes.len() * words`.
    pub fn from_parts(words: usize, masks: &'a [u64], hashes: &'a [u128]) -> SplitBatch<'a> {
        assert_eq!(
            masks.len(),
            hashes.len() * words,
            "masks must pack one stride-{words} mask per hash"
        );
        SplitBatch {
            words,
            masks,
            hashes,
        }
    }

    /// Number of splits in the batch (|B(T)|).
    #[inline]
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the query tree had no non-trivial splits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Words per mask (`words_for(n_taxa)`).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The `i`-th canonical mask as a word slice.
    #[inline]
    pub fn mask(&self, i: usize) -> &'a [u64] {
        &self.masks[i * self.words..(i + 1) * self.words]
    }

    /// The `i`-th mask's stable 128-bit split hash.
    #[inline]
    pub fn hash(&self, i: usize) -> u128 {
        self.hashes[i]
    }

    /// All hashes, in visit order.
    #[inline]
    pub fn hashes(&self) -> &'a [u128] {
        self.hashes
    }
}

/// Reusable arena for allocation-free bipartition extraction.
///
/// Create once, call [`for_each_split`](Self::for_each_split) per tree. All
/// buffers are retained between calls, so after the first (largest) tree no
/// further allocation happens.
#[derive(Debug, Default)]
pub struct BipartitionScratch {
    /// Subtree masks, node-major: node `i` owns `masks[i*words .. (i+1)*words]`.
    masks: Vec<u64>,
    /// Scratch for the flipped (complemented-within-leafset) orientation.
    canon: Vec<u64>,
    /// Per-node leaf count (popcount of the node's mask).
    ones: Vec<u32>,
    /// Reused postorder buffer.
    order: Vec<NodeId>,
    /// Reused traversal stack.
    stack: Vec<NodeId>,
    /// Batched canonical masks, packed at stride `words` (see
    /// [`Self::batch_splits`]).
    batch: Vec<u64>,
    /// 128-bit split hashes parallel to `batch`.
    hashes: Vec<u128>,
}

impl BipartitionScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Visit every non-trivial canonical bipartition mask of `tree`, encoded
    /// over `taxa`, as a borrowed word slice of length
    /// `words_for(taxa.len())`.
    ///
    /// The slice honors the canonical padding invariant and the visited
    /// multiset equals `tree.bipartitions(taxa)` (same masks, same order).
    /// The slice is only valid for the duration of the call; clone into a
    /// [`Bits`] (via [`Bits::from_words`]) to keep it.
    ///
    /// # Panics
    /// Panics if a leaf's taxon id is out of range for `taxa` (the same
    /// contract as [`Tree::bipartitions`]).
    pub fn for_each_split<F: FnMut(&[u64])>(&mut self, tree: &Tree, taxa: &TaxonSet, visit: F) {
        self.for_each_split_impl(tree, taxa, true, visit);
    }

    /// The scalar (per-word, branchy-orientation) twin of
    /// [`Self::for_each_split`]. Visits exactly the same masks in the same
    /// order; kept callable so the extraction ablation in `query_bench`
    /// and the vectorized-vs-scalar property tests can race and compare
    /// the two passes.
    #[doc(hidden)]
    pub fn for_each_split_scalar<F: FnMut(&[u64])>(
        &mut self,
        tree: &Tree,
        taxa: &TaxonSet,
        visit: F,
    ) {
        self.for_each_split_impl(tree, taxa, false, visit);
    }

    /// Shared extraction body. `vectorized` selects the word-striped
    /// kernels ([`union_words`]/[`popcount_words`]/[`orient_words`]) for
    /// the subtree-mask fill and the canonical-orientation emit; `false`
    /// keeps the original per-word loops with a branch per split. Both
    /// paths visit identical mask values in identical order.
    fn for_each_split_impl<F: FnMut(&[u64])>(
        &mut self,
        tree: &Tree,
        taxa: &TaxonSet,
        vectorized: bool,
        mut visit: F,
    ) {
        let Some(root) = tree.root() else { return };
        let n_bits = taxa.len();
        let words = words_for(n_bits);
        let nn = tree.num_nodes();

        // Reset the arena (memset; no reallocation once grown).
        self.masks.clear();
        self.masks.resize(nn * words, 0);
        self.ones.clear();
        self.ones.resize(nn, 0);
        self.canon.clear();
        self.canon.resize(words, 0);

        // Postorder into the reused buffer (same two-stack scheme as
        // `Tree::postorder`, so emission order matches `bipartitions`).
        self.order.clear();
        self.stack.clear();
        self.stack.push(root);
        while let Some(n) = self.stack.pop() {
            self.order.push(n);
            self.stack.extend_from_slice(tree.children(n));
        }
        self.order.reverse();

        // Fill masks and leaf counts bottom-up.
        for &n in &self.order {
            let ni = n.index();
            let base = ni * words;
            if let Some(t) = tree.taxon(n) {
                let b = t.index();
                assert!(
                    b < n_bits,
                    "taxon id {b} out of range for namespace of {n_bits}"
                );
                self.masks[base + b / WORD_BITS] |= 1u64 << (b % WORD_BITS);
            }
            for &c in tree.children(n) {
                let cb = c.index() * words;
                if vectorized {
                    let [dst, src] = self
                        .masks
                        .get_disjoint_mut([base..base + words, cb..cb + words])
                        .expect("parent and child arena rows are disjoint");
                    union_words(dst, src);
                } else {
                    for w in 0..words {
                        self.masks[base + w] |= self.masks[cb + w];
                    }
                }
            }
            self.ones[ni] = if vectorized {
                popcount_words(&self.masks[base..base + words])
            } else {
                self.masks[base..base + words]
                    .iter()
                    .map(|w| w.count_ones())
                    .sum()
            };
        }

        let root_base = root.index() * words;
        let n_leaves = self.ones[root.index()];
        if n_leaves < 4 {
            return; // no non-trivial splits possible
        }

        // Anchor: the lowest taxon present in this tree (not the namespace),
        // mirroring `Bipartition::new`'s `leafset.first_one()`.
        let anchor = self.masks[root_base..root_base + words]
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(wi, &w)| wi * WORD_BITS + w.trailing_zeros() as usize)
            .expect("n_leaves >= 4 implies a set bit");
        let (aw, ab) = (anchor / WORD_BITS, anchor % WORD_BITS);

        // Complement-duplicate (rule 2 above): with exactly two leaf-bearing
        // root children covering the leafset, the chain-bottom under the
        // second one repeats the first's canonical mask.
        let mut skip = usize::MAX;
        {
            let mut bearing: [Option<NodeId>; 2] = [None, None];
            let mut n_bearing = 0usize;
            for &c in tree.children(root) {
                if self.ones[c.index()] > 0 {
                    if n_bearing < 2 {
                        bearing[n_bearing] = Some(c);
                    }
                    n_bearing += 1;
                }
            }
            if n_bearing == 2 {
                let (s1, s2) = (bearing[0].unwrap(), bearing[1].unwrap());
                if self.ones[s1.index()] + self.ones[s2.index()] == n_leaves {
                    let mut b = s2;
                    'down: loop {
                        for &c in tree.children(b) {
                            if self.ones[c.index()] == self.ones[b.index()] {
                                b = c;
                                continue 'down;
                            }
                        }
                        break;
                    }
                    skip = b.index();
                }
            }
        }

        let hi = n_leaves - 2;
        for &n in &self.order {
            let ni = n.index();
            if ni == root.index() || tree.is_leaf(n) || ni == skip {
                continue;
            }
            let o = self.ones[ni];
            if o < 2 || o > hi {
                continue; // trivial
            }
            if tree.children(n).iter().any(|&c| self.ones[c.index()] == o) {
                continue; // ancestor-chain duplicate (rule 1)
            }
            let base = ni * words;
            if vectorized {
                // Branch-free orientation: anchor bit set → flip = 0 and
                // the mask copies through; clear → flip = !0 and the mask
                // complements inside the leafset (root ^ mask, equal to
                // root & !mask because the mask is a subset of the root's
                // leafset). The ~50/50 orientation branch becomes a data
                // dependency, and the copy is word-striped.
                let flip = ((self.masks[base + aw] >> ab) & 1).wrapping_sub(1);
                orient_words(
                    &mut self.canon[..words],
                    &self.masks[root_base..root_base + words],
                    &self.masks[base..base + words],
                    flip,
                );
                visit(&self.canon[..words]);
            } else if (self.masks[base + aw] >> ab) & 1 == 1 {
                visit(&self.masks[base..base + words]);
            } else {
                for w in 0..words {
                    self.canon[w] = self.masks[root_base + w] & !self.masks[base + w];
                }
                visit(&self.canon[..words]);
            }
        }
    }

    /// Extract every canonical split of `tree` **and** its 128-bit split
    /// hash in one post-order pass, returning a borrowed [`SplitBatch`].
    ///
    /// This is the batched-query front half of the frozen probe kernel: the
    /// masks land packed in the arena (child masks OR-combined in place, no
    /// per-split [`Bits`] allocation) and each is hashed exactly once while
    /// its words are still cache-hot. The batch stays valid until the next
    /// extraction call on this scratch.
    pub fn batch_splits(&mut self, tree: &Tree, taxa: &TaxonSet) -> SplitBatch<'_> {
        self.batch_splits_impl(tree, taxa, true)
    }

    /// The scalar-extraction twin of [`Self::batch_splits`] — identical
    /// batch contents through [`Self::for_each_split_scalar`], for the
    /// `query_bench` extraction ablation and equivalence tests.
    #[doc(hidden)]
    pub fn batch_splits_scalar(&mut self, tree: &Tree, taxa: &TaxonSet) -> SplitBatch<'_> {
        self.batch_splits_impl(tree, taxa, false)
    }

    fn batch_splits_impl(
        &mut self,
        tree: &Tree,
        taxa: &TaxonSet,
        vectorized: bool,
    ) -> SplitBatch<'_> {
        let words = words_for(taxa.len());
        // Move the batch buffers out so the extraction closure can fill
        // them while `self` is mutably borrowed by `for_each_split`.
        let mut batch = std::mem::take(&mut self.batch);
        let mut hashes = std::mem::take(&mut self.hashes);
        batch.clear();
        hashes.clear();
        self.for_each_split_impl(tree, taxa, vectorized, |w| {
            batch.extend_from_slice(w);
            hashes.push(split_hash128(w));
        });
        self.batch = batch;
        self.hashes = hashes;
        SplitBatch {
            words,
            masks: &self.batch,
            hashes: &self.hashes,
        }
    }

    /// Number of non-trivial splits of `tree` (|B(T)|), without materializing
    /// them.
    pub fn split_count(&mut self, tree: &Tree, taxa: &TaxonSet) -> usize {
        let mut n = 0usize;
        self.for_each_split(tree, taxa, |_| n += 1);
        n
    }

    /// Owned canonical masks, in visit order. Convenience for callers (and
    /// tests) that want the allocation anyway.
    pub fn splits(&mut self, tree: &Tree, taxa: &TaxonSet) -> Vec<Bits> {
        let mut out = Vec::new();
        self.for_each_split(tree, taxa, |w| out.push(Bits::from_words(taxa.len(), w)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::{parse_newick, TaxaPolicy};

    /// Sorted owned masks from the reference extractor.
    fn reference(tree: &Tree, taxa: &TaxonSet) -> Vec<Bits> {
        let mut v: Vec<Bits> = tree
            .bipartitions(taxa)
            .into_iter()
            .map(|b| b.bits().clone())
            .collect();
        v.sort();
        v
    }

    fn assert_matches(tree: &Tree, taxa: &TaxonSet, scratch: &mut BipartitionScratch) {
        let mut got = scratch.splits(tree, taxa);
        got.sort();
        assert_eq!(got, reference(tree, taxa));
    }

    #[test]
    fn matches_reference_on_parsed_trees() {
        let cases = [
            "((A,B),(C,D));",                 // the paper's 4-taxon example
            "(A,B,(C,D));",                   // unrooted-style trifurcating root
            "((A,B),(C,D),(E,F));",           // 3 leaf-bearing root children
            "(((A,B),C),((D,E),(F,G)));",     // deeper binary
            "((A,B,C,D),(E,F));",             // polytomy
            "(((((A,B),C),D),E),F);",         // caterpillar
            "((A,(B,(C,(D,E)))),(F,(G,H)));", // mixed
            "(A,B,C);",                       // too few taxa: no splits
            "((A,B),C);",
        ];
        let mut scratch = BipartitionScratch::new();
        for nwk in cases {
            let mut taxa = TaxonSet::new();
            let t = parse_newick(nwk, &mut taxa, TaxaPolicy::Grow).unwrap();
            assert_matches(&t, &taxa, &mut scratch);
        }
    }

    #[test]
    fn rooting_invariance_matches_reference() {
        // The same unrooted tree under different rootings: the scratch
        // extractor must agree with the reference on every rooting.
        let mut taxa = TaxonSet::new();
        let rootings = [
            "((A,B),(C,D),E);",
            "(A,(B,((C,D),E)));",
            "((((A,B),E),C),D);",
        ];
        let mut scratch = BipartitionScratch::new();
        let mut canonical: Option<Vec<Bits>> = None;
        for nwk in rootings {
            let t = parse_newick(nwk, &mut taxa, TaxaPolicy::Grow).unwrap();
            assert_matches(&t, &taxa, &mut scratch);
            let mut got = scratch.splits(&t, &taxa);
            got.sort();
            match &canonical {
                None => canonical = Some(got),
                Some(c) => assert_eq!(&got, c, "rooting changed split set"),
            }
        }
    }

    #[test]
    fn partial_namespace_uses_tree_leafset_anchor() {
        // Namespace holds A..H but the tree only mentions C..H: the anchor
        // is C (lowest taxon *in the tree*), exactly as the reference does.
        let mut taxa = TaxonSet::new();
        let _full =
            parse_newick("(A,B,(C,(D,(E,(F,(G,H))))));", &mut taxa, TaxaPolicy::Grow).unwrap();
        let sub = parse_newick("((C,D),((E,F),(G,H)));", &mut taxa, TaxaPolicy::Require).unwrap();
        let mut scratch = BipartitionScratch::new();
        assert_matches(&sub, &taxa, &mut scratch);
        assert!(scratch.split_count(&sub, &taxa) > 0);
    }

    #[test]
    fn unary_chains_and_empty_subtrees() {
        // Hand-build pathologies `parse_newick` never produces: unary
        // chains above internal nodes and an internal subtree bearing no
        // taxa at all. The structural dedup must still match the seen-set.
        let mut taxa = TaxonSet::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E"]
            .iter()
            .map(|l| taxa.intern(l))
            .collect();

        let (mut t, root) = Tree::with_root();
        // left: unary -> unary -> (A,B)
        let u1 = t.add_child(root);
        let u2 = t.add_child(u1);
        let ab = t.add_child(u2);
        for &i in &ids[..2] {
            let l = t.add_child(ab);
            t.set_taxon(l, Some(i));
        }
        // right: ((C,D),E) with a taxonless sibling subtree hanging off it
        let right = t.add_child(root);
        let cd = t.add_child(right);
        for &i in &ids[2..4] {
            let l = t.add_child(cd);
            t.set_taxon(l, Some(i));
        }
        let e = t.add_child(right);
        t.set_taxon(e, Some(ids[4]));
        let ghost = t.add_child(right); // internal, no taxa anywhere below
        let _ghost_child = t.add_child(ghost);

        let mut scratch = BipartitionScratch::new();
        assert_matches(&t, &taxa, &mut scratch);
    }

    #[test]
    fn scratch_reuse_is_clean_across_trees() {
        // A big tree followed by a small one: stale arena contents must not
        // leak into the second extraction.
        let mut taxa = TaxonSet::new();
        let big = parse_newick(
            "(((A,B),(C,D)),((E,F),(G,(H,I))));",
            &mut taxa,
            TaxaPolicy::Grow,
        )
        .unwrap();
        let small = parse_newick("((A,B),(C,D));", &mut taxa, TaxaPolicy::Require).unwrap();
        let mut scratch = BipartitionScratch::new();
        assert_matches(&big, &taxa, &mut scratch);
        assert_matches(&small, &taxa, &mut scratch);
        assert_matches(&big, &taxa, &mut scratch);
    }

    #[test]
    fn batch_splits_matches_visitor_and_hashes_correctly() {
        let cases = [
            "((A,B),(C,D));",
            "(((A,B),C),((D,E),(F,G)));",
            "((A,(B,(C,(D,E)))),(F,(G,H)));",
            "(A,B,C);", // no splits → empty batch
        ];
        let mut scratch = BipartitionScratch::new();
        for nwk in cases {
            let mut taxa = TaxonSet::new();
            let t = parse_newick(nwk, &mut taxa, TaxaPolicy::Grow).unwrap();
            let expected = scratch.splits(&t, &taxa);
            let batch = scratch.batch_splits(&t, &taxa);
            assert_eq!(batch.len(), expected.len());
            assert_eq!(batch.is_empty(), expected.is_empty());
            for (i, bits) in expected.iter().enumerate() {
                assert_eq!(batch.mask(i), bits.words(), "{nwk} split {i}");
                assert_eq!(
                    batch.hash(i),
                    phylo_bitset::split_hash128(bits.words()),
                    "{nwk} hash {i}"
                );
            }
        }
    }

    #[test]
    fn batch_from_parts_round_trips_and_checks_stride() {
        let mut taxa = TaxonSet::new();
        let t = parse_newick("(((A,B),C),((D,E),(F,G)));", &mut taxa, TaxaPolicy::Grow).unwrap();
        let mut scratch = BipartitionScratch::new();
        let extracted = scratch.batch_splits(&t, &taxa);
        let words = extracted.words();
        let masks: Vec<u64> = (0..extracted.len())
            .flat_map(|i| extracted.mask(i).iter().copied())
            .collect();
        let hashes = extracted.hashes().to_vec();
        let rebuilt = SplitBatch::from_parts(words, &masks, &hashes);
        assert_eq!(rebuilt.len(), extracted.len());
        for i in 0..rebuilt.len() {
            assert_eq!(rebuilt.mask(i), extracted.mask(i));
            assert_eq!(rebuilt.hash(i), extracted.hash(i));
        }
        let bad = std::panic::catch_unwind(|| SplitBatch::from_parts(words, &masks[1..], &hashes));
        assert!(bad.is_err(), "stride mismatch must panic");
    }

    #[test]
    fn scalar_and_vectorized_extraction_are_bit_identical() {
        // The striped fill/orient kernels must reproduce the scalar pass
        // exactly: same masks, same hashes, same order — including on
        // pathological shapes (polytomies, caterpillars, partial
        // namespaces) where orientation flips cluster.
        let cases = [
            "((A,B),(C,D));",
            "(A,B,(C,D));",
            "((A,B),(C,D),(E,F));",
            "(((A,B),C),((D,E),(F,G)));",
            "((A,B,C,D),(E,F));",
            "(((((A,B),C),D),E),F);",
            "((A,(B,(C,(D,E)))),(F,(G,H)));",
            "(A,B,C);",
        ];
        let mut vec_scratch = BipartitionScratch::new();
        let mut sca_scratch = BipartitionScratch::new();
        for nwk in cases {
            let mut taxa = TaxonSet::new();
            let t = parse_newick(nwk, &mut taxa, TaxaPolicy::Grow).unwrap();
            let vec_masks: Vec<Vec<u64>> = {
                let b = vec_scratch.batch_splits(&t, &taxa);
                (0..b.len()).map(|i| b.mask(i).to_vec()).collect()
            };
            let vec_hashes = vec_scratch.batch_splits(&t, &taxa).hashes().to_vec();
            let sca = sca_scratch.batch_splits_scalar(&t, &taxa);
            assert_eq!(sca.len(), vec_masks.len(), "{nwk}");
            for (i, m) in vec_masks.iter().enumerate() {
                assert_eq!(sca.mask(i), &m[..], "{nwk} split {i}");
                assert_eq!(sca.hash(i), vec_hashes[i], "{nwk} hash {i}");
            }
        }
    }

    #[test]
    fn split_count_matches_reference_len() {
        let mut taxa = TaxonSet::new();
        let t = parse_newick("(((A,B),C),((D,E),(F,G)));", &mut taxa, TaxaPolicy::Grow).unwrap();
        let mut scratch = BipartitionScratch::new();
        assert_eq!(scratch.split_count(&t, &taxa), reference(&t, &taxa).len());
    }
}
