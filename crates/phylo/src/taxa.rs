//! Taxon namespaces: interned, ordered label sets.

use crate::PhyloError;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a taxon within a [`TaxonSet`].
///
/// The numeric value is the taxon's **bit position** in bipartition
/// encodings: `TaxonId(0)` is the paper's "species A", the rightmost bit in
/// printed bitmasks. Stored as `u32` — a million-taxon namespace is far
/// beyond any published phylogeny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaxonId(pub u32);

impl TaxonId {
    /// The id as a bit index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaxonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An ordered namespace of taxon labels.
///
/// Labels are interned on first use and keep their insertion index forever,
/// so bipartition bit layouts are stable across every tree parsed against
/// the same namespace — the property the frequency hash relies on.
#[derive(Debug, Clone, Default)]
pub struct TaxonSet {
    labels: Vec<String>,
    index: HashMap<String, TaxonId>,
}

impl TaxonSet {
    /// Create an empty namespace.
    pub fn new() -> Self {
        TaxonSet::default()
    }

    /// Create a namespace with labels `prefix0..prefixN-1` — handy for
    /// simulated datasets (`t0, t1, ...`).
    pub fn with_numbered(prefix: &str, n: usize) -> Self {
        let mut set = TaxonSet::new();
        for i in 0..n {
            set.intern(&format!("{prefix}{i}"));
        }
        set
    }

    /// Number of taxa (`n` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the namespace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Intern `label`, returning its stable id (existing or fresh).
    pub fn intern(&mut self, label: &str) -> TaxonId {
        if let Some(&id) = self.index.get(label) {
            return id;
        }
        let id = TaxonId(self.labels.len() as u32);
        self.labels.push(label.to_string());
        self.index.insert(label.to_string(), id);
        id
    }

    /// Roll the namespace back to its first `len` labels, forgetting the
    /// rest. Ids below `len` are untouched, so trees encoded before the
    /// later labels were interned remain valid.
    ///
    /// This is the rollback primitive of lenient ingestion: a record that
    /// fails mid-parse may already have interned labels that occur nowhere
    /// else, and skipping it must not widen every later bitmask.
    pub fn truncate(&mut self, len: usize) {
        for label in self.labels.drain(len..) {
            self.index.remove(&label);
        }
    }

    /// Look up an existing label.
    pub fn get(&self, label: &str) -> Option<TaxonId> {
        self.index.get(label).copied()
    }

    /// Look up an existing label, erroring with [`PhyloError::UnknownTaxon`].
    pub fn require(&self, label: &str) -> Result<TaxonId, PhyloError> {
        self.get(label)
            .ok_or_else(|| PhyloError::UnknownTaxon(label.to_string()))
    }

    /// The label of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not from this namespace.
    pub fn label(&self, id: TaxonId) -> &str {
        &self.labels[id.index()]
    }

    /// Iterate `(id, label)` pairs in bit order.
    pub fn iter(&self) -> impl Iterator<Item = (TaxonId, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (TaxonId(i as u32), l.as_str()))
    }

    /// All ids, in bit order.
    pub fn ids(&self) -> impl Iterator<Item = TaxonId> {
        (0..self.labels.len() as u32).map(TaxonId)
    }

    /// Ids of labels present in both namespaces, as pairs `(self_id, other_id)`.
    ///
    /// This is the "reduce to the taxa intersection" step of supertree-style
    /// variable-taxa RF (paper §VII.E).
    pub fn intersection_ids<'a>(
        &'a self,
        other: &'a TaxonSet,
    ) -> impl Iterator<Item = (TaxonId, TaxonId)> + 'a {
        self.iter()
            .filter_map(move |(id, label)| other.get(label).map(|oid| (id, oid)))
    }
}

impl fmt::Display for TaxonSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TaxonSet[{}]{{", self.len())?;
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(l)?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = TaxonSet::new();
        let a = t.intern("A");
        let b = t.intern("B");
        assert_eq!(a, TaxonId(0));
        assert_eq!(b, TaxonId(1));
        assert_eq!(t.intern("A"), a, "re-interning returns the same id");
        assert_eq!(t.len(), 2);
        assert_eq!(t.label(a), "A");
        assert_eq!(t.label(b), "B");
    }

    #[test]
    fn lookup_and_require() {
        let mut t = TaxonSet::new();
        t.intern("Homo_sapiens");
        assert_eq!(t.get("Homo_sapiens"), Some(TaxonId(0)));
        assert_eq!(t.get("Pan"), None);
        assert!(t.require("Homo_sapiens").is_ok());
        assert_eq!(
            t.require("Pan"),
            Err(PhyloError::UnknownTaxon("Pan".into()))
        );
    }

    #[test]
    fn numbered_constructor() {
        let t = TaxonSet::with_numbered("t", 5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.get("t0"), Some(TaxonId(0)));
        assert_eq!(t.get("t4"), Some(TaxonId(4)));
        assert_eq!(t.get("t5"), None);
    }

    #[test]
    fn iteration_in_bit_order() {
        let mut t = TaxonSet::new();
        for l in ["C", "A", "B"] {
            t.intern(l);
        }
        let order: Vec<&str> = t.iter().map(|(_, l)| l).collect();
        assert_eq!(order, ["C", "A", "B"], "insertion order, not sorted");
        let ids: Vec<u32> = t.ids().map(|i| i.0).collect();
        assert_eq!(ids, [0, 1, 2]);
    }

    #[test]
    fn intersection_ids_maps_labels() {
        let mut a = TaxonSet::new();
        for l in ["x", "y", "z"] {
            a.intern(l);
        }
        let mut b = TaxonSet::new();
        for l in ["z", "w", "x"] {
            b.intern(l);
        }
        let pairs: Vec<_> = a.intersection_ids(&b).collect();
        assert_eq!(
            pairs,
            vec![(TaxonId(0), TaxonId(2)), (TaxonId(2), TaxonId(0))]
        );
    }
}
