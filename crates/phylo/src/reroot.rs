//! Rerooting.
//!
//! RF treats trees as unrooted; rooted representations of the same tree
//! differ only in where the "virtual root" sits. Rerooting lets callers
//! normalize representations (Day's algorithm does this internally),
//! display trees from a chosen outgroup, and lets tests state the
//! rooting-invariance property directly.

use crate::taxa::TaxonId;
use crate::tree::{NodeId, Tree};
use crate::PhyloError;

impl Tree {
    /// A copy of this tree rerooted so that `node` becomes a child of the
    /// new root; the other child is the rest of the tree. The edge above
    /// `node` is split by the new root: its branch length is halved onto
    /// the two root edges.
    ///
    /// Degree-2 nodes created where the old root used to be are
    /// suppressed, and the arena is compacted.
    pub fn rerooted_above(&self, node: NodeId) -> Result<Tree, PhyloError> {
        let old_root = self.root().ok_or(PhyloError::Empty("tree"))?;
        if node == old_root {
            return Ok(self.compacted());
        }
        let parent = self
            .parent(node)
            .ok_or_else(|| PhyloError::Structure("rerooted_above: detached node".into()))?;

        // Undirected adjacency over reachable nodes.
        let order = self.postorder();
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_nodes()];
        for &x in &order {
            for &c in self.children(x) {
                adj[x.index()].push(c);
                adj[c.index()].push(x);
            }
        }
        // Edge lengths keyed by the child end in the original orientation;
        // in the undirected walk the length of {a, b} is length(child end).
        let edge_len = |a: NodeId, b: NodeId| -> Option<f64> {
            if self.parent(a) == Some(b) {
                self.length(a)
            } else {
                self.length(b)
            }
        };

        let mut out = Tree::new();
        let new_root = out.add_root();
        // two subtrees hang off the split edge {parent, node}
        let half = self.length(node).map(|l| l / 2.0);
        let mut stack: Vec<(NodeId, NodeId, NodeId, Option<f64>)> = vec![
            (node, parent, new_root, half),
            (parent, node, new_root, half),
        ];
        while let Some((cur, from, under, len)) = stack.pop() {
            let created = out.add_child(under);
            out.set_taxon(created, self.taxon(cur));
            out.set_length(created, len);
            for &nb in &adj[cur.index()] {
                if nb != from {
                    stack.push((nb, cur, created, edge_len(cur, nb)));
                }
            }
        }
        out.suppress_unifurcations();
        Ok(out.compacted())
    }

    /// Reroot using the leaf carrying `taxon` as the outgroup: the result
    /// has that leaf as one child of the root.
    pub fn rerooted_at_taxon(&self, taxon: TaxonId) -> Result<Tree, PhyloError> {
        let leaf = self
            .postorder()
            .into_iter()
            .find(|&n| self.taxon(n) == Some(taxon))
            .ok_or_else(|| PhyloError::Structure(format!("taxon {taxon} not on this tree")))?;
        self.rerooted_above(leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::{parse_newick, TaxaPolicy};
    use crate::taxa::TaxonSet;

    fn setup(s: &str) -> (Tree, TaxonSet) {
        let mut taxa = TaxonSet::new();
        let t = parse_newick(s, &mut taxa, TaxaPolicy::Grow).unwrap();
        (t, taxa)
    }

    fn splits(t: &Tree, taxa: &TaxonSet) -> Vec<String> {
        let mut v: Vec<String> = t.bipartitions(taxa).iter().map(|b| b.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn rerooting_preserves_bipartitions() {
        let (t, taxa) = setup("((((A,B),C),D),((E,F),(G,H)));");
        let original = splits(&t, &taxa);
        for node in t.postorder() {
            let r = t.rerooted_above(node).unwrap();
            assert!(
                r.validate(&taxa).is_ok(),
                "invalid after reroot at {node:?}"
            );
            assert_eq!(
                splits(&r, &taxa),
                original,
                "splits changed rerooting above {node:?}"
            );
            assert_eq!(r.leaf_count(), 8);
        }
    }

    #[test]
    fn reroot_at_taxon_places_outgroup_at_root() {
        let (t, taxa) = setup("((((A,B),C),D),((E,F),(G,H)));");
        let g = taxa.get("G").unwrap();
        let r = t.rerooted_at_taxon(g).unwrap();
        let root = r.root().unwrap();
        let kids = r.children(root);
        assert_eq!(kids.len(), 2);
        assert!(
            kids.iter().any(|&c| r.taxon(c) == Some(g)),
            "outgroup leaf must hang off the root"
        );
    }

    #[test]
    fn reroot_splits_branch_length() {
        let (t, taxa) = setup("((A:1,B:1):2,(C:1,D:1):3);");
        let a = taxa.get("A").unwrap();
        let r = t.rerooted_at_taxon(a).unwrap();
        // the A edge (length 1) is split into 0.5 + 0.5 across the root
        let root = r.root().unwrap();
        let lens: Vec<Option<f64>> = r.children(root).iter().map(|&c| r.length(c)).collect();
        assert!(lens.contains(&Some(0.5)), "{lens:?}");
        // total tree length is preserved: 1+1+2+3+1+1 = 9
        let total: f64 = r.postorder().into_iter().filter_map(|n| r.length(n)).sum();
        assert!((total - 9.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn reroot_missing_taxon_errors() {
        let (t, taxa) = setup("((A,B),(C,D));");
        let _ = taxa;
        assert!(t.rerooted_at_taxon(TaxonId(99)).is_err());
    }

    #[test]
    fn reroot_at_root_is_identity() {
        let (t, taxa) = setup("((A,B),(C,D));");
        let r = t.rerooted_above(t.root().unwrap()).unwrap();
        assert_eq!(splits(&r, &taxa), splits(&t, &taxa));
        assert_eq!(r.leaf_count(), 4);
    }
}
