//! Newick tree serialization: lexer, parser, writer, streaming reader.
//!
//! The dialect follows what Dendropy (the paper's foundation) accepts:
//!
//! * unquoted labels (`Homo_sapiens`), single-quoted labels with `''`
//!   escaping (`'Homo sapiens (human)'`),
//! * bracket comments `[...]`, which may nest,
//! * branch lengths after `:` in integer/decimal/scientific notation,
//! * internal node labels (stored, and round-tripped by the writer),
//! * multifurcations and single-leaf trees.
//!
//! Parsing is iterative (no recursion), so deeply nested caterpillar trees
//! cannot overflow the stack. The [`NewickStream`] reader yields trees one
//! at a time from any `BufRead` source — this is the "dynamically load Q"
//! behaviour the BFHRF algorithm exploits to keep memory flat.

use crate::taxa::TaxonSet;
use crate::tree::{NodeId, Tree};
use crate::PhyloError;
use std::io::BufRead;

/// How the parser treats labels not yet in the taxon namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaxaPolicy {
    /// Intern unseen labels (used for the first collection read).
    Grow,
    /// Error with [`PhyloError::UnknownTaxon`] on unseen labels (used to
    /// enforce the paper's fixed-taxa requirement across `Q` and `R`).
    Require,
}

#[derive(Debug, PartialEq)]
enum Token {
    Open,
    Close,
    Comma,
    Colon,
    Semicolon,
    Label(String),
    Number(f64),
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), PhyloError> {
        loop {
            while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.input.len() && self.input[self.pos] == b'[' {
                let start = self.pos;
                let mut depth = 0usize;
                while self.pos < self.input.len() {
                    match self.input[self.pos] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    self.pos += 1;
                }
                if depth != 0 {
                    return Err(PhyloError::parse(start, "unterminated comment"));
                }
                self.pos += 1; // past ']'
                continue;
            }
            return Ok(());
        }
    }

    /// Position of the upcoming token (for error messages).
    fn offset(&self) -> usize {
        self.pos
    }

    fn at_end(&mut self) -> Result<bool, PhyloError> {
        self.skip_trivia()?;
        Ok(self.pos >= self.input.len())
    }

    /// `expect_number` is true right after a `:` — there (and only there)
    /// bare tokens are branch lengths rather than labels.
    fn next_token(&mut self, expect_number: bool) -> Result<Token, PhyloError> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(&b) = self.input.get(self.pos) else {
            return Err(PhyloError::parse(start, "unexpected end of input"));
        };
        match b {
            b'(' => {
                self.pos += 1;
                Ok(Token::Open)
            }
            b')' => {
                self.pos += 1;
                Ok(Token::Close)
            }
            b',' => {
                self.pos += 1;
                Ok(Token::Comma)
            }
            b':' => {
                self.pos += 1;
                Ok(Token::Colon)
            }
            b';' => {
                self.pos += 1;
                Ok(Token::Semicolon)
            }
            b'\'' => {
                self.pos += 1;
                let mut label = String::new();
                loop {
                    match self.input.get(self.pos) {
                        None => return Err(PhyloError::parse(start, "unterminated quoted label")),
                        Some(b'\'') => {
                            if self.input.get(self.pos + 1) == Some(&b'\'') {
                                label.push('\'');
                                self.pos += 2;
                            } else {
                                self.pos += 1;
                                break;
                            }
                        }
                        Some(&c) => {
                            label.push(c as char);
                            self.pos += 1;
                        }
                    }
                }
                Ok(Token::Label(label))
            }
            _ => {
                // bare token: runs until a structural character
                while self.pos < self.input.len() {
                    let c = self.input[self.pos];
                    if matches!(c, b'(' | b')' | b',' | b':' | b';' | b'[' | b'\'')
                        || c.is_ascii_whitespace()
                    {
                        break;
                    }
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| PhyloError::parse(start, "invalid UTF-8 in label"))?;
                if expect_number {
                    let v: f64 = text.parse().map_err(|_| {
                        PhyloError::parse(start, format!("invalid branch length {text:?}"))
                    })?;
                    Ok(Token::Number(v))
                } else {
                    Ok(Token::Label(text.to_string()))
                }
            }
        }
    }
}

/// Parse one Newick tree (terminated by `;`) from `input`.
///
/// Leaf labels are resolved against `taxa` under `policy`. Internal labels
/// (support values etc.) are preserved on the tree. Trailing content after
/// the `;` is an error — use [`read_trees_from_str`] or [`NewickStream`]
/// for multi-tree inputs.
pub fn parse_newick(
    input: &str,
    taxa: &mut TaxonSet,
    policy: TaxaPolicy,
) -> Result<Tree, PhyloError> {
    let mut lexer = Lexer::new(input);
    let tree = parse_one(&mut lexer, &mut policy_resolver(taxa, policy))?;
    if !lexer.at_end()? {
        return Err(PhyloError::parse(
            lexer.offset(),
            "trailing content after ';'",
        ));
    }
    Ok(tree)
}

/// [`parse_newick`] against a **shared** namespace with
/// [`TaxaPolicy::Require`] semantics: unknown labels error, the namespace
/// is never mutated, and — unlike cloning the set to satisfy the `&mut`
/// parser signature — nothing is allocated per call. This is the serve
/// daemon's request path: many worker threads parsing concurrently against
/// one frozen `TaxonSet`.
pub fn parse_newick_readonly(input: &str, taxa: &TaxonSet) -> Result<Tree, PhyloError> {
    let mut lexer = Lexer::new(input);
    let tree = parse_one(&mut lexer, &mut |label| taxa.require(label))?;
    if !lexer.at_end()? {
        return Err(PhyloError::parse(
            lexer.offset(),
            "trailing content after ';'",
        ));
    }
    Ok(tree)
}

/// Parse every tree in `input` (one per `;`).
pub fn read_trees_from_str(
    input: &str,
    taxa: &mut TaxonSet,
    policy: TaxaPolicy,
) -> Result<Vec<Tree>, PhyloError> {
    let mut lexer = Lexer::new(input);
    let mut resolve = policy_resolver(taxa, policy);
    let mut out = Vec::new();
    while !lexer.at_end()? {
        out.push(parse_one(&mut lexer, &mut resolve)?);
    }
    Ok(out)
}

/// Label resolution under a [`TaxaPolicy`], as a closure so the parser
/// core is agnostic to whether the namespace can grow.
fn policy_resolver(
    taxa: &mut TaxonSet,
    policy: TaxaPolicy,
) -> impl FnMut(&str) -> Result<crate::TaxonId, PhyloError> + '_ {
    move |label| match policy {
        TaxaPolicy::Grow => Ok(taxa.intern(label)),
        TaxaPolicy::Require => taxa.require(label),
    }
}

fn parse_one(
    lexer: &mut Lexer<'_>,
    resolve: &mut dyn FnMut(&str) -> Result<crate::TaxonId, PhyloError>,
) -> Result<Tree, PhyloError> {
    let mut tree = Tree::new();
    let root = tree.add_root();
    let mut cur = root;
    // Per-node bookkeeping to reject duplicate names/lengths.
    let mut named = vec![false];
    let mut lengthed = vec![false];
    let mut depth = 0usize;

    let mark = |v: &mut Vec<bool>, id: NodeId| {
        if v.len() <= id.index() {
            v.resize(id.index() + 1, false);
        }
        v[id.index()] = true;
    };
    let is_marked = |v: &Vec<bool>, id: NodeId| v.get(id.index()).copied().unwrap_or(false);

    loop {
        let offset = {
            lexer.skip_trivia()?;
            lexer.offset()
        };
        match lexer.next_token(false)? {
            Token::Open => {
                if is_marked(&named, cur) || tree.taxon(cur).is_some() {
                    return Err(PhyloError::parse(offset, "unexpected '(' after label"));
                }
                if !tree.children(cur).is_empty() {
                    return Err(PhyloError::parse(
                        offset,
                        "unexpected '(': node already closed",
                    ));
                }
                depth += 1;
                cur = tree.add_child(cur);
            }
            Token::Comma => {
                if depth == 0 {
                    return Err(PhyloError::parse(offset, "',' outside parentheses"));
                }
                finish_node(&tree, cur, offset)?;
                let parent = tree
                    .parent(cur)
                    .ok_or_else(|| PhyloError::parse(offset, "',' outside parentheses"))?;
                cur = tree.add_child(parent);
            }
            Token::Close => {
                if depth == 0 {
                    return Err(PhyloError::parse(offset, "unbalanced ')'"));
                }
                finish_node(&tree, cur, offset)?;
                depth -= 1;
                cur = tree
                    .parent(cur)
                    .ok_or_else(|| PhyloError::parse(offset, "unbalanced ')'"))?;
            }
            Token::Colon => {
                if is_marked(&lengthed, cur) {
                    return Err(PhyloError::parse(offset, "duplicate branch length"));
                }
                match lexer.next_token(true)? {
                    Token::Number(v) => {
                        tree.set_length(cur, Some(v));
                        mark(&mut lengthed, cur);
                    }
                    _ => {
                        return Err(PhyloError::parse(
                            offset,
                            "expected branch length after ':'",
                        ))
                    }
                }
            }
            Token::Semicolon => {
                if depth != 0 {
                    return Err(PhyloError::parse(
                        offset,
                        "unbalanced '(': tree ended early",
                    ));
                }
                finish_node(&tree, cur, offset)?;
                debug_assert_eq!(cur, root);
                return Ok(tree);
            }
            Token::Label(label) => {
                if is_marked(&named, cur) || tree.taxon(cur).is_some() {
                    return Err(PhyloError::parse(
                        offset,
                        format!("unexpected second label {label:?}"),
                    ));
                }
                if tree.children(cur).is_empty() {
                    // leaf name → taxon
                    let id = resolve(&label)?;
                    tree.set_taxon(cur, Some(id));
                }
                // Internal labels (clade names / support values) are parsed
                // for dialect compatibility but not stored: nothing in the
                // RF pipeline reads them, and dropping them keeps nodes at
                // two words.
                mark(&mut named, cur);
            }
            Token::Number(_) => unreachable!("numbers only requested after ':'"),
        }
    }
}

/// A node is finished when `,`, `)` or `;` closes it: leaves must have
/// received a taxon by then.
fn finish_node(tree: &Tree, node: NodeId, offset: usize) -> Result<(), PhyloError> {
    if tree.children(node).is_empty() && tree.taxon(node).is_none() {
        return Err(PhyloError::parse(offset, "leaf without a label"));
    }
    Ok(())
}

/// Serialize `tree` to Newick, quoting labels when necessary and emitting
/// branch lengths where present. The output always ends with `;`.
pub fn write_newick(tree: &Tree, taxa: &TaxonSet) -> String {
    let mut out = String::new();
    if let Some(root) = tree.root() {
        write_node(tree, taxa, root, &mut out);
    }
    out.push(';');
    out
}

fn write_node(tree: &Tree, taxa: &TaxonSet, node: NodeId, out: &mut String) {
    // Iterative would complicate the in-order comma placement; tree depth is
    // bounded by leaf count and the writer is not on any hot path, but guard
    // against pathological caterpillars by using an explicit frame stack.
    enum Frame {
        Enter(NodeId),
        ChildSep,
        Exit(NodeId),
    }
    let mut stack = vec![Frame::Enter(node)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(n) => {
                let kids = tree.children(n);
                if kids.is_empty() {
                    if let Some(t) = tree.taxon(n) {
                        push_label(taxa.label(t), out);
                    }
                    push_length(tree, n, out);
                } else {
                    out.push('(');
                    stack.push(Frame::Exit(n));
                    for (i, &c) in kids.iter().enumerate().rev() {
                        stack.push(Frame::Enter(c));
                        if i > 0 {
                            stack.push(Frame::ChildSep);
                        }
                    }
                }
            }
            Frame::ChildSep => out.push(','),
            Frame::Exit(n) => {
                out.push(')');
                push_length(tree, n, out);
            }
        }
    }
}

fn push_length(tree: &Tree, node: NodeId, out: &mut String) {
    if let Some(l) = tree.length(node) {
        out.push(':');
        out.push_str(&format_length(l));
    }
}

fn format_length(l: f64) -> String {
    // Shortest round-trippable representation keeps files compact.
    let mut s = format!("{l}");
    if !s.contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
    s
}

fn push_label(label: &str, out: &mut String) {
    let needs_quotes = label.is_empty()
        || label.chars().any(|c| {
            matches!(
                c,
                '(' | ')' | ',' | ':' | ';' | '[' | ']' | '\'' | ' ' | '\t'
            )
        });
    if needs_quotes {
        out.push('\'');
        for c in label.chars() {
            if c == '\'' {
                out.push('\'');
            }
            out.push(c);
        }
        out.push('\'');
    } else {
        out.push_str(label);
    }
}

/// Streaming reader yielding one tree at a time from a `BufRead` source.
///
/// Splits the byte stream on top-level `;` (respecting quotes and
/// comments), then parses each chunk. Memory stays proportional to one
/// tree, which is what lets BFHRF process 149k-tree files in O(hash) space.
pub struct NewickStream<R: BufRead> {
    reader: R,
    policy: TaxaPolicy,
    buf: Vec<u8>,
    done: bool,
}

impl<R: BufRead> NewickStream<R> {
    /// Create a stream with the given taxa policy.
    pub fn new(reader: R, policy: TaxaPolicy) -> Self {
        NewickStream {
            reader,
            policy,
            buf: Vec::new(),
            done: false,
        }
    }

    /// Read the next tree, resolving labels against `taxa`.
    ///
    /// Returns `Ok(None)` at end of input. The taxon set is passed per call
    /// (not owned) so one namespace can serve several streams — reference
    /// and query files in the BFHRF pipeline.
    pub fn next_tree(&mut self, taxa: &mut TaxonSet) -> Result<Option<Tree>, PhyloError> {
        if self.done {
            return Ok(None);
        }
        self.buf.clear();
        let mut in_quote = false;
        let mut comment_depth = 0usize;
        loop {
            let chunk = self.reader.fill_buf().map_err(|e| {
                PhyloError::parse(0, format!("I/O error reading newick stream: {e}"))
            })?;
            if chunk.is_empty() {
                self.done = true;
                if self.buf.iter().all(|b| b.is_ascii_whitespace()) {
                    return Ok(None);
                }
                return Err(PhyloError::parse(
                    self.buf.len(),
                    "unterminated tree at end of input (missing ';')",
                ));
            }
            let mut consumed = chunk.len();
            let mut complete = false;
            for (i, &b) in chunk.iter().enumerate() {
                self.buf.push(b);
                if in_quote {
                    if b == b'\'' {
                        in_quote = false; // '' escape re-enters on next quote
                    }
                } else if comment_depth > 0 {
                    match b {
                        b'[' => comment_depth += 1,
                        b']' => comment_depth -= 1,
                        _ => {}
                    }
                } else {
                    match b {
                        b'\'' => in_quote = true,
                        b'[' => comment_depth = 1,
                        b';' => {
                            consumed = i + 1;
                            complete = true;
                            break;
                        }
                        _ => {}
                    }
                }
            }
            self.reader.consume(consumed);
            if complete {
                let text = std::str::from_utf8(&self.buf)
                    .map_err(|_| PhyloError::parse(0, "invalid UTF-8 in newick stream"))?;
                return parse_newick(text, taxa, self.policy).map(Some);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grow(s: &str) -> (Tree, TaxonSet) {
        let mut taxa = TaxonSet::new();
        let t = parse_newick(s, &mut taxa, TaxaPolicy::Grow).expect("parse");
        (t, taxa)
    }

    #[test]
    fn parses_paper_example() {
        let (t, taxa) = grow("((A,B),(C,D));");
        assert_eq!(taxa.len(), 4);
        assert_eq!(t.leaf_count(), 4);
        assert!(t.is_binary());
        assert!(t.validate(&taxa).is_ok());
    }

    #[test]
    fn branch_lengths_parsed() {
        let (t, _) = grow("((A:0.1,B:2):1e-3,(C:3.5,D:4):0.5);");
        let lengths: Vec<f64> = t
            .postorder()
            .into_iter()
            .filter_map(|n| t.length(n))
            .collect();
        assert_eq!(lengths.len(), 6);
        assert!(lengths.contains(&0.1));
        assert!(lengths.contains(&1e-3));
    }

    #[test]
    fn quoted_labels_and_escapes() {
        let (t, taxa) = grow("('Homo sapiens','it''s complicated');");
        assert!(taxa.get("Homo sapiens").is_some());
        assert!(taxa.get("it's complicated").is_some());
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn comments_are_skipped_even_nested() {
        let (t, taxa) = grow("[header [nested]]((A[x],B):1[c],(C,D));");
        assert_eq!(taxa.len(), 4);
        assert_eq!(t.leaf_count(), 4);
    }

    #[test]
    fn internal_labels_accepted() {
        let (t, taxa) = grow("((A,B)clade1:0.5,(C,D)'clade 2');");
        assert_eq!(taxa.len(), 4, "internal labels must not become taxa");
        assert!(t.validate(&taxa).is_ok());
    }

    #[test]
    fn multifurcation_and_single_leaf() {
        let (t, _) = grow("(A,B,C,D,E);");
        assert_eq!(t.children(t.root().unwrap()).len(), 5);
        let (t2, taxa2) = grow("A;");
        assert_eq!(t2.leaf_count(), 1);
        assert_eq!(taxa2.len(), 1);
    }

    #[test]
    fn require_policy_rejects_unknown() {
        let mut taxa = TaxonSet::new();
        taxa.intern("A");
        taxa.intern("B");
        let ok = parse_newick("(A,B);", &mut taxa, TaxaPolicy::Require);
        assert!(ok.is_ok());
        let err = parse_newick("(A,X);", &mut taxa, TaxaPolicy::Require);
        assert_eq!(err.err(), Some(PhyloError::UnknownTaxon("X".into())));
        assert_eq!(taxa.len(), 2, "failed parse must not grow the namespace");
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        let cases = [
            "((A,B);",     // unbalanced (
            "(A,B));",     // unbalanced )
            "(A,,B);",     // empty sibling
            "(A,B)",       // missing ;
            "(A,B); junk", // trailing garbage
            "(A:x,B);",    // bad number
            "('A,B);",     // unterminated quote
            "[(A,B);",     // unterminated comment
            "(A B,C);",    // two labels on one node
            ",A;",         // comma at top level
            "(A,B)(C,D);", // second structure after close
            "();",         // unlabeled leaf
        ];
        let mut taxa = TaxonSet::new();
        for c in cases {
            let r = parse_newick(c, &mut taxa, TaxaPolicy::Grow);
            assert!(r.is_err(), "input {c:?} should fail, got {r:?}");
        }
    }

    #[test]
    fn duplicate_leaf_labels_detected_by_validate() {
        let (t, taxa) = grow("((A,B),(A,C));");
        assert_eq!(
            t.validate(&taxa),
            Err(PhyloError::DuplicateTaxon("A".into()))
        );
    }

    #[test]
    fn writer_roundtrips_topology_and_lengths() {
        let src = "((A:0.1,'B b':2.0):0.5,(C:3.5,D:4.0):0.5);";
        let (t, mut taxa) = grow(src);
        let written = write_newick(&t, &taxa);
        let t2 = parse_newick(&written, &mut taxa, TaxaPolicy::Require).unwrap();
        assert_eq!(write_newick(&t2, &taxa), written, "stable after one cycle");
        assert_eq!(t2.leaf_count(), 4);
    }

    #[test]
    fn writer_quotes_when_needed() {
        let mut taxa = TaxonSet::new();
        let odd = taxa.intern("needs (quoting)");
        let plain = taxa.intern("plain");
        let (mut t, root) = Tree::with_root();
        t.add_leaf(root, odd);
        t.add_leaf(root, plain);
        let s = write_newick(&t, &taxa);
        assert_eq!(s, "('needs (quoting)',plain);");
    }

    #[test]
    fn multi_tree_string() {
        let mut taxa = TaxonSet::new();
        let trees =
            read_trees_from_str("(A,B);\n(A,C);(B,C);", &mut taxa, TaxaPolicy::Grow).unwrap();
        assert_eq!(trees.len(), 3);
        assert_eq!(taxa.len(), 3);
    }

    #[test]
    fn stream_yields_trees_one_by_one() {
        let data = "((A,B),(C,D));\n((A,C),(B,D)); [note] ((A,D),(B,C));";
        let mut taxa = TaxonSet::new();
        let mut stream = NewickStream::new(data.as_bytes(), TaxaPolicy::Grow);
        let mut count = 0;
        while let Some(t) = stream.next_tree(&mut taxa).unwrap() {
            assert_eq!(t.leaf_count(), 4);
            count += 1;
        }
        assert_eq!(count, 3);
        assert_eq!(taxa.len(), 4);
        // exhausted stream stays exhausted
        assert!(stream.next_tree(&mut taxa).unwrap().is_none());
    }

    #[test]
    fn stream_handles_semicolons_inside_quotes_and_comments() {
        let data = "('a;b',C);[x;y](C,'a;b');";
        let mut taxa = TaxonSet::new();
        let mut stream = NewickStream::new(data.as_bytes(), TaxaPolicy::Grow);
        let t1 = stream.next_tree(&mut taxa).unwrap().unwrap();
        let t2 = stream.next_tree(&mut taxa).unwrap().unwrap();
        assert!(stream.next_tree(&mut taxa).unwrap().is_none());
        assert_eq!(t1.leaf_count(), 2);
        assert_eq!(t2.leaf_count(), 2);
        assert_eq!(taxa.len(), 2);
    }

    #[test]
    fn stream_reports_unterminated_tree() {
        let mut taxa = TaxonSet::new();
        let mut stream = NewickStream::new("(A,B)".as_bytes(), TaxaPolicy::Grow);
        assert!(stream.next_tree(&mut taxa).is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let (t, taxa) = grow("  (\n  (A , B) ,\t(C,D)\n) ;");
        assert_eq!(t.leaf_count(), 4);
        assert!(t.validate(&taxa).is_ok());
    }
}
