//! Bipartition extraction and encoding.
//!
//! A bipartition is the split of the taxa induced by removing one edge of
//! an unrooted tree. We encode it as a bitmask over the taxon namespace
//! ([`phylo_bitset::Bits`]) in **canonical orientation**: the side
//! containing the lowest-indexed taxon present in the tree is the set side.
//! This matches the paper's (Dendropy's) convention where "species A" fixes
//! the orientation, and makes the encoding rooting-invariant: any rooted
//! representation of the same unrooted tree yields the identical set of
//! canonical bitmasks.

use crate::taxa::TaxonSet;
use crate::tree::{NodeId, Tree};
use phylo_bitset::{bits_map_with_capacity, bits_set_with_capacity, Bits, BitsMap, BitsSet};
use std::fmt;

/// A canonicalized bipartition bitmask.
///
/// Invariants (enforced by the constructors):
/// * the bit of the anchor taxon (lowest id in the tree's leaf set) is set;
/// * padding bits are zero (inherited from [`Bits`]).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bipartition {
    bits: Bits,
}

impl Bipartition {
    /// Canonicalize `side` (one side of a split of `leafset`): if the
    /// anchor taxon of `leafset` is not in `side`, the complement within
    /// `leafset` is stored instead.
    ///
    /// # Panics
    /// Panics if `leafset` is empty or `side` is not a subset of `leafset`.
    pub fn new(side: Bits, leafset: &Bits) -> Self {
        assert!(
            side.is_subset(leafset),
            "split side must lie within the leaf set"
        );
        let anchor = leafset.first_one().expect("empty leaf set has no splits");
        if side.get(anchor) {
            Bipartition { bits: side }
        } else {
            let mut flipped = leafset.clone();
            flipped.difference_with(&side);
            Bipartition { bits: flipped }
        }
    }

    /// The canonical bitmask.
    #[inline]
    pub fn bits(&self) -> &Bits {
        &self.bits
    }

    /// Consume into the canonical bitmask.
    #[inline]
    pub fn into_bits(self) -> Bits {
        self.bits
    }

    /// Size of the smaller side of the split within a leaf set of
    /// `n_leaves` taxa. This is the quantity bipartition-size filtering
    /// (paper §VII.F) thresholds on.
    pub fn smaller_side(&self, n_leaves: usize) -> usize {
        let ones = self.bits.count_ones() as usize;
        ones.min(n_leaves - ones)
    }

    /// Whether the split is trivial (separates at most one taxon) within a
    /// leaf set of `n_leaves` taxa.
    pub fn is_trivial(&self, n_leaves: usize) -> bool {
        self.smaller_side(n_leaves) <= 1
    }
}

impl fmt::Display for Bipartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.bits.fmt(f)
    }
}

impl fmt::Debug for Bipartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bipartition({})", self.bits)
    }
}

/// The deduplicated set `B(T)` of one tree's canonical bipartitions, with
/// set-difference RF as a method.
#[derive(Debug, Clone)]
pub struct BipartitionSet {
    set: BitsSet,
    n_leaves: usize,
}

impl BipartitionSet {
    /// Extract the non-trivial bipartition set of `tree` over `taxa`.
    pub fn from_tree(tree: &Tree, taxa: &TaxonSet) -> Self {
        let biparts = tree.bipartitions(taxa);
        let mut set = bits_set_with_capacity(biparts.len());
        let n_leaves = tree.leaf_count();
        for b in biparts {
            set.insert(b.into_bits());
        }
        BipartitionSet { set, n_leaves }
    }

    /// Number of distinct non-trivial bipartitions.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty (true for trees with fewer than 4 leaves).
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Number of leaves of the source tree.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Membership test.
    pub fn contains(&self, b: &Bipartition) -> bool {
        self.set.contains(b.bits())
    }

    /// Membership test on a raw canonical bitmask.
    pub fn contains_bits(&self, bits: &Bits) -> bool {
        self.set.contains(bits)
    }

    /// Iterate the canonical bitmasks.
    pub fn iter(&self) -> impl Iterator<Item = &Bits> {
        self.set.iter()
    }

    /// The Robinson–Foulds distance
    /// `|B(T) \ B(T')| + |B(T') \ B(T)|` between the two sets.
    ///
    /// Computed as `|A| + |B| − 2·|A ∩ B|` with membership probes from the
    /// smaller set.
    pub fn rf_distance(&self, other: &BipartitionSet) -> usize {
        let (small, large) = if self.set.len() <= other.set.len() {
            (&self.set, &other.set)
        } else {
            (&other.set, &self.set)
        };
        let shared = small.iter().filter(|b| large.contains(*b)).count();
        self.set.len() + other.set.len() - 2 * shared
    }
}

impl Tree {
    /// The leaf-set mask of every node, indexed by `NodeId`.
    ///
    /// Entry `i` has a bit set for each taxon at or below node `i`.
    /// Detached nodes get empty masks.
    pub fn subtree_masks(&self, n: usize) -> Vec<Bits> {
        let mut masks = vec![Bits::zeros(n); self.num_nodes()];
        for node in self.postorder() {
            if let Some(t) = self.taxon(node) {
                masks[node.index()].set(t.index());
            }
            // Union children into this node. Split borrows via index juggling.
            let children: &[NodeId] = self.children(node);
            if !children.is_empty() {
                let mut acc = std::mem::replace(&mut masks[node.index()], Bits::zeros(0));
                for &c in children {
                    acc.union_with(&masks[c.index()]);
                }
                masks[node.index()] = acc;
            }
        }
        masks
    }

    /// The mask of all taxa on this tree's leaves.
    pub fn leafset(&self, n: usize) -> Bits {
        match self.root() {
            None => Bits::zeros(n),
            Some(root) => {
                let masks = self.subtree_masks(n);
                masks[root.index()].clone()
            }
        }
    }

    /// The non-trivial canonical bipartitions of this tree (deduplicated;
    /// the two root edges of a bifurcating root encode one unrooted edge).
    pub fn bipartitions(&self, taxa: &TaxonSet) -> Vec<Bipartition> {
        self.bipartitions_filtered(taxa, |_| true)
    }

    /// Like [`Tree::bipartitions`] but keeping only splits accepted by
    /// `keep` — the extensibility hook the paper demonstrates with
    /// bipartition-size filtering.
    pub fn bipartitions_filtered<F: FnMut(&Bipartition) -> bool>(
        &self,
        taxa: &TaxonSet,
        mut keep: F,
    ) -> Vec<Bipartition> {
        let n = taxa.len();
        let Some(root) = self.root() else {
            return Vec::new();
        };
        let masks = self.subtree_masks(n);
        let leafset = &masks[root.index()];
        let n_leaves = leafset.count_ones() as usize;
        if n_leaves < 4 {
            return Vec::new(); // no non-trivial splits exist
        }
        let mut seen = bits_set_with_capacity(self.num_nodes());
        let mut out = Vec::with_capacity(n_leaves.saturating_sub(3));
        for node in self.postorder() {
            if node == root || self.is_leaf(node) {
                continue;
            }
            let mask = &masks[node.index()];
            let ones = mask.count_ones() as usize;
            if ones < 2 || ones > n_leaves - 2 {
                continue; // trivial
            }
            let bp = Bipartition::new(mask.clone(), leafset);
            if seen.insert(bp.bits().clone()) && keep(&bp) {
                out.push(bp);
            }
        }
        out
    }

    /// Non-trivial canonical bipartitions paired with the length of their
    /// unrooted edge. When a bifurcating root splits one unrooted edge into
    /// two rooted edges, their lengths are summed; missing lengths count as
    /// zero. Used by the weighted-RF variant.
    pub fn weighted_bipartitions(&self, taxa: &TaxonSet) -> BitsMap<f64> {
        let n = taxa.len();
        let Some(root) = self.root() else {
            return bits_map_with_capacity(0);
        };
        let masks = self.subtree_masks(n);
        let leafset = &masks[root.index()];
        let n_leaves = leafset.count_ones() as usize;
        let mut out: BitsMap<f64> = bits_map_with_capacity(n_leaves);
        if n_leaves < 4 {
            return out;
        }
        for node in self.postorder() {
            if node == root || self.is_leaf(node) {
                continue;
            }
            let mask = &masks[node.index()];
            let ones = mask.count_ones() as usize;
            if ones < 2 || ones > n_leaves - 2 {
                continue;
            }
            let bp = Bipartition::new(mask.clone(), leafset);
            let w = self.length(node).unwrap_or(0.0);
            *out.entry(bp.into_bits()).or_insert(0.0) += w;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::{parse_newick, TaxaPolicy};

    fn tree(s: &str, taxa: &mut TaxonSet) -> Tree {
        parse_newick(s, taxa, TaxaPolicy::Grow).unwrap()
    }

    fn sorted_strings(bps: &[Bipartition]) -> Vec<String> {
        let mut v: Vec<String> = bps.iter().map(|b| b.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn paper_example_bipartitions() {
        // Paper §II.B: ((A,B),(C,D)) has internal split 0011; ((D,B),(C,A))
        // has 0101.
        let mut taxa = TaxonSet::new();
        for l in ["A", "B", "C", "D"] {
            taxa.intern(l);
        }
        let t = tree("((A,B),(C,D));", &mut taxa);
        let t2 = tree("((D,B),(C,A));", &mut taxa);
        assert_eq!(sorted_strings(&t.bipartitions(&taxa)), ["0011"]);
        assert_eq!(sorted_strings(&t2.bipartitions(&taxa)), ["0101"]);
    }

    #[test]
    fn rooting_invariance() {
        let mut taxa = TaxonSet::new();
        for l in ["A", "B", "C", "D", "E", "F"] {
            taxa.intern(l);
        }
        // Same unrooted tree, three rootings.
        let forms = [
            "(((A,B),C),(D,(E,F)));",
            "((A,B),(C,(D,(E,F))));",
            "(A,(B,(C,(D,(E,F)))));",
        ];
        let sets: Vec<Vec<String>> = forms
            .iter()
            .map(|f| sorted_strings(&tree(f, &mut taxa.clone()).bipartitions(&taxa)))
            .collect();
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
        assert_eq!(sets[0].len(), 3, "6-leaf binary tree has n-3 = 3 splits");
    }

    #[test]
    fn binary_tree_has_n_minus_3_splits() {
        let mut taxa = TaxonSet::new();
        let t = tree("((((A,B),C),D),((E,F),(G,H)));", &mut taxa);
        assert_eq!(t.bipartitions(&taxa).len(), 8 - 3);
    }

    #[test]
    fn small_trees_have_no_nontrivial_splits() {
        let mut taxa = TaxonSet::new();
        assert!(tree("(A,B);", &mut taxa).bipartitions(&taxa).is_empty());
        let mut taxa = TaxonSet::new();
        assert!(tree("((A,B),C);", &mut taxa).bipartitions(&taxa).is_empty());
    }

    #[test]
    fn multifurcation_yields_fewer_splits() {
        let mut taxa = TaxonSet::new();
        let t = tree("((A,B),(C,D),E);", &mut taxa); // one polytomy at root
        assert_eq!(t.bipartitions(&taxa).len(), 2);
    }

    #[test]
    fn canonical_bit_contains_anchor() {
        let mut taxa = TaxonSet::new();
        let t = tree("((E,F),((A,B),(C,D)));", &mut taxa);
        // anchor is the lowest-id taxon: E (interned first)
        for bp in t.bipartitions(&taxa) {
            assert!(
                bp.bits().get(taxa.get("E").unwrap().index()),
                "split {bp} does not contain the anchor"
            );
        }
    }

    #[test]
    fn rf_distance_matches_paper_example() {
        let mut taxa = TaxonSet::new();
        let t = tree("((A,B),(C,D));", &mut taxa);
        let t2 = tree("((D,B),(C,A));", &mut taxa);
        let b1 = BipartitionSet::from_tree(&t, &taxa);
        let b2 = BipartitionSet::from_tree(&t2, &taxa);
        assert_eq!(b1.rf_distance(&b2), 2, "paper Equation (1)");
        assert_eq!(b1.rf_distance(&b1), 0);
        assert_eq!(b2.rf_distance(&b1), 2, "symmetry");
    }

    #[test]
    fn filtered_extraction_respects_predicate() {
        let mut taxa = TaxonSet::new();
        let t = tree("((((A,B),C),D),((E,F),(G,H)));", &mut taxa);
        let all = t.bipartitions(&taxa);
        let only_cherries = t.bipartitions_filtered(&taxa, |b| b.smaller_side(8) == 2);
        assert!(only_cherries.len() < all.len());
        assert!(only_cherries.iter().all(|b| b.smaller_side(8) == 2));
    }

    #[test]
    fn smaller_side_and_trivial() {
        let leafset = Bits::ones(6);
        let bp = Bipartition::new(Bits::from_indices(6, [1, 2]), &leafset);
        // canonicalized to contain taxon 0 → side {0,3,4,5}, smaller side 2
        assert!(bp.bits().get(0));
        assert_eq!(bp.smaller_side(6), 2);
        assert!(!bp.is_trivial(6));
        let leaf_split = Bipartition::new(Bits::from_indices(6, [3]), &leafset);
        assert!(leaf_split.is_trivial(6));
    }

    #[test]
    fn weighted_bipartitions_sum_root_edges() {
        let mut taxa = TaxonSet::new();
        // the central edge is split by the root: 0.5 + 0.25 must merge
        let t = tree("((A,B):0.5,(C,D):0.25);", &mut taxa);
        let w = t.weighted_bipartitions(&taxa);
        assert_eq!(w.len(), 1);
        let (_bits, weight) = w.iter().next().unwrap();
        assert!((weight - 0.75).abs() < 1e-12);
    }

    #[test]
    fn subtree_masks_partition_leaves() {
        let mut taxa = TaxonSet::new();
        let t = tree("((A,B),(C,D));", &mut taxa);
        let masks = t.subtree_masks(taxa.len());
        let root = t.root().unwrap();
        let kids = t.children(root);
        assert_eq!(
            masks[kids[0].index()].union(&masks[kids[1].index()]),
            Bits::ones(4)
        );
        assert!(masks[kids[0].index()].is_disjoint(&masks[kids[1].index()]));
    }

    #[test]
    fn leafset_tracks_partial_namespaces() {
        let mut taxa = TaxonSet::new();
        for l in ["A", "B", "C", "D", "E"] {
            taxa.intern(l);
        }
        let t = tree("((A,C),E);", &mut taxa);
        let ls = t.leafset(taxa.len());
        assert_eq!(ls.to_indices(), vec![0, 2, 4]);
    }
}
