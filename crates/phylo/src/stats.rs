//! Tree-shape statistics.
//!
//! Used to characterize simulated datasets (are the stand-ins shaped like
//! real gene-tree collections?) and handy in their own right: cherry
//! count, Sackin and Colless imbalance, total branch length, and the
//! resolution fraction for multifurcating trees.

use crate::tree::Tree;

/// Summary statistics of one tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of leaves.
    pub leaves: usize,
    /// Number of internal nodes (including the root).
    pub internal: usize,
    /// Number of cherries (internal nodes whose children are two leaves).
    pub cherries: usize,
    /// Sackin index: sum over leaves of their depth.
    pub sackin: usize,
    /// Colless index: sum over binary internal nodes of
    /// `|leaves(left) − leaves(right)|`.
    pub colless: usize,
    /// Maximum leaf depth.
    pub max_depth: usize,
    /// Sum of all branch lengths (missing lengths count 0).
    pub total_length: f64,
    /// Fraction of resolved internal edges: `internal − 1` over the
    /// binary-tree maximum `leaves − 2` (1.0 for fully resolved trees,
    /// approaching 0 for stars).
    pub resolution: f64,
}

/// Compute [`TreeStats`] in one postorder pass plus a preorder depth scan.
pub fn tree_stats(tree: &Tree) -> TreeStats {
    let Some(root) = tree.root() else {
        return TreeStats {
            leaves: 0,
            internal: 0,
            cherries: 0,
            sackin: 0,
            colless: 0,
            max_depth: 0,
            total_length: 0.0,
            resolution: 0.0,
        };
    };
    let mut subtree_leaves = vec![0usize; tree.num_nodes()];
    let mut leaves = 0usize;
    let mut internal = 0usize;
    let mut cherries = 0usize;
    let mut colless = 0usize;
    let mut total_length = 0.0f64;
    for node in tree.postorder() {
        total_length += tree.length(node).unwrap_or(0.0);
        let children = tree.children(node);
        if children.is_empty() {
            leaves += 1;
            subtree_leaves[node.index()] = 1;
        } else {
            internal += 1;
            let mut sum = 0usize;
            for &c in children {
                sum += subtree_leaves[c.index()];
            }
            subtree_leaves[node.index()] = sum;
            if children.len() == 2 {
                if children.iter().all(|&c| tree.is_leaf(c)) {
                    cherries += 1;
                }
                let a = subtree_leaves[children[0].index()];
                let b = subtree_leaves[children[1].index()];
                colless += a.abs_diff(b);
            }
        }
    }
    let mut depth = vec![0usize; tree.num_nodes()];
    let mut sackin = 0usize;
    let mut max_depth = 0usize;
    for node in tree.preorder() {
        if node != root {
            depth[node.index()] = depth[tree.parent(node).unwrap().index()] + 1;
        }
        if tree.is_leaf(node) {
            sackin += depth[node.index()];
            max_depth = max_depth.max(depth[node.index()]);
        }
    }
    let resolution = if leaves >= 3 {
        (internal.saturating_sub(1)) as f64 / (leaves - 2) as f64
    } else {
        1.0
    };
    TreeStats {
        leaves,
        internal,
        cherries,
        sackin,
        colless,
        max_depth,
        total_length,
        resolution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::{parse_newick, TaxaPolicy};
    use crate::taxa::TaxonSet;

    fn stats(s: &str) -> TreeStats {
        let mut taxa = TaxonSet::new();
        tree_stats(&parse_newick(s, &mut taxa, TaxaPolicy::Grow).unwrap())
    }

    #[test]
    fn balanced_tree() {
        let s = stats("(((A,B),(C,D)),((E,F),(G,H)));");
        assert_eq!(s.leaves, 8);
        assert_eq!(s.internal, 7);
        assert_eq!(s.cherries, 4);
        assert_eq!(s.colless, 0, "perfectly balanced");
        assert_eq!(s.sackin, 8 * 3);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.resolution, 1.0);
    }

    #[test]
    fn caterpillar_tree() {
        let s = stats("((((((A,B),C),D),E),F),G);");
        assert_eq!(s.leaves, 7);
        assert_eq!(s.cherries, 1);
        // Colless of an n-caterpillar: sum_{k=1}^{n-2} k... node over {A,B}
        // contributes 0, then |2-1| + |3-1| + ... + |6-1| = 0+1+2+3+4+5
        assert_eq!(s.colless, 15);
        assert_eq!(s.max_depth, 6);
        // Sackin: depths 6,6,5,4,3,2,1
        assert_eq!(s.sackin, 27);
        assert_eq!(s.resolution, 1.0);
    }

    #[test]
    fn star_tree_resolution() {
        let s = stats("(A,B,C,D,E);");
        assert_eq!(s.internal, 1);
        assert_eq!(s.resolution, 0.0);
        assert_eq!(s.cherries, 0);
    }

    #[test]
    fn branch_lengths_summed() {
        let s = stats("((A:1,B:2):0.5,(C:3,D:4):0.5);");
        assert!((s.total_length - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tree() {
        let s = tree_stats(&Tree::new());
        assert_eq!(s.leaves, 0);
        assert_eq!(s.resolution, 0.0);
    }

    #[test]
    fn yule_trees_are_less_imbalanced_than_caterpillars() {
        // sanity link to the simulators' output shape
        let cat = stats("(((((((((A,B),C),D),E),F),G),H),I),J);");
        let bal = stats("((((A,B),(C,D)),(E,F)),((G,H),(I,J)));");
        assert!(bal.colless < cat.colless);
        assert!(bal.sackin < cat.sackin);
    }
}
