//! Restriction of trees to taxa subsets.
//!
//! Supertree-style variable-taxa RF (paper §VII.E) reduces every tree to
//! the intersection of the taxon sets before comparing. [`Tree::restricted`]
//! computes the induced subtree on a keep-set: unkept leaves are pruned and
//! the resulting degree-2 nodes are suppressed (their branch lengths sum).

use crate::tree::{NodeId, Tree};
use crate::PhyloError;
use phylo_bitset::Bits;

impl Tree {
    /// The induced subtree on the taxa whose bits are set in `keep`.
    ///
    /// Returns [`PhyloError::Empty`] if no leaf survives. The result is
    /// compacted: its arena holds only reachable nodes.
    pub fn restricted(&self, keep: &Bits) -> Result<Tree, PhyloError> {
        let mut t = self.clone();
        let root = t.root().ok_or(PhyloError::Empty("tree"))?;
        // Postorder guarantees children are handled before their parent, so
        // an internal node sees its final child count.
        for node in self.postorder() {
            if node == root {
                continue;
            }
            let prune = if t.is_leaf(node) {
                match t.taxon(node) {
                    Some(taxon) => !keep.get(taxon.index()),
                    None => true, // childless internal left by earlier pruning
                }
            } else {
                false
            };
            if prune {
                if let Some(parent) = t.parent(node) {
                    t.detach_child(parent, node);
                }
            }
        }
        if t.is_leaf(root) && t.taxon(root).is_none() {
            return Err(PhyloError::Empty("restricted tree (no taxa kept)"));
        }
        t.suppress_unifurcations();
        Ok(t.compacted())
    }

    /// Rebuild the arena keeping only nodes reachable from the root,
    /// renumbering ids. Restriction and SPR leave garbage nodes behind;
    /// compacting matters when many restricted trees are held at once.
    pub fn compacted(&self) -> Tree {
        let mut out = Tree::new();
        let Some(root) = self.root() else { return out };
        let new_root = out.add_root();
        out.set_taxon(new_root, self.taxon(root));
        out.set_length(new_root, self.length(root));
        // Walk (old, new) pairs together: every node is visited with its
        // clone already in hand, so no id-translation table is needed.
        let mut stack: Vec<(NodeId, NodeId)> = vec![(root, new_root)];
        while let Some((old, new)) = stack.pop() {
            for &c in self.children(old) {
                let nc = out.add_child(new);
                out.set_taxon(nc, self.taxon(c));
                out.set_length(nc, self.length(c));
                stack.push((c, nc));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::{parse_newick, write_newick, TaxaPolicy};
    use crate::taxa::TaxonSet;

    fn setup(s: &str) -> (Tree, TaxonSet) {
        let mut taxa = TaxonSet::new();
        let t = parse_newick(s, &mut taxa, TaxaPolicy::Grow).unwrap();
        (t, taxa)
    }

    fn keep(taxa: &TaxonSet, labels: &[&str]) -> Bits {
        Bits::from_indices(
            taxa.len(),
            labels.iter().map(|l| taxa.get(l).unwrap().index()),
        )
    }

    #[test]
    fn restriction_drops_taxa_and_suppresses() {
        let (t, taxa) = setup("((((A,B),C),D),((E,F),(G,H)));");
        let r = t.restricted(&keep(&taxa, &["A", "C", "E", "G"])).unwrap();
        assert_eq!(r.leaf_count(), 4);
        assert!(r.validate(&taxa).is_ok());
        // induced topology: ((A,C),(E,G)) — one non-trivial split {A,C}
        let bps = r.bipartitions(&taxa);
        assert_eq!(bps.len(), 1);
        let expected = keep(&taxa, &["A", "C"]);
        assert_eq!(bps[0].bits(), &expected);
    }

    #[test]
    fn restriction_to_all_taxa_is_identity_topology() {
        let (t, taxa) = setup("((((A,B),C),D),(E,(F,(G,H))));");
        let r = t.restricted(&Bits::ones(taxa.len())).unwrap();
        let mut a: Vec<String> = t
            .bipartitions(&taxa)
            .iter()
            .map(|b| b.to_string())
            .collect();
        let mut b: Vec<String> = r
            .bipartitions(&taxa)
            .iter()
            .map(|b| b.to_string())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn restriction_to_nothing_errors() {
        let (t, taxa) = setup("((A,B),(C,D));");
        assert!(t.restricted(&Bits::zeros(taxa.len())).is_err());
    }

    #[test]
    fn restriction_to_single_leaf() {
        let (t, taxa) = setup("((A,B),(C,D));");
        let r = t.restricted(&keep(&taxa, &["C"])).unwrap();
        assert_eq!(r.leaf_count(), 1);
        assert!(r.bipartitions(&taxa).is_empty());
    }

    #[test]
    fn compacted_drops_garbage_nodes() {
        let (mut t, taxa) = setup("((A,B),(C,D));");
        let root = t.root().unwrap();
        let left = t.children(root)[0];
        t.detach_child(root, left);
        assert_eq!(t.num_nodes(), 7, "arena keeps detached nodes");
        let c = t.compacted();
        assert_eq!(c.num_nodes(), 4, "root + detached-right subtree");
        assert_eq!(c.leaf_count(), 2);
        let s = write_newick(&c, &taxa);
        assert!(s.contains('C') && s.contains('D') && !s.contains('A'));
    }

    #[test]
    fn restriction_merges_branch_lengths() {
        let (t, taxa) = setup("(((A:1,B:2):3,C:4):5,D:6);");
        let r = t.restricted(&keep(&taxa, &["A", "C", "D"])).unwrap();
        // A's path absorbed the suppressed (A,B) node: 1 + 3 = 4
        let a_node = r
            .leaves()
            .into_iter()
            .find(|&l| r.taxon(l) == Some(taxa.get("A").unwrap()))
            .unwrap();
        assert_eq!(r.length(a_node), Some(4.0));
    }
}
