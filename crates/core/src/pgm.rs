//! A PGM-Hashed-style pairwise comparator (Pattengale, Gottlieb & Moret
//! 2007, "Efficiently computing the Robinson-Foulds metric").
//!
//! The paper's related-work section names PGM-Hashed alongside HashRF as
//! the state of the art it improves on: both "use hash functions with
//! compression to speed up computations while allowing for collisions",
//! and both remain 1-versus-1 — `q × r` comparisons happen even though
//! each comparison is fast.
//!
//! The scheme: every taxon draws a random `b`-bit vector; a bipartition's
//! signature is the wrapping sum of its member vectors, canonicalized to
//! the lesser of (sum, complement-sum) so the two sides of a split agree.
//! A tree becomes a **sorted signature list**, and the RF of two trees is
//! a linear merge of their lists. Distinct splits collide with probability
//! `≈ (#splits)² / 2^b` — real collisions at small `b`, vanishing at 64
//! bits, mirroring the original's accuracy/width trade-off (and HashRF's).

use phylo::{TaxonSet, Tree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shared randomness: the per-taxon vectors every signature sums over.
#[derive(Debug, Clone)]
pub struct PgmHasher {
    taxon_vectors: Vec<u64>,
    mask: u64,
}

/// One tree preprocessed into its sorted signature list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSignature {
    signatures: Vec<u64>,
}

impl PgmHasher {
    /// Draw per-taxon vectors for an `n_taxa` namespace with `bits`-wide
    /// signatures (1..=64).
    pub fn new(n_taxa: usize, bits: u32, seed: u64) -> Self {
        assert!((1..=64).contains(&bits), "signature width must be 1..=64");
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        PgmHasher {
            taxon_vectors: (0..n_taxa).map(|_| rng.random_range(0..u64::MAX)).collect(),
            mask,
        }
    }

    /// Preprocess one tree: signature per non-trivial split, sorted.
    pub fn signature(&self, tree: &Tree, taxa: &TaxonSet) -> TreeSignature {
        assert_eq!(taxa.len(), self.taxon_vectors.len(), "namespace mismatch");
        // total = Σ over ALL taxa, to derive the complement sum cheaply
        let total: u64 = self
            .taxon_vectors
            .iter()
            .fold(0u64, |acc, &v| acc.wrapping_add(v));
        let mut signatures: Vec<u64> = tree
            .bipartitions(taxa)
            .into_iter()
            .map(|bp| {
                let side: u64 = bp
                    .bits()
                    .iter_ones()
                    .fold(0u64, |acc, i| acc.wrapping_add(self.taxon_vectors[i]));
                let co = total.wrapping_sub(side);
                // orientation-free: take the lesser masked sum
                (side & self.mask).min(co & self.mask)
            })
            .collect();
        signatures.sort_unstable();
        TreeSignature { signatures }
    }

    /// RF distance of two preprocessed trees: symmetric difference of the
    /// sorted signature multisets by linear merge.
    pub fn rf(&self, a: &TreeSignature, b: &TreeSignature) -> usize {
        let (x, y) = (&a.signatures, &b.signatures);
        let mut i = 0;
        let mut j = 0;
        let mut shared = 0usize;
        while i < x.len() && j < y.len() {
            match x[i].cmp(&y[j]) {
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        x.len() + y.len() - 2 * shared
    }

    /// Average RF of one query against preprocessed references — the
    /// 1-versus-1 loop the paper contrasts with BFHRF's single hash probe.
    pub fn average_rf(&self, query: &TreeSignature, refs: &[TreeSignature]) -> f64 {
        assert!(!refs.is_empty(), "empty reference collection");
        let total: usize = refs.iter().map(|r| self.rf(query, r)).sum();
        total as f64 / refs.len() as f64
    }
}

impl TreeSignature {
    /// Number of non-trivial splits signed.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether the tree had no non-trivial splits.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::{BipartitionSet, TreeCollection};

    fn collection() -> TreeCollection {
        TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n((A,B),((C,E),(D,F)));",
        )
        .unwrap()
    }

    #[test]
    fn wide_signatures_match_exact_rf() {
        let coll = collection();
        let h = PgmHasher::new(coll.taxa.len(), 64, 42);
        let sigs: Vec<_> = coll
            .trees
            .iter()
            .map(|t| h.signature(t, &coll.taxa))
            .collect();
        let sets: Vec<_> = coll
            .trees
            .iter()
            .map(|t| BipartitionSet::from_tree(t, &coll.taxa))
            .collect();
        for i in 0..coll.len() {
            for j in 0..coll.len() {
                assert_eq!(
                    h.rf(&sigs[i], &sigs[j]),
                    sets[i].rf_distance(&sets[j]),
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn orientation_free_signatures() {
        // the same unrooted tree rooted differently must sign identically
        let mut taxa = phylo::TaxonSet::new();
        let trees = phylo::read_trees_from_str(
            "(((A,B),C),(D,(E,F)));\n((A,B),(C,(D,(E,F))));",
            &mut taxa,
            phylo::TaxaPolicy::Grow,
        )
        .unwrap();
        let h = PgmHasher::new(taxa.len(), 64, 7);
        assert_eq!(h.signature(&trees[0], &taxa), h.signature(&trees[1], &taxa));
    }

    #[test]
    fn average_matches_bfhrf() {
        let coll = collection();
        let h = PgmHasher::new(coll.taxa.len(), 64, 11);
        let sigs: Vec<_> = coll
            .trees
            .iter()
            .map(|t| h.signature(t, &coll.taxa))
            .collect();
        let bfh = crate::Bfh::build(&coll.trees, &coll.taxa);
        let scores = crate::bfhrf_all(&coll.trees, &coll.taxa, &bfh).unwrap();
        for s in &scores {
            let pgm = h.average_rf(&sigs[s.index], &sigs);
            assert!((pgm - s.rf.average()).abs() < 1e-12, "tree {}", s.index);
        }
    }

    #[test]
    fn narrow_signatures_collide() {
        // 2-bit signatures on a 12-split collection must conflate splits
        let coll = collection();
        let h = PgmHasher::new(coll.taxa.len(), 2, 3);
        let sigs: Vec<_> = coll
            .trees
            .iter()
            .map(|t| h.signature(t, &coll.taxa))
            .collect();
        let sets: Vec<_> = coll
            .trees
            .iter()
            .map(|t| BipartitionSet::from_tree(t, &coll.taxa))
            .collect();
        let mut wrong = 0;
        for i in 0..coll.len() {
            for j in 0..coll.len() {
                if h.rf(&sigs[i], &sigs[j]) != sets[i].rf_distance(&sets[j]) {
                    wrong += 1;
                }
            }
        }
        assert!(wrong > 0, "2-bit signatures should err somewhere");
    }

    #[test]
    fn deterministic_given_seed() {
        let coll = collection();
        let h1 = PgmHasher::new(coll.taxa.len(), 64, 5);
        let h2 = PgmHasher::new(coll.taxa.len(), 64, 5);
        for t in &coll.trees {
            assert_eq!(h1.signature(t, &coll.taxa), h2.signature(t, &coll.taxa));
        }
    }

    #[test]
    fn empty_and_small_trees() {
        let mut taxa = phylo::TaxonSet::new();
        let t = phylo::parse_newick("((A,B),C);", &mut taxa, phylo::TaxaPolicy::Grow).unwrap();
        let h = PgmHasher::new(taxa.len(), 64, 1);
        let sig = h.signature(&t, &taxa);
        assert!(sig.is_empty(), "3-leaf trees have no non-trivial splits");
        assert_eq!(h.rf(&sig, &sig), 0);
    }
}
