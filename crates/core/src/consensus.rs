//! Consensus trees straight from the frequency hash.
//!
//! "We can simplify to the average RF value for most consensus type
//! analyses" (paper §VIII) — and the [`Bfh`] already holds everything a
//! split-frequency consensus needs: the majority-rule consensus keeps the
//! splits present in more than `threshold · r` trees, the strict consensus
//! those present in all. Splits above half-frequency are pairwise
//! compatible, so assembly is a laminar-family construction, no
//! compatibility solver needed.

use crate::bfh::Bfh;
use crate::CoreError;
use phylo::{TaxonId, TaxonSet, Tree};
use phylo_bitset::Bits;

/// Majority-rule consensus: splits with frequency strictly greater than
/// `threshold · r`, assembled into a tree. `threshold` must be in
/// `[0.5, 1.0)`; 0.5 is the classic majority rule.
///
/// ```
/// use bfhrf::{Bfh, consensus::majority_consensus};
/// use phylo::TreeCollection;
///
/// let coll = TreeCollection::parse(
///     "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));").unwrap();
/// let bfh = Bfh::build(&coll.trees, &coll.taxa);
/// let tree = majority_consensus(&bfh, &coll.taxa, 0.5).unwrap();
/// // the 2/3-majority split {A,B} survives
/// assert_eq!(tree.bipartitions(&coll.taxa).len(), 1);
/// ```
pub fn majority_consensus(bfh: &Bfh, taxa: &TaxonSet, threshold: f64) -> Result<Tree, CoreError> {
    if !(0.5..1.0).contains(&threshold) {
        return Err(CoreError::TaxaMismatch(format!(
            "consensus threshold {threshold} outside [0.5, 1.0)"
        )));
    }
    if bfh.n_trees() == 0 {
        return Err(CoreError::EmptyReference);
    }
    let cut = threshold * bfh.n_trees() as f64;
    let selected: Vec<Bits> = bfh
        .iter()
        .filter(|(_, count)| f64::from(*count) > cut)
        .map(|(bits, _)| bits.clone())
        .collect();
    assemble(selected, taxa)
}

/// Strict consensus: only splits present in every reference tree.
pub fn strict_consensus(bfh: &Bfh, taxa: &TaxonSet) -> Result<Tree, CoreError> {
    if bfh.n_trees() == 0 {
        return Err(CoreError::EmptyReference);
    }
    let r = bfh.n_trees() as u32;
    let selected: Vec<Bits> = bfh
        .iter()
        .filter(|(_, count)| *count == r)
        .map(|(bits, _)| bits.clone())
        .collect();
    assemble(selected, taxa)
}

/// Greedy ("extended majority rule") consensus: walk the splits by
/// descending frequency (ties by canonical order, for determinism) and
/// keep each one that is compatible with everything kept so far. The
/// result refines the majority-rule tree and is always fully specified by
/// the collection.
pub fn greedy_consensus(bfh: &Bfh, taxa: &TaxonSet) -> Result<Tree, CoreError> {
    if bfh.n_trees() == 0 {
        return Err(CoreError::EmptyReference);
    }
    let mut splits: Vec<(Bits, u32)> = bfh
        .iter()
        .map(|(bits, count)| (bits.clone(), count))
        .collect();
    splits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let n = taxa.len();
    let mut kept: Vec<Bits> = Vec::new();
    for (candidate, _) in splits {
        if kept.iter().all(|k| splits_compatible(k, &candidate, n)) {
            kept.push(candidate);
        }
    }
    assemble(kept, taxa)
}

/// Two canonical splits are compatible iff some tree can contain both:
/// one side of one must nest inside, contain, or avoid one side of the
/// other. For canonical encodings `a`, `b` (both containing taxon 0) over
/// the full namespace, that reduces to `a ⊆ b`, `b ⊆ a`, or
/// `a ∪ b = everything` (their complements are disjoint).
pub fn splits_compatible(a: &Bits, b: &Bits, n_taxa: usize) -> bool {
    a.is_subset(b) || b.is_subset(a) || a.union(b).count_ones() as usize == n_taxa
}

/// Assemble a tree from pairwise-compatible canonical splits over the full
/// namespace.
///
/// Rooted view: hang the tree off taxon 0. Each canonical split (which
/// contains taxon 0 on its set side) corresponds to the clade formed by
/// its complement; compatibility makes the clades a laminar family, so
/// each clade's parent is its unique minimal strict superset.
fn assemble(splits: Vec<Bits>, taxa: &TaxonSet) -> Result<Tree, CoreError> {
    let n = taxa.len();
    let universe = {
        let mut u = Bits::ones(n);
        u.clear(0);
        u
    };
    // clades: complement sides, largest first so parents precede children
    let mut clades: Vec<Bits> = splits
        .iter()
        .map(|s| {
            let mut c = s.clone();
            c.complement();
            c
        })
        .collect();
    clades.sort_by(|a, b| b.count_ones().cmp(&a.count_ones()).then_with(|| a.cmp(b)));

    let mut tree = Tree::new();
    let root = tree.add_root();
    tree.add_leaf(root, TaxonId(0));
    let backbone = tree.add_child(root); // the node covering `universe`
                                         // nodes created so far with their covered sets, for parent search
    let mut covered: Vec<(Bits, phylo::NodeId)> = vec![(universe, backbone)];

    for clade in clades {
        // parent = the smallest already-created superset; `covered` is
        // filled largest-first, so scanning from the end finds it.
        let parent = covered
            .iter()
            .rev()
            .find(|(set, _)| clade.is_subset(set))
            .map(|&(_, node)| node)
            .ok_or_else(|| {
                CoreError::Structure(format!(
                    "consensus clade {clade} has no covering superset — \
                     split set is not over the full namespace"
                ))
            })?;
        let node = tree.add_child(parent);
        covered.push((clade, node));
    }

    // attach each taxon under the smallest clade containing it
    for t in 1..n {
        let parent = covered
            .iter()
            .rev()
            .find(|(set, _)| set.get(t))
            .map(|&(_, node)| node)
            .ok_or_else(|| {
                CoreError::Structure(format!(
                    "taxon {t} is outside every consensus clade — \
                     split set is not over the full namespace"
                ))
            })?;
        tree.add_leaf(parent, TaxonId(t as u32));
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::{BipartitionSet, TreeCollection};

    fn bfh_of(text: &str) -> (TreeCollection, Bfh) {
        let coll = TreeCollection::parse(text).unwrap();
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        (coll, bfh)
    }

    #[test]
    fn consensus_of_identical_trees_is_that_tree() {
        let one = "((A,B),((C,D),(E,F)));\n";
        let (coll, bfh) = bfh_of(&one.repeat(5));
        let strict = strict_consensus(&bfh, &coll.taxa).unwrap();
        let maj = majority_consensus(&bfh, &coll.taxa, 0.5).unwrap();
        let original = BipartitionSet::from_tree(&coll.trees[0], &coll.taxa);
        assert_eq!(
            original.rf_distance(&BipartitionSet::from_tree(&strict, &coll.taxa)),
            0
        );
        assert_eq!(
            original.rf_distance(&BipartitionSet::from_tree(&maj, &coll.taxa)),
            0
        );
        assert!(strict.validate(&coll.taxa).is_ok());
    }

    #[test]
    fn majority_keeps_two_thirds_splits() {
        // two trees agree, one disagrees everywhere possible
        let (coll, bfh) =
            bfh_of("((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n(((A,C),E),(B,(D,F)));");
        let maj = majority_consensus(&bfh, &coll.taxa, 0.5).unwrap();
        let expect = BipartitionSet::from_tree(&coll.trees[0], &coll.taxa);
        let got = BipartitionSet::from_tree(&maj, &coll.taxa);
        assert_eq!(expect.rf_distance(&got), 0, "majority = the 2/3 topology");
    }

    #[test]
    fn strict_consensus_collapses_conflicts() {
        let (coll, bfh) = bfh_of("((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));");
        let strict = strict_consensus(&bfh, &coll.taxa).unwrap();
        let got = BipartitionSet::from_tree(&strict, &coll.taxa);
        // only {A,B} (equivalently {C,D,E,F}) survives
        assert_eq!(got.len(), 1);
        assert!(strict.validate(&coll.taxa).is_ok());
        // every surviving split has full frequency
        for bp in strict.bipartitions(&coll.taxa) {
            assert_eq!(bfh.frequency(bp.bits()), 2);
        }
    }

    #[test]
    fn consensus_splits_respect_threshold() {
        let (coll, bfh) = bfh_of(
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));\n(((A,C),E),(B,(D,F)));",
        );
        for threshold in [0.5, 0.6, 0.74, 0.9] {
            let t = majority_consensus(&bfh, &coll.taxa, threshold).unwrap();
            assert!(t.validate(&coll.taxa).is_ok());
            let cut = threshold * bfh.n_trees() as f64;
            for bp in t.bipartitions(&coll.taxa) {
                assert!(
                    f64::from(bfh.frequency(bp.bits())) > cut,
                    "split {bp} below threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn higher_thresholds_are_coarser() {
        let (coll, bfh) =
            bfh_of("((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));");
        let fine = majority_consensus(&bfh, &coll.taxa, 0.5).unwrap();
        let coarse = majority_consensus(&bfh, &coll.taxa, 0.9).unwrap();
        assert!(coarse.bipartitions(&coll.taxa).len() <= fine.bipartitions(&coll.taxa).len());
    }

    #[test]
    fn star_when_nothing_agrees() {
        let (coll, bfh) = bfh_of("((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));");
        let maj = majority_consensus(&bfh, &coll.taxa, 0.5).unwrap();
        assert_eq!(
            maj.bipartitions(&coll.taxa).len(),
            0,
            "total conflict → star"
        );
        assert_eq!(maj.leaf_count(), 4);
        assert!(maj.validate(&coll.taxa).is_ok());
    }

    #[test]
    fn splits_compatible_cases() {
        let n = 6;
        let ab = Bits::from_bitstring("000011").unwrap(); // {A,B}
        let abc = Bits::from_bitstring("000111").unwrap(); // {A,B,C}
        let acdef = Bits::from_bitstring("111101").unwrap(); // complement of {B}... {A,C,D,E,F}
        let axef = Bits::from_bitstring("110001").unwrap(); // {A,E,F}
        assert!(splits_compatible(&ab, &abc, n), "nested");
        assert!(splits_compatible(&abc, &ab, n), "nested, reversed");
        assert!(splits_compatible(&ab, &acdef, n), "complements disjoint");
        assert!(
            !splits_compatible(&abc, &axef, n),
            "{{A,B,C}} vs {{A,E,F}} cross"
        );
        assert!(splits_compatible(&ab, &ab, n), "self");
    }

    #[test]
    fn greedy_refines_majority() {
        // 2:1:1 split vote on the deep edge; greedy resolves where
        // majority leaves a polytomy
        let (coll, bfh) = bfh_of(
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));\n((A,B),((C,F),(D,E)));",
        );
        let maj = majority_consensus(&bfh, &coll.taxa, 0.5).unwrap();
        let greedy = greedy_consensus(&bfh, &coll.taxa).unwrap();
        assert!(greedy.validate(&coll.taxa).is_ok());
        let maj_splits = maj.bipartitions(&coll.taxa).len();
        let greedy_splits = greedy.bipartitions(&coll.taxa).len();
        assert!(
            greedy_splits >= maj_splits,
            "{greedy_splits} < {maj_splits}"
        );
        // every majority split survives in the greedy tree
        let greedy_set: std::collections::HashSet<String> = greedy
            .bipartitions(&coll.taxa)
            .iter()
            .map(|b| b.to_string())
            .collect();
        for bp in maj.bipartitions(&coll.taxa) {
            assert!(greedy_set.contains(&bp.to_string()));
        }
        // greedy kept the plurality resolution {C,D}
        let cd = {
            let mut b = Bits::from_indices(6, [2, 3]);
            b.complement(); // canonical side contains taxon 0
            b.to_string()
        };
        assert!(greedy_set.contains(&cd), "{greedy_set:?}");
    }

    #[test]
    fn greedy_on_unanimous_collection_is_the_tree() {
        let (coll, bfh) = bfh_of(&"((A,B),((C,D),(E,F)));\n".repeat(3));
        let greedy = greedy_consensus(&bfh, &coll.taxa).unwrap();
        let want = BipartitionSet::from_tree(&coll.trees[0], &coll.taxa);
        let got = BipartitionSet::from_tree(&greedy, &coll.taxa);
        assert_eq!(want.rf_distance(&got), 0);
    }

    #[test]
    fn invalid_threshold_rejected() {
        let (coll, bfh) = bfh_of("((A,B),(C,D));");
        assert!(majority_consensus(&bfh, &coll.taxa, 0.4).is_err());
        assert!(majority_consensus(&bfh, &coll.taxa, 1.0).is_err());
    }

    #[test]
    fn empty_hash_rejected() {
        let (coll, _) = bfh_of("((A,B),(C,D));");
        let empty = Bfh::empty(coll.taxa.len());
        assert_eq!(
            strict_consensus(&empty, &coll.taxa).unwrap_err(),
            CoreError::EmptyReference
        );
    }
}
