//! # BFHRF — Bipartition Frequency Hash Robinson-Foulds
//!
//! Rust implementation of the algorithm from *"Scalable and Extensible
//! Robinson-Foulds for Comparative Phylogenetics"* (Chon et al., IPDPSW
//! 2022), together with every baseline the paper compares against.
//!
//! ## The idea
//!
//! Computing the average Robinson-Foulds distance of each query tree in `Q`
//! against a reference collection `R` classically needs `q × r` tree-vs-tree
//! comparisons. BFHRF instead builds a **bipartition frequency hash**
//! [`Bfh`] over `R` — a collision-free map from canonical bipartition
//! bitmasks to how many reference trees contain them — and then answers
//! each query with a single tree-vs-hash comparison:
//!
//! ```text
//! RF_left  = sumBFHR − Σ_{b' ∈ B(T')} BFH[b']        (refs' splits missing from T')
//! RF_right = Σ_{b' ∈ B(T')} (r − BFH[b'])            (T's splits missing from refs)
//! avgRF(T') = (RF_left + RF_right) / r
//! ```
//!
//! Query comparisons are independent, so they parallelize embarrassingly
//! ([`BfhrfComparator`]`::parallel(true)` runs them on rayon).
//!
//! ## What's in the crate
//!
//! | Module | Contents |
//! |---|---|
//! | [`bfh`] | The frequency hash: sequential/sharded builds, incremental add/remove, preprocessing hooks |
//! | [`builder`] | [`BfhBuilder`] — the one configurable front door for hash construction |
//! | [`guard`] | Run hardening: [`RunBudget`], [`CancelToken`], degradation log, panic isolation |
//! | [`comparator`] | The [`Comparator`] trait unifying every average-RF engine (BFHRF, DS/DSMP, HashRF, Day) |
//! | [`rf`] | BFHRF itself (Algorithm 2): sequential, parallel, streaming |
//! | [`seqrf`] | The DS/DSMP baselines (Algorithm 1): sequential and rayon-parallel all-pairs loops |
//! | [`hashrf`] | A faithful HashRF reimplementation: two-level universal hashing, all-vs-all `r × r` matrix, configurable ID width (collisions) |
//! | [`day`] | Day's O(n) pairwise RF — the independent correctness oracle |
//! | [`matrix`] | Collision-free all-vs-all RF matrices via a bipartition inverted index |
//! | [`consensus`] | Majority-rule and strict consensus straight from the hash |
//! | [`variants`] | Generalized RF: split weighting (unit, information content), size filtering, normalization |
//! | [`variable_taxa`] | RF across collections with differing taxa via restriction to the common set |
//! | [`select`] | Best-query-tree selection (the paper's motivating use) |
//! | [`pgm`] | A PGM-Hashed-style comparator (the other hashed 1-vs-1 method the paper cites) |
//! | [`compact`] | Compressed-key hash (the paper's §IX lossless-compression extension) |
//! | [`support`] | Split-support annotation from the hash (§IX "other applications of a BFH") |
//! | [`cluster`] | k-medoids + silhouette over RF matrices (the clustering workload of §I) |
//!
//! ## Quickstart
//!
//! ```
//! use bfhrf::{Bfh, bfhrf_average};
//! use phylo::TreeCollection;
//!
//! let refs = TreeCollection::parse("((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));").unwrap();
//! let queries = TreeCollection::parse("((A,B),(C,D));").unwrap();
//!
//! let bfh = Bfh::build(&refs.trees, &refs.taxa);
//! let avg = bfhrf_average(&queries.trees[0], &refs.taxa, &bfh);
//! // distance 0 to two refs, 2 to one: average 2/3
//! assert!((avg.average() - 2.0 / 3.0).abs() < 1e-12);
//! ```
//!
//! (The query collection above happens to share its label→bit assignment
//! with the references; in real use parse both against one
//! [`phylo::TaxonSet`] — see `examples/`.)

pub mod bfh;
pub mod builder;
pub mod cluster;
pub mod compact;
pub mod comparator;
pub mod consensus;
pub mod day;
pub mod error;
pub mod frozen;
pub mod guard;
pub mod hashrf;
pub mod matrix;
pub mod pgm;
pub mod rf;
pub mod select;
pub mod seqrf;
pub mod support;
pub mod variable_taxa;
pub mod variants;

pub use bfh::Bfh;
pub use builder::BfhBuilder;
pub use compact::CompactBfh;
pub use comparator::{
    hashrf_or_degrade, BfhrfComparator, Comparator, DayComparator, FrozenComparator,
    HashRfComparator, SetComparator,
};
pub use day::day_rf;
pub use error::CoreError;
pub use frozen::{simd_available, FrozenBfh, FrozenLayout, MapGuard, ProbeMode};
pub use guard::{CancelToken, Degradation, EvictFn, RunBudget, RunGuard};
pub use hashrf::{HashRf, HashRfConfig};
pub use rf::{bfhrf_all, bfhrf_average, QueryScore, RfAverage, SplitFrequency};
pub use select::best_query;
pub use seqrf::sequential_rf;
