//! Run-level resource guards: budgets, cancellation, degradation, panic
//! isolation.
//!
//! The paper's HashRF baseline was OOM-killed by the kernel on the larger
//! all-vs-all runs and long builds had no way to stop early. This module
//! centralizes the defensive machinery the rest of the core threads through
//! its hot paths:
//!
//! * [`RunBudget`] — an optional byte ceiling and wall-clock deadline. Code
//!   that is about to allocate something large calls
//!   [`RunBudget::check_alloc`] *before* allocating, turning a kernel OOM
//!   kill into a typed [`CoreError::ResourceLimit`].
//! * [`CancelToken`] — a cooperative cancellation flag shared across
//!   threads. Builders and comparators poll it at tree granularity and
//!   return [`CoreError::Cancelled`].
//! * [`Degradation`] — a recorded decision to fall back to a cheaper
//!   algorithm (e.g. HashRF → BFHRF when the r×r matrix will not fit)
//!   instead of dying.
//! * [`isolate`] — a `catch_unwind` wrapper converting a worker panic into
//!   [`CoreError::WorkerPanic`] so one poisoned tree cannot abort a 100k-tree
//!   run.
//!
//! [`RunGuard`] bundles all of the above and is what the public APIs accept;
//! `RunGuard::default()` is the permissive no-op guard.

use crate::error::CoreError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Resource ceilings for one run. `None` fields are unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunBudget {
    /// Maximum bytes any single guarded allocation may reach.
    pub max_bytes: Option<usize>,
    /// Wall-clock instant after which the run is cancelled.
    pub deadline: Option<Instant>,
}

impl RunBudget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// A budget with only a byte ceiling.
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        RunBudget {
            max_bytes: Some(max_bytes),
            deadline: None,
        }
    }

    /// Whether `bytes` fits under the byte ceiling.
    pub fn fits(&self, bytes: usize) -> bool {
        self.max_bytes.is_none_or(|max| bytes <= max)
    }

    /// Refuse an allocation of `bytes` for `what` if it exceeds the ceiling.
    /// Call *before* allocating — the point is to fail typed, not OOM.
    pub fn check_alloc(&self, what: &str, bytes: usize) -> Result<(), CoreError> {
        match self.max_bytes {
            Some(max) if bytes > max => {
                phylo_obs::global()
                    .counter("core_budget_refusals_total", &[])
                    .inc();
                Err(CoreError::ResourceLimit(format!(
                    "{what} needs {bytes} bytes, budget is {max}"
                )))
            }
            _ => Ok(()),
        }
    }

    /// Like [`RunBudget::check_alloc`], but for caches that can shed load:
    /// `used` bytes are already resident, `bytes` more are wanted, and
    /// `evict` is asked to release the shortfall before the budget gives
    /// up. The hook returns how many bytes it actually freed (it may free
    /// fewer — e.g. every candidate is pinned); only the remaining
    /// shortfall is refused.
    pub fn check_alloc_or_evict(
        &self,
        what: &str,
        bytes: usize,
        used: usize,
        evict: &mut EvictFn<'_>,
    ) -> Result<(), CoreError> {
        let Some(max) = self.max_bytes else {
            return Ok(());
        };
        let wanted = used.saturating_add(bytes);
        if wanted <= max {
            return Ok(());
        }
        let freed = evict(wanted - max);
        let used = used.saturating_sub(freed);
        if used.saturating_add(bytes) <= max {
            return Ok(());
        }
        phylo_obs::global()
            .counter("core_budget_refusals_total", &[])
            .inc();
        Err(CoreError::ResourceLimit(format!(
            "{what} needs {bytes} bytes on top of {used} resident, budget is {max}"
        )))
    }

    /// Error if the deadline has passed.
    pub fn check_deadline(&self, where_: &str) -> Result<(), CoreError> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(CoreError::Cancelled(format!(
                "deadline exceeded during {where_}"
            ))),
            _ => Ok(()),
        }
    }
}

/// An eviction hook handed to [`RunBudget::check_alloc_or_evict`]: given a
/// byte shortfall, release what can be released and report the bytes freed.
pub type EvictFn<'a> = dyn FnMut(usize) -> usize + 'a;

/// A cooperative cancellation flag, cheap to clone and share across threads.
///
/// Long-running loops poll [`CancelToken::checkpoint`] at tree granularity;
/// any holder of a clone can [`CancelToken::cancel`] from another thread
/// (a signal handler, a timeout watchdog, a UI).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Error with [`CoreError::Cancelled`] if cancellation was requested.
    pub fn checkpoint(&self, where_: &str) -> Result<(), CoreError> {
        if self.is_cancelled() {
            Err(CoreError::Cancelled(format!(
                "cancel requested during {where_}"
            )))
        } else {
            Ok(())
        }
    }
}

/// A recorded fallback decision: the run finished, but not the way it was
/// asked to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// What was requested (e.g. `"hashrf"`).
    pub from: String,
    /// What actually ran (e.g. `"bfhrf"`).
    pub to: String,
    /// Why, in one human-readable sentence.
    pub reason: String,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "degraded {} -> {}: {}", self.from, self.to, self.reason)
    }
}

/// Bundled budget + cancel token + degradation log, threaded through the
/// build and comparison pipelines. `RunGuard::default()` never refuses
/// anything — existing call sites keep their semantics for free.
#[derive(Debug, Clone, Default)]
pub struct RunGuard {
    /// Resource ceilings.
    pub budget: RunBudget,
    /// Cooperative cancellation flag.
    pub cancel: CancelToken,
    events: Arc<Mutex<Vec<Degradation>>>,
    panic_at: Option<usize>,
}

impl RunGuard {
    /// A guard with the given budget and a fresh token.
    pub fn with_budget(budget: RunBudget) -> Self {
        RunGuard {
            budget,
            ..RunGuard::default()
        }
    }

    /// Poll both cancellation sources. Called at tree granularity — cheap
    /// (two relaxed atomic loads / one clock read) relative to a traversal.
    pub fn checkpoint(&self, where_: &str) -> Result<(), CoreError> {
        self.cancel.checkpoint(where_)?;
        self.budget.check_deadline(where_)
    }

    /// Refuse an upcoming allocation over budget. See
    /// [`RunBudget::check_alloc`].
    pub fn check_alloc(&self, what: &str, bytes: usize) -> Result<(), CoreError> {
        self.budget.check_alloc(what, bytes)
    }

    /// Record that a fallback happened.
    pub fn record_degradation(&self, from: &str, to: &str, reason: impl Into<String>) {
        phylo_obs::global()
            .counter("core_degradations_total", &[])
            .inc();
        let event = Degradation {
            from: from.to_string(),
            to: to.to_string(),
            reason: reason.into(),
        };
        if let Ok(mut events) = self.events.lock() {
            events.push(event);
        }
    }

    /// Snapshot of recorded degradations, in order.
    pub fn degradations(&self) -> Vec<Degradation> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// Test-only hook: arrange for guarded loops to panic when they reach
    /// item `index`, simulating a poisoned tree inside a rayon worker. The
    /// hook lives on the guard (not in a global), so concurrent runs with
    /// default guards are never affected.
    #[doc(hidden)]
    pub fn inject_panic_at(&mut self, index: usize) {
        self.panic_at = Some(index);
    }

    /// Trip the injected panic if armed for `index`. Called from guarded
    /// worker bodies; a no-op for every guard that never armed the hook.
    #[doc(hidden)]
    #[inline]
    pub fn panic_if_injected(&self, index: usize) {
        if self.panic_at == Some(index) {
            panic!("injected panic at item {index}");
        }
    }
}

/// Run `f`, converting a panic into [`CoreError::WorkerPanic`].
///
/// This is the worker-boundary wrapper for rayon bodies: a panic inside a
/// parallel build or comparison is caught here instead of unwinding through
/// the thread pool and aborting the process. `AssertUnwindSafe` is sound at
/// this boundary because every caller discards the closed-over state on
/// error — nothing partially-mutated is observed afterwards.
pub fn isolate<T>(what: &str, f: impl FnOnce() -> Result<T, CoreError>) -> Result<T, CoreError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            phylo_obs::global()
                .counter("core_worker_panics_total", &[])
                .inc();
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(CoreError::WorkerPanic(format!("{what}: {msg}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_accepts_everything() {
        let b = RunBudget::unlimited();
        assert!(b.check_alloc("x", usize::MAX).is_ok());
        assert!(b.check_deadline("x").is_ok());
        assert!(b.fits(usize::MAX));
    }

    #[test]
    fn byte_ceiling_refuses_typed() {
        let b = RunBudget::with_max_bytes(1024);
        assert!(b.check_alloc("small", 1024).is_ok());
        let err = b.check_alloc("matrix", 1025).unwrap_err();
        let CoreError::ResourceLimit(msg) = err else {
            panic!("wrong variant");
        };
        assert!(msg.contains("matrix"));
        assert!(msg.contains("1025"));
    }

    #[test]
    fn eviction_hook_reclaims_before_refusing() {
        let b = RunBudget::with_max_bytes(100);
        // Fits outright: the hook is never consulted.
        let mut called = false;
        b.check_alloc_or_evict("open", 40, 60, &mut |_| {
            called = true;
            0
        })
        .unwrap();
        assert!(!called);

        // Over budget, hook frees enough: accepted.
        let mut asked = 0;
        b.check_alloc_or_evict("open", 40, 90, &mut |need| {
            asked = need;
            50
        })
        .unwrap();
        assert_eq!(asked, 30, "hook is asked for exactly the shortfall");

        // Hook cannot free enough (everything pinned): typed refusal.
        let err = b
            .check_alloc_or_evict("open", 40, 90, &mut |_| 10)
            .unwrap_err();
        assert!(matches!(err, CoreError::ResourceLimit(_)), "{err}");
        assert!(err.to_string().contains("resident"), "{err}");

        // Unlimited budget never evicts.
        RunBudget::unlimited()
            .check_alloc_or_evict("open", usize::MAX, usize::MAX, &mut |_| {
                panic!("must not evict")
            })
            .unwrap();
    }

    #[test]
    fn elapsed_deadline_cancels() {
        let b = RunBudget {
            max_bytes: None,
            deadline: Some(Instant::now() - Duration::from_secs(1)),
        };
        assert!(matches!(
            b.check_deadline("build"),
            Err(CoreError::Cancelled(_))
        ));
        let future = RunBudget {
            max_bytes: None,
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
        };
        assert!(future.check_deadline("build").is_ok());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(t.checkpoint("x").is_ok());
        t2.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.checkpoint("x"), Err(CoreError::Cancelled(_))));
    }

    #[test]
    fn guard_records_and_reports_degradations() {
        let g = RunGuard::default();
        assert!(g.degradations().is_empty());
        g.record_degradation("hashrf", "bfhrf", "matrix over budget");
        let events = g.degradations();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].from, "hashrf");
        assert!(events[0].to_string().contains("over budget"));
        // Clones share the log.
        let g2 = g.clone();
        g2.record_degradation("a", "b", "c");
        assert_eq!(g.degradations().len(), 2);
    }

    #[test]
    fn isolate_converts_panics() {
        let ok: Result<u32, _> = isolate("w", || Ok(7));
        assert_eq!(ok.unwrap(), 7);
        let err = isolate::<u32>("shard 3", || panic!("poisoned tree"));
        let Err(CoreError::WorkerPanic(msg)) = err else {
            panic!("expected WorkerPanic");
        };
        assert!(msg.contains("shard 3"));
        assert!(msg.contains("poisoned tree"));
        // Errors pass through untouched.
        let passthrough = isolate::<u32>("w", || Err(CoreError::EmptyQuery));
        assert_eq!(passthrough, Err(CoreError::EmptyQuery));
    }
}
