//! A faithful reimplementation of **HashRF** (Sul & Williams 2008), the
//! paper's primary comparator.
//!
//! HashRF computes the all-vs-all RF matrix of **one** collection (Q is R —
//! the restriction the paper criticizes) using two universal hash
//! functions over the bipartition bit vector:
//!
//! * `h1` selects a bucket in a table sized ~`n·r`;
//! * `h2` is a **compressed ID** stored in the bucket instead of the full
//!   bit vector.
//!
//! Two distinct bipartitions that agree on `(h1, h2)` are silently merged —
//! the collision-induced RF error the paper's §III.C discusses. The ID
//! width is configurable here ([`HashRfConfig::id_bits`]); at 64 bits
//! collisions are practically absent (the "options to reduce collisions"
//! setting the paper ran), at 16–24 bits the error becomes measurable,
//! which the `ablation_idwidth` bench quantifies.
//!
//! Memory is dominated by the `r × r` matrix, `O(n² r²)` overall — this is
//! the implementation whose kernel kills at `r = 100000` the paper
//! reports; we enforce the same failure deterministically through
//! [`HashRfConfig::memory_budget_bytes`].

use crate::matrix::TriMatrix;
use crate::CoreError;
use phylo::{TaxonSet, Tree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Tuning knobs for [`HashRf::compute`].
#[derive(Debug, Clone)]
pub struct HashRfConfig {
    /// Width of the compressed bipartition ID in bits (1..=64). 64
    /// reproduces the collision-minimizing configuration.
    pub id_bits: u32,
    /// Hash-table bucket count override; `None` derives `~(n·r)` rounded
    /// to a power of two.
    pub buckets: Option<usize>,
    /// Seed for the universal-hash coefficient vectors.
    pub seed: u64,
    /// Refuse to allocate an RF matrix larger than this many bytes.
    pub memory_budget_bytes: usize,
}

impl Default for HashRfConfig {
    fn default() -> Self {
        HashRfConfig {
            id_bits: 64,
            buckets: None,
            seed: 0x4A5F_9E37_79B9_u64,
            memory_budget_bytes: 6 << 30, // 6 GiB, paper-box-like guard
        }
    }
}

/// The computed all-vs-all RF matrix plus bookkeeping.
#[derive(Debug)]
pub struct HashRf {
    matrix: TriMatrix,
    splits_per_tree: Vec<u16>,
}

impl HashRf {
    /// Run HashRF over a single collection (`Q` is `R`).
    pub fn compute(
        trees: &[Tree],
        taxa: &TaxonSet,
        config: &HashRfConfig,
    ) -> Result<Self, CoreError> {
        if !(1..=64).contains(&config.id_bits) {
            return Err(CoreError::Structure(format!(
                "id_bits must be in 1..=64, got {}",
                config.id_bits
            )));
        }
        if trees.is_empty() {
            return Err(CoreError::EmptyReference);
        }
        let r = trees.len();
        let n = taxa.len();
        let need = TriMatrix::required_bytes(r);
        if need > config.memory_budget_bytes {
            return Err(CoreError::ResourceLimit(format!(
                "HashRF matrix for r={r} needs {need} bytes > budget {} \
                 (the original implementation is OOM-killed here)",
                config.memory_budget_bytes
            )));
        }
        let buckets = config
            .buckets
            .unwrap_or_else(|| (n * r).next_power_of_two().clamp(1 << 10, 1 << 26));
        let bucket_mask = buckets - 1;
        debug_assert!(buckets.is_power_of_two());
        let id_mask = if config.id_bits == 64 {
            u64::MAX
        } else {
            (1u64 << config.id_bits) - 1
        };

        // Universal-hash coefficients: one random word per taxon for each
        // hash function, mirroring HashRF's m1/m2 scheme.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let a: Vec<u64> = (0..n).map(|_| rng.random_range(0..u64::MAX)).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.random_range(0..u64::MAX)).collect();

        // Fill the table with (compressed id, tree index) records.
        let mut table: Vec<Vec<(u64, u32)>> = vec![Vec::new(); buckets];
        let mut splits_per_tree = vec![0u16; r];
        for (t_idx, tree) in trees.iter().enumerate() {
            for bp in tree.bipartitions(taxa) {
                let mut h1 = 0u64;
                let mut h2 = 0u64;
                for i in bp.bits().iter_ones() {
                    h1 = h1.wrapping_add(a[i]);
                    h2 = h2.wrapping_add(b[i]);
                }
                let bucket = (h1 as usize) & bucket_mask;
                table[bucket].push((h2 & id_mask, t_idx as u32));
                splits_per_tree[t_idx] += 1;
            }
        }

        // Count pairwise co-occurrences per (bucket, id) group. Distinct
        // bipartitions colliding on (h1, h2) are merged here — exactly the
        // original's behaviour.
        let mut shared = TriMatrix::zeroed(r);
        for bucket in &mut table {
            bucket.sort_unstable();
            let mut start = 0;
            while start < bucket.len() {
                let id = bucket[start].0;
                let mut end = start + 1;
                while end < bucket.len() && bucket[end].0 == id {
                    end += 1;
                }
                let group = &bucket[start..end];
                for (k, &(_, i)) in group.iter().enumerate() {
                    for &(_, j) in &group[k + 1..] {
                        if i != j {
                            shared.add(i as usize, j as usize, 1);
                        }
                    }
                }
                start = end;
            }
        }

        // shared counts → RF distances. Collisions can push "shared" above
        // the true value; clamp at zero like the original's unsigned math
        // would underflow otherwise.
        let mut matrix = shared;
        for j in 1..r {
            for i in 0..j {
                let s = matrix.get(i, j);
                let total = splits_per_tree[i] + splits_per_tree[j];
                let rf = total.saturating_sub(2 * s.min(total / 2));
                matrix.set(i, j, rf);
            }
        }
        Ok(HashRf {
            matrix,
            splits_per_tree,
        })
    }

    /// Rough bytes a [`HashRf::compute`] run over `r` trees of `n` taxa
    /// will allocate: the `r × r` triangle plus the bucket table with its
    /// `(id, tree)` records. Used by degradation logic to decide *before*
    /// running whether HashRF fits a budget.
    pub fn estimate_bytes(r: usize, n: usize, config: &HashRfConfig) -> usize {
        let matrix = TriMatrix::required_bytes(r);
        let buckets = config
            .buckets
            .unwrap_or_else(|| (n * r).next_power_of_two().clamp(1 << 10, 1 << 26));
        // one Vec header per bucket + ~(n − 3) records of (u64, u32) per tree
        let table = buckets * std::mem::size_of::<Vec<(u64, u32)>>()
            + r.saturating_mul(n.saturating_sub(3))
                .saturating_mul(std::mem::size_of::<(u64, u32)>());
        matrix.saturating_add(table)
    }

    /// RF distance between trees `i` and `j`.
    pub fn rf(&self, i: usize, j: usize) -> u16 {
        self.matrix.get(i, j)
    }

    /// The full matrix.
    pub fn matrix(&self) -> &TriMatrix {
        &self.matrix
    }

    /// Per-tree average over the whole collection (self included), the
    /// quantity compared against BFHRF.
    pub fn averages(&self) -> Vec<f64> {
        (0..self.matrix.size())
            .map(|i| self.matrix.row_mean(i))
            .collect()
    }

    /// Number of non-trivial splits recorded per tree.
    pub fn splits_per_tree(&self) -> &[u16] {
        &self.splits_per_tree
    }

    /// Fraction of matrix entries differing from an exact matrix — the
    /// collision error rate for the ablation study.
    pub fn error_rate_against(&self, exact: &TriMatrix) -> f64 {
        let r = self.matrix.size();
        assert_eq!(r, exact.size());
        if r < 2 {
            return 0.0;
        }
        let mut wrong = 0usize;
        let mut total = 0usize;
        for j in 1..r {
            for i in 0..j {
                total += 1;
                if self.matrix.get(i, j) != exact.get(i, j) {
                    wrong += 1;
                }
            }
        }
        wrong as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::rf_matrix_exact;
    use phylo::TreeCollection;

    fn collection() -> TreeCollection {
        TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n((A,B),((C,E),(D,F)));\n((A,B),((C,D),(E,F)));",
        )
        .unwrap()
    }

    #[test]
    fn wide_ids_match_exact_matrix() {
        let coll = collection();
        let exact = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let h = HashRf::compute(&coll.trees, &coll.taxa, &HashRfConfig::default()).unwrap();
        assert_eq!(h.error_rate_against(&exact), 0.0);
        for i in 0..coll.len() {
            for j in 0..coll.len() {
                assert_eq!(h.rf(i, j), exact.get(i, j));
            }
        }
    }

    #[test]
    fn averages_match_bfhrf() {
        let coll = collection();
        let h = HashRf::compute(&coll.trees, &coll.taxa, &HashRfConfig::default()).unwrap();
        let bfh = crate::Bfh::build(&coll.trees, &coll.taxa);
        let scores = crate::bfhrf_all(&coll.trees, &coll.taxa, &bfh).unwrap();
        let avgs = h.averages();
        for s in scores {
            assert!((avgs[s.index] - s.rf.average()).abs() < 1e-12);
        }
    }

    #[test]
    fn narrow_ids_can_collide() {
        // With a 1-bit ID every other bipartition collides; on a spread of
        // random-ish trees the matrix must differ from exact somewhere.
        let coll = collection();
        let exact = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let cfg = HashRfConfig {
            id_bits: 1,
            buckets: Some(2), // force heavy bucket sharing as well
            ..HashRfConfig::default()
        };
        let h = HashRf::compute(&coll.trees, &coll.taxa, &cfg).unwrap();
        assert!(
            h.error_rate_against(&exact) > 0.0,
            "1-bit IDs in 2 buckets must produce collision errors"
        );
    }

    #[test]
    fn memory_budget_refuses_large_matrices() {
        let coll = collection();
        let cfg = HashRfConfig {
            memory_budget_bytes: 1,
            ..HashRfConfig::default()
        };
        assert!(matches!(
            HashRf::compute(&coll.trees, &coll.taxa, &cfg).unwrap_err(),
            CoreError::ResourceLimit(_)
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let coll = collection();
        let cfg = HashRfConfig::default();
        let h1 = HashRf::compute(&coll.trees, &coll.taxa, &cfg).unwrap();
        let h2 = HashRf::compute(&coll.trees, &coll.taxa, &cfg).unwrap();
        for i in 0..coll.len() {
            for j in 0..coll.len() {
                assert_eq!(h1.rf(i, j), h2.rf(i, j));
            }
        }
    }

    #[test]
    fn splits_counted_per_tree() {
        let coll = collection();
        let h = HashRf::compute(&coll.trees, &coll.taxa, &HashRfConfig::default()).unwrap();
        // all members are binary 6-leaf trees: n - 3 = 3 splits each
        assert!(h.splits_per_tree().iter().all(|&s| s == 3));
    }

    #[test]
    fn empty_collection_errors() {
        let taxa = phylo::TaxonSet::new();
        assert_eq!(
            HashRf::compute(&[], &taxa, &HashRfConfig::default()).unwrap_err(),
            CoreError::EmptyReference
        );
    }
}
