//! Compressed-key frequency hash — the paper's §IX memory extension.
//!
//! [`CompactBfh`] is behaviourally identical to [`Bfh`] (it answers the
//! same `frequency`/`sum`/`n_trees` queries, so [`crate::bfhrf_average`]
//! arithmetic can run against either) but stores keys through the
//! lossless codec in [`phylo_bitset::compress`]. Real collections are
//! dominated by small clades, whose sparse encodings are a few bytes
//! instead of `n/8` — on wide namespaces this cuts key memory several
//! fold while remaining fully reversible (the hash stays
//! non-transformative: [`CompactBfh::iter_bits`] reconstructs every
//! stored bipartition exactly).

use crate::bfh::Bfh;
use crate::rf::RfAverage;
use phylo::{TaxonSet, Tree};
use phylo_bitset::compress::{compress, decompress};
use phylo_bitset::{Bits, BuildWordHasher};
use std::collections::HashMap;

/// Frequency hash with compressed bipartition keys.
#[derive(Debug, Clone)]
pub struct CompactBfh {
    counts: HashMap<Box<[u8]>, u32, BuildWordHasher>,
    sum: u64,
    n_trees: usize,
    n_taxa: usize,
}

impl CompactBfh {
    /// An empty compact hash over an `n_taxa`-wide namespace.
    pub fn empty(n_taxa: usize) -> Self {
        CompactBfh {
            counts: HashMap::with_hasher(BuildWordHasher),
            sum: 0,
            n_trees: 0,
            n_taxa,
        }
    }

    /// Build from a reference collection.
    pub fn build(trees: &[Tree], taxa: &TaxonSet) -> Self {
        let mut out = CompactBfh::empty(taxa.len());
        for tree in trees {
            out.add_tree(tree, taxa);
        }
        out
    }

    /// Convert an uncompressed hash (e.g. one built in parallel).
    pub fn from_bfh(bfh: &Bfh) -> Self {
        let mut counts = HashMap::with_capacity_and_hasher(bfh.distinct(), BuildWordHasher);
        for (bits, count) in bfh.iter() {
            counts.insert(compress(bits), count);
        }
        CompactBfh {
            counts,
            sum: bfh.sum(),
            n_trees: bfh.n_trees(),
            n_taxa: bfh.n_taxa(),
        }
    }

    /// Add one reference tree.
    pub fn add_tree(&mut self, tree: &Tree, taxa: &TaxonSet) {
        debug_assert_eq!(taxa.len(), self.n_taxa);
        for bp in tree.bipartitions(taxa) {
            *self.counts.entry(compress(bp.bits())).or_insert(0) += 1;
            self.sum += 1;
        }
        self.n_trees += 1;
    }

    /// Frequency of a canonical bipartition (compressing the probe key).
    #[inline]
    pub fn frequency(&self, bits: &Bits) -> u32 {
        self.counts.get(&compress(bits)).copied().unwrap_or(0)
    }

    /// Frequency of a canonical mask given as raw words — compresses into
    /// a thread-local probe buffer, so the hot query path allocates
    /// nothing per split.
    #[inline]
    pub fn frequency_words(&self, n_bits: usize, words: &[u64]) -> u32 {
        debug_assert_eq!(n_bits, self.n_taxa);
        thread_local! {
            static PROBE: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        PROBE.with(|buf| {
            let mut buf = buf.borrow_mut();
            phylo_bitset::compress::compress_words_into(words, n_bits, &mut buf);
            self.counts.get(buf.as_slice()).copied().unwrap_or(0)
        })
    }

    /// Total occurrences (`sumBFHR`).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of reference trees.
    #[inline]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Number of distinct bipartitions.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Reconstruct every stored bipartition — the reversibility witness.
    pub fn iter_bits(&self) -> impl Iterator<Item = (Bits, u32)> + '_ {
        self.counts.iter().map(|(key, &count)| {
            let bits =
                decompress(key, self.n_taxa).expect("stored keys were produced by compress()");
            (bits, count)
        })
    }

    /// Average RF of one query against the compact hash — Algorithm 2
    /// verbatim, probing compressed keys.
    pub fn average_rf(&self, query: &Tree, taxa: &TaxonSet) -> RfAverage {
        assert!(
            self.n_trees > 0,
            "average RF over an empty reference collection"
        );
        let r = self.n_trees as u64;
        let mut freq_sum = 0u64;
        let mut q_splits = 0u64;
        for bp in query.bipartitions(taxa) {
            freq_sum += u64::from(self.frequency(bp.bits()));
            q_splits += 1;
        }
        RfAverage {
            left: self.sum - freq_sum,
            right: q_splits * r - freq_sum,
            n_refs: self.n_trees,
        }
    }

    /// Approximate heap bytes of the key payloads alone (what the
    /// compression is meant to shrink); compare with
    /// [`Bfh::approx_bytes`].
    pub fn key_bytes(&self) -> usize {
        self.counts
            .keys()
            .map(|k| k.len() + std::mem::size_of::<Box<[u8]>>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::bfhrf_average;
    use phylo::TreeCollection;

    fn coll(text: &str) -> TreeCollection {
        TreeCollection::parse(text).unwrap()
    }

    #[test]
    fn matches_uncompressed_hash_exactly() {
        let c = coll("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));");
        let plain = Bfh::build(&c.trees, &c.taxa);
        let compact = CompactBfh::build(&c.trees, &c.taxa);
        assert_eq!(plain.sum(), compact.sum());
        assert_eq!(plain.distinct(), compact.distinct());
        for (bits, count) in plain.iter() {
            assert_eq!(compact.frequency(bits), count);
            assert_eq!(compact.frequency_words(bits.len(), bits.words()), count);
        }
        for q in &c.trees {
            assert_eq!(
                bfhrf_average(q, &c.taxa, &plain),
                compact.average_rf(q, &c.taxa)
            );
        }
    }

    #[test]
    fn from_bfh_is_equivalent_to_direct_build() {
        let c = coll("((A,B),(C,D));\n((A,C),(B,D));\n((A,B),(C,D));");
        let plain = Bfh::build(&c.trees, &c.taxa);
        let via = CompactBfh::from_bfh(&plain);
        let direct = CompactBfh::build(&c.trees, &c.taxa);
        assert_eq!(via.sum(), direct.sum());
        assert_eq!(via.distinct(), direct.distinct());
        for (bits, count) in plain.iter() {
            assert_eq!(via.frequency(bits), count);
            assert_eq!(direct.frequency(bits), count);
        }
    }

    #[test]
    fn reversibility_witness() {
        let c = coll("((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));");
        let plain = Bfh::build(&c.trees, &c.taxa);
        let compact = CompactBfh::from_bfh(&plain);
        let mut reconstructed: Vec<(Bits, u32)> = compact.iter_bits().collect();
        reconstructed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut original: Vec<(Bits, u32)> = plain.iter().map(|(b, c)| (b.clone(), c)).collect();
        original.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(reconstructed, original);
    }

    #[test]
    fn compression_shrinks_wide_namespaces() {
        // 300 taxa: raw keys are 5 words (40 bytes) + Bits overhead; most
        // coalescent splits are small clades with tiny sparse encodings
        let spec = phylo_sim::DatasetSpec::new("compact", 300, 30, 3);
        let c = phylo_sim::generate(&spec);
        let plain = Bfh::build(&c.trees, &c.taxa);
        let compact = CompactBfh::from_bfh(&plain);
        let raw_key_bytes =
            plain.distinct() * (phylo_bitset::words_for(300) * 8 + std::mem::size_of::<Bits>());
        assert!(
            compact.key_bytes() < raw_key_bytes / 2,
            "compressed {} vs raw {} bytes",
            compact.key_bytes(),
            raw_key_bytes
        );
        // and it still answers identically
        for q in c.trees.iter().take(5) {
            assert_eq!(
                bfhrf_average(q, &c.taxa, &plain),
                compact.average_rf(q, &c.taxa)
            );
        }
    }

    #[test]
    fn empty_compact_hash() {
        let h = CompactBfh::empty(8);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.distinct(), 0);
        assert_eq!(h.frequency(&Bits::zeros(8)), 0);
    }
}
