//! Day's algorithm — linear-time pairwise Robinson-Foulds.
//!
//! Day (1985, "Optimal algorithms for comparing trees with labeled
//! leaves") computes RF between two trees on the same taxa in `O(n)` by
//! observing that the clusters of the first tree, written in its own leaf
//! ordering, are exactly the contiguous intervals `[min, max]` with
//! `max − min + 1` members. The second tree's clusters then match iff they
//! form such a registered interval.
//!
//! The paper cites this as the theoretical optimum for one pairwise RF
//! (§II.C). Here it serves two roles: an independent oracle for the
//! property tests (three unrelated implementations — set difference, BFHRF
//! arithmetic, and Day — must agree), and a baseline in the ablation
//! benches.
//!
//! RF is defined on unrooted trees, so both inputs are first re-rooted at
//! the neighbour of the anchor taxon's leaf (lowest shared taxon id); the
//! anchor leaf itself is dropped. Clusters of the re-rooted trees then
//! correspond 1:1 to non-trivial splits.

use phylo::{NodeId, TaxonId, TaxonSet, Tree};
use std::collections::HashSet;

/// Robinson-Foulds distance between two trees over the same namespace.
///
/// ```
/// use phylo::{TaxonSet, parse_newick, TaxaPolicy};
///
/// let mut taxa = TaxonSet::new();
/// let t1 = parse_newick("((A,B),(C,D));", &mut taxa, TaxaPolicy::Grow).unwrap();
/// let t2 = parse_newick("((D,B),(C,A));", &mut taxa, TaxaPolicy::Require).unwrap();
/// assert_eq!(bfhrf::day_rf(&t1, &t2, &taxa), 2); // the paper's Equation (1)
/// ```
///
/// # Panics
/// Panics if the trees do not share an identical leaf taxon set of at
/// least one taxon.
pub fn day_rf(t1: &Tree, t2: &Tree, taxa: &TaxonSet) -> usize {
    let anchor = anchor_taxon(t1, t2, taxa);
    let r1 = reroot_at_taxon_neighbor(t1, anchor);
    let r2 = reroot_at_taxon_neighbor(t2, anchor);

    // Leaf ordering from r1's postorder.
    let mut order = vec![usize::MAX; taxa.len()];
    let mut next = 0usize;
    for node in r1.postorder() {
        if let Some(t) = r1.taxon(node) {
            order[t.index()] = next;
            next += 1;
        }
    }
    let n_rest = next; // leaves excluding the anchor

    // Register r1's proper clusters as (min, max) intervals.
    let (c1, intervals) = clusters(&r1, &order, n_rest, true);
    // Walk r2's clusters, counting interval hits.
    let (c2, hits) = clusters_matching(&r2, &order, n_rest, &intervals);
    (c1 - hits) + (c2 - hits)
}

/// The lowest taxon id present in both trees (they must be equal sets for
/// RF to be defined, which `assert`s below enforce cheaply).
fn anchor_taxon(t1: &Tree, t2: &Tree, taxa: &TaxonSet) -> TaxonId {
    let l1 = t1.leafset(taxa.len());
    let l2 = t2.leafset(taxa.len());
    assert_eq!(l1, l2, "day_rf requires identical leaf sets");
    TaxonId(l1.first_one().expect("empty tree") as u32)
}

/// Re-root `tree` at the internal node adjacent to `anchor`'s leaf,
/// dropping that leaf; suppress any degree-2 node the old root leaves
/// behind.
fn reroot_at_taxon_neighbor(tree: &Tree, anchor: TaxonId) -> Tree {
    // Undirected adjacency over the reachable arena.
    let order = tree.postorder();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); tree.num_nodes()];
    for &node in &order {
        for &c in tree.children(node) {
            adj[node.index()].push(c);
            adj[c.index()].push(node);
        }
    }
    let leaf = order
        .iter()
        .copied()
        .find(|&n| tree.taxon(n) == Some(anchor))
        .expect("anchor taxon present");
    let start = adj[leaf.index()][0];

    let mut out = Tree::new();
    let root = out.add_root();
    out.set_taxon(root, tree.taxon(start));
    let mut stack = vec![(start, leaf, root)];
    while let Some((node, from, new_node)) = stack.pop() {
        for &nb in &adj[node.index()] {
            if nb == from || nb == leaf {
                continue;
            }
            let child = out.add_child(new_node);
            out.set_taxon(child, tree.taxon(nb));
            stack.push((nb, node, child));
        }
    }
    out.suppress_unifurcations();
    out
}

/// Postorder cluster scan: returns the number of proper clusters and
/// (if `register`) the interval set. A cluster is proper when
/// `2 ≤ size ≤ n_rest − 1` — size `n_rest` is the root (the anchor's
/// trivial split), singletons are leaf edges.
fn clusters(
    tree: &Tree,
    order: &[usize],
    n_rest: usize,
    register: bool,
) -> (usize, HashSet<(u32, u32)>) {
    let mut intervals = HashSet::new();
    let mut count = 0usize;
    scan(tree, order, n_rest, |min, max, size| {
        if size as usize == (max - min + 1) as usize && register {
            intervals.insert((min, max));
        }
        count += 1;
    });
    (count, intervals)
}

/// Count r2's proper clusters and how many are registered intervals.
fn clusters_matching(
    tree: &Tree,
    order: &[usize],
    n_rest: usize,
    intervals: &HashSet<(u32, u32)>,
) -> (usize, usize) {
    let mut count = 0usize;
    let mut hits = 0usize;
    scan(tree, order, n_rest, |min, max, size| {
        count += 1;
        if size as usize == (max - min + 1) as usize && intervals.contains(&(min, max)) {
            hits += 1;
        }
    });
    (count, hits)
}

/// Drive `visit(min, max, size)` over every proper cluster of `tree`.
fn scan<F: FnMut(u32, u32, u32)>(tree: &Tree, order: &[usize], n_rest: usize, mut visit: F) {
    let Some(root) = tree.root() else { return };
    let mut lo = vec![u32::MAX; tree.num_nodes()];
    let mut hi = vec![0u32; tree.num_nodes()];
    let mut size = vec![0u32; tree.num_nodes()];
    for node in tree.postorder() {
        if let Some(t) = tree.taxon(node) {
            let o = order[t.index()] as u32;
            lo[node.index()] = o;
            hi[node.index()] = o;
            size[node.index()] = 1;
        }
        for &c in tree.children(node) {
            lo[node.index()] = lo[node.index()].min(lo[c.index()]);
            hi[node.index()] = hi[node.index()].max(hi[c.index()]);
            size[node.index()] += size[c.index()];
        }
        let s = size[node.index()];
        if node != root && !tree.is_leaf(node) && s >= 2 && (s as usize) < n_rest {
            visit(lo[node.index()], hi[node.index()], s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::{read_trees_from_str, BipartitionSet, TaxaPolicy, TreeCollection};

    fn pair(a: &str, b: &str) -> (Tree, Tree, TaxonSet) {
        let mut taxa = TaxonSet::new();
        let trees = read_trees_from_str(&format!("{a}\n{b}"), &mut taxa, TaxaPolicy::Grow).unwrap();
        let mut it = trees.into_iter();
        (it.next().unwrap(), it.next().unwrap(), taxa)
    }

    #[test]
    fn paper_example_is_two() {
        let (a, b, taxa) = pair("((A,B),(C,D));", "((D,B),(C,A));");
        assert_eq!(day_rf(&a, &b, &taxa), 2);
    }

    #[test]
    fn identical_trees_distance_zero_across_rootings() {
        let (a, b, taxa) = pair(
            "(((A,B),C),(D,(E,F)));",
            "((A,B),(C,(D,(E,F))));", // same unrooted topology
        );
        assert_eq!(day_rf(&a, &b, &taxa), 0);
    }

    #[test]
    fn matches_set_difference_on_examples() {
        let cases = [
            ("((A,B),((C,D),(E,F)));", "(((A,C),B),(D,(E,F)));"),
            ("((A,B),((C,D),(E,F)));", "((A,F),((C,D),(E,B)));"),
            ("(((A,B),C),((D,E),F));", "(((F,E),D),((C,B),A));"),
            ("((A,B),(C,D));", "((A,C),(B,D));"),
        ];
        for (x, y) in cases {
            let (a, b, taxa) = pair(x, y);
            let expected = BipartitionSet::from_tree(&a, &taxa)
                .rf_distance(&BipartitionSet::from_tree(&b, &taxa));
            assert_eq!(day_rf(&a, &b, &taxa), expected, "case {x} vs {y}");
        }
    }

    #[test]
    fn multifurcations_supported() {
        let (a, b, taxa) = pair("((A,B),(C,D),E);", "((A,B),C,D,E);");
        let expected =
            BipartitionSet::from_tree(&a, &taxa).rf_distance(&BipartitionSet::from_tree(&b, &taxa));
        assert_eq!(day_rf(&a, &b, &taxa), expected);
    }

    #[test]
    #[should_panic(expected = "identical leaf sets")]
    fn different_leaf_sets_panic() {
        let mut taxa = TaxonSet::new();
        let trees = read_trees_from_str(
            "((A,B),(C,D));\n((A,B),(C,E));",
            &mut taxa,
            TaxaPolicy::Grow,
        )
        .unwrap();
        day_rf(&trees[0], &trees[1], &taxa);
    }

    #[test]
    fn symmetric() {
        let refs = TreeCollection::parse("((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));").unwrap();
        let d1 = day_rf(&refs.trees[0], &refs.trees[1], &refs.taxa);
        let d2 = day_rf(&refs.trees[1], &refs.trees[0], &refs.taxa);
        assert_eq!(d1, d2);
        assert!(d1 > 0);
    }
}
