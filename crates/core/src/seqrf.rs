//! The sequential baselines — the paper's Algorithm 1.
//!
//! `DendropySingle` (DS) precomputes the bipartition sets of every
//! reference tree, then runs the `q × r` double loop of symmetric set
//! differences. `DendropySingleMP` (DSMP) is the same computation with the
//! query loop parallelized at the tree level. Both are `O(n²qr)` time and
//! `O(n²r)` space, and exist here to reproduce the paper's comparisons —
//! use [`crate::bfhrf_all`] for real work.

use crate::rf::{QueryScore, RfAverage};
use crate::CoreError;
use phylo::{BipartitionSet, TaxonSet, Tree};

fn check(queries: &[Tree], refs: &[Tree]) -> Result<(), CoreError> {
    if refs.is_empty() {
        return Err(CoreError::EmptyReference);
    }
    if queries.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    Ok(())
}

fn score_against(
    index: usize,
    query: &Tree,
    taxa: &TaxonSet,
    ref_sets: &[BipartitionSet],
) -> QueryScore {
    let q_set = BipartitionSet::from_tree(query, taxa);
    let mut left = 0u64;
    let mut right = 0u64;
    for r_set in ref_sets {
        // split the symmetric difference into the paper's two terms so the
        // result is field-by-field comparable with BFHRF output
        let shared = if q_set.len() <= r_set.len() {
            q_set
                .iter()
                .filter(|b| {
                    // probe the larger set through the public membership API
                    r_set.contains_bits(b)
                })
                .count()
        } else {
            r_set.iter().filter(|b| q_set.contains_bits(b)).count()
        };
        left += (r_set.len() - shared) as u64;
        right += (q_set.len() - shared) as u64;
    }
    QueryScore {
        index,
        rf: RfAverage {
            left,
            right,
            n_refs: ref_sets.len(),
        },
    }
}

/// Algorithm 1 (DS): sequential average RF of each query against all
/// references.
pub fn sequential_rf(
    queries: &[Tree],
    refs: &[Tree],
    taxa: &TaxonSet,
) -> Result<Vec<QueryScore>, CoreError> {
    check(queries, refs)?;
    let ref_sets: Vec<BipartitionSet> = refs
        .iter()
        .map(|t| BipartitionSet::from_tree(t, taxa))
        .collect();
    Ok(queries
        .iter()
        .enumerate()
        .map(|(i, q)| score_against(i, q, taxa, &ref_sets))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfh::Bfh;
    use crate::rf::bfhrf_all;
    use phylo::TreeCollection;

    fn six_taxa_collections() -> (TreeCollection, Vec<Tree>) {
        let mut refs = TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n((A,B),((C,E),(D,F)));",
        )
        .unwrap();
        let queries = phylo::read_trees_from_str(
            "((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));\n(((A,B),C),((D,E),F));",
            &mut refs.taxa,
            phylo::TaxaPolicy::Require,
        )
        .unwrap();
        (refs, queries)
    }

    #[test]
    fn ds_matches_bfhrf_exactly() {
        let (refs, queries) = six_taxa_collections();
        let ds = sequential_rf(&queries, &refs.trees, &refs.taxa).unwrap();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let fast = bfhrf_all(&queries, &refs.taxa, &bfh).unwrap();
        assert_eq!(
            ds, fast,
            "Algorithm 1 and Algorithm 2 must agree field-by-field"
        );
    }

    #[test]
    fn dsmp_comparator_matches_ds() {
        let (refs, queries) = six_taxa_collections();
        let ds = sequential_rf(&queries, &refs.trees, &refs.taxa).unwrap();
        use crate::Comparator as _;
        let dsmp = crate::SetComparator::new(&refs.trees, &refs.taxa)
            .parallel(true)
            .average_all(&queries)
            .unwrap();
        assert_eq!(ds, dsmp);
    }

    #[test]
    fn empty_collections_error() {
        let (refs, queries) = six_taxa_collections();
        assert_eq!(
            sequential_rf(&[], &refs.trees, &refs.taxa).unwrap_err(),
            CoreError::EmptyQuery
        );
        assert_eq!(
            sequential_rf(&queries, &[], &refs.taxa).unwrap_err(),
            CoreError::EmptyReference
        );
    }
}
