//! The BFHRF query computation — the paper's Algorithm 2, second loop.
//!
//! Each query tree is compared against the [`Bfh`] once, in `O(n²)`,
//! independently of `r` and of every other query. Totals are accumulated
//! in integers; division by `r` happens only in [`RfAverage::average`], so
//! results are exact and deterministic regardless of parallel scheduling.

use crate::bfh::Bfh;
use crate::CoreError;
use phylo::{BipartitionScratch, TaxaPolicy, TaxonSet, Tree};
use std::io::BufRead;

/// Exact average-RF result for one query tree against a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfAverage {
    /// Σ_T |B(T) \ B(T′)| — reference splits absent from the query
    /// (the paper's `RF_left`).
    pub left: u64,
    /// Σ_T |B(T′) \ B(T)| — query splits absent from each reference
    /// (the paper's `RF_right`).
    pub right: u64,
    /// Number of reference trees `r`.
    pub n_refs: usize,
}

impl RfAverage {
    /// Total RF distance summed over all reference trees.
    #[inline]
    pub fn total(&self) -> u64 {
        self.left + self.right
    }

    /// The average RF distance, `total / r`.
    #[inline]
    pub fn average(&self) -> f64 {
        self.total() as f64 / self.n_refs as f64
    }

    /// The average of the "divide by 2" RF convention some tools report
    /// (paper §II.C: "often defined with a divide by 2").
    #[inline]
    pub fn average_halved(&self) -> f64 {
        self.average() / 2.0
    }
}

/// Anything that can answer "how many reference trees contain this
/// split?" — the interface Algorithm 2 actually needs. Implemented by
/// [`Bfh`] and by [`crate::CompactBfh`]; alternative stores (mmap-backed,
/// GPU-resident, ...) plug in here.
pub trait SplitFrequency {
    /// Frequency of a canonical split bitmask (0 if absent).
    fn split_frequency(&self, bits: &phylo_bitset::Bits) -> u32;
    /// Total split occurrences (`sumBFHR`).
    fn occurrence_sum(&self) -> u64;
    /// Number of reference trees (`r`).
    fn reference_count(&self) -> usize;
    /// Frequency of a canonical mask given as raw words over an
    /// `n_bits`-wide namespace. The default materializes a key; stores with
    /// a borrowed-key probe (like [`Bfh`]) override it so scratch-driven
    /// queries never allocate.
    fn split_frequency_words(&self, n_bits: usize, words: &[u64]) -> u32 {
        self.split_frequency(&phylo_bitset::Bits::from_words(n_bits, words))
    }
}

impl SplitFrequency for Bfh {
    fn split_frequency(&self, bits: &phylo_bitset::Bits) -> u32 {
        self.frequency(bits)
    }

    fn occurrence_sum(&self) -> u64 {
        self.sum()
    }

    fn reference_count(&self) -> usize {
        self.n_trees()
    }

    fn split_frequency_words(&self, _n_bits: usize, words: &[u64]) -> u32 {
        self.frequency_words(words)
    }
}

impl SplitFrequency for crate::CompactBfh {
    fn split_frequency(&self, bits: &phylo_bitset::Bits) -> u32 {
        self.frequency(bits)
    }

    fn occurrence_sum(&self) -> u64 {
        self.sum()
    }

    fn reference_count(&self) -> usize {
        self.n_trees()
    }

    fn split_frequency_words(&self, n_bits: usize, words: &[u64]) -> u32 {
        self.frequency_words(n_bits, words)
    }
}

/// Average RF of one query tree against any split-frequency store —
/// Algorithm 2's arithmetic, generic over the hash representation.
///
/// # Panics
/// Panics if the store holds no trees (average undefined).
pub fn bfhrf_average_with<H: SplitFrequency>(query: &Tree, taxa: &TaxonSet, hash: &H) -> RfAverage {
    bfhrf_average_scratch(query, taxa, hash, &mut BipartitionScratch::new())
}

/// [`bfhrf_average_with`] through a caller-owned extraction arena: the
/// query's splits are visited as borrowed word slices and probed via
/// [`SplitFrequency::split_frequency_words`], so batched callers reuse one
/// scratch across all queries and the per-query loop allocates nothing.
///
/// # Panics
/// Panics if the store holds no trees (average undefined).
pub fn bfhrf_average_scratch<H: SplitFrequency>(
    query: &Tree,
    taxa: &TaxonSet,
    hash: &H,
    scratch: &mut BipartitionScratch,
) -> RfAverage {
    assert!(
        hash.reference_count() > 0,
        "average RF over an empty reference collection"
    );
    let r = hash.reference_count() as u64;
    let mut freq_sum = 0u64; // Σ_{b′ ∈ B(T′)} BFH[b′]
    let mut q_splits = 0u64; // |B(T′)|
    scratch.for_each_split(query, taxa, |w| {
        freq_sum += u64::from(hash.split_frequency_words(taxa.len(), w));
        q_splits += 1;
    });
    RfAverage {
        left: hash.occurrence_sum() - freq_sum,
        right: q_splits * r - freq_sum,
        n_refs: hash.reference_count(),
    }
}

/// Average RF of one query tree against the hash (tree-vs-hash comparison).
///
/// # Panics
/// Panics if the hash holds no trees (average undefined).
pub fn bfhrf_average(query: &Tree, taxa: &TaxonSet, bfh: &Bfh) -> RfAverage {
    bfhrf_average_with(query, taxa, bfh)
}

/// One query's index and score, as produced by the batch entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryScore {
    /// Position of the query tree in its collection.
    pub index: usize,
    /// Exact average-RF result.
    pub rf: RfAverage,
}

fn check_nonempty(queries: &[Tree], bfh: &Bfh) -> Result<(), CoreError> {
    if bfh.n_trees() == 0 {
        return Err(CoreError::EmptyReference);
    }
    if queries.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    Ok(())
}

/// Average RF of every query tree, sequentially, through one reused
/// extraction arena.
pub fn bfhrf_all(
    queries: &[Tree],
    taxa: &TaxonSet,
    bfh: &Bfh,
) -> Result<Vec<QueryScore>, CoreError> {
    check_nonempty(queries, bfh)?;
    let mut scratch = BipartitionScratch::new();
    Ok(queries
        .iter()
        .enumerate()
        .map(|(index, q)| QueryScore {
            index,
            rf: bfhrf_average_scratch(q, taxa, bfh, &mut scratch),
        })
        .collect())
}

/// Average RF of every query tree read from a Newick stream, without ever
/// holding more than one query in memory. Labels must resolve against
/// `taxa` (the namespace the hash was built over).
pub fn bfhrf_streaming<R: BufRead>(
    reader: R,
    taxa: &mut TaxonSet,
    bfh: &Bfh,
) -> Result<Vec<QueryScore>, CoreError> {
    if bfh.n_trees() == 0 {
        return Err(CoreError::EmptyReference);
    }
    let mut stream = phylo::newick::NewickStream::new(reader, TaxaPolicy::Require);
    let mut scratch = BipartitionScratch::new();
    let mut out = Vec::new();
    while let Some(tree) = stream.next_tree(taxa)? {
        out.push(QueryScore {
            index: out.len(),
            rf: bfhrf_average_scratch(&tree, taxa, bfh, &mut scratch),
        });
    }
    if out.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::TreeCollection;

    fn setup(refs: &str, queries: &str) -> (TreeCollection, Vec<Tree>, Bfh) {
        // Parse refs growing the namespace, then queries against it so the
        // bit layout is shared.
        let mut refs_coll = TreeCollection::parse(refs).unwrap();
        let queries =
            phylo::read_trees_from_str(queries, &mut refs_coll.taxa, TaxaPolicy::Require).unwrap();
        let bfh = Bfh::build(&refs_coll.trees, &refs_coll.taxa);
        (refs_coll, queries, bfh)
    }

    #[test]
    fn paper_worked_example() {
        // R = {((A,B),(C,D)) ×2, ((A,C),(B,D))}; query ((A,B),(C,D)):
        // distances 0, 0, 2 → left 1, right 1, avg 2/3.
        let (refs, queries, bfh) = setup(
            "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));",
            "((A,B),(C,D));",
        );
        let avg = bfhrf_average(&queries[0], &refs.taxa, &bfh);
        assert_eq!(avg.left, 1);
        assert_eq!(avg.right, 1);
        assert_eq!(avg.total(), 2);
        assert!((avg.average() - 2.0 / 3.0).abs() < 1e-15);
        assert!((avg.average_halved() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn identical_collection_gives_zero() {
        let (refs, queries, bfh) = setup("((A,B),(C,D));", "((A,B),(C,D));");
        let avg = bfhrf_average(&queries[0], &refs.taxa, &bfh);
        assert_eq!(avg.total(), 0);
        assert_eq!(avg.average(), 0.0);
    }

    #[test]
    fn disjoint_splits_give_maximum() {
        // 4-taxa trees with different internal splits: RF = 2 each.
        let (refs, queries, bfh) = setup("((A,B),(C,D));\n((A,B),(C,D));", "((A,C),(B,D));");
        let avg = bfhrf_average(&queries[0], &refs.taxa, &bfh);
        assert_eq!(avg.total(), 4);
        assert_eq!(avg.average(), 2.0);
    }

    #[test]
    fn all_and_parallel_comparator_agree() {
        let refs = "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));";
        let queries = "((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));";
        let (refs_coll, qs, bfh) = setup(refs, queries);
        let seq = bfhrf_all(&qs, &refs_coll.taxa, &bfh).unwrap();
        use crate::Comparator as _;
        let par = crate::BfhrfComparator::new(&bfh, &refs_coll.taxa)
            .parallel(true)
            .average_all(&qs)
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].index, 0);
        assert_eq!(seq[1].index, 1);
    }

    #[test]
    fn streaming_matches_batch() {
        let refs = "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));";
        let queries = "((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));";
        let (mut refs_coll, qs, bfh) = setup(refs, queries);
        let batch = bfhrf_all(&qs, &refs_coll.taxa, &bfh).unwrap();
        let streamed = bfhrf_streaming(queries.as_bytes(), &mut refs_coll.taxa, &bfh).unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        let (refs, qs, bfh) = setup("((A,B),(C,D));", "((A,C),(B,D));");
        assert_eq!(
            bfhrf_all(&[], &refs.taxa, &bfh).unwrap_err(),
            CoreError::EmptyQuery
        );
        let empty = Bfh::empty(refs.taxa.len());
        assert_eq!(
            bfhrf_all(&qs, &refs.taxa, &empty).unwrap_err(),
            CoreError::EmptyReference
        );
    }

    #[test]
    fn q_equals_r_self_average() {
        // When Q is R (the paper's experimental setting), each tree's
        // average includes its own zero distance.
        let text = "((A,B),(C,D));\n((A,C),(B,D));";
        let refs = TreeCollection::parse(text).unwrap();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let scores = bfhrf_all(&refs.trees, &refs.taxa, &bfh).unwrap();
        // each tree: distance 0 to itself, 2 to the other → avg 1
        for s in &scores {
            assert_eq!(s.rf.total(), 2);
            assert_eq!(s.rf.average(), 1.0);
        }
    }

    #[test]
    fn generic_entry_point_accepts_both_hash_types() {
        let (refs, qs, bfh) = setup(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));",
            "((A,B),((C,D),(E,F)));",
        );
        let compact = crate::CompactBfh::from_bfh(&bfh);
        let a = bfhrf_average_with(&qs[0], &refs.taxa, &bfh);
        let b = bfhrf_average_with(&qs[0], &refs.taxa, &compact);
        assert_eq!(a, b);
        assert_eq!(a, bfhrf_average(&qs[0], &refs.taxa, &bfh));
    }

    #[test]
    fn multifurcating_queries_are_supported() {
        // A star query has no internal splits: left = sumBFHR, right = 0.
        let (refs, qs, bfh) = setup("((A,B),(C,D));\n((A,C),(B,D));", "(A,B,C,D);");
        let avg = bfhrf_average(&qs[0], &refs.taxa, &bfh);
        assert_eq!(avg.left, bfh.sum());
        assert_eq!(avg.right, 0);
    }
}
