//! The [`Comparator`] trait — one interface over every average-RF engine.
//!
//! The paper compares BFHRF against DS/DSMP (Algorithm 1), HashRF, and
//! exact pairwise baselines; the workspace grew one free-function entry
//! point per engine, each with its own argument shape. `Comparator`
//! unifies them: construct an engine over a reference collection once,
//! then ask it `average(query)` — the CLI and bench harness dispatch on
//! the trait and never mention a concrete algorithm again.
//!
//! ```
//! use bfhrf::{Bfh, BfhrfComparator, Comparator};
//! use phylo::TreeCollection;
//!
//! let refs = TreeCollection::parse(
//!     "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));").unwrap();
//! let bfh = Bfh::build(&refs.trees, &refs.taxa);
//! let cmp = BfhrfComparator::new(&bfh, &refs.taxa);
//! let avg = cmp.average(&refs.trees[0]).unwrap();
//! assert!((avg.average() - 2.0 / 3.0).abs() < 1e-12);
//! ```

use crate::bfh::Bfh;
use crate::error::CoreError;
use crate::guard::{isolate, RunGuard};
use crate::hashrf::{HashRf, HashRfConfig};
use crate::rf::{bfhrf_average_scratch, QueryScore, RfAverage};
use phylo::{BipartitionScratch, BipartitionSet, TaxonSet, Tree};
use phylo_bitset::Bits;
use rayon::prelude::*;
use std::borrow::Cow;

/// An engine answering "what is this query tree's average RF against the
/// reference collection?".
///
/// Implementations hold whatever preprocessed state they need (frequency
/// hash, reference split sets, ...), so repeated queries amortize setup.
pub trait Comparator {
    /// Short identifier for reports ("bfhrf", "ds", ...).
    fn name(&self) -> &'static str;

    /// Exact average RF of one query against the references.
    fn average(&self, query: &Tree) -> Result<RfAverage, CoreError>;

    /// Average RF of every query, in input order. Delegates to
    /// [`Comparator::average_all_guarded`] with a permissive guard.
    fn average_all(&self, queries: &[Tree]) -> Result<Vec<QueryScore>, CoreError> {
        self.average_all_guarded(queries, &RunGuard::default())
    }

    /// [`Comparator::average_all`] under a [`RunGuard`]: cancellation and
    /// deadline are polled per query, so a long batch stops within one
    /// tree comparison of the request. The default loops
    /// [`Comparator::average`]; engines with cheaper batched paths
    /// (scratch reuse, parallel chunks) override it with identical
    /// results.
    fn average_all_guarded(
        &self,
        queries: &[Tree],
        guard: &RunGuard,
    ) -> Result<Vec<QueryScore>, CoreError> {
        if queries.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        queries
            .iter()
            .enumerate()
            .map(|(index, q)| {
                guard.checkpoint("average_all")?;
                Ok(QueryScore {
                    index,
                    rf: self.average(q)?,
                })
            })
            .collect()
    }
}

/// Typed-error guard replacing the extraction assert: every leaf taxon of
/// `tree` must fit the namespace.
fn check_tree_taxa(tree: &Tree, taxa: &TaxonSet) -> Result<(), CoreError> {
    for leaf in tree.leaves() {
        if let Some(t) = tree.taxon(leaf) {
            if t.index() >= taxa.len() {
                return Err(CoreError::TaxaMismatch(format!(
                    "query references taxon id {} but the namespace has {} taxa",
                    t.index(),
                    taxa.len()
                )));
            }
        }
    }
    Ok(())
}

/// BFHRF (Algorithm 2): one tree-vs-hash comparison per query.
#[derive(Debug, Clone)]
pub struct BfhrfComparator<'a> {
    bfh: Cow<'a, Bfh>,
    taxa: &'a TaxonSet,
    parallel: bool,
}

impl<'a> BfhrfComparator<'a> {
    /// Compare against an already-built frequency hash.
    pub fn new(bfh: &'a Bfh, taxa: &'a TaxonSet) -> Self {
        BfhrfComparator {
            bfh: Cow::Borrowed(bfh),
            taxa,
            parallel: false,
        }
    }

    /// Compare against a hash the comparator owns — what degradation paths
    /// use when they build the fallback hash themselves and have nowhere
    /// to park a borrow.
    pub fn from_owned(bfh: Bfh, taxa: &'a TaxonSet) -> Self {
        BfhrfComparator {
            bfh: Cow::Owned(bfh),
            taxa,
            parallel: false,
        }
    }

    /// Parallelize [`Comparator::average_all`] over query chunks.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }
}

impl Comparator for BfhrfComparator<'_> {
    fn name(&self) -> &'static str {
        "bfhrf"
    }

    fn average(&self, query: &Tree) -> Result<RfAverage, CoreError> {
        if self.bfh.n_trees() == 0 {
            return Err(CoreError::EmptyReference);
        }
        check_tree_taxa(query, self.taxa)?;
        let mut scratch = BipartitionScratch::new();
        Ok(bfhrf_average_scratch(
            query,
            self.taxa,
            &*self.bfh,
            &mut scratch,
        ))
    }

    fn average_all_guarded(
        &self,
        queries: &[Tree],
        guard: &RunGuard,
    ) -> Result<Vec<QueryScore>, CoreError> {
        if self.bfh.n_trees() == 0 {
            return Err(CoreError::EmptyReference);
        }
        if queries.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        for q in queries {
            check_tree_taxa(q, self.taxa)?;
        }
        if !self.parallel {
            let mut scratch = BipartitionScratch::new();
            return queries
                .iter()
                .enumerate()
                .map(|(index, q)| {
                    guard.checkpoint("bfhrf average_all")?;
                    Ok(QueryScore {
                        index,
                        rf: bfhrf_average_scratch(q, self.taxa, &*self.bfh, &mut scratch),
                    })
                })
                .collect();
        }
        // Chunked so each worker reuses one extraction arena; each worker
        // body is panic-isolated and polls the guard per query.
        let chunk = queries.len().div_ceil(rayon::current_num_threads()).max(1);
        let chunks: Vec<Vec<QueryScore>> = queries
            .par_chunks(chunk)
            .enumerate()
            .map(|(ci, qs)| {
                isolate("bfhrf query worker", || {
                    let mut scratch = BipartitionScratch::new();
                    qs.iter()
                        .enumerate()
                        .map(|(i, q)| {
                            guard.checkpoint("bfhrf average_all")?;
                            guard.panic_if_injected(ci * chunk + i);
                            Ok(QueryScore {
                                index: ci * chunk + i,
                                rf: bfhrf_average_scratch(q, self.taxa, &*self.bfh, &mut scratch),
                            })
                        })
                        .collect::<Result<Vec<_>, CoreError>>()
                })
            })
            .collect::<Result<_, CoreError>>()?;
        Ok(chunks.into_iter().flatten().collect())
    }
}

/// BFHRF over a [`FrozenBfh`](crate::FrozenBfh): the same Algorithm 2
/// arithmetic, probing the frozen struct-of-arrays table through the
/// batched split-hashing path. Answers are bitwise-identical to
/// [`BfhrfComparator`] over the source hash; `name()` stays `"bfhrf"` so
/// reports don't fork on an internal layout choice.
#[derive(Debug, Clone)]
pub struct FrozenComparator<'a> {
    frozen: Cow<'a, crate::FrozenBfh>,
    taxa: &'a TaxonSet,
    parallel: bool,
}

impl<'a> FrozenComparator<'a> {
    /// Compare against an already-frozen hash.
    pub fn new(frozen: &'a crate::FrozenBfh, taxa: &'a TaxonSet) -> Self {
        FrozenComparator {
            frozen: Cow::Borrowed(frozen),
            taxa,
            parallel: false,
        }
    }

    /// Compare against a frozen hash the comparator owns.
    pub fn from_owned(frozen: crate::FrozenBfh, taxa: &'a TaxonSet) -> Self {
        FrozenComparator {
            frozen: Cow::Owned(frozen),
            taxa,
            parallel: false,
        }
    }

    /// Parallelize [`Comparator::average_all`] over query chunks.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// The frozen table being probed.
    pub fn frozen(&self) -> &crate::FrozenBfh {
        &self.frozen
    }

    /// [`Comparator::average_all_guarded`], sequential, through a
    /// caller-owned extraction arena. For callers that score many small
    /// requests over time (the serve daemon keeps one arena per
    /// connection) — identical results to the trait path, zero per-request
    /// arena allocation.
    pub fn average_all_scratch_guarded(
        &self,
        queries: &[Tree],
        guard: &RunGuard,
        scratch: &mut BipartitionScratch,
    ) -> Result<Vec<QueryScore>, CoreError> {
        if self.frozen.n_trees() == 0 {
            return Err(CoreError::EmptyReference);
        }
        if queries.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        for q in queries {
            check_tree_taxa(q, self.taxa)?;
        }
        queries
            .iter()
            .enumerate()
            .map(|(index, q)| {
                guard.checkpoint("bfhrf average_all")?;
                Ok(QueryScore {
                    index,
                    rf: self.frozen.average_scratch(q, self.taxa, scratch),
                })
            })
            .collect()
    }
}

impl Comparator for FrozenComparator<'_> {
    fn name(&self) -> &'static str {
        "bfhrf"
    }

    fn average(&self, query: &Tree) -> Result<RfAverage, CoreError> {
        if self.frozen.n_trees() == 0 {
            return Err(CoreError::EmptyReference);
        }
        check_tree_taxa(query, self.taxa)?;
        let mut scratch = BipartitionScratch::new();
        Ok(self.frozen.average_scratch(query, self.taxa, &mut scratch))
    }

    fn average_all_guarded(
        &self,
        queries: &[Tree],
        guard: &RunGuard,
    ) -> Result<Vec<QueryScore>, CoreError> {
        if self.frozen.n_trees() == 0 {
            return Err(CoreError::EmptyReference);
        }
        if queries.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        for q in queries {
            check_tree_taxa(q, self.taxa)?;
        }
        if !self.parallel {
            let mut scratch = BipartitionScratch::new();
            return queries
                .iter()
                .enumerate()
                .map(|(index, q)| {
                    guard.checkpoint("bfhrf average_all")?;
                    Ok(QueryScore {
                        index,
                        rf: self.frozen.average_scratch(q, self.taxa, &mut scratch),
                    })
                })
                .collect();
        }
        // Mirrors the live parallel path: chunked for scratch reuse,
        // panic-isolated, guard polled per query.
        let chunk = queries.len().div_ceil(rayon::current_num_threads()).max(1);
        let chunks: Vec<Vec<QueryScore>> = queries
            .par_chunks(chunk)
            .enumerate()
            .map(|(ci, qs)| {
                isolate("bfhrf query worker", || {
                    let mut scratch = BipartitionScratch::new();
                    qs.iter()
                        .enumerate()
                        .map(|(i, q)| {
                            guard.checkpoint("bfhrf average_all")?;
                            guard.panic_if_injected(ci * chunk + i);
                            Ok(QueryScore {
                                index: ci * chunk + i,
                                rf: self.frozen.average_scratch(q, self.taxa, &mut scratch),
                            })
                        })
                        .collect::<Result<Vec<_>, CoreError>>()
                })
            })
            .collect::<Result<_, CoreError>>()?;
        Ok(chunks.into_iter().flatten().collect())
    }
}

/// Algorithm 1 (DS / DSMP): precomputed reference split sets, symmetric
/// set differences per query. `parallel(true)` is the paper's DSMP.
#[derive(Debug, Clone)]
pub struct SetComparator<'a> {
    ref_sets: Vec<BipartitionSet>,
    taxa: &'a TaxonSet,
    parallel: bool,
}

impl<'a> SetComparator<'a> {
    /// Precompute the split set of every reference tree.
    pub fn new(refs: &[Tree], taxa: &'a TaxonSet) -> Self {
        SetComparator {
            ref_sets: refs
                .iter()
                .map(|t| BipartitionSet::from_tree(t, taxa))
                .collect(),
            taxa,
            parallel: false,
        }
    }

    /// Parallelize [`Comparator::average_all`] over queries (DSMP).
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    fn score(&self, query: &Tree) -> RfAverage {
        let q_set = BipartitionSet::from_tree(query, self.taxa);
        let mut left = 0u64;
        let mut right = 0u64;
        for r_set in &self.ref_sets {
            let shared = if q_set.len() <= r_set.len() {
                q_set.iter().filter(|b| r_set.contains_bits(b)).count()
            } else {
                r_set.iter().filter(|b| q_set.contains_bits(b)).count()
            };
            left += (r_set.len() - shared) as u64;
            right += (q_set.len() - shared) as u64;
        }
        RfAverage {
            left,
            right,
            n_refs: self.ref_sets.len(),
        }
    }
}

impl Comparator for SetComparator<'_> {
    fn name(&self) -> &'static str {
        if self.parallel {
            "dsmp"
        } else {
            "ds"
        }
    }

    fn average(&self, query: &Tree) -> Result<RfAverage, CoreError> {
        if self.ref_sets.is_empty() {
            return Err(CoreError::EmptyReference);
        }
        check_tree_taxa(query, self.taxa)?;
        Ok(self.score(query))
    }

    fn average_all_guarded(
        &self,
        queries: &[Tree],
        guard: &RunGuard,
    ) -> Result<Vec<QueryScore>, CoreError> {
        if self.ref_sets.is_empty() {
            return Err(CoreError::EmptyReference);
        }
        if queries.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        for q in queries {
            check_tree_taxa(q, self.taxa)?;
        }
        if !self.parallel {
            return queries
                .iter()
                .enumerate()
                .map(|(index, q)| {
                    guard.checkpoint("ds average_all")?;
                    Ok(QueryScore {
                        index,
                        rf: self.score(q),
                    })
                })
                .collect();
        }
        queries
            .par_iter()
            .enumerate()
            .map(|(index, q)| {
                isolate("dsmp query worker", || {
                    guard.checkpoint("dsmp average_all")?;
                    guard.panic_if_injected(index);
                    Ok(QueryScore {
                        index,
                        rf: self.score(q),
                    })
                })
            })
            .collect()
    }
}

/// HashRF: compressed-ID hashing with configurable ID width. Inherits
/// HashRF's collision behavior — averages may deviate from exact values
/// when `id_bits` is small (that inaccuracy is the point of the baseline).
/// Each query recomputes the hash over `refs + query`, so per-query cost
/// is `O(r)`; use this for parity experiments, not throughput.
#[derive(Debug, Clone)]
pub struct HashRfComparator<'a> {
    refs: &'a [Tree],
    taxa: &'a TaxonSet,
    config: HashRfConfig,
}

impl<'a> HashRfComparator<'a> {
    /// Compare against `refs` with the given HashRF configuration.
    pub fn new(refs: &'a [Tree], taxa: &'a TaxonSet, config: HashRfConfig) -> Self {
        HashRfComparator { refs, taxa, config }
    }
}

impl Comparator for HashRfComparator<'_> {
    fn name(&self) -> &'static str {
        "hashrf"
    }

    fn average(&self, query: &Tree) -> Result<RfAverage, CoreError> {
        if self.refs.is_empty() {
            return Err(CoreError::EmptyReference);
        }
        check_tree_taxa(query, self.taxa)?;
        let mut all: Vec<Tree> = self.refs.to_vec();
        all.push(query.clone());
        let hashrf = HashRf::compute(&all, self.taxa, &self.config)?;
        let qi = self.refs.len();
        let splits = hashrf.splits_per_tree();
        let (mut left, mut right) = (0u64, 0u64);
        for i in 0..qi {
            // Decompose the symmetric distance into the paper's two terms:
            // shared = (|B(q)| + |B(r_i)| − d_i) / 2.
            let d = u64::from(hashrf.rf(qi, i));
            let q_splits = u64::from(splits[qi]);
            let r_splits = u64::from(splits[i]);
            let shared = (q_splits + r_splits - d) / 2;
            left += r_splits - shared;
            right += q_splits - shared;
        }
        Ok(RfAverage {
            left,
            right,
            n_refs: self.refs.len(),
        })
    }
}

/// Day's O(n) pairwise algorithm as a comparator — the independent
/// correctness oracle, `O(n r)` per query.
#[derive(Debug, Clone)]
pub struct DayComparator<'a> {
    refs: &'a [Tree],
    taxa: &'a TaxonSet,
    /// Leafset and |B(r_i)| of each reference, precomputed.
    ref_info: Vec<(Bits, u64)>,
}

impl<'a> DayComparator<'a> {
    /// Precompute each reference's leafset and split count.
    pub fn new(refs: &'a [Tree], taxa: &'a TaxonSet) -> Self {
        let mut scratch = BipartitionScratch::new();
        let ref_info = refs
            .iter()
            .map(|t| (t.leafset(taxa.len()), scratch.split_count(t, taxa) as u64))
            .collect();
        DayComparator {
            refs,
            taxa,
            ref_info,
        }
    }
}

impl Comparator for DayComparator<'_> {
    fn name(&self) -> &'static str {
        "day"
    }

    fn average(&self, query: &Tree) -> Result<RfAverage, CoreError> {
        if self.refs.is_empty() {
            return Err(CoreError::EmptyReference);
        }
        check_tree_taxa(query, self.taxa)?;
        let q_leafset = query.leafset(self.taxa.len());
        let mut scratch = BipartitionScratch::new();
        let q_splits = scratch.split_count(query, self.taxa) as u64;
        let (mut left, mut right) = (0u64, 0u64);
        for (tree, (leafset, r_splits)) in self.refs.iter().zip(&self.ref_info) {
            if *leafset != q_leafset {
                return Err(CoreError::TaxaMismatch(
                    "Day's algorithm requires identical leaf sets".into(),
                ));
            }
            let d = crate::day::day_rf(query, tree, self.taxa) as u64;
            let shared = (q_splits + r_splits - d) / 2;
            left += r_splits - shared;
            right += q_splits - shared;
        }
        Ok(RfAverage {
            left,
            right,
            n_refs: self.refs.len(),
        })
    }
}

/// Construct a HashRF comparator — or, when its estimated allocation
/// exceeds the guard's byte budget, degrade to an owned-hash BFHRF
/// comparator and record the [`Degradation`](crate::guard::Degradation)
/// on the guard instead of letting the kernel OOM-kill the run (the fate
/// of the paper's r = 100k HashRF experiments).
///
/// The returned engine's `name()` says which algorithm actually ran.
pub fn hashrf_or_degrade<'a>(
    refs: &'a [Tree],
    taxa: &'a TaxonSet,
    config: HashRfConfig,
    guard: &RunGuard,
) -> Result<Box<dyn Comparator + 'a>, CoreError> {
    if refs.is_empty() {
        return Err(CoreError::EmptyReference);
    }
    // +1: HashRfComparator recomputes the hash over refs + query.
    let estimate = HashRf::estimate_bytes(refs.len() + 1, taxa.len(), &config);
    if guard.budget.fits(estimate) {
        return Ok(Box::new(HashRfComparator::new(refs, taxa, config)));
    }
    guard.record_degradation(
        "hashrf",
        "bfhrf",
        format!(
            "estimated {estimate} bytes for r={} exceeds the {} byte budget",
            refs.len(),
            guard
                .budget
                .max_bytes
                .map_or_else(|| "unlimited".into(), |b| b.to_string()),
        ),
    );
    let bfh = Bfh::try_build_sharded(refs, taxa, 1, guard)?;
    Ok(Box::new(BfhrfComparator::from_owned(bfh, taxa)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::{read_trees_from_str, TaxaPolicy, TreeCollection};

    fn setup() -> (TreeCollection, Vec<Tree>) {
        let mut refs = TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n((A,B),((C,E),(D,F)));",
        )
        .unwrap();
        let queries = read_trees_from_str(
            "((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));\n(((A,B),C),((D,E),F));",
            &mut refs.taxa,
            TaxaPolicy::Require,
        )
        .unwrap();
        (refs, queries)
    }

    #[test]
    fn all_exact_comparators_agree_field_by_field() {
        let (refs, queries) = setup();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let frozen = bfh.freeze();
        let engines: Vec<Box<dyn Comparator>> = vec![
            Box::new(BfhrfComparator::new(&bfh, &refs.taxa)),
            Box::new(BfhrfComparator::new(&bfh, &refs.taxa).parallel(true)),
            Box::new(FrozenComparator::new(&frozen, &refs.taxa)),
            Box::new(FrozenComparator::new(&frozen, &refs.taxa).parallel(true)),
            Box::new(SetComparator::new(&refs.trees, &refs.taxa)),
            Box::new(SetComparator::new(&refs.trees, &refs.taxa).parallel(true)),
            Box::new(DayComparator::new(&refs.trees, &refs.taxa)),
        ];
        let baseline = engines[0].average_all(&queries).unwrap();
        for engine in &engines[1..] {
            assert_eq!(
                engine.average_all(&queries).unwrap(),
                baseline,
                "{} disagrees with bfhrf",
                engine.name()
            );
        }
        // per-query entry point agrees with the batch
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(engines[0].average(q).unwrap(), baseline[i].rf);
        }
    }

    #[test]
    fn hashrf_with_wide_ids_matches_exact() {
        // 64-bit IDs make collisions (practically) impossible, so HashRF
        // must reproduce the exact averages.
        let (refs, queries) = setup();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let exact = BfhrfComparator::new(&bfh, &refs.taxa);
        let config = HashRfConfig {
            id_bits: 64,
            ..HashRfConfig::default()
        };
        let hashrf = HashRfComparator::new(&refs.trees, &refs.taxa, config);
        for q in &queries {
            assert_eq!(hashrf.average(q).unwrap(), exact.average(q).unwrap());
        }
    }

    #[test]
    fn empty_collections_are_typed_errors() {
        let (refs, queries) = setup();
        let empty = Bfh::empty(refs.taxa.len());
        let cmp = BfhrfComparator::new(&empty, &refs.taxa);
        assert_eq!(
            cmp.average(&queries[0]).unwrap_err(),
            CoreError::EmptyReference
        );
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let cmp = BfhrfComparator::new(&bfh, &refs.taxa);
        assert_eq!(cmp.average_all(&[]).unwrap_err(), CoreError::EmptyQuery);
    }

    #[test]
    fn day_comparator_rejects_leafset_mismatch() {
        let (refs, _) = setup();
        let mut taxa = refs.taxa.clone();
        let partial =
            read_trees_from_str("((A,B),(C,D));", &mut taxa, TaxaPolicy::Require).unwrap();
        let day = DayComparator::new(&refs.trees, &refs.taxa);
        assert!(matches!(
            day.average(&partial[0]).unwrap_err(),
            CoreError::TaxaMismatch(_)
        ));
    }

    #[test]
    fn guarded_batch_stops_on_cancel() {
        let (refs, queries) = setup();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let frozen = bfh.freeze();
        let cmps: Vec<Box<dyn Comparator>> = vec![
            Box::new(BfhrfComparator::new(&bfh, &refs.taxa)),
            Box::new(BfhrfComparator::new(&bfh, &refs.taxa).parallel(true)),
            Box::new(FrozenComparator::new(&frozen, &refs.taxa)),
            Box::new(FrozenComparator::new(&frozen, &refs.taxa).parallel(true)),
        ];
        for cmp in cmps {
            let guard = RunGuard::default();
            guard.cancel.cancel();
            let err = cmp.average_all_guarded(&queries, &guard).unwrap_err();
            assert!(matches!(err, CoreError::Cancelled(_)), "{err:?}");
        }
    }

    #[test]
    fn injected_query_worker_panic_is_isolated() {
        let (refs, queries) = setup();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let cmp = BfhrfComparator::new(&bfh, &refs.taxa).parallel(true);
        let mut guard = RunGuard::default();
        guard.inject_panic_at(1);
        let err = cmp.average_all_guarded(&queries, &guard).unwrap_err();
        assert!(matches!(err, CoreError::WorkerPanic(_)), "{err:?}");
        // Frozen path too
        let frozen = bfh.freeze();
        let fz = FrozenComparator::new(&frozen, &refs.taxa).parallel(true);
        let err = fz.average_all_guarded(&queries, &guard).unwrap_err();
        assert!(matches!(err, CoreError::WorkerPanic(_)), "{err:?}");
        // DSMP path too
        let ds = SetComparator::new(&refs.trees, &refs.taxa).parallel(true);
        let err = ds.average_all_guarded(&queries, &guard).unwrap_err();
        assert!(matches!(err, CoreError::WorkerPanic(_)), "{err:?}");
    }

    #[test]
    fn owned_hash_comparator_matches_borrowed() {
        let (refs, queries) = setup();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let borrowed = BfhrfComparator::new(&bfh, &refs.taxa);
        let owned = BfhrfComparator::from_owned(bfh.clone(), &refs.taxa);
        assert_eq!(
            borrowed.average_all(&queries).unwrap(),
            owned.average_all(&queries).unwrap()
        );
    }

    #[test]
    fn hashrf_degrades_to_bfhrf_when_over_budget() {
        let (refs, queries) = setup();
        // A budget below HashRF's ~24 KB bucket-table estimate but above
        // the fallback BFH's ~100-byte spill footprint: HashRF is refused,
        // BFHRF builds fine under the same guard.
        let guard = RunGuard::with_budget(crate::guard::RunBudget::with_max_bytes(1000));
        let engine =
            hashrf_or_degrade(&refs.trees, &refs.taxa, HashRfConfig::default(), &guard).unwrap();
        assert_eq!(engine.name(), "bfhrf");
        let events = guard.degradations();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].from, "hashrf");
        assert_eq!(events[0].to, "bfhrf");
        // Degraded answers are the exact ones.
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let exact = BfhrfComparator::new(&bfh, &refs.taxa);
        assert_eq!(
            engine.average_all(&queries).unwrap(),
            exact.average_all(&queries).unwrap()
        );
    }

    #[test]
    fn hashrf_runs_as_requested_when_budget_fits() {
        let (refs, _) = setup();
        let guard = RunGuard::default(); // unlimited
        let engine =
            hashrf_or_degrade(&refs.trees, &refs.taxa, HashRfConfig::default(), &guard).unwrap();
        assert_eq!(engine.name(), "hashrf");
        assert!(guard.degradations().is_empty());
    }

    #[test]
    fn out_of_namespace_query_is_a_typed_error() {
        let (refs, _) = setup();
        let mut wider = refs.taxa.clone();
        let alien =
            read_trees_from_str("((A,B),((C,Z1),(Z2,Z3)));", &mut wider, TaxaPolicy::Grow).unwrap();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let cmp = BfhrfComparator::new(&bfh, &refs.taxa);
        assert!(matches!(
            cmp.average(&alien[0]).unwrap_err(),
            CoreError::TaxaMismatch(_)
        ));
    }
}
