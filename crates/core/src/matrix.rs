//! All-vs-all RF matrices.
//!
//! HashRF-style methods answer clustering workloads by materializing the
//! full `r × r` RF matrix. The matrix is symmetric with a zero diagonal, so
//! only the strict upper triangle is stored ([`TriMatrix`]) — still
//! `O(r²)` memory, which is exactly the scaling the paper's Tables III/V
//! show blowing up. [`rf_matrix_exact`] computes the matrix collision-free
//! via a bipartition inverted index; the [`crate::hashrf`] baseline shares
//! the same pair-counting core but goes through compressed IDs.

use crate::guard::{isolate, RunBudget, RunGuard};
use crate::CoreError;
use phylo::{BipartitionScratch, TaxonSet, Tree};
use phylo_bitset::{bits_map_with_capacity, map_get_words_mut, words_for, Bits, BitsMap};
use rayon::prelude::*;

/// Strict-upper-triangle symmetric matrix of `u16` counts with a zero
/// diagonal. Entry type is `u16` because every stored quantity (shared
/// split counts, RF distances) is bounded by `2(n−3)` and the paper's
/// largest `n` is 1000.
#[derive(Debug, Clone)]
pub struct TriMatrix {
    size: usize,
    data: Vec<u16>,
}

impl TriMatrix {
    /// Bytes the triangle for `size` trees will occupy — callers check
    /// this against their memory budget *before* allocating (the paper's
    /// equivalent runs were OOM-killed by the kernel instead).
    pub fn required_bytes(size: usize) -> usize {
        size * (size.saturating_sub(1)) / 2 * std::mem::size_of::<u16>()
    }

    /// Allocate a zeroed triangle.
    pub fn zeroed(size: usize) -> Self {
        TriMatrix {
            size,
            data: vec![0u16; size * size.saturating_sub(1) / 2],
        }
    }

    /// Number of rows/columns.
    pub fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.size);
        j * (j - 1) / 2 + i
    }

    /// Entry `(i, j)`; the diagonal reads zero.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u16 {
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Less => self.data[self.index(i, j)],
            std::cmp::Ordering::Greater => self.data[self.index(j, i)],
        }
    }

    /// Set entry `(i, j)`, `i != j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: u16) {
        let idx = if i < j {
            self.index(i, j)
        } else {
            self.index(j, i)
        };
        self.data[idx] = value;
    }

    /// Saturating in-place increment of entry `(i, j)`, `i != j`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, delta: u16) {
        let idx = if i < j {
            self.index(i, j)
        } else {
            self.index(j, i)
        };
        self.data[idx] = self.data[idx].saturating_add(delta);
    }

    /// Mean of row `i` over all `size` entries (diagonal included), the
    /// quantity HashRF users average to get per-tree collective distance.
    pub fn row_mean(&self, i: usize) -> f64 {
        let total: u64 = (0..self.size).map(|j| u64::from(self.get(i, j))).sum();
        total as f64 / self.size as f64
    }
}

/// The exact RF matrix of one collection (Q is R), computed through a
/// collision-free inverted index: `bipartition → trees containing it`,
/// then one shared-count increment per co-occurrence.
///
/// `memory_budget_bytes` guards the triangle allocation; exceeding it
/// returns [`CoreError::ResourceLimit`].
pub fn rf_matrix_exact(
    trees: &[Tree],
    taxa: &TaxonSet,
    memory_budget_bytes: usize,
) -> Result<TriMatrix, CoreError> {
    let guard = RunGuard::with_budget(RunBudget {
        max_bytes: (memory_budget_bytes != usize::MAX).then_some(memory_budget_bytes),
        deadline: None,
    });
    rf_matrix_exact_guarded(trees, taxa, &guard)
}

/// [`rf_matrix_exact`] under a full [`RunGuard`]: the triangle allocation
/// is budget-checked up front and cancellation/deadline are polled at tree
/// granularity during the fill.
pub fn rf_matrix_exact_guarded(
    trees: &[Tree],
    taxa: &TaxonSet,
    guard: &RunGuard,
) -> Result<TriMatrix, CoreError> {
    if trees.is_empty() {
        return Err(CoreError::EmptyReference);
    }
    let r = trees.len();
    guard.check_alloc("RF matrix", TriMatrix::required_bytes(r))?;
    // inverted index and per-tree split counts; extraction runs through one
    // reused arena, so only novel splits allocate keys
    let mut index: BitsMap<Vec<u32>> = bits_map_with_capacity(r);
    let mut splits = vec![0u16; r];
    let mut scratch = BipartitionScratch::new();
    for (t_idx, tree) in trees.iter().enumerate() {
        guard.checkpoint("RF matrix index fill")?;
        scratch.for_each_split(tree, taxa, |w| {
            match map_get_words_mut(&mut index, w) {
                Some(list) => list.push(t_idx as u32),
                None => {
                    index.insert(Bits::from_words(taxa.len(), w), vec![t_idx as u32]);
                }
            }
            splits[t_idx] += 1;
        });
    }
    finish_matrix(&index, &splits, r, guard)
}

/// Shared tail of the exact-matrix builds: pair-count co-occurrences from
/// the inverted index, then convert shared counts to RF distances.
fn finish_matrix(
    index: &BitsMap<Vec<u32>>,
    splits: &[u16],
    r: usize,
    guard: &RunGuard,
) -> Result<TriMatrix, CoreError> {
    let mut shared = TriMatrix::zeroed(r);
    for (_, list) in index.iter() {
        for (k, &i) in list.iter().enumerate() {
            for &j in &list[k + 1..] {
                shared.add(i as usize, j as usize, 1);
            }
        }
    }
    // convert shared counts to RF distances in place
    let mut out = shared;
    for j in 1..r {
        guard.checkpoint("RF matrix conversion")?;
        for i in 0..j {
            let s = out.get(i, j);
            let rf = splits[i] + splits[j] - 2 * s;
            out.set(i, j, rf);
        }
    }
    Ok(out)
}

/// [`rf_matrix_exact`] with the extraction phase parallelized: workers
/// spill each chunk's canonical masks into a flat buffer (per-worker
/// scratch arena, no shared state), and the spills are folded into the
/// inverted index sequentially in tree order — so the resulting index, and
/// therefore the matrix, is identical to the sequential build's. Pair
/// counting stays sequential (it is write-heavy on one triangle).
pub fn rf_matrix_exact_parallel_guarded(
    trees: &[Tree],
    taxa: &TaxonSet,
    guard: &RunGuard,
) -> Result<TriMatrix, CoreError> {
    if trees.is_empty() {
        return Err(CoreError::EmptyReference);
    }
    let r = trees.len();
    guard.check_alloc("RF matrix", TriMatrix::required_bytes(r))?;
    let words = words_for(taxa.len());
    let chunk = r.div_ceil(rayon::current_num_threads()).max(1);
    let spills: Vec<(Vec<u64>, Vec<u16>)> = trees
        .par_chunks(chunk)
        .map(|qs| {
            isolate("RF matrix extract worker", || {
                let mut scratch = BipartitionScratch::new();
                let mut masks = Vec::new();
                let mut counts = Vec::with_capacity(qs.len());
                for tree in qs {
                    guard.checkpoint("RF matrix index fill")?;
                    let mut c = 0u16;
                    scratch.for_each_split(tree, taxa, |w| {
                        masks.extend_from_slice(w);
                        c += 1;
                    });
                    counts.push(c);
                }
                Ok((masks, counts))
            })
        })
        .collect::<Result<_, CoreError>>()?;
    let mut index: BitsMap<Vec<u32>> = bits_map_with_capacity(r);
    let mut splits = vec![0u16; r];
    let mut t_idx = 0usize;
    for (masks, counts) in &spills {
        let mut off = 0usize;
        for &c in counts {
            for _ in 0..c {
                let w = &masks[off..off + words];
                off += words;
                match map_get_words_mut(&mut index, w) {
                    Some(list) => list.push(t_idx as u32),
                    None => {
                        index.insert(Bits::from_words(taxa.len(), w), vec![t_idx as u32]);
                    }
                }
            }
            splits[t_idx] = c;
            t_idx += 1;
        }
    }
    finish_matrix(&index, &splits, r, guard)
}

/// The exact RF matrix computed pairwise with Day's O(n) algorithm —
/// `O(n r²)` total, no hash tables. Slower than [`rf_matrix_exact`] on
/// shared-split-heavy collections but with perfectly predictable per-pair
/// cost; mostly useful as yet another independent oracle and for the
/// pairwise ablation bench.
pub fn rf_matrix_day(
    trees: &[Tree],
    taxa: &TaxonSet,
    memory_budget_bytes: usize,
) -> Result<TriMatrix, CoreError> {
    let guard = RunGuard::with_budget(RunBudget {
        max_bytes: (memory_budget_bytes != usize::MAX).then_some(memory_budget_bytes),
        deadline: None,
    });
    rf_matrix_day_guarded(trees, taxa, &guard)
}

/// [`rf_matrix_day`] under a full [`RunGuard`], polled once per tree row.
pub fn rf_matrix_day_guarded(
    trees: &[Tree],
    taxa: &TaxonSet,
    guard: &RunGuard,
) -> Result<TriMatrix, CoreError> {
    if trees.is_empty() {
        return Err(CoreError::EmptyReference);
    }
    let r = trees.len();
    guard.check_alloc("RF matrix", TriMatrix::required_bytes(r))?;
    let mut out = TriMatrix::zeroed(r);
    for j in 1..r {
        guard.checkpoint("Day RF matrix")?;
        for i in 0..j {
            let d = crate::day::day_rf(&trees[i], &trees[j], taxa);
            let d16 = u16::try_from(d).map_err(|_| {
                CoreError::Structure(format!(
                    "RF distance {d} between trees {i} and {j} exceeds u16 range"
                ))
            })?;
            out.set(i, j, d16);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::{BipartitionSet, TreeCollection};

    #[test]
    fn trimatrix_symmetry_and_diagonal() {
        let mut m = TriMatrix::zeroed(4);
        m.set(1, 3, 7);
        m.add(3, 1, 2);
        assert_eq!(m.get(1, 3), 9);
        assert_eq!(m.get(3, 1), 9);
        assert_eq!(m.get(2, 2), 0);
        assert_eq!(m.get(0, 1), 0);
    }

    #[test]
    fn trimatrix_bytes_and_saturation() {
        assert_eq!(TriMatrix::required_bytes(1000), 1000 * 999 / 2 * 2);
        assert_eq!(TriMatrix::required_bytes(0), 0);
        let mut m = TriMatrix::zeroed(2);
        m.set(0, 1, u16::MAX);
        m.add(0, 1, 5);
        assert_eq!(m.get(0, 1), u16::MAX, "saturating add");
    }

    #[test]
    fn exact_matrix_matches_pairwise_sets() {
        let coll = TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n((A,B),((C,E),(D,F)));",
        )
        .unwrap();
        let m = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let sets: Vec<BipartitionSet> = coll
            .trees
            .iter()
            .map(|t| BipartitionSet::from_tree(t, &coll.taxa))
            .collect();
        for i in 0..coll.len() {
            for j in 0..coll.len() {
                assert_eq!(
                    m.get(i, j) as usize,
                    sets[i].rf_distance(&sets[j]),
                    "entry ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn row_means_match_bfhrf_self_average() {
        use crate::{bfhrf_all, Bfh};
        let coll = TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));",
        )
        .unwrap();
        let m = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        let scores = bfhrf_all(&coll.trees, &coll.taxa, &bfh).unwrap();
        for s in scores {
            assert!(
                (m.row_mean(s.index) - s.rf.average()).abs() < 1e-12,
                "row {} mean",
                s.index
            );
        }
    }

    #[test]
    fn day_matrix_equals_inverted_index_matrix() {
        let coll = TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n((A,B),((C,E),(D,F)));",
        )
        .unwrap();
        let a = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let b = rf_matrix_day(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        for i in 0..coll.len() {
            for j in 0..coll.len() {
                assert_eq!(a.get(i, j), b.get(i, j), "entry ({i},{j})");
            }
        }
        assert!(rf_matrix_day(&coll.trees, &coll.taxa, 1).is_err());
    }

    #[test]
    fn parallel_extraction_matches_sequential_exactly() {
        let spec = phylo_sim::DatasetSpec::new("matrix-par", 40, 60, 11);
        let coll = phylo_sim::generate(&spec);
        let guard = RunGuard::default();
        let seq = rf_matrix_exact_guarded(&coll.trees, &coll.taxa, &guard).unwrap();
        let par = rf_matrix_exact_parallel_guarded(&coll.trees, &coll.taxa, &guard).unwrap();
        for i in 0..coll.len() {
            for j in 0..coll.len() {
                assert_eq!(seq.get(i, j), par.get(i, j), "entry ({i},{j})");
            }
        }
        let cancelled = RunGuard::default();
        cancelled.cancel.cancel();
        assert!(matches!(
            rf_matrix_exact_parallel_guarded(&coll.trees, &coll.taxa, &cancelled).unwrap_err(),
            CoreError::Cancelled(_)
        ));
    }

    #[test]
    fn memory_budget_is_enforced() {
        let coll = TreeCollection::parse("((A,B),(C,D));\n((A,C),(B,D));").unwrap();
        let err = rf_matrix_exact(&coll.trees, &coll.taxa, 0).unwrap_err();
        assert!(matches!(err, CoreError::ResourceLimit(_)));
    }

    #[test]
    fn empty_collection_errors() {
        let taxa = phylo::TaxonSet::new();
        assert_eq!(
            rf_matrix_exact(&[], &taxa, usize::MAX).unwrap_err(),
            CoreError::EmptyReference
        );
    }
}
