//! The bipartition frequency hash (BFH) — the paper's central data
//! structure.
//!
//! Keys are **full canonical bitmasks**, so lookups are collision-free:
//! unlike HashRF's compressed IDs, two distinct bipartitions can never
//! merge, which is what makes the structure "non-transformative" and every
//! RF variant implementable on top of it (paper §VII.F). Values are the
//! number of reference trees containing the split; the running total
//! `sum()` is the paper's `sumBFHR`.

use phylo::{Bipartition, TaxaPolicy, TaxonSet, Tree};
use phylo_bitset::{bits_map_with_capacity, Bits, BitsMap};
use rayon::prelude::*;
use std::io::BufRead;

/// Bipartition frequency hash over a reference collection.
///
/// ```
/// use bfhrf::Bfh;
/// use phylo::TreeCollection;
/// use phylo_bitset::Bits;
///
/// let coll = TreeCollection::parse(
///     "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));").unwrap();
/// let bfh = Bfh::build(&coll.trees, &coll.taxa);
/// assert_eq!(bfh.n_trees(), 3);
/// assert_eq!(bfh.sum(), 3);                  // one non-trivial split per tree
/// assert_eq!(bfh.distinct(), 2);             // {A,B} and {A,C}
/// let ab = Bits::from_bitstring("0011").unwrap();
/// assert_eq!(bfh.frequency(&ab), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Bfh {
    counts: BitsMap<u32>,
    sum: u64,
    n_trees: usize,
    n_taxa: usize,
}

impl Bfh {
    /// An empty hash over an `n_taxa`-wide namespace.
    pub fn empty(n_taxa: usize) -> Self {
        Bfh {
            counts: bits_map_with_capacity(0),
            sum: 0,
            n_trees: 0,
            n_taxa,
        }
    }

    /// Build sequentially from a reference collection (first loop of the
    /// paper's Algorithm 2).
    pub fn build(trees: &[Tree], taxa: &TaxonSet) -> Self {
        let mut bfh = Bfh::empty(taxa.len());
        for tree in trees {
            bfh.add_tree(tree, taxa);
        }
        bfh
    }

    /// Build in parallel with rayon: per-thread local hashes fold the trees
    /// they are handed, then merge pairwise. Produces exactly the same
    /// counts as [`Bfh::build`] — addition is commutative, so the work
    /// split cannot change the result.
    pub fn build_parallel(trees: &[Tree], taxa: &TaxonSet) -> Self {
        trees
            .par_iter()
            .fold(
                || Bfh::empty(taxa.len()),
                |mut acc, tree| {
                    acc.add_tree(tree, taxa);
                    acc
                },
            )
            .reduce(|| Bfh::empty(taxa.len()), |a, b| a.merged(b))
    }

    /// Build from a Newick stream without materializing the collection —
    /// memory stays `O(hash)` regardless of `r`. Labels must already be in
    /// `taxa` (the fixed-taxa requirement); pass a namespace pre-grown from
    /// the same data, or intern labels first with [`TaxaPolicy::Grow`]
    /// parsing.
    pub fn build_streaming<R: BufRead>(
        reader: R,
        taxa: &mut TaxonSet,
        policy: TaxaPolicy,
    ) -> Result<Self, phylo::PhyloError> {
        let mut stream = phylo::newick::NewickStream::new(reader, policy);
        // Two-phase is impossible when growing: bitmask width would change
        // as labels appear. Collect trees first if growing, else stream.
        match policy {
            TaxaPolicy::Grow => {
                let mut trees = Vec::new();
                while let Some(t) = stream.next_tree(taxa)? {
                    trees.push(t);
                }
                Ok(Bfh::build(&trees, taxa))
            }
            TaxaPolicy::Require => {
                let mut bfh = Bfh::empty(taxa.len());
                while let Some(t) = stream.next_tree(taxa)? {
                    bfh.add_tree(&t, taxa);
                }
                Ok(bfh)
            }
        }
    }

    /// Add one reference tree's bipartitions (incremental update).
    pub fn add_tree(&mut self, tree: &Tree, taxa: &TaxonSet) {
        debug_assert_eq!(taxa.len(), self.n_taxa, "namespace changed under the hash");
        self.add_splits(tree.bipartitions(taxa));
    }

    /// Add one tree's pre-extracted splits. Useful when extraction runs on
    /// another thread (pipelined builds): extraction parallelizes, the
    /// fold stays sequential and deterministic.
    pub fn add_splits<I: IntoIterator<Item = Bipartition>>(&mut self, splits: I) {
        for bp in splits {
            *self.counts.entry(bp.into_bits()).or_insert(0) += 1;
            self.sum += 1;
        }
        self.n_trees += 1;
    }

    /// Remove a previously added reference tree (incremental downdate).
    ///
    /// Counts reaching zero are evicted so memory tracks the live
    /// collection. Removing a tree that was never added corrupts the hash;
    /// in debug builds that is caught by an underflow panic.
    pub fn remove_tree(&mut self, tree: &Tree, taxa: &TaxonSet) {
        for bp in tree.bipartitions(taxa) {
            let bits = bp.into_bits();
            match self.counts.get_mut(&bits) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.counts.remove(&bits);
                }
                None => panic!("remove_tree: bipartition was never added"),
            }
            self.sum -= 1;
        }
        self.n_trees -= 1;
    }

    /// Merge another hash built over the same namespace into this one.
    pub fn merged(self, other: Bfh) -> Bfh {
        assert_eq!(self.n_taxa, other.n_taxa, "merging hashes over different taxa");
        // Fold the smaller map into the larger one.
        let (mut big, small) = if self.counts.len() >= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        let Bfh {
            counts, sum, n_trees, ..
        } = small;
        for (bits, c) in counts {
            *big.counts.entry(bits).or_insert(0) += c;
        }
        big.sum += sum;
        big.n_trees += n_trees;
        big
    }

    /// Frequency of a canonical bipartition (0 if absent) — the paper's
    /// `BFHR[b]`.
    #[inline]
    pub fn frequency(&self, bits: &Bits) -> u32 {
        self.counts.get(bits).copied().unwrap_or(0)
    }

    /// Frequency of a [`Bipartition`].
    #[inline]
    pub fn frequency_of(&self, bp: &Bipartition) -> u32 {
        self.frequency(bp.bits())
    }

    /// Total bipartition occurrences — the paper's `sumBFHR`.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of reference trees folded in — the paper's `r`.
    #[inline]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Width of the taxon namespace — the paper's `n`.
    #[inline]
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Number of **distinct** bipartitions stored. The paper's memory
    /// argument (§VII.C): this saturates as `r` grows because repeat
    /// splits only bump counters.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterate `(bitmask, frequency)` entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Bits, u32)> {
        self.counts.iter().map(|(b, &c)| (b, c))
    }

    /// Preprocessing hook (paper §III.A: the hash "can still be
    /// pre-processed according to generalized or variant RF algorithms"):
    /// drop entries failing the predicate, updating `sum` accordingly.
    pub fn retain<F: FnMut(&Bits, u32) -> bool>(&mut self, mut keep: F) {
        let mut removed = 0u64;
        self.counts.retain(|bits, count| {
            let k = keep(bits, *count);
            if !k {
                removed += u64::from(*count);
            }
            k
        });
        self.sum -= removed;
    }

    /// Rough heap footprint in bytes: map buckets plus key payloads. Used
    /// by the bench harness memory reports.
    pub fn approx_bytes(&self) -> usize {
        let key_words = phylo_bitset::words_for(self.n_taxa);
        // Bits: boxed words + (ptr, len-of-box, bitlen) inline; entry adds
        // the u32 count and hashbrown's control byte + padding.
        let per_entry = key_words * 8 + std::mem::size_of::<Bits>() + 8;
        self.counts.capacity() * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::TreeCollection;

    fn coll(text: &str) -> TreeCollection {
        TreeCollection::parse(text).unwrap()
    }

    #[test]
    fn build_counts_frequencies() {
        let c = coll("((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));");
        let bfh = Bfh::build(&c.trees, &c.taxa);
        assert_eq!(bfh.n_trees(), 3);
        assert_eq!(bfh.sum(), 3, "each 4-leaf tree has one non-trivial split");
        assert_eq!(bfh.distinct(), 2);
        let ab = Bits::from_bitstring("0011").unwrap();
        let ac = Bits::from_bitstring("0101").unwrap();
        assert_eq!(bfh.frequency(&ab), 2);
        assert_eq!(bfh.frequency(&ac), 1);
        assert_eq!(bfh.frequency(&Bits::from_bitstring("1001").unwrap()), 0);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let c = coll(&"((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n"
            .repeat(40));
        let seq = Bfh::build(&c.trees, &c.taxa);
        let par = Bfh::build_parallel(&c.trees, &c.taxa);
        assert_eq!(seq.n_trees(), par.n_trees());
        assert_eq!(seq.sum(), par.sum());
        assert_eq!(seq.distinct(), par.distinct());
        for (bits, count) in seq.iter() {
            assert_eq!(par.frequency(bits), count);
        }
    }

    #[test]
    fn streaming_build_matches_batch() {
        let text = "((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));\n";
        let batch_coll = coll(text);
        let batch = Bfh::build(&batch_coll.trees, &batch_coll.taxa);
        let mut taxa = TaxonSet::new();
        let streamed =
            Bfh::build_streaming(text.as_bytes(), &mut taxa, TaxaPolicy::Grow).unwrap();
        assert_eq!(streamed.sum(), batch.sum());
        assert_eq!(streamed.distinct(), batch.distinct());
        assert_eq!(streamed.n_trees(), 3);
    }

    #[test]
    fn incremental_add_remove_is_inverse() {
        let c = coll("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));");
        let mut bfh = Bfh::build(&c.trees[..2], &c.taxa);
        let snapshot: Vec<(Bits, u32)> =
            bfh.iter().map(|(b, c)| (b.clone(), c)).collect();
        bfh.add_tree(&c.trees[2], &c.taxa);
        assert_eq!(bfh.n_trees(), 3);
        bfh.remove_tree(&c.trees[2], &c.taxa);
        assert_eq!(bfh.n_trees(), 2);
        assert_eq!(bfh.distinct(), snapshot.len());
        for (bits, count) in snapshot {
            assert_eq!(bfh.frequency(&bits), count);
        }
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn removing_unknown_tree_panics() {
        let c = coll("((A,B),(C,D));\n((A,C),(B,D));");
        let mut bfh = Bfh::build(&c.trees[..1], &c.taxa);
        bfh.remove_tree(&c.trees[1], &c.taxa);
    }

    #[test]
    fn retain_filters_and_fixes_sum() {
        let c = coll("((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));");
        let mut bfh = Bfh::build(&c.trees, &c.taxa);
        let before = bfh.sum();
        // keep only splits present in every tree
        bfh.retain(|_, count| count as usize == 2);
        assert!(bfh.sum() < before);
        assert!(bfh.iter().all(|(_, c)| c == 2));
        let expected_sum: u64 = bfh.iter().map(|(_, c)| u64::from(c)).sum();
        assert_eq!(bfh.sum(), expected_sum);
    }

    #[test]
    fn merged_is_commutative() {
        let c = coll("((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));\n((A,B),(C,D));");
        let x = Bfh::build(&c.trees[..2], &c.taxa);
        let y = Bfh::build(&c.trees[2..], &c.taxa);
        let xy = x.clone().merged(y.clone());
        let yx = y.merged(x);
        assert_eq!(xy.sum(), yx.sum());
        assert_eq!(xy.n_trees(), 4);
        for (bits, count) in xy.iter() {
            assert_eq!(yx.frequency(bits), count);
        }
    }

    #[test]
    fn empty_hash_behaviour() {
        let bfh = Bfh::empty(10);
        assert_eq!(bfh.sum(), 0);
        assert_eq!(bfh.n_trees(), 0);
        assert_eq!(bfh.distinct(), 0);
        assert_eq!(bfh.frequency(&Bits::zeros(10)), 0);
    }

    #[test]
    fn distinct_saturates_with_duplicate_trees() {
        // paper §VII.C: repeats don't grow the hash
        let one = "((A,B),((C,D),(E,F)));\n";
        let c5 = coll(&one.repeat(5));
        let c50 = coll(&one.repeat(50));
        let b5 = Bfh::build(&c5.trees, &c5.taxa);
        let b50 = Bfh::build(&c50.trees, &c50.taxa);
        assert_eq!(b5.distinct(), b50.distinct());
        assert_eq!(b50.sum(), 10 * b5.sum());
    }
}
