//! The bipartition frequency hash (BFH) — the paper's central data
//! structure.
//!
//! Keys are **full canonical bitmasks**, so lookups are collision-free:
//! unlike HashRF's compressed IDs, two distinct bipartitions can never
//! merge, which is what makes the structure "non-transformative" and every
//! RF variant implementable on top of it (paper §VII.F). Values are the
//! number of reference trees containing the split; the running total
//! `sum()` is the paper's `sumBFHR`.
//!
//! # Sharding
//!
//! Internally the hash is `k ≥ 1` independent maps ("shards"); a split
//! lives in shard [`shard_of`]`(`[`split_hash128`]`(mask), k)`. With `k =
//! 1` (the default for [`Bfh::build`]) there is a single map and routing
//! is skipped entirely. [`Bfh::build_sharded`] exploits the partition for
//! construction: splits are extracted into per-worker spill buffers,
//! routed by hash prefix, and each shard's map is then folded
//! independently — no cross-thread merge step, unlike a rayon fold/reduce
//! of per-worker hashes. Because the router is a pure function
//! of the mask words, the shard decomposition is deterministic and the
//! resulting frequencies are bitwise-identical to a sequential build.

use crate::error::CoreError;
use crate::guard::{isolate, RunGuard};
use phylo::{Bipartition, BipartitionScratch, TaxonSet, Tree};
use phylo_bitset::{
    bits_map_with_capacity, map_get_words, map_get_words_mut, shard_of, split_hash128, words_for,
    Bits, BitsMap,
};
use rayon::prelude::*;

/// Bipartition frequency hash over a reference collection.
///
/// ```
/// use bfhrf::Bfh;
/// use phylo::TreeCollection;
/// use phylo_bitset::Bits;
///
/// let coll = TreeCollection::parse(
///     "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));").unwrap();
/// let bfh = Bfh::build(&coll.trees, &coll.taxa);
/// assert_eq!(bfh.n_trees(), 3);
/// assert_eq!(bfh.sum(), 3);                  // one non-trivial split per tree
/// assert_eq!(bfh.distinct(), 2);             // {A,B} and {A,C}
/// let ab = Bits::from_bitstring("0011").unwrap();
/// assert_eq!(bfh.frequency(&ab), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Bfh {
    /// Shard maps; a split's home is `shard_of(split_hash128(words), k)`.
    /// Always at least one entry.
    shards: Vec<BitsMap<u32>>,
    sum: u64,
    n_trees: usize,
    n_taxa: usize,
}

impl Bfh {
    /// An empty single-shard hash over an `n_taxa`-wide namespace.
    pub fn empty(n_taxa: usize) -> Self {
        Bfh::empty_sharded(n_taxa, 1)
    }

    /// An empty hash partitioned into `shards` maps.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn empty_sharded(n_taxa: usize, shards: usize) -> Self {
        assert!(shards > 0, "a Bfh needs at least one shard");
        Bfh {
            shards: (0..shards).map(|_| bits_map_with_capacity(0)).collect(),
            sum: 0,
            n_trees: 0,
            n_taxa,
        }
    }

    /// Shard housing the split with these mask words.
    #[inline]
    fn shard_index(&self, words: &[u64]) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            shard_of(split_hash128(words), self.shards.len())
        }
    }

    /// Count one occurrence of an owned canonical mask.
    #[inline]
    fn bump(&mut self, bits: Bits) {
        let si = self.shard_index(bits.words());
        *self.shards[si].entry(bits).or_insert(0) += 1;
        self.sum += 1;
    }

    /// Count one occurrence of a borrowed canonical mask, materializing a
    /// key only on first sighting.
    #[inline]
    fn bump_words(&mut self, words: &[u64]) {
        let si = self.shard_index(words);
        match map_get_words_mut(&mut self.shards[si], words) {
            Some(c) => *c += 1,
            None => {
                self.shards[si].insert(Bits::from_words(self.n_taxa, words), 1);
            }
        }
        self.sum += 1;
    }

    /// Build sequentially from a reference collection (first loop of the
    /// paper's Algorithm 2). Extraction runs through a reused
    /// [`BipartitionScratch`], so per-tree work allocates only on novel
    /// splits.
    pub fn build(trees: &[Tree], taxa: &TaxonSet) -> Self {
        let mut bfh = Bfh::empty(taxa.len());
        let mut scratch = BipartitionScratch::new();
        for tree in trees {
            bfh.add_tree_with(tree, taxa, &mut scratch);
        }
        bfh
    }

    /// Build a `shards`-way partitioned hash in two phases with **no merge
    /// step**:
    ///
    /// 1. workers extract splits from disjoint tree chunks into per-worker
    ///    spill buffers, one buffer per shard, routing each mask by
    ///    [`split_hash128`];
    /// 2. workers fold the spill buffers of each shard — every shard is
    ///    owned by exactly one fold, so no map is ever merged into another.
    ///
    /// Frequencies are bitwise-identical to [`Bfh::build`] for any shard or
    /// thread count: routing is a pure function of the mask and counting is
    /// additive.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn build_sharded(trees: &[Tree], taxa: &TaxonSet, shards: usize) -> Self {
        assert!(shards > 0, "a Bfh needs at least one shard");
        match Bfh::try_build_sharded(trees, taxa, shards, &RunGuard::default()) {
            Ok(bfh) => bfh,
            // A default guard never cancels, never refuses an allocation,
            // and never injects a panic — this arm is unreachable, but the
            // compat contract of this entry point is infallible.
            Err(e) => panic!("build_sharded failed under a permissive guard: {e}"),
        }
    }

    /// [`Bfh::build_sharded`] under a [`RunGuard`]: cancellation and
    /// deadline are polled at tree granularity, the spill-buffer footprint
    /// is checked against the byte budget *before* allocating, and every
    /// rayon worker body is panic-isolated — a poisoned tree yields
    /// [`CoreError::WorkerPanic`] instead of aborting the process.
    ///
    /// With `RunGuard::default()` this is exactly `build_sharded`.
    pub fn try_build_sharded(
        trees: &[Tree],
        taxa: &TaxonSet,
        shards: usize,
        guard: &RunGuard,
    ) -> Result<Self, CoreError> {
        if shards == 0 {
            return Err(CoreError::Structure(
                "a Bfh needs at least one shard".into(),
            ));
        }
        let n_taxa = taxa.len();
        let words = words_for(n_taxa);
        if trees.is_empty() || words == 0 {
            let mut bfh = Bfh::empty_sharded(n_taxa, shards);
            bfh.n_trees = trees.len();
            return Ok(bfh);
        }
        guard.checkpoint("BFH build")?;
        // Every split is spilled once as raw words before folding: the whole
        // phase-1 footprint is bounded by r × (n − 3) splits of `words`
        // u64s. Refuse now rather than OOM mid-build.
        let spill_bytes = trees
            .len()
            .saturating_mul(n_taxa.saturating_sub(3))
            .saturating_mul(words * 8);
        guard.check_alloc("BFH build spill buffers", spill_bytes)?;

        // Phase 1: extract + route into per-worker spill buffers. Masks are
        // spilled as raw words (stride `words`), so a worker allocates only
        // when a buffer grows — never per split.
        let chunk = trees.len().div_ceil(rayon::current_num_threads()).max(1);
        // Uniform-routing estimate of one bucket's word footprint: at most
        // n − 3 internal splits per tree, spread across the shards.
        let bucket_hint = (chunk * n_taxa.saturating_sub(3) * words).div_ceil(shards) + words;
        let spills: Vec<(Vec<Vec<u64>>, u64)> = trees
            .par_chunks(chunk)
            .enumerate()
            .map(|(ci, chunk_trees)| {
                isolate("BFH extract worker", || {
                    let mut scratch = BipartitionScratch::new();
                    let mut buckets: Vec<Vec<u64>> = (0..shards)
                        .map(|_| Vec::with_capacity(bucket_hint))
                        .collect();
                    let mut occurrences = 0u64;
                    for (i, tree) in chunk_trees.iter().enumerate() {
                        guard.checkpoint("BFH build")?;
                        guard.panic_if_injected(ci * chunk + i);
                        scratch.for_each_split(tree, taxa, |w| {
                            let si = if shards == 1 {
                                0
                            } else {
                                shard_of(split_hash128(w), shards)
                            };
                            buckets[si].extend_from_slice(w);
                            occurrences += 1;
                        });
                    }
                    Ok((buckets, occurrences))
                })
            })
            .collect::<Result<_, CoreError>>()?;

        // Phase 2: fold each shard independently across all workers' spills.
        let shard_ids: Vec<usize> = (0..shards).collect();
        let maps: Vec<BitsMap<u32>> = shard_ids
            .par_iter()
            .map(|&si| {
                isolate("BFH fold worker", || {
                    guard.checkpoint("BFH fold")?;
                    // Size for the pessimistic every-split-distinct case
                    // halved — one rehash at most, none once repeats
                    // dominate.
                    let entries: usize = spills
                        .iter()
                        .map(|(buckets, _)| buckets[si].len() / words)
                        .sum();
                    let mut map: BitsMap<u32> = bits_map_with_capacity(entries / 2 + 8);
                    for (buckets, _) in &spills {
                        for w in buckets[si].chunks_exact(words) {
                            match map_get_words_mut(&mut map, w) {
                                Some(c) => *c += 1,
                                None => {
                                    map.insert(Bits::from_words(n_taxa, w), 1);
                                }
                            }
                        }
                    }
                    Ok(map)
                })
            })
            .collect::<Result<_, CoreError>>()?;

        Ok(Bfh {
            shards: maps,
            sum: spills.iter().map(|(_, occ)| occ).sum(),
            n_trees: trees.len(),
            n_taxa,
        })
    }

    /// Reassemble a hash from raw `(mask, frequency)` entries — the
    /// validating reconstruction path used by the on-disk snapshot reader
    /// (`phylo-index`). Entries are routed into the `shards`-way layout
    /// exactly as an in-memory build would route them, so the result is
    /// bitwise-identical to the hash the entries were exported from.
    ///
    /// Every entry is validated: the mask width must match `n_taxa`, the
    /// frequency must be in `1..=n_trees`, and duplicate masks are
    /// rejected — a corrupted snapshot surfaces as
    /// [`CoreError::Structure`], never as silently wrong frequencies.
    pub fn from_entries<I>(
        n_taxa: usize,
        shards: usize,
        n_trees: usize,
        entries: I,
    ) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = (Bits, u32)>,
    {
        if shards == 0 {
            return Err(CoreError::Structure(
                "a Bfh needs at least one shard".into(),
            ));
        }
        let mut bfh = Bfh::empty_sharded(n_taxa, shards);
        bfh.n_trees = n_trees;
        for (bits, freq) in entries {
            if bits.len() != n_taxa {
                return Err(CoreError::Structure(format!(
                    "entry mask is {} bits wide, namespace has {n_taxa} taxa",
                    bits.len()
                )));
            }
            if freq == 0 || freq as usize > n_trees {
                return Err(CoreError::Structure(format!(
                    "entry {bits} has frequency {freq}, expected 1..={n_trees}"
                )));
            }
            let si = bfh.shard_index(bits.words());
            if bfh.shards[si].insert(bits, freq).is_some() {
                return Err(CoreError::Structure("duplicate mask among entries".into()));
            }
            bfh.sum += u64::from(freq);
        }
        Ok(bfh)
    }

    /// Add one reference tree's bipartitions (incremental update).
    pub fn add_tree(&mut self, tree: &Tree, taxa: &TaxonSet) {
        let mut scratch = BipartitionScratch::new();
        self.add_tree_with(tree, taxa, &mut scratch);
    }

    /// Add one reference tree's bipartitions through a caller-owned
    /// extraction arena — the allocation-free path the batch builders use.
    pub fn add_tree_with(
        &mut self,
        tree: &Tree,
        taxa: &TaxonSet,
        scratch: &mut BipartitionScratch,
    ) {
        debug_assert_eq!(taxa.len(), self.n_taxa, "namespace changed under the hash");
        scratch.for_each_split(tree, taxa, |w| self.bump_words(w));
        self.n_trees += 1;
    }

    /// Add one tree's pre-extracted splits. Useful when extraction runs on
    /// another thread (pipelined builds): extraction parallelizes, the
    /// fold stays sequential and deterministic.
    pub fn add_splits<I: IntoIterator<Item = Bipartition>>(&mut self, splits: I) {
        for bp in splits {
            self.bump(bp.into_bits());
        }
        self.n_trees += 1;
    }

    /// Remove a previously added reference tree (incremental downdate).
    ///
    /// Counts reaching zero are evicted so memory tracks the live
    /// collection. Removing a tree that was never added returns
    /// [`CoreError::Structure`] and leaves the hash **unchanged** — the
    /// bipartitions are verified before any counter is touched, so dynamic
    /// maintenance can treat the error as fully recoverable.
    pub fn remove_tree(&mut self, tree: &Tree, taxa: &TaxonSet) -> Result<(), CoreError> {
        let splits = tree.bipartitions(taxa);
        // Verify-then-mutate: a failure after partial decrements would
        // corrupt frequencies silently.
        for bp in &splits {
            if self.frequency(bp.bits()) == 0 {
                return Err(CoreError::Structure(format!(
                    "remove_tree: bipartition {} was never added",
                    bp.bits()
                )));
            }
        }
        if self.n_trees == 0 {
            return Err(CoreError::Structure(
                "remove_tree: hash holds no trees".into(),
            ));
        }
        for bp in splits {
            let bits = bp.into_bits();
            let si = self.shard_index(bits.words());
            match self.shards[si].get_mut(&bits) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.shards[si].remove(&bits);
                }
            }
            self.sum -= 1;
        }
        self.n_trees -= 1;
        // Long add/remove churn evicts entries but hashbrown never returns
        // bucket memory on its own; give it back once occupancy falls below
        // a quarter so the footprint tracks the live collection.
        for shard in &mut self.shards {
            if shard.capacity() > 64 && shard.len() < shard.capacity() / 4 {
                shard.shrink_to_fit();
            }
        }
        Ok(())
    }

    /// Merge another hash built over the same namespace into this one.
    /// Entries are re-routed into this hash's shard layout, so the operands
    /// may use different shard counts.
    pub fn merged(self, other: Bfh) -> Bfh {
        assert_eq!(
            self.n_taxa, other.n_taxa,
            "merging hashes over different taxa"
        );
        // Fold the smaller hash into the larger one.
        let (mut big, small) = if self.distinct() >= other.distinct() {
            (self, other)
        } else {
            (other, self)
        };
        let Bfh {
            shards,
            sum,
            n_trees,
            ..
        } = small;
        for shard in shards {
            for (bits, c) in shard {
                let si = big.shard_index(bits.words());
                *big.shards[si].entry(bits).or_insert(0) += c;
            }
        }
        big.sum += sum;
        big.n_trees += n_trees;
        big
    }

    /// Frequency of a canonical bipartition (0 if absent) — the paper's
    /// `BFHR[b]`.
    #[inline]
    pub fn frequency(&self, bits: &Bits) -> u32 {
        self.shards[self.shard_index(bits.words())]
            .get(bits)
            .copied()
            .unwrap_or(0)
    }

    /// Frequency of a canonical mask given as raw words — the borrowed-key
    /// probe used by scratch-driven queries; no `Bits` is materialized.
    #[inline]
    pub fn frequency_words(&self, words: &[u64]) -> u32 {
        map_get_words(&self.shards[self.shard_index(words)], words)
            .copied()
            .unwrap_or(0)
    }

    /// Frequency of a [`Bipartition`].
    #[inline]
    pub fn frequency_of(&self, bp: &Bipartition) -> u32 {
        self.frequency(bp.bits())
    }

    /// Total bipartition occurrences — the paper's `sumBFHR`.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of reference trees folded in — the paper's `r`.
    #[inline]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Width of the taxon namespace — the paper's `n`.
    #[inline]
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Number of shard maps (`k`). 1 for hashes from [`Bfh::build`].
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of **distinct** bipartitions stored. The paper's memory
    /// argument (§VII.C): this saturates as `r` grows because repeat
    /// splits only bump counters.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.shards.iter().map(|m| m.len()).sum()
    }

    /// Distinct-entry count of each shard map, in shard order. The spread
    /// across shards is the routing-balance signal the build pipeline
    /// reports as `build_shard_skew_permille`.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|m| m.len()).collect()
    }

    /// Iterate `(bitmask, frequency)` entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Bits, u32)> {
        self.shards
            .iter()
            .flat_map(|m| m.iter().map(|(b, &c)| (b, c)))
    }

    /// Preprocessing hook (paper §III.A: the hash "can still be
    /// pre-processed according to generalized or variant RF algorithms"):
    /// drop entries failing the predicate, updating `sum` accordingly.
    pub fn retain<F: FnMut(&Bits, u32) -> bool>(&mut self, mut keep: F) {
        let mut removed = 0u64;
        for shard in &mut self.shards {
            shard.retain(|bits, count| {
                let k = keep(bits, *count);
                if !k {
                    removed += u64::from(*count);
                }
                k
            });
        }
        self.sum -= removed;
    }

    /// Rough heap footprint in bytes: map buckets plus key payloads. Used
    /// by the bench harness memory reports.
    pub fn approx_bytes(&self) -> usize {
        let key_words = phylo_bitset::words_for(self.n_taxa);
        // Bits: boxed words + (ptr, len-of-box, bitlen) inline; entry adds
        // the u32 count and hashbrown's control byte + padding.
        let per_entry = key_words * 8 + std::mem::size_of::<Bits>() + 8;
        self.shards.iter().map(|m| m.capacity()).sum::<usize>() * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::TreeCollection;

    fn coll(text: &str) -> TreeCollection {
        TreeCollection::parse(text).unwrap()
    }

    /// Frequency-level equality, independent of shard layout.
    fn assert_same_counts(a: &Bfh, b: &Bfh) {
        assert_eq!(a.n_trees(), b.n_trees());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.distinct(), b.distinct());
        for (bits, count) in a.iter() {
            assert_eq!(b.frequency(bits), count, "mismatch at {bits}");
        }
    }

    #[test]
    fn build_counts_frequencies() {
        let c = coll("((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));");
        let bfh = Bfh::build(&c.trees, &c.taxa);
        assert_eq!(bfh.n_trees(), 3);
        assert_eq!(bfh.sum(), 3, "each 4-leaf tree has one non-trivial split");
        assert_eq!(bfh.distinct(), 2);
        assert_eq!(bfh.n_shards(), 1);
        let ab = Bits::from_bitstring("0011").unwrap();
        let ac = Bits::from_bitstring("0101").unwrap();
        assert_eq!(bfh.frequency(&ab), 2);
        assert_eq!(bfh.frequency(&ac), 1);
        assert_eq!(bfh.frequency(&Bits::from_bitstring("1001").unwrap()), 0);
        assert_eq!(bfh.frequency_words(ab.words()), 2);
        assert_eq!(bfh.frequency_words(ac.words()), 1);
    }

    #[test]
    fn from_entries_round_trips_any_build() {
        let c = coll(&"((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n".repeat(10));
        let built = Bfh::build_sharded(&c.trees, &c.taxa, 3);
        let entries: Vec<(Bits, u32)> = built.iter().map(|(b, f)| (b.clone(), f)).collect();
        // Reassemble under a different shard layout: same frequencies.
        for shards in [1usize, 2, 8] {
            let back = Bfh::from_entries(
                c.taxa.len(),
                shards,
                built.n_trees(),
                entries.iter().cloned(),
            )
            .unwrap();
            assert_eq!(back.n_shards(), shards);
            assert_same_counts(&built, &back);
        }
    }

    #[test]
    fn from_entries_rejects_corrupt_input() {
        let c = coll("((A,B),((C,D),(E,F)));");
        let built = Bfh::build(&c.trees, &c.taxa);
        let entries: Vec<(Bits, u32)> = built.iter().map(|(b, f)| (b.clone(), f)).collect();
        // zero shards
        assert!(matches!(
            Bfh::from_entries(6, 0, 1, entries.iter().cloned()),
            Err(CoreError::Structure(_))
        ));
        // wrong mask width
        let wrong = vec![(Bits::from_bitstring("0011").unwrap(), 1u32)];
        assert!(matches!(
            Bfh::from_entries(6, 1, 1, wrong),
            Err(CoreError::Structure(_))
        ));
        // frequency out of range (0, and > n_trees)
        let (mask, _) = entries[0].clone();
        assert!(Bfh::from_entries(6, 1, 1, vec![(mask.clone(), 0u32)]).is_err());
        assert!(Bfh::from_entries(6, 1, 1, vec![(mask.clone(), 2u32)]).is_err());
        // duplicate mask
        let dup = vec![(mask.clone(), 1u32), (mask, 1u32)];
        let err = Bfh::from_entries(6, 1, 1, dup).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn sharded_build_matches_sequential_for_any_shard_count() {
        let c = coll(
            &"((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n".repeat(25),
        );
        let seq = Bfh::build(&c.trees, &c.taxa);
        // k = 1, small, larger-than-distinct: all identical frequencies.
        for k in [1usize, 2, 3, 8, 64] {
            let sharded = Bfh::build_sharded(&c.trees, &c.taxa, k);
            assert_eq!(sharded.n_shards(), k);
            assert_same_counts(&seq, &sharded);
            // and the reverse direction: nothing extra in the shards
            for (bits, count) in sharded.iter() {
                assert_eq!(seq.frequency(bits), count);
            }
        }
    }

    #[test]
    fn sharded_probes_route_consistently() {
        let c = coll(&"((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n".repeat(10));
        let sharded = Bfh::build_sharded(&c.trees, &c.taxa, 4);
        for (bits, count) in Bfh::build(&c.trees, &c.taxa).iter() {
            assert_eq!(sharded.frequency(bits), count);
            assert_eq!(sharded.frequency_words(bits.words()), count);
        }
    }

    #[test]
    fn sharded_empty_and_zero_taxa() {
        let empty = Bfh::build_sharded(&[], &phylo::TaxonSet::new(), 4);
        assert_eq!(empty.n_trees(), 0);
        assert_eq!(empty.sum(), 0);
        assert_eq!(empty.n_shards(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let c = coll("((A,B),(C,D));");
        Bfh::build_sharded(&c.trees, &c.taxa, 0);
    }

    #[test]
    fn churn_shrinks_capacity_back_down() {
        // Add a large batch of near-disjoint-split trees, then remove them
        // all: the hash must end empty AND give bucket memory back, not
        // hold the high-water capacity forever.
        let c = phylo_sim::perturb::random_collection(24, 150, 0x5eed);
        let mut bfh = Bfh::empty(c.taxa.len());
        for t in &c.trees {
            bfh.add_tree(t, &c.taxa);
        }
        let peak = bfh.shards[0].capacity();
        for t in &c.trees {
            bfh.remove_tree(t, &c.taxa).unwrap();
        }
        assert_eq!(bfh.n_trees(), 0);
        assert_eq!(bfh.sum(), 0);
        assert_eq!(bfh.distinct(), 0);
        assert!(
            bfh.shards[0].capacity() <= 64,
            "capacity {} did not shrink from peak {peak}",
            bfh.shards[0].capacity()
        );
        assert!(peak > 64, "test needs enough distinct splits to matter");
    }

    #[test]
    fn incremental_add_remove_is_inverse() {
        let c = coll("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));");
        let mut bfh = Bfh::build(&c.trees[..2], &c.taxa);
        let snapshot: Vec<(Bits, u32)> = bfh.iter().map(|(b, c)| (b.clone(), c)).collect();
        bfh.add_tree(&c.trees[2], &c.taxa);
        assert_eq!(bfh.n_trees(), 3);
        bfh.remove_tree(&c.trees[2], &c.taxa).unwrap();
        assert_eq!(bfh.n_trees(), 2);
        assert_eq!(bfh.distinct(), snapshot.len());
        for (bits, count) in snapshot {
            assert_eq!(bfh.frequency(&bits), count);
        }
    }

    #[test]
    fn incremental_updates_respect_sharding() {
        let c = coll("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));");
        let mut sharded = Bfh::empty_sharded(c.taxa.len(), 4);
        for t in &c.trees {
            sharded.add_tree(t, &c.taxa);
        }
        assert_same_counts(&Bfh::build(&c.trees, &c.taxa), &sharded);
        sharded.remove_tree(&c.trees[1], &c.taxa).unwrap();
        let mut rest = c.trees.clone();
        rest.remove(1);
        assert_same_counts(&Bfh::build(&rest, &c.taxa), &sharded);
    }

    #[test]
    fn removing_unknown_tree_errors_and_preserves_hash() {
        let c = coll("((A,B),(C,D));\n((A,C),(B,D));");
        let mut bfh = Bfh::build(&c.trees[..1], &c.taxa);
        let before: Vec<(Bits, u32)> = bfh.iter().map(|(b, c)| (b.clone(), c)).collect();
        let err = bfh.remove_tree(&c.trees[1], &c.taxa).unwrap_err();
        assert!(matches!(err, CoreError::Structure(_)), "{err:?}");
        assert!(err.to_string().contains("never added"));
        // verify-then-mutate: nothing was decremented
        assert_eq!(bfh.n_trees(), 1);
        for (bits, count) in before {
            assert_eq!(bfh.frequency(&bits), count);
        }
    }

    #[test]
    fn guarded_build_matches_unguarded() {
        let c = coll(&"((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n".repeat(20));
        let plain = Bfh::build(&c.trees, &c.taxa);
        let guarded = Bfh::try_build_sharded(&c.trees, &c.taxa, 4, &RunGuard::default()).unwrap();
        assert_same_counts(&plain, &guarded);
    }

    #[test]
    fn guarded_build_refuses_over_budget_spill() {
        let c = coll(&"((A,B),((C,D),(E,F)));\n".repeat(50));
        let guard = RunGuard::with_budget(crate::guard::RunBudget::with_max_bytes(16));
        let err = Bfh::try_build_sharded(&c.trees, &c.taxa, 2, &guard).unwrap_err();
        assert!(matches!(err, CoreError::ResourceLimit(_)), "{err:?}");
    }

    #[test]
    fn guarded_build_stops_on_cancel() {
        let c = coll(&"((A,B),((C,D),(E,F)));\n".repeat(10));
        let guard = RunGuard::default();
        guard.cancel.cancel();
        let err = Bfh::try_build_sharded(&c.trees, &c.taxa, 1, &guard).unwrap_err();
        assert!(matches!(err, CoreError::Cancelled(_)), "{err:?}");
    }

    #[test]
    fn injected_worker_panic_becomes_error_not_abort() {
        let c = coll(&"((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n".repeat(25));
        let mut guard = RunGuard::default();
        guard.inject_panic_at(17);
        let err = Bfh::try_build_sharded(&c.trees, &c.taxa, 4, &guard).unwrap_err();
        let CoreError::WorkerPanic(msg) = err else {
            panic!("expected WorkerPanic, got {err:?}");
        };
        assert!(msg.contains("injected panic"));
        // The process survived; an un-injected guard still works fine.
        let ok = Bfh::try_build_sharded(&c.trees, &c.taxa, 4, &RunGuard::default()).unwrap();
        assert_eq!(ok.n_trees(), 50);
    }

    #[test]
    fn retain_filters_and_fixes_sum() {
        let c = coll("((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));");
        let mut bfh = Bfh::build(&c.trees, &c.taxa);
        let before = bfh.sum();
        // keep only splits present in every tree
        bfh.retain(|_, count| count as usize == 2);
        assert!(bfh.sum() < before);
        assert!(bfh.iter().all(|(_, c)| c == 2));
        let expected_sum: u64 = bfh.iter().map(|(_, c)| u64::from(c)).sum();
        assert_eq!(bfh.sum(), expected_sum);
    }

    #[test]
    fn merged_is_commutative_across_shard_layouts() {
        let c = coll("((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));\n((A,B),(C,D));");
        let x = Bfh::build_sharded(&c.trees[..2], &c.taxa, 3);
        let y = Bfh::build(&c.trees[2..], &c.taxa);
        let xy = x.clone().merged(y.clone());
        let yx = y.merged(x);
        assert_eq!(xy.sum(), yx.sum());
        assert_eq!(xy.n_trees(), 4);
        for (bits, count) in xy.iter() {
            assert_eq!(yx.frequency(bits), count);
        }
        assert_same_counts(&xy, &Bfh::build(&c.trees, &c.taxa));
    }

    #[test]
    fn empty_hash_behaviour() {
        let bfh = Bfh::empty(10);
        assert_eq!(bfh.sum(), 0);
        assert_eq!(bfh.n_trees(), 0);
        assert_eq!(bfh.distinct(), 0);
        assert_eq!(bfh.frequency(&Bits::zeros(10)), 0);
    }

    #[test]
    fn distinct_saturates_with_duplicate_trees() {
        // paper §VII.C: repeats don't grow the hash
        let one = "((A,B),((C,D),(E,F)));\n";
        let c5 = coll(&one.repeat(5));
        let c50 = coll(&one.repeat(50));
        let b5 = Bfh::build(&c5.trees, &c5.taxa);
        let b50 = Bfh::build(&c50.trees, &c50.taxa);
        assert_eq!(b5.distinct(), b50.distinct());
        assert_eq!(b50.sum(), 10 * b5.sum());
    }
}
