//! Best-query-tree selection.
//!
//! The paper's motivating workload (§I): given query trees `Q` and
//! references `R`, find the query with the lowest collective RF distance —
//! the most-parsimonious representative under the RF criterion.

use crate::rf::QueryScore;

/// The query with minimal total RF; ties break to the lowest index so the
/// answer is deterministic. `None` iff `scores` is empty.
pub fn best_query(scores: &[QueryScore]) -> Option<&QueryScore> {
    scores
        .iter()
        .min_by(|a, b| a.rf.total().cmp(&b.rf.total()).then(a.index.cmp(&b.index)))
}

/// Indices sorted by ascending total RF (ties by index): a full ranking of
/// the query collection.
pub fn rank_queries(scores: &[QueryScore]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&x, &y| {
        scores[x]
            .rf
            .total()
            .cmp(&scores[y].rf.total())
            .then(scores[x].index.cmp(&scores[y].index))
    });
    order.into_iter().map(|i| scores[i].index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::RfAverage;

    fn score(index: usize, left: u64, right: u64) -> QueryScore {
        QueryScore {
            index,
            rf: RfAverage {
                left,
                right,
                n_refs: 10,
            },
        }
    }

    #[test]
    fn picks_minimum_total() {
        let scores = vec![score(0, 5, 5), score(1, 1, 2), score(2, 4, 0)];
        assert_eq!(best_query(&scores).unwrap().index, 1);
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let scores = vec![score(0, 2, 2), score(1, 1, 3), score(2, 4, 0)];
        assert_eq!(best_query(&scores).unwrap().index, 0);
    }

    #[test]
    fn empty_is_none() {
        assert!(best_query(&[]).is_none());
        assert!(rank_queries(&[]).is_empty());
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let scores = vec![score(0, 9, 9), score(1, 0, 0), score(2, 3, 3)];
        assert_eq!(rank_queries(&scores), vec![1, 2, 0]);
    }

    #[test]
    fn end_to_end_selection() {
        use crate::{bfhrf_all, Bfh};
        let mut refs = phylo::TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));",
        )
        .unwrap();
        let queries = phylo::read_trees_from_str(
            "((A,E),((C,D),(B,F)));\n((A,B),((C,D),(E,F)));",
            &mut refs.taxa,
            phylo::TaxaPolicy::Require,
        )
        .unwrap();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let scores = bfhrf_all(&queries, &refs.taxa, &bfh).unwrap();
        // query 1 matches the majority topology: it must win
        assert_eq!(best_query(&scores).unwrap().index, 1);
    }
}
