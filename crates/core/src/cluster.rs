//! Clustering tree collections by RF distance.
//!
//! The all-vs-all RF matrix exists for clustering workloads (paper §I:
//! "useful for clustering techniques"); this module provides a
//! deterministic k-medoids (PAM-style) implementation over
//! [`crate::matrix::TriMatrix`], plus a silhouette score for picking `k`.
//! Everything is integer-distance based, so results are exactly
//! reproducible.

use crate::matrix::TriMatrix;

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Medoid index of each cluster, ascending.
    pub medoids: Vec<usize>,
    /// Cluster id (index into `medoids`) of every tree.
    pub assignment: Vec<usize>,
    /// Sum of distances from each tree to its medoid.
    pub cost: u64,
}

/// Deterministic k-medoids: seeds are chosen by a farthest-first sweep
/// from the tree with minimal total distance (the collection's "median"),
/// then alternating assignment / medoid-update until a fixed point.
///
/// # Panics
/// Panics if `k` is zero or exceeds the matrix size.
pub fn k_medoids(matrix: &TriMatrix, k: usize) -> Clustering {
    let n = matrix.size();
    assert!(k >= 1 && k <= n, "k must be in 1..=n");

    // seed 1: global median tree
    let total = |i: usize| -> u64 { (0..n).map(|j| u64::from(matrix.get(i, j))).sum() };
    let first = (0..n).min_by_key(|&i| (total(i), i)).expect("nonempty");
    let mut medoids = vec![first];
    // farthest-first for the rest (ties to the lowest index)
    while medoids.len() < k {
        let next = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by_key(|&i| {
                let d = medoids
                    .iter()
                    .map(|&m| u64::from(matrix.get(i, m)))
                    .min()
                    .unwrap();
                (d, usize::MAX - i) // tie → lower index
            })
            .expect("k <= n");
        medoids.push(next);
    }

    let mut assignment = vec![0usize; n];
    let mut cost = u64::MAX;
    loop {
        // assignment step; medoids stay in their own cluster so no
        // cluster empties out even when trees are exact duplicates
        // (RF distance 0 between distinct medoids is possible)
        let mut new_cost = 0u64;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let (c, d) = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, u64::from(matrix.get(i, m))))
                .min_by_key(|&(c, d)| (d, c))
                .unwrap();
            *slot = c;
            new_cost += d;
        }
        for (c, &m) in medoids.iter().enumerate() {
            assignment[m] = c;
        }
        // medoid update step
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            let best = members
                .iter()
                .copied()
                .min_by_key(|&cand| {
                    (
                        members
                            .iter()
                            .map(|&j| u64::from(matrix.get(cand, j)))
                            .sum::<u64>(),
                        cand,
                    )
                })
                .expect("clusters are nonempty under nearest-medoid assignment");
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        if !changed && new_cost >= cost {
            cost = new_cost;
            break;
        }
        cost = new_cost;
    }
    // canonical order
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&c| medoids[c]);
    let mut sorted_medoids = Vec::with_capacity(k);
    let mut remap = vec![0usize; k];
    for (new_c, &old_c) in order.iter().enumerate() {
        remap[old_c] = new_c;
        sorted_medoids.push(medoids[old_c]);
    }
    let assignment = assignment.into_iter().map(|c| remap[c]).collect();
    Clustering {
        medoids: sorted_medoids,
        assignment,
        cost,
    }
}

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`; higher is
/// better-separated. Singleton clusters contribute 0 (the standard
/// convention).
pub fn silhouette(matrix: &TriMatrix, assignment: &[usize], k: usize) -> f64 {
    let n = matrix.size();
    assert_eq!(n, assignment.len());
    if n <= 1 || k <= 1 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for i in 0..n {
        let own = assignment[i];
        let mut intra = 0.0f64;
        let mut intra_n = 0usize;
        let mut inter = vec![(0.0f64, 0usize); k];
        for j in 0..n {
            if j == i {
                continue;
            }
            let d = f64::from(matrix.get(i, j));
            if assignment[j] == own {
                intra += d;
                intra_n += 1;
            } else {
                inter[assignment[j]].0 += d;
                inter[assignment[j]].1 += 1;
            }
        }
        if intra_n == 0 {
            continue; // singleton → 0 contribution
        }
        let a = intra / intra_n as f64;
        let b = inter
            .iter()
            .filter(|&&(_, c)| c > 0)
            .map(|&(s, c)| s / c as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::rf_matrix_exact;
    use phylo::TreeCollection;

    /// Two well-separated topology families, 4 copies each with tiny
    /// within-family variation.
    fn bimodal() -> TreeCollection {
        TreeCollection::parse(
            "((A,B),((C,D),(E,F)));
             ((A,B),((C,D),(E,F)));
             ((A,B),((C,D),(E,F)));
             (((A,B),C),(D,(E,F)));
             ((A,E),((B,F),(C,D)));
             ((A,E),((B,F),(C,D)));
             ((A,E),((B,F),(C,D)));
             (((A,E),B),(F,(C,D)));",
        )
        .unwrap()
    }

    #[test]
    fn recovers_two_topology_families() {
        let coll = bimodal();
        let m = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let c = k_medoids(&m, 2);
        assert_eq!(c.medoids.len(), 2);
        // first four trees together, last four together
        let first = c.assignment[0];
        assert!(c.assignment[..4].iter().all(|&a| a == first));
        let second = c.assignment[4];
        assert_ne!(first, second);
        assert!(c.assignment[4..].iter().all(|&a| a == second));
        // good separation
        let s = silhouette(&m, &c.assignment, 2);
        assert!(s > 0.5, "silhouette {s}");
    }

    #[test]
    fn k_equals_one_collapses_to_median() {
        let coll = bimodal();
        let m = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let c = k_medoids(&m, 1);
        assert_eq!(c.medoids.len(), 1);
        assert!(c.assignment.iter().all(|&a| a == 0));
        // the medoid minimizes total distance
        let best: u64 = (0..m.size())
            .map(|i| (0..m.size()).map(|j| u64::from(m.get(i, j))).sum())
            .min()
            .unwrap();
        assert_eq!(c.cost, best);
    }

    #[test]
    fn k_equals_n_gives_zero_cost() {
        let coll = bimodal();
        let m = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let c = k_medoids(&m, m.size());
        assert_eq!(c.cost, 0);
        // all assignments distinct
        let mut a = c.assignment.clone();
        a.sort_unstable();
        a.dedup();
        assert_eq!(a.len(), m.size());
    }

    #[test]
    fn deterministic() {
        let coll = bimodal();
        let m = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        assert_eq!(k_medoids(&m, 3), k_medoids(&m, 3));
    }

    #[test]
    fn silhouette_degenerate_cases() {
        let coll = bimodal();
        let m = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        assert_eq!(silhouette(&m, &vec![0; m.size()], 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let coll = bimodal();
        let m = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        k_medoids(&m, 0);
    }
}
