//! Variable-taxa RF via restriction to the common taxon set.
//!
//! Real collections rarely share identical taxa (paper §VII.E). The
//! standard supertree-style reduction compares trees on the intersection
//! of their leaf sets: every tree is restricted to the taxa common to
//! **all** trees of both collections, re-encoded over a dense
//! sub-namespace, and then ordinary BFHRF runs unchanged — the hash never
//! needed the fixed-taxa assumption, only consistent bitmask layouts.

use crate::bfh::Bfh;
use crate::rf::{bfhrf_all, QueryScore};
use crate::CoreError;
use phylo::{TaxonSet, Tree, TreeCollection};
use phylo_bitset::Bits;

/// Labels present on every tree of the collection (not merely in its
/// namespace).
fn common_labels(coll: &TreeCollection) -> Vec<String> {
    let n = coll.taxa.len();
    let mut acc = Bits::ones(n);
    for tree in &coll.trees {
        acc.intersect_with(&tree.leafset(n));
    }
    acc.iter_ones()
        .map(|i| coll.taxa.label(phylo::TaxonId(i as u32)).to_string())
        .collect()
}

/// Restrict every tree of `coll` to `labels` and re-encode over the dense
/// namespace `sub`.
fn restrict_collection(
    coll: &TreeCollection,
    labels: &[String],
    sub: &TaxonSet,
) -> Result<Vec<Tree>, CoreError> {
    let keep = Bits::from_indices(
        coll.taxa.len(),
        labels
            .iter()
            .map(|l| coll.taxa.get(l).expect("common label exists").index()),
    );
    let mut out = Vec::with_capacity(coll.len());
    for tree in &coll.trees {
        let mut restricted = tree.restricted(&keep)?;
        // remap taxon ids: old namespace → dense sub-namespace
        for node in restricted.postorder() {
            if let Some(old) = restricted.taxon(node) {
                let label = coll.taxa.label(old);
                let new = sub.get(label).expect("kept taxa are in the sub-namespace");
                restricted.set_taxon(node, Some(new));
            }
        }
        out.push(restricted);
    }
    Ok(out)
}

/// Result of a variable-taxa BFHRF run.
#[derive(Debug)]
pub struct CommonTaxaRf {
    /// The dense namespace of taxa shared by every tree of both
    /// collections, in reference-namespace order.
    pub taxa: TaxonSet,
    /// References restricted and re-encoded over [`CommonTaxaRf::taxa`].
    pub refs: Vec<Tree>,
    /// Queries restricted and re-encoded over [`CommonTaxaRf::taxa`].
    pub queries: Vec<Tree>,
    /// The frequency hash over the restricted references.
    pub bfh: Bfh,
    /// Per-query average RF on the common taxa.
    pub scores: Vec<QueryScore>,
}

/// Run BFHRF between two collections with (possibly) different taxa by
/// reducing both to the taxa common to every tree.
///
/// Errors if fewer than four taxa survive (no non-trivial splits exist
/// below that, so every distance would be trivially zero).
pub fn common_taxa_rf(
    refs: &TreeCollection,
    queries: &TreeCollection,
) -> Result<CommonTaxaRf, CoreError> {
    if refs.is_empty() {
        return Err(CoreError::EmptyReference);
    }
    if queries.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    let ref_common = common_labels(refs);
    let query_common: std::collections::HashSet<String> =
        common_labels(queries).into_iter().collect();
    let shared: Vec<String> = ref_common
        .into_iter()
        .filter(|l| query_common.contains(l))
        .collect();
    if shared.len() < 4 {
        return Err(CoreError::TaxaMismatch(format!(
            "only {} taxa common to all trees; need at least 4",
            shared.len()
        )));
    }
    let mut taxa = TaxonSet::new();
    for l in &shared {
        taxa.intern(l);
    }
    let refs_r = restrict_collection(refs, &shared, &taxa)?;
    let queries_r = restrict_collection(queries, &shared, &taxa)?;
    let bfh = Bfh::build(&refs_r, &taxa);
    let scores = bfhrf_all(&queries_r, &taxa, &bfh)?;
    Ok(CommonTaxaRf {
        taxa,
        refs: refs_r,
        queries: queries_r,
        bfh,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_taxa_reduces_to_plain_bfhrf() {
        let refs = TreeCollection::parse("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));").unwrap();
        let queries = TreeCollection::parse("((A,B),((C,D),(E,F)));").unwrap();
        let out = common_taxa_rf(&refs, &queries).unwrap();
        assert_eq!(out.taxa.len(), 6);
        // compare with the direct computation on the shared namespace
        let mut refs2 = refs.clone();
        let q2 = phylo::read_trees_from_str(
            "((A,B),((C,D),(E,F)));",
            &mut refs2.taxa,
            phylo::TaxaPolicy::Require,
        )
        .unwrap();
        let bfh = Bfh::build(&refs2.trees, &refs2.taxa);
        let direct = bfhrf_all(&q2, &refs2.taxa, &bfh).unwrap();
        assert_eq!(out.scores[0].rf.total(), direct[0].rf.total());
    }

    #[test]
    fn extra_taxa_are_dropped() {
        // references know G, queries know H; neither survives
        let refs = TreeCollection::parse("(((A,B),G),((C,D),(E,F)));\n(((A,C),B),((D,G),(E,F)));")
            .unwrap();
        let queries = TreeCollection::parse("(((A,B),H),((C,D),(E,F)));").unwrap();
        let out = common_taxa_rf(&refs, &queries).unwrap();
        assert_eq!(out.taxa.len(), 6);
        assert!(out.taxa.get("G").is_none());
        assert!(out.taxa.get("H").is_none());
        for t in out.refs.iter().chain(&out.queries) {
            assert_eq!(t.leaf_count(), 6);
            assert!(t.validate(&out.taxa).is_ok());
        }
        // the first reference restricted equals the query restricted:
        // distance contribution 0 from it
        assert_eq!(out.scores.len(), 1);
    }

    #[test]
    fn variable_taxa_within_one_collection() {
        // trees missing different taxa: common set is the intersection
        let refs =
            TreeCollection::parse("((A,B),((C,D),(E,F)));\n((A,B),((C,D),E));\n((A,B),(C,(D,F)));")
                .unwrap();
        let queries = TreeCollection::parse("((A,B),(C,D));").unwrap();
        let out = common_taxa_rf(&refs, &queries).unwrap();
        // common to all refs: A,B,C,D,(E missing in tree3),(F missing in tree2)
        assert_eq!(out.taxa.len(), 4);
        let labels: Vec<&str> = out.taxa.iter().map(|(_, l)| l).collect();
        assert_eq!(labels, ["A", "B", "C", "D"]);
        // all restricted trees carry the {A,B} split → query distance 0
        assert_eq!(out.scores[0].rf.total(), 0);
    }

    #[test]
    fn too_few_common_taxa_is_an_error() {
        let refs = TreeCollection::parse("((A,B),(C,D));").unwrap();
        let queries = TreeCollection::parse("((A,B),(X,Y));").unwrap();
        assert!(matches!(
            common_taxa_rf(&refs, &queries).unwrap_err(),
            CoreError::TaxaMismatch(_)
        ));
    }

    #[test]
    fn empty_collections_error() {
        let refs = TreeCollection::parse("((A,B),(C,D));").unwrap();
        let empty = TreeCollection::default();
        assert_eq!(
            common_taxa_rf(&empty, &refs).unwrap_err(),
            CoreError::EmptyReference
        );
        assert_eq!(
            common_taxa_rf(&refs, &empty).unwrap_err(),
            CoreError::EmptyQuery
        );
    }
}
