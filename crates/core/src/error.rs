//! Error type for the BFHRF core.

use std::fmt;

/// Errors from the RF computations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The reference collection is empty — average RF is undefined.
    EmptyReference,
    /// The query collection is empty.
    EmptyQuery,
    /// Collections do not share a usable taxon set.
    TaxaMismatch(String),
    /// An underlying tree operation failed.
    Phylo(phylo::PhyloError),
    /// A resource guard refused the computation (e.g. the HashRF matrix
    /// would exceed the configured memory budget — the paper's runs were
    /// killed by the kernel at this point; we fail deliberately instead).
    ResourceLimit(String),
    /// The run was cancelled cooperatively — by a
    /// [`CancelToken`](crate::guard::CancelToken) or an elapsed deadline.
    /// The message says which and where.
    Cancelled(String),
    /// A rayon worker panicked; the panic was caught at the worker boundary
    /// and converted so one poisoned tree cannot abort the whole process.
    WorkerPanic(String),
    /// An internal structural invariant was violated (e.g. removing a tree
    /// whose bipartitions were never added to the hash).
    Structure(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyReference => {
                write!(f, "reference collection is empty; average RF undefined")
            }
            CoreError::EmptyQuery => write!(f, "query collection is empty"),
            CoreError::TaxaMismatch(msg) => write!(f, "taxa mismatch: {msg}"),
            CoreError::Phylo(e) => write!(f, "tree error: {e}"),
            CoreError::ResourceLimit(msg) => write!(f, "resource limit: {msg}"),
            CoreError::Cancelled(msg) => write!(f, "cancelled: {msg}"),
            CoreError::WorkerPanic(msg) => write!(f, "worker panic: {msg}"),
            CoreError::Structure(msg) => write!(f, "structure error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Phylo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<phylo::PhyloError> for CoreError {
    fn from(e: phylo::PhyloError) -> Self {
        CoreError::Phylo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::from(phylo::PhyloError::Empty("tree"));
        assert!(e.to_string().contains("tree error"));
        assert!(e.source().is_some());
        assert!(CoreError::EmptyReference.source().is_none());
        assert!(CoreError::ResourceLimit("8 GiB".into())
            .to_string()
            .contains("8 GiB"));
    }
}
