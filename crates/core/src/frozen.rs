//! The frozen, read-only BFH query kernel.
//!
//! After a build (or snapshot load) finishes, the hash stops changing: the
//! serve daemon answers thousands of queries per snapshot generation, and
//! the offline CLI answers a whole query file against one build. A
//! general-purpose hashbrown map pays for its mutability on every one of
//! those probes — SipHash-free but still rehashing the full mask per
//! lookup, chasing a boxed key allocation per hit, with no locality across
//! the ~`n` probes a query tree issues. [`FrozenBfh`] freezes the map into
//! a struct-of-arrays open-addressing table tuned for the probe loop:
//!
//! * a power-of-two **bucket array of 64-bit tags** derived from
//!   [`split_hash128`] (for one-word namespaces the tag *is* the mask, so
//!   a tag match is a key match and the pool is never touched);
//! * a parallel **`u32` frequency array**, whose zero value doubles as the
//!   empty-slot marker (stored frequencies are always ≥ 1);
//! * a parallel **`u32` offset array** into one **packed word pool**
//!   holding every distinct mask contiguously at stride
//!   `words_for(n_taxa)` — a confirmed probe is one pooled `memcmp`, never
//!   a pointer chase into a per-key allocation.
//!
//! Probing is batched: [`BipartitionScratch::batch_splits`] extracts a
//! query's canonical masks *and* their 128-bit hashes in one post-order
//! pass, and [`FrozenBfh::frequency_sum_batch`] walks the batch in a
//! pipelined loop that software-prefetches the bucket of split `i + D`
//! while probing split `i`, overlapping the cache misses that dominate on
//! collection-scale tables (hundreds of thousands of distinct splits).
//!
//! The table is immutable by construction — freezing a mutated hash means
//! freezing again — and the freeze itself is a single `O(distinct)` pass
//! over [`Bfh::iter`], cheap next to the build that produced it.

use crate::bfh::Bfh;
use phylo::{BipartitionScratch, SplitBatch, TaxonSet, Tree};
use phylo_bitset::{hash_bucket, hash_tag, split_hash128, words_for, Bits};

/// How many splits ahead the batched probe loop prefetches. Far enough to
/// cover a main-memory miss at typical probe cost, near enough that the
/// lines are still resident when their probe arrives.
const PREFETCH_AHEAD: usize = 8;

/// A frozen, probe-optimized snapshot of a [`Bfh`].
///
/// Answers exactly the same `frequency`/`sum`/`n_trees` questions (it
/// implements [`crate::SplitFrequency`]), bitwise-identically, but
/// read-only.
#[derive(Debug, Clone)]
pub struct FrozenBfh {
    n_taxa: usize,
    words: usize,
    n_trees: usize,
    sum: u64,
    distinct: usize,
    /// `capacity - 1`; capacity is a power of two ≥ 2 × distinct.
    mask: usize,
    /// Per-slot tag: the mask word itself when `words == 1`, else the low
    /// lane of the split hash.
    tags: Box<[u64]>,
    /// Per-slot stored frequency; 0 marks an empty slot.
    freqs: Box<[u32]>,
    /// Per-slot entry rank into `pool` (word offset = rank × words).
    offsets: Box<[u32]>,
    /// All distinct masks, packed at stride `words` in insertion order.
    pool: Box<[u64]>,
}

/// Issue a best-effort prefetch of the cache line holding `*ptr`.
#[inline(always)]
#[allow(unused_variables)]
fn prefetch<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory effects; any address is allowed.
    unsafe {
        std::arch::x86_64::_mm_prefetch(ptr as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
}

impl FrozenBfh {
    /// Freeze `bfh` into the probe-optimized layout. One pass, no effect on
    /// the source hash.
    pub fn freeze(bfh: &Bfh) -> FrozenBfh {
        let n_taxa = bfh.n_taxa();
        let words = words_for(n_taxa);
        let distinct = bfh.distinct();
        // Load factor ≤ 0.5 keeps linear-probe chains short; minimum 8
        // slots so the empty and near-empty cases stay trivially correct.
        let capacity = (distinct * 2).max(8).next_power_of_two();
        let mask = capacity - 1;
        let mut tags = vec![0u64; capacity].into_boxed_slice();
        let mut freqs = vec![0u32; capacity].into_boxed_slice();
        let mut offsets = vec![0u32; capacity].into_boxed_slice();
        let mut pool = Vec::with_capacity(distinct * words);
        for (bits, freq) in bfh.iter() {
            debug_assert!(freq >= 1, "stored frequencies are tree counts");
            let w = bits.words();
            let h = split_hash128(w);
            let mut i = hash_bucket(h) as usize & mask;
            while freqs[i] != 0 {
                i = (i + 1) & mask;
            }
            tags[i] = if words == 1 { w[0] } else { hash_tag(h) };
            freqs[i] = freq;
            offsets[i] = (pool.len() / words.max(1)) as u32;
            pool.extend_from_slice(w);
        }
        FrozenBfh {
            n_taxa,
            words,
            n_trees: bfh.n_trees(),
            sum: bfh.sum(),
            distinct,
            mask,
            tags,
            freqs,
            offsets,
            pool: pool.into_boxed_slice(),
        }
    }

    /// Number of taxa in the namespace.
    #[inline]
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Number of reference trees folded in (`r`).
    #[inline]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Total split occurrences (`sumBFHR`).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of distinct splits stored.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Slot count of the bucket array.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate heap bytes of the frozen layout.
    pub fn approx_bytes(&self) -> usize {
        self.tags.len() * 8 + self.freqs.len() * 4 + self.offsets.len() * 4 + self.pool.len() * 8
    }

    /// FNV-1a fingerprint over every lane in layout order. Two frozen
    /// tables built from the same hash are laid out identically, so equal
    /// digests here mean bitwise-identical tables — the cheap way for the
    /// catalog eviction tests to prove a reopened collection reproduces
    /// the exact pre-eviction state.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(&(self.n_taxa as u64).to_le_bytes());
        mix(&(self.n_trees as u64).to_le_bytes());
        mix(&self.sum.to_le_bytes());
        mix(&(self.distinct as u64).to_le_bytes());
        mix(&(self.mask as u64).to_le_bytes());
        for &t in self.tags.iter() {
            mix(&t.to_le_bytes());
        }
        for &f in self.freqs.iter() {
            mix(&f.to_le_bytes());
        }
        for &o in self.offsets.iter() {
            mix(&o.to_le_bytes());
        }
        for &w in self.pool.iter() {
            mix(&w.to_le_bytes());
        }
        h
    }

    /// Frequency of the canonical mask `w` whose split hash is already
    /// known (the batched path computes it during extraction).
    #[inline]
    pub fn frequency_hashed(&self, h: u128, w: &[u64]) -> u32 {
        if self.distinct == 0 {
            return 0;
        }
        let mut i = hash_bucket(h) as usize & self.mask;
        if self.words == 1 {
            // One-word namespace: the tag is the mask, equality is exact.
            let t = w[0];
            loop {
                let f = self.freqs[i];
                if f == 0 {
                    return 0;
                }
                if self.tags[i] == t {
                    return f;
                }
                i = (i + 1) & self.mask;
            }
        }
        let t = hash_tag(h);
        loop {
            let f = self.freqs[i];
            if f == 0 {
                return 0;
            }
            if self.tags[i] == t {
                let off = self.offsets[i] as usize * self.words;
                if &self.pool[off..off + self.words] == w {
                    return f;
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Frequency of a canonical mask given as raw words (hash computed
    /// here; prefer the batched path for whole query trees).
    #[inline]
    pub fn frequency_words(&self, w: &[u64]) -> u32 {
        self.frequency_hashed(split_hash128(w), w)
    }

    /// Frequency of a canonical split (0 if absent).
    #[inline]
    pub fn frequency(&self, bits: &Bits) -> u32 {
        debug_assert_eq!(bits.len(), self.n_taxa, "namespace width mismatch");
        self.frequency_words(bits.words())
    }

    /// Prefetch the bucket a hash will land in — tag, frequency, and
    /// offset lanes, which sit in separate arrays by design.
    #[inline(always)]
    fn prefetch_bucket(&self, h: u128) {
        let i = hash_bucket(h) as usize & self.mask;
        prefetch(&raw const self.tags[i]);
        prefetch(&raw const self.freqs[i]);
        if self.words > 1 {
            prefetch(&raw const self.offsets[i]);
        }
    }

    /// Σ frequency over a whole extracted batch — the quantity Algorithm 2
    /// needs — in one pipelined pass with software prefetch
    /// [`PREFETCH_AHEAD`] splits ahead.
    pub fn frequency_sum_batch(&self, batch: &SplitBatch<'_>) -> u64 {
        if self.distinct == 0 {
            return 0;
        }
        let n = batch.len();
        let hashes = batch.hashes();
        for &h in hashes.iter().take(PREFETCH_AHEAD.min(n)) {
            self.prefetch_bucket(h);
        }
        let mut total = 0u64;
        for i in 0..n {
            if let Some(&h) = hashes.get(i + PREFETCH_AHEAD) {
                self.prefetch_bucket(h);
            }
            total += u64::from(self.frequency_hashed(hashes[i], batch.mask(i)));
        }
        total
    }

    /// Average RF of one query tree against the frozen hash through a
    /// caller-owned extraction arena — the batched Algorithm 2: one
    /// post-order pass extracts masks + hashes, one pipelined loop probes
    /// them.
    ///
    /// # Panics
    /// Panics if the frozen hash holds no trees (average undefined).
    pub fn average_scratch(
        &self,
        query: &Tree,
        taxa: &TaxonSet,
        scratch: &mut BipartitionScratch,
    ) -> crate::RfAverage {
        assert!(
            self.n_trees > 0,
            "average RF over an empty reference collection"
        );
        let r = self.n_trees as u64;
        let batch = scratch.batch_splits(query, taxa);
        let q_splits = batch.len() as u64;
        let freq_sum = self.frequency_sum_batch(&batch);
        crate::RfAverage {
            left: self.sum - freq_sum,
            right: q_splits * r - freq_sum,
            n_refs: self.n_trees,
        }
    }
}

impl Bfh {
    /// Freeze this hash into the probe-optimized read-only layout. See
    /// [`FrozenBfh`].
    pub fn freeze(&self) -> FrozenBfh {
        FrozenBfh::freeze(self)
    }
}

impl crate::SplitFrequency for FrozenBfh {
    fn split_frequency(&self, bits: &Bits) -> u32 {
        self.frequency(bits)
    }

    fn occurrence_sum(&self) -> u64 {
        self.sum
    }

    fn reference_count(&self) -> usize {
        self.n_trees
    }

    fn split_frequency_words(&self, _n_bits: usize, words: &[u64]) -> u32 {
        self.frequency_words(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::TreeCollection;

    fn build(text: &str) -> (TreeCollection, Bfh, FrozenBfh) {
        let coll = TreeCollection::parse(text).unwrap();
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        let frozen = bfh.freeze();
        (coll, bfh, frozen)
    }

    #[test]
    fn frozen_answers_equal_live_on_every_stored_split() {
        let (_, bfh, frozen) = build(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n((A,B),((C,D),(E,F)));",
        );
        assert_eq!(frozen.n_trees(), bfh.n_trees());
        assert_eq!(frozen.sum(), bfh.sum());
        assert_eq!(frozen.distinct(), bfh.distinct());
        for (bits, count) in bfh.iter() {
            assert_eq!(frozen.frequency(bits), count, "{bits}");
            assert_eq!(frozen.frequency_words(bits.words()), count);
        }
    }

    #[test]
    fn absent_splits_read_zero() {
        let (coll, _, frozen) = build("((A,B),(C,D));\n((A,B),(C,D));");
        // {A,C} = 0101 is a valid canonical mask the collection never holds
        let absent = Bits::from_indices(coll.taxa.len(), [0, 2]);
        assert_eq!(frozen.frequency(&absent), 0);
    }

    #[test]
    fn empty_hash_freezes_and_reads_zero() {
        let frozen = Bfh::empty(6).freeze();
        assert_eq!(frozen.distinct(), 0);
        assert_eq!(frozen.frequency(&Bits::from_indices(6, [0, 1])), 0);
        assert_eq!(frozen.frequency_sum_batch_smoke(), 0);
    }

    impl FrozenBfh {
        /// Test helper: batch-sum over an empty batch via a trivial tree.
        fn frequency_sum_batch_smoke(&self) -> u64 {
            let mut taxa = phylo::TaxonSet::new();
            let t = phylo::parse_newick("(A,B,C);", &mut taxa, phylo::TaxaPolicy::Grow).unwrap();
            let mut scratch = BipartitionScratch::new();
            let batch = scratch.batch_splits(&t, &taxa);
            self.frequency_sum_batch(&batch)
        }
    }

    #[test]
    fn batched_average_matches_per_split_probes() {
        let (coll, bfh, frozen) =
            build("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));");
        let mut scratch = BipartitionScratch::new();
        for q in &coll.trees {
            let live = crate::bfhrf_average(q, &coll.taxa, &bfh);
            let froz = frozen.average_scratch(q, &coll.taxa, &mut scratch);
            assert_eq!(live, froz);
        }
    }

    #[test]
    fn word_boundary_widths_freeze_and_probe_identically() {
        // n_taxa ∈ {63, 64, 65, 128}: the one-word fast path, its exact
        // upper edge, the first two-word width, and an exact two-word
        // width. Frozen must equal live on every simulated tree.
        for n in [63usize, 64, 65, 128] {
            let spec = phylo_sim::DatasetSpec::new("widths", n, 12, n as u64);
            let coll = phylo_sim::generate(&spec);
            let bfh = Bfh::build(&coll.trees, &coll.taxa);
            let frozen = bfh.freeze();
            let mut scratch = BipartitionScratch::new();
            for (bits, count) in bfh.iter() {
                assert_eq!(frozen.frequency(bits), count, "n={n} {bits}");
            }
            for q in &coll.trees {
                assert_eq!(
                    crate::bfhrf_average(q, &coll.taxa, &bfh),
                    frozen.average_scratch(q, &coll.taxa, &mut scratch),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn load_factor_stays_at_most_half() {
        let spec = phylo_sim::DatasetSpec::new("load", 80, 40, 7);
        let coll = phylo_sim::generate(&spec);
        let frozen = Bfh::build(&coll.trees, &coll.taxa).freeze();
        assert!(frozen.capacity() >= 2 * frozen.distinct());
        assert!(frozen.capacity().is_power_of_two());
        assert!(frozen.approx_bytes() > 0);
    }
}
