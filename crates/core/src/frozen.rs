//! The frozen, read-only BFH query kernel.
//!
//! After a build (or snapshot load) finishes, the hash stops changing: the
//! serve daemon answers thousands of queries per snapshot generation, and
//! the offline CLI answers a whole query file against one build. A
//! general-purpose hashbrown map pays for its mutability on every one of
//! those probes — SipHash-free but still rehashing the full mask per
//! lookup, chasing a boxed key allocation per hit, with no locality across
//! the ~`n` probes a query tree issues. [`FrozenBfh`] freezes the map into
//! a **group-structured** open-addressing table tuned for the probe loop:
//!
//! * a **control-byte lane** (`u8` per slot, plus a 16-byte wrap mirror):
//!   [`CTRL_EMPTY`] for empty slots, the 7-bit [`ctrl_h2`] hash tag for
//!   full ones. Probing scans it [`GROUP_SLOTS`] (16) tags per step with
//!   one vector compare — SSE2 on x86-64, NEON on aarch64, an exact SWAR
//!   fallback everywhere else (see [`phylo_bitset::group`]);
//! * a parallel **entry lane** of 16-byte [`Entry`] records — the 64-bit
//!   key word (for one-word namespaces the key *is* the mask, so a key
//!   match is exact and the pool is never touched; for wider namespaces it
//!   is the [`hash_tag`] lane), the `u32` frequency, and the `u32` rank
//!   into the pool — one cache line per four slots instead of three
//!   separate tag/freq/offset lanes;
//! * one **packed word pool** holding every distinct mask contiguously at
//!   stride `words_for(n_taxa)` — a confirmed multi-word probe is one
//!   pooled `memcmp`, never a pointer chase into a per-key allocation.
//!
//! A typical multi-word hit now touches three cache lines (control group,
//! entry, pool) where the PR 4 layout touched four (tag, freq, offset,
//! pool), and a miss usually touches only the control group: the h2 scan
//! rejects all 16 slots and reports an empty in the same load.
//!
//! Probing is batched: [`BipartitionScratch::batch_splits`] extracts a
//! query's canonical masks *and* their 128-bit hashes in one post-order
//! pass, and [`FrozenBfh::frequency_sum_batch`] walks the batch in a
//! pipelined loop that software-prefetches the control group and entry
//! line of split `i + D` while probing split `i`, overlapping the cache
//! misses that dominate on collection-scale tables (hundreds of thousands
//! of distinct splits).
//!
//! The scan engine is resolved once per process ([`Engine::auto`]):
//! `BFHRF_FORCE_SCALAR=1` pins the portable fallback (CI runs the whole
//! workspace that way), and benchmark ablations pass an explicit
//! [`ProbeMode`] to race both engines over identical batches.
//!
//! The table is immutable by construction — freezing a mutated hash means
//! freezing again — and the freeze itself is a single `O(distinct)` pass
//! over [`Bfh::iter`], cheap next to the build that produced it.

use crate::bfh::Bfh;
use phylo::{BipartitionScratch, SplitBatch, TaxonSet, Tree};
use phylo_bitset::group::{Engine, GroupScan, ScalarScan, SimdScan, CTRL_EMPTY, GROUP_SLOTS};
use phylo_bitset::{ctrl_h2, hash_bucket, hash_tag, split_hash128, words_for, Bits};
use std::ops::Deref;
use std::sync::Arc;

pub use phylo_bitset::group::{simd_available, ProbeMode};

/// Keeps a memory mapping alive for as long as any [`Lane`] points into
/// it. The index crate's mmap wrapper implements this; dropping the last
/// `Arc<dyn MapGuard>` unmaps the region.
pub trait MapGuard: std::fmt::Debug + Send + Sync + 'static {}

/// One lane of the frozen table: either heap-owned (the `freeze()` and
/// read-and-materialize paths) or borrowed zero-copy from a live memory
/// mapping (the snapshot sidecar open path). Reads go through `Deref`,
/// so the probe loops are storage-agnostic and identical machine code.
enum Lane<T> {
    Owned(Box<[T]>),
    Mapped {
        ptr: *const T,
        len: usize,
        /// Keeps the mapping alive; never read, only dropped.
        _guard: Arc<dyn MapGuard>,
    },
}

// SAFETY: a mapped lane is an immutable view of a read-only mapping whose
// lifetime the guard pins; sharing or sending it is no more than sharing
// the &[T] it derefs to.
unsafe impl<T: Send + Sync> Send for Lane<T> {}
unsafe impl<T: Send + Sync> Sync for Lane<T> {}

impl<T> Deref for Lane<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Lane::Owned(b) => b,
            // SAFETY: constructor contract — ptr/len describe a valid,
            // immutable region outliving `_guard`.
            Lane::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: Clone> Clone for Lane<T> {
    fn clone(&self) -> Self {
        match self {
            Lane::Owned(b) => Lane::Owned(b.clone()),
            Lane::Mapped { ptr, len, _guard } => Lane::Mapped {
                ptr: *ptr,
                len: *len,
                _guard: Arc::clone(_guard),
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Lane<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Lane::Owned(_) => "owned",
            Lane::Mapped { .. } => "mapped",
        };
        write!(f, "Lane<{kind}; len={}>", self.len())
    }
}

/// The header scalars a serialized frozen table carries; both
/// reconstruction paths take one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenLayout {
    /// Namespace width.
    pub n_taxa: usize,
    /// Reference trees folded in.
    pub n_trees: usize,
    /// Total split occurrences.
    pub sum: u64,
    /// Distinct splits stored.
    pub distinct: usize,
    /// Slot count of the bucket array.
    pub capacity: usize,
}

/// How many splits ahead the batched probe loop prefetches. Re-tuned for
/// the group layout: each probe now pulls two lines (control group +
/// entry) instead of three, so the pipeline runs a little deeper than
/// PR 4's 8 without outpacing the L1 fill buffers (8/12/16 measure
/// within noise of each other on the insect preset; 12 is the middle
/// of that plateau).
const PREFETCH_AHEAD: usize = 12;

/// One slot of the frozen table: the 64-bit key word (mask word when
/// `words == 1`, else the [`hash_tag`] lane), the stored frequency, and
/// the entry rank into the pool (word offset = `offset × words`).
/// 16 bytes, so four slots share a cache line and a confirmed probe reads
/// key and frequency from the same load.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct Entry {
    key: u64,
    freq: u32,
    offset: u32,
}

/// A frozen, probe-optimized snapshot of a [`Bfh`].
///
/// Answers exactly the same `frequency`/`sum`/`n_trees` questions (it
/// implements [`crate::SplitFrequency`]), bitwise-identically, but
/// read-only.
#[derive(Debug, Clone)]
pub struct FrozenBfh {
    n_taxa: usize,
    words: usize,
    n_trees: usize,
    sum: u64,
    distinct: usize,
    /// `capacity - 1`; capacity is a power of two ≥ 2 × distinct and
    /// ≥ [`GROUP_SLOTS`].
    mask: usize,
    /// Per-slot control byte ([`CTRL_EMPTY`] or `h2`), length
    /// `capacity + GROUP_SLOTS`: the tail mirrors the first group so an
    /// unaligned 16-byte window starting at any slot never wraps.
    ctrl: Lane<u8>,
    /// Per-slot key/frequency/pool-rank record.
    entries: Lane<Entry>,
    /// All distinct masks, packed at stride `words` in insertion order.
    pool: Lane<u64>,
}

/// Issue a best-effort prefetch of the cache line holding `*ptr`.
#[inline(always)]
#[allow(unused_variables)]
fn prefetch<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory effects; any address is allowed.
    unsafe {
        std::arch::x86_64::_mm_prefetch(ptr as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a hint with no memory effects; any address is
    // allowed. No stable intrinsic exists, so spell it as asm.
    unsafe {
        std::arch::asm!("prfm pldl1keep, [{0}]", in(reg) ptr, options(nostack, readonly));
    }
}

impl FrozenBfh {
    /// Freeze `bfh` into the probe-optimized layout. One pass, no effect on
    /// the source hash.
    pub fn freeze(bfh: &Bfh) -> FrozenBfh {
        let n_taxa = bfh.n_taxa();
        let words = words_for(n_taxa);
        let distinct = bfh.distinct();
        // Load factor ≤ 0.5 keeps probe chains short; minimum one full
        // group so the windowed scan is always in bounds.
        let capacity = (distinct * 2).max(GROUP_SLOTS).next_power_of_two();
        let mask = capacity - 1;
        let mut ctrl = vec![CTRL_EMPTY; capacity + GROUP_SLOTS].into_boxed_slice();
        let mut entries = vec![Entry::default(); capacity].into_boxed_slice();
        let mut pool = Vec::with_capacity(distinct * words);
        for (bits, freq) in bfh.iter() {
            debug_assert!(freq >= 1, "stored frequencies are tree counts");
            let w = bits.words();
            let h = split_hash128(w);
            let mut i = hash_bucket(h) as usize & mask;
            while ctrl[i] != CTRL_EMPTY {
                i = (i + 1) & mask;
            }
            ctrl[i] = ctrl_h2(h);
            entries[i] = Entry {
                key: if words == 1 { w[0] } else { hash_tag(h) },
                freq,
                offset: (pool.len() / words.max(1)) as u32,
            };
            pool.extend_from_slice(w);
        }
        // Mirror the first group past the end so every 16-byte window
        // starting at a slot index is contiguous.
        let (head, tail) = ctrl.split_at_mut(capacity);
        tail.copy_from_slice(&head[..GROUP_SLOTS]);
        FrozenBfh {
            n_taxa,
            words,
            n_trees: bfh.n_trees(),
            sum: bfh.sum(),
            distinct,
            mask,
            ctrl: Lane::Owned(ctrl),
            entries: Lane::Owned(entries),
            pool: Lane::Owned(pool.into_boxed_slice()),
        }
    }

    /// Words per pooled mask (`words_for(n_taxa)`).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The header scalars a serializer must persist to reconstruct this
    /// table.
    pub fn layout(&self) -> FrozenLayout {
        FrozenLayout {
            n_taxa: self.n_taxa,
            n_trees: self.n_trees,
            sum: self.sum,
            distinct: self.distinct,
            capacity: self.capacity(),
        }
    }

    /// The control lane, mirror group included — exactly the bytes a
    /// serializer should write.
    pub fn ctrl_lane(&self) -> &[u8] {
        &self.ctrl
    }

    /// The packed mask pool in layout order.
    pub fn pool_lane(&self) -> &[u64] {
        &self.pool
    }

    /// The entry lane as 16-byte little-endian records
    /// (`key u64 · freq u32 · offset u32`) — the exact on-disk form, and
    /// on little-endian hosts the exact in-memory form too.
    pub fn entry_records(&self) -> impl Iterator<Item = [u8; 16]> + '_ {
        self.entries.iter().map(|e| {
            let mut rec = [0u8; 16];
            rec[0..8].copy_from_slice(&e.key.to_le_bytes());
            rec[8..12].copy_from_slice(&e.freq.to_le_bytes());
            rec[12..16].copy_from_slice(&e.offset.to_le_bytes());
            rec
        })
    }

    /// Rebuild a frozen table from serialized lanes, copying into owned
    /// storage and converting entry records from little-endian — the
    /// endian-safe fallback open path. Rejects any layout the probe loops
    /// could not walk safely.
    pub fn from_le_parts(
        layout: FrozenLayout,
        ctrl: Vec<u8>,
        entry_bytes: &[u8],
        pool: Vec<u64>,
    ) -> Result<FrozenBfh, String> {
        if entry_bytes.len() != layout.capacity * std::mem::size_of::<Entry>() {
            return Err(format!(
                "entry lane holds {} bytes, layout needs {}",
                entry_bytes.len(),
                layout.capacity * std::mem::size_of::<Entry>()
            ));
        }
        let entries: Box<[Entry]> = entry_bytes
            .chunks_exact(std::mem::size_of::<Entry>())
            .map(|rec| Entry {
                key: u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")),
                freq: u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes")),
                offset: u32::from_le_bytes(rec[12..16].try_into().expect("4 bytes")),
            })
            .collect();
        let frozen = FrozenBfh {
            n_taxa: layout.n_taxa,
            words: words_for(layout.n_taxa),
            n_trees: layout.n_trees,
            sum: layout.sum,
            distinct: layout.distinct,
            mask: layout.capacity.wrapping_sub(1),
            ctrl: Lane::Owned(ctrl.into_boxed_slice()),
            entries: Lane::Owned(entries),
            pool: Lane::Owned(pool.into_boxed_slice()),
        };
        frozen.validate_layout()?;
        Ok(frozen)
    }

    /// Rebuild a frozen table zero-copy over lanes inside a live memory
    /// mapping. Little-endian hosts only: the mapped bytes are
    /// reinterpreted in place (big-endian builds take the
    /// [`Self::from_le_parts`] copy path, which converts).
    ///
    /// Lane lengths are dictated by `layout`: ctrl is
    /// `capacity + GROUP_SLOTS` bytes, entries `capacity` 16-byte records,
    /// pool `distinct × words_for(n_taxa)` words.
    ///
    /// # Safety
    /// The three pointers must stay valid and unwritten for the guard's
    /// whole lifetime, and each must cover its full layout-derived length.
    ///
    /// # Errors
    /// Misaligned pointers and layouts the probe loops could not walk
    /// safely (bad lane lengths, non-power-of-two capacity, out-of-range
    /// pool ranks, a broken mirror group) are rejected, so a corrupt or
    /// adversarial snapshot cannot cause out-of-bounds reads.
    #[cfg(target_endian = "little")]
    pub unsafe fn from_mapped_le(
        layout: FrozenLayout,
        ctrl: *const u8,
        entries: *const u8,
        pool: *const u8,
        guard: Arc<dyn MapGuard>,
    ) -> Result<FrozenBfh, String> {
        if entries.align_offset(std::mem::align_of::<Entry>()) != 0 {
            return Err("entry lane pointer is misaligned".into());
        }
        if pool.align_offset(std::mem::align_of::<u64>()) != 0 {
            return Err("pool lane pointer is misaligned".into());
        }
        let words = words_for(layout.n_taxa);
        let frozen = FrozenBfh {
            n_taxa: layout.n_taxa,
            words,
            n_trees: layout.n_trees,
            sum: layout.sum,
            distinct: layout.distinct,
            mask: layout.capacity.wrapping_sub(1),
            ctrl: Lane::Mapped {
                ptr: ctrl,
                len: layout.capacity + GROUP_SLOTS,
                _guard: Arc::clone(&guard),
            },
            entries: Lane::Mapped {
                ptr: entries as *const Entry,
                len: layout.capacity,
                _guard: Arc::clone(&guard),
            },
            pool: Lane::Mapped {
                ptr: pool as *const u64,
                len: layout.distinct * words,
                _guard: guard,
            },
        };
        frozen.validate_layout()?;
        Ok(frozen)
    }

    /// Whether this table borrows a memory mapping (vs owning its lanes).
    pub fn is_mapped(&self) -> bool {
        matches!(self.ctrl, Lane::Mapped { .. })
    }

    /// Every invariant the probe loops rely on for memory safety. An
    /// `O(capacity)` pass over ctrl + entries — deliberately *not* over
    /// the pool, which is the lane whose lazy paging makes the mmap open
    /// fast; probe reads into it are covered by the rank bound checked
    /// here.
    fn validate_layout(&self) -> Result<(), String> {
        let capacity = self.mask.wrapping_add(1);
        if !capacity.is_power_of_two() || capacity < GROUP_SLOTS {
            return Err(format!(
                "capacity {capacity} is not a power of two ≥ {GROUP_SLOTS}"
            ));
        }
        if capacity < 2 * self.distinct {
            // Also guarantees an empty slot exists, which is what
            // terminates an absent-key probe.
            return Err(format!(
                "capacity {capacity} under-provisioned for {} distinct splits",
                self.distinct
            ));
        }
        if self.ctrl.len() != capacity + GROUP_SLOTS {
            return Err(format!(
                "ctrl lane holds {} bytes, capacity {capacity} needs {}",
                self.ctrl.len(),
                capacity + GROUP_SLOTS
            ));
        }
        if self.entries.len() != capacity {
            return Err(format!(
                "entry lane holds {} slots, capacity is {capacity}",
                self.entries.len()
            ));
        }
        if self.pool.len() != self.distinct * self.words {
            return Err(format!(
                "pool holds {} words, {} distinct × {} words need {}",
                self.pool.len(),
                self.distinct,
                self.words,
                self.distinct * self.words
            ));
        }
        if self.ctrl[capacity..] != self.ctrl[..GROUP_SLOTS] {
            return Err("ctrl mirror group does not match the first group".into());
        }
        let mut full = 0usize;
        for i in 0..capacity {
            if self.ctrl[i] != CTRL_EMPTY {
                full += 1;
                let rank = self.entries[i].offset as usize;
                if rank >= self.distinct {
                    return Err(format!(
                        "slot {i} pool rank {rank} out of range ({} distinct)",
                        self.distinct
                    ));
                }
            }
        }
        if full != self.distinct {
            return Err(format!(
                "{full} occupied slots disagree with {} distinct splits",
                self.distinct
            ));
        }
        Ok(())
    }

    /// Number of taxa in the namespace.
    #[inline]
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Number of reference trees folded in (`r`).
    #[inline]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Total split occurrences (`sumBFHR`).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of distinct splits stored.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Slot count of the bucket array.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Heap bytes of the frozen layout: the control lane (including its
    /// wrap-mirror group), the 16-byte entry lane, and the packed mask
    /// pool. Pinned against the real allocation sizes by test, because the
    /// catalog LRU accounts resident collections in exactly these bytes.
    pub fn approx_bytes(&self) -> usize {
        self.ctrl.len() * std::mem::size_of::<u8>()
            + self.entries.len() * std::mem::size_of::<Entry>()
            + self.pool.len() * std::mem::size_of::<u64>()
    }

    /// FNV-1a fingerprint over every lane in layout order. Two frozen
    /// tables built from the same hash are laid out identically, so equal
    /// digests here mean bitwise-identical tables — the cheap way for the
    /// catalog eviction tests to prove a reopened collection reproduces
    /// the exact pre-eviction state.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(&(self.n_taxa as u64).to_le_bytes());
        mix(&(self.n_trees as u64).to_le_bytes());
        mix(&self.sum.to_le_bytes());
        mix(&(self.distinct as u64).to_le_bytes());
        mix(&(self.mask as u64).to_le_bytes());
        mix(&self.ctrl[..self.capacity()]);
        for e in self.entries.iter() {
            mix(&e.key.to_le_bytes());
            mix(&e.freq.to_le_bytes());
            mix(&e.offset.to_le_bytes());
        }
        for &w in self.pool.iter() {
            mix(&w.to_le_bytes());
        }
        h
    }

    /// The monomorphized probe loop: scan the control lane one 16-slot
    /// group at a time from the hash's home slot, confirm candidates
    /// against the entry key (and the pool for multi-word masks), stop at
    /// the first group holding an empty slot.
    ///
    /// Correctness with unaligned windows: linear-probe insertion leaves
    /// every slot between a key's home and its final slot full, so the
    /// windows `[home + 16k, home + 16k + 16)` meet the key's candidate
    /// bit no later than the first window containing an empty. Candidates
    /// belonging to other chains inside a window are rejected by the key
    /// compare; h2 never equals [`CTRL_EMPTY`], so candidates are always
    /// full slots.
    fn frequency_hashed_impl<G: GroupScan>(&self, h: u128, w: &[u64]) -> u32 {
        if self.distinct == 0 {
            return 0;
        }
        let h2 = ctrl_h2(h);
        let mut i = hash_bucket(h) as usize & self.mask;
        if self.words == 1 {
            // One-word namespace: the key is the mask, equality is exact.
            let t = w[0];
            loop {
                let g = &self.ctrl[i..i + GROUP_SLOTS];
                let mut m = G::match_byte(g, h2);
                while m != 0 {
                    let s = (i + m.trailing_zeros() as usize) & self.mask;
                    let e = &self.entries[s];
                    if e.key == t {
                        return e.freq;
                    }
                    m &= m - 1;
                }
                if G::match_empty(g) != 0 {
                    return 0;
                }
                i = (i + GROUP_SLOTS) & self.mask;
            }
        }
        let t = hash_tag(h);
        loop {
            let g = &self.ctrl[i..i + GROUP_SLOTS];
            let mut m = G::match_byte(g, h2);
            while m != 0 {
                let s = (i + m.trailing_zeros() as usize) & self.mask;
                let e = &self.entries[s];
                if e.key == t {
                    let off = e.offset as usize * self.words;
                    if &self.pool[off..off + self.words] == w {
                        return e.freq;
                    }
                }
                m &= m - 1;
            }
            if G::match_empty(g) != 0 {
                return 0;
            }
            i = (i + GROUP_SLOTS) & self.mask;
        }
    }

    /// Frequency of the canonical mask `w` whose split hash is already
    /// known (the batched path computes it during extraction).
    #[inline]
    pub fn frequency_hashed(&self, h: u128, w: &[u64]) -> u32 {
        match Engine::auto() {
            Engine::Simd => self.frequency_hashed_impl::<SimdScan>(h, w),
            Engine::Scalar => self.frequency_hashed_impl::<ScalarScan>(h, w),
        }
    }

    /// Frequency of a canonical mask given as raw words (hash computed
    /// here; prefer the batched path for whole query trees).
    #[inline]
    pub fn frequency_words(&self, w: &[u64]) -> u32 {
        self.frequency_hashed(split_hash128(w), w)
    }

    /// [`Self::frequency_words`] through an explicit probe engine — the
    /// scalar-vs-SIMD equivalence property tests probe both paths through
    /// this regardless of the process-wide engine.
    pub fn frequency_words_with(&self, mode: ProbeMode, w: &[u64]) -> u32 {
        let h = split_hash128(w);
        match mode.engine() {
            Engine::Simd => self.frequency_hashed_impl::<SimdScan>(h, w),
            Engine::Scalar => self.frequency_hashed_impl::<ScalarScan>(h, w),
        }
    }

    /// Frequency of a canonical split (0 if absent).
    #[inline]
    pub fn frequency(&self, bits: &Bits) -> u32 {
        debug_assert_eq!(bits.len(), self.n_taxa, "namespace width mismatch");
        self.frequency_words(bits.words())
    }

    /// Prefetch the lines a hash's probe will touch first: its control
    /// group and its home entry.
    #[inline(always)]
    fn prefetch_bucket(&self, h: u128) {
        let i = hash_bucket(h) as usize & self.mask;
        prefetch(&raw const self.ctrl[i]);
        prefetch(&raw const self.entries[i]);
    }

    /// Σ frequency over a whole extracted batch — the quantity Algorithm 2
    /// needs — in one pipelined pass with software prefetch
    /// [`PREFETCH_AHEAD`] splits ahead.
    #[inline]
    pub fn frequency_sum_batch(&self, batch: &SplitBatch<'_>) -> u64 {
        self.frequency_sum_batch_with(ProbeMode::Auto, batch)
    }

    /// [`Self::frequency_sum_batch`] through an explicit probe engine.
    /// `query_bench` races [`ProbeMode::Scalar`] against
    /// [`ProbeMode::Simd`] over identical batches and asserts the sums
    /// bit-identical before reporting either timing.
    pub fn frequency_sum_batch_with(&self, mode: ProbeMode, batch: &SplitBatch<'_>) -> u64 {
        match mode.engine() {
            Engine::Simd => self.sum_batch_impl::<SimdScan>(batch),
            Engine::Scalar => self.sum_batch_impl::<ScalarScan>(batch),
        }
    }

    fn sum_batch_impl<G: GroupScan>(&self, batch: &SplitBatch<'_>) -> u64 {
        if self.distinct == 0 {
            return 0;
        }
        let n = batch.len();
        let hashes = batch.hashes();
        for &h in hashes.iter().take(PREFETCH_AHEAD.min(n)) {
            self.prefetch_bucket(h);
        }
        let mut total = 0u64;
        for i in 0..n {
            if let Some(&h) = hashes.get(i + PREFETCH_AHEAD) {
                self.prefetch_bucket(h);
            }
            total += u64::from(self.frequency_hashed_impl::<G>(hashes[i], batch.mask(i)));
        }
        total
    }

    /// Average RF of one query tree against the frozen hash through a
    /// caller-owned extraction arena — the batched Algorithm 2: one
    /// post-order pass extracts masks + hashes, one pipelined loop probes
    /// them.
    ///
    /// # Panics
    /// Panics if the frozen hash holds no trees (average undefined).
    pub fn average_scratch(
        &self,
        query: &Tree,
        taxa: &TaxonSet,
        scratch: &mut BipartitionScratch,
    ) -> crate::RfAverage {
        assert!(
            self.n_trees > 0,
            "average RF over an empty reference collection"
        );
        let r = self.n_trees as u64;
        let batch = scratch.batch_splits(query, taxa);
        let q_splits = batch.len() as u64;
        let freq_sum = self.frequency_sum_batch(&batch);
        crate::RfAverage {
            left: self.sum - freq_sum,
            right: q_splits * r - freq_sum,
            n_refs: self.n_trees,
        }
    }
}

impl Bfh {
    /// Freeze this hash into the probe-optimized read-only layout. See
    /// [`FrozenBfh`].
    pub fn freeze(&self) -> FrozenBfh {
        FrozenBfh::freeze(self)
    }
}

impl crate::SplitFrequency for FrozenBfh {
    fn split_frequency(&self, bits: &Bits) -> u32 {
        self.frequency(bits)
    }

    fn occurrence_sum(&self) -> u64 {
        self.sum
    }

    fn reference_count(&self) -> usize {
        self.n_trees
    }

    fn split_frequency_words(&self, _n_bits: usize, words: &[u64]) -> u32 {
        self.frequency_words(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::TreeCollection;

    fn build(text: &str) -> (TreeCollection, Bfh, FrozenBfh) {
        let coll = TreeCollection::parse(text).unwrap();
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        let frozen = bfh.freeze();
        (coll, bfh, frozen)
    }

    #[test]
    fn frozen_answers_equal_live_on_every_stored_split() {
        let (_, bfh, frozen) = build(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n((A,B),((C,D),(E,F)));",
        );
        assert_eq!(frozen.n_trees(), bfh.n_trees());
        assert_eq!(frozen.sum(), bfh.sum());
        assert_eq!(frozen.distinct(), bfh.distinct());
        for (bits, count) in bfh.iter() {
            assert_eq!(frozen.frequency(bits), count, "{bits}");
            assert_eq!(frozen.frequency_words(bits.words()), count);
        }
    }

    #[test]
    fn scalar_and_simd_probes_agree_on_hits_and_misses() {
        let (coll, bfh, frozen) =
            build("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));");
        for (bits, count) in bfh.iter() {
            assert_eq!(
                frozen.frequency_words_with(ProbeMode::Scalar, bits.words()),
                count
            );
            assert_eq!(
                frozen.frequency_words_with(ProbeMode::Simd, bits.words()),
                count
            );
        }
        let absent = Bits::from_indices(coll.taxa.len(), [0, 3]);
        assert_eq!(
            frozen.frequency_words_with(ProbeMode::Scalar, absent.words()),
            frozen.frequency_words_with(ProbeMode::Simd, absent.words()),
        );
    }

    #[test]
    fn absent_splits_read_zero() {
        let (coll, _, frozen) = build("((A,B),(C,D));\n((A,B),(C,D));");
        // {A,C} = 0101 is a valid canonical mask the collection never holds
        let absent = Bits::from_indices(coll.taxa.len(), [0, 2]);
        assert_eq!(frozen.frequency(&absent), 0);
    }

    #[test]
    fn empty_hash_freezes_and_reads_zero() {
        let frozen = Bfh::empty(6).freeze();
        assert_eq!(frozen.distinct(), 0);
        assert_eq!(frozen.frequency(&Bits::from_indices(6, [0, 1])), 0);
        assert_eq!(frozen.frequency_sum_batch_smoke(), 0);
    }

    impl FrozenBfh {
        /// Test helper: batch-sum over an empty batch via a trivial tree.
        fn frequency_sum_batch_smoke(&self) -> u64 {
            let mut taxa = phylo::TaxonSet::new();
            let t = phylo::parse_newick("(A,B,C);", &mut taxa, phylo::TaxaPolicy::Grow).unwrap();
            let mut scratch = BipartitionScratch::new();
            let batch = scratch.batch_splits(&t, &taxa);
            self.frequency_sum_batch(&batch)
        }
    }

    #[test]
    fn batched_average_matches_per_split_probes() {
        let (coll, bfh, frozen) =
            build("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));");
        let mut scratch = BipartitionScratch::new();
        for q in &coll.trees {
            let live = crate::bfhrf_average(q, &coll.taxa, &bfh);
            let froz = frozen.average_scratch(q, &coll.taxa, &mut scratch);
            assert_eq!(live, froz);
        }
    }

    #[test]
    fn word_boundary_widths_freeze_and_probe_identically() {
        // n_taxa ∈ {63, 64, 65, 128}: the one-word fast path, its exact
        // upper edge, the first two-word width, and an exact two-word
        // width. Frozen must equal live on every simulated tree, on both
        // probe engines.
        for n in [63usize, 64, 65, 128] {
            let spec = phylo_sim::DatasetSpec::new("widths", n, 12, n as u64);
            let coll = phylo_sim::generate(&spec);
            let bfh = Bfh::build(&coll.trees, &coll.taxa);
            let frozen = bfh.freeze();
            let mut scratch = BipartitionScratch::new();
            for (bits, count) in bfh.iter() {
                assert_eq!(frozen.frequency(bits), count, "n={n} {bits}");
                for mode in [ProbeMode::Scalar, ProbeMode::Simd] {
                    assert_eq!(
                        frozen.frequency_words_with(mode, bits.words()),
                        count,
                        "n={n} mode={mode:?}"
                    );
                }
            }
            for q in &coll.trees {
                assert_eq!(
                    crate::bfhrf_average(q, &coll.taxa, &bfh),
                    frozen.average_scratch(q, &coll.taxa, &mut scratch),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn load_factor_stays_at_most_half() {
        let spec = phylo_sim::DatasetSpec::new("load", 80, 40, 7);
        let coll = phylo_sim::generate(&spec);
        let frozen = Bfh::build(&coll.trees, &coll.taxa).freeze();
        assert!(frozen.capacity() >= 2 * frozen.distinct());
        assert!(frozen.capacity() >= GROUP_SLOTS);
        assert!(frozen.capacity().is_power_of_two());
        assert!(frozen.approx_bytes() > 0);
    }

    #[test]
    fn approx_bytes_matches_actual_allocation_sizes() {
        // The catalog LRU accounts resident collections in approx_bytes;
        // pin it to the real heap footprint of every lane so the control
        // lane (and its wrap mirror) can never silently fall out of the
        // accounting again.
        for (n, r) in [(6usize, 2usize), (80, 40), (144, 30)] {
            let spec = phylo_sim::DatasetSpec::new("bytes", n, r, 11);
            let coll = phylo_sim::generate(&spec);
            let frozen = Bfh::build(&coll.trees, &coll.taxa).freeze();
            let actual = std::mem::size_of_val(&*frozen.ctrl)
                + std::mem::size_of_val(&*frozen.entries)
                + std::mem::size_of_val(&*frozen.pool);
            assert_eq!(frozen.approx_bytes(), actual, "n={n} r={r}");
            // Layout invariants the accounting relies on.
            assert_eq!(frozen.ctrl.len(), frozen.capacity() + GROUP_SLOTS);
            assert_eq!(std::mem::size_of::<Entry>(), 16);
            assert_eq!(frozen.entries.len(), frozen.capacity());
            assert_eq!(frozen.pool.len(), frozen.distinct() * frozen.words);
        }
        let empty = Bfh::empty(4).freeze();
        let actual = std::mem::size_of_val(&*empty.ctrl)
            + std::mem::size_of_val(&*empty.entries)
            + std::mem::size_of_val(&*empty.pool);
        assert_eq!(empty.approx_bytes(), actual);
    }

    #[test]
    fn serialized_lanes_reconstruct_bitwise() {
        let spec = phylo_sim::DatasetSpec::new("lanes", 70, 20, 5);
        let coll = phylo_sim::generate(&spec);
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        let frozen = bfh.freeze();
        let entry_bytes: Vec<u8> = frozen.entry_records().flatten().collect();
        let twin = FrozenBfh::from_le_parts(
            frozen.layout(),
            frozen.ctrl_lane().to_vec(),
            &entry_bytes,
            frozen.pool_lane().to_vec(),
        )
        .unwrap();
        assert!(!twin.is_mapped());
        assert_eq!(twin.digest(), frozen.digest());
        let mut scratch = BipartitionScratch::new();
        for (bits, count) in bfh.iter() {
            assert_eq!(twin.frequency(bits), count);
        }
        for q in &coll.trees {
            assert_eq!(
                frozen.average_scratch(q, &coll.taxa, &mut scratch),
                twin.average_scratch(q, &coll.taxa, &mut scratch),
            );
        }
    }

    #[test]
    fn corrupt_lane_layouts_are_rejected_not_probed() {
        let (_, _, frozen) = build("((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));");
        let layout = frozen.layout();
        let ctrl = frozen.ctrl_lane().to_vec();
        let entry_bytes: Vec<u8> = frozen.entry_records().flatten().collect();
        let pool = frozen.pool_lane().to_vec();

        // Truncated ctrl lane.
        let short_ctrl = ctrl[..ctrl.len() - 1].to_vec();
        assert!(FrozenBfh::from_le_parts(layout, short_ctrl, &entry_bytes, pool.clone()).is_err());
        // Truncated entry lane.
        assert!(FrozenBfh::from_le_parts(
            layout,
            ctrl.clone(),
            &entry_bytes[..entry_bytes.len() - 16],
            pool.clone()
        )
        .is_err());
        // Truncated pool: a stored rank now points past the end.
        assert!(FrozenBfh::from_le_parts(
            layout,
            ctrl.clone(),
            &entry_bytes,
            pool[..pool.len() - 1].to_vec()
        )
        .is_err());
        // Out-of-range pool rank in an occupied slot.
        let mut bad_entries = entry_bytes.clone();
        let victim = frozen
            .ctrl_lane()
            .iter()
            .take(frozen.capacity())
            .position(|&c| c != CTRL_EMPTY)
            .expect("occupied slot");
        bad_entries[victim * 16 + 12..victim * 16 + 16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(
            FrozenBfh::from_le_parts(layout, ctrl.clone(), &bad_entries, pool.clone()).is_err()
        );
        // Broken mirror group.
        let mut bad_ctrl = ctrl.clone();
        let cap = frozen.capacity();
        bad_ctrl[cap] ^= 0x55;
        assert!(FrozenBfh::from_le_parts(layout, bad_ctrl, &entry_bytes, pool.clone()).is_err());
        // Under-provisioned capacity claim.
        let mut bad_layout = layout;
        bad_layout.capacity = GROUP_SLOTS / 2;
        assert!(FrozenBfh::from_le_parts(bad_layout, ctrl, &entry_bytes, pool).is_err());
    }

    #[test]
    fn ctrl_mirror_keeps_wrapping_windows_consistent() {
        let spec = phylo_sim::DatasetSpec::new("mirror", 40, 25, 3);
        let coll = phylo_sim::generate(&spec);
        let frozen = Bfh::build(&coll.trees, &coll.taxa).freeze();
        let cap = frozen.capacity();
        assert_eq!(&frozen.ctrl[cap..], &frozen.ctrl[..GROUP_SLOTS]);
    }
}
