//! [`BfhBuilder`] — one front door for every way of constructing a
//! [`Bfh`].
//!
//! The hash once grew a constructor per strategy, each with its own error
//! behavior. The builder replaces that zoo: pick the knobs, then call one
//! of the `from_*` terminals, and get a `Result` instead of a panic on bad
//! input.
//!
//! ```
//! use bfhrf::BfhBuilder;
//! use phylo::TreeCollection;
//!
//! let refs = TreeCollection::parse(
//!     "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));").unwrap();
//! let bfh = BfhBuilder::new()
//!     .shards(4)
//!     .from_trees(&refs.trees, &refs.taxa)
//!     .unwrap();
//! assert_eq!(bfh.n_trees(), 3);
//! assert_eq!(bfh.n_shards(), 4);
//! ```

use crate::bfh::Bfh;
use crate::error::CoreError;
use crate::guard::{CancelToken, RunBudget, RunGuard};
use phylo::{
    BipartitionScratch, IngestPolicy, IngestReport, NewickReader, TaxaPolicy, TaxonSet, Tree,
};
use std::io::BufRead;

/// Configurable [`Bfh`] construction. See the module docs for an example.
#[derive(Debug, Clone)]
pub struct BfhBuilder {
    parallel: bool,
    shards: usize,
    guard: RunGuard,
}

impl Default for BfhBuilder {
    fn default() -> Self {
        BfhBuilder {
            parallel: false,
            shards: 1,
            guard: RunGuard::default(),
        }
    }
}

impl BfhBuilder {
    /// A builder with the defaults: sequential, single shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parallelize the build across rayon workers. With one shard this is
    /// the fold-merge strategy; with several it is the two-phase sharded
    /// pipeline (workers per tree chunk, then per shard).
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Partition the hash into `k` independent shard maps. `k = 1` (the
    /// default) keeps a single map and skips routing on every probe.
    ///
    /// Values land in [`BfhBuilder::from_trees`]'s error path rather than
    /// panicking: `k = 0` is rejected there.
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k;
        self
    }

    /// Run the build under `budget`: the spill-buffer footprint is checked
    /// before allocating and the deadline is polled at tree granularity.
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.guard.budget = budget;
        self
    }

    /// Make the build cancellable through `token` — any clone of it can
    /// stop the build from another thread, yielding
    /// [`CoreError::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.guard.cancel = token;
        self
    }

    /// Run the build under a fully custom [`RunGuard`] (budget + token +
    /// shared degradation log).
    pub fn guard(mut self, guard: RunGuard) -> Self {
        self.guard = guard;
        self
    }

    fn validate(&self, trees: &[Tree], taxa: &TaxonSet) -> Result<(), CoreError> {
        if self.shards == 0 {
            return Err(CoreError::Structure(
                "shard count must be at least 1".into(),
            ));
        }
        // Surface out-of-namespace leaves as a typed error instead of the
        // extraction assert.
        for (ti, tree) in trees.iter().enumerate() {
            for leaf in tree.leaves() {
                if let Some(t) = tree.taxon(leaf) {
                    if t.index() >= taxa.len() {
                        return Err(CoreError::TaxaMismatch(format!(
                            "tree {ti} references taxon id {} but the namespace has {} taxa",
                            t.index(),
                            taxa.len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Build from an in-memory collection encoded over `taxa`. Every
    /// strategy honours the configured guard: sequential builds poll it
    /// per tree, parallel builds per tree inside panic-isolated workers.
    pub fn from_trees(&self, trees: &[Tree], taxa: &TaxonSet) -> Result<Bfh, CoreError> {
        let start = std::time::Instant::now();
        self.validate(trees, taxa)?;
        let bfh = match (self.shards, self.parallel) {
            (1, false) => {
                let mut bfh = Bfh::empty(taxa.len());
                let mut scratch = BipartitionScratch::new();
                for tree in trees {
                    self.guard.checkpoint("BFH build")?;
                    bfh.add_tree_with(tree, taxa, &mut scratch);
                }
                bfh
            }
            // Parallel one-shard runs the two-phase pipeline with k = 1:
            // counts are bitwise-identical to the fold-merge strategy, and
            // the pipeline is the guarded, panic-isolated path.
            (k, _) => Bfh::try_build_sharded(trees, taxa, k, &self.guard)?,
        };
        record_build_metrics(&bfh, start.elapsed());
        Ok(bfh)
    }

    /// Parse a Newick stream and build from it. With [`TaxaPolicy::Grow`]
    /// the namespace widens as labels appear; with [`TaxaPolicy::Require`]
    /// unknown labels are a parse error. Trees are materialized before the
    /// build so the configured strategy (parallel/sharded) applies; for
    /// constant-memory sequential folding of huge files, stream trees
    /// manually into [`Bfh::add_tree_with`].
    pub fn from_newick_reader<R: BufRead>(
        &self,
        reader: R,
        taxa: &mut TaxonSet,
        policy: TaxaPolicy,
    ) -> Result<Bfh, CoreError> {
        let mut stream = phylo::newick::NewickStream::new(reader, policy);
        let mut trees = Vec::new();
        while let Some(t) = stream.next_tree(taxa)? {
            trees.push(t);
        }
        self.from_trees(&trees, taxa)
    }

    /// Like [`BfhBuilder::from_newick_reader`] but with error recovery:
    /// malformed records are skipped under [`IngestPolicy::Lenient`] and
    /// described in the returned [`IngestReport`] instead of aborting the
    /// build.
    pub fn from_ingest<R: BufRead>(
        &self,
        reader: R,
        taxa: &mut TaxonSet,
        taxa_policy: TaxaPolicy,
        ingest_policy: IngestPolicy,
    ) -> Result<(Bfh, IngestReport), CoreError> {
        let mut stream = NewickReader::new(reader, taxa_policy, ingest_policy);
        let mut trees = Vec::new();
        while let Some(t) = stream.next_tree(taxa)? {
            self.guard.checkpoint("ingest")?;
            trees.push(t);
        }
        let bfh = self.from_trees(&trees, taxa)?;
        Ok((bfh, stream.into_report()))
    }
}

/// Publish one finished build's throughput and balance into the global
/// registry: duration histogram, tree/split totals, last-build rate gauges,
/// and the shard skew (max/mean distinct entries, scaled by 1000 — 1000
/// means perfectly balanced routing).
fn record_build_metrics(bfh: &Bfh, elapsed: std::time::Duration) {
    let reg = phylo_obs::global();
    reg.histogram("build_ns", &[]).record_duration(elapsed);
    reg.counter("build_trees_total", &[])
        .add(bfh.n_trees() as u64);
    reg.counter("build_splits_total", &[]).add(bfh.sum());
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        reg.gauge("build_trees_per_s", &[])
            .set((bfh.n_trees() as f64 / secs) as i64);
        reg.gauge("build_splits_per_s", &[])
            .set((bfh.sum() as f64 / secs) as i64);
    }
    let sizes = bfh.shard_sizes();
    let total: usize = sizes.iter().sum();
    if sizes.len() > 1 && total > 0 {
        let mean = total as f64 / sizes.len() as f64;
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        reg.gauge("build_shard_skew_permille", &[])
            .set((max / mean * 1000.0) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::TreeCollection;

    fn coll(text: &str) -> TreeCollection {
        TreeCollection::parse(text).unwrap()
    }

    #[test]
    fn builder_strategies_agree() {
        let c = coll(&"((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n".repeat(20));
        let base = BfhBuilder::new().from_trees(&c.trees, &c.taxa).unwrap();
        for builder in [
            BfhBuilder::new().parallel(true),
            BfhBuilder::new().shards(4),
            BfhBuilder::new().parallel(true).shards(4),
        ] {
            let b = builder.from_trees(&c.trees, &c.taxa).unwrap();
            assert_eq!(b.sum(), base.sum());
            assert_eq!(b.distinct(), base.distinct());
            for (bits, count) in base.iter() {
                assert_eq!(b.frequency(bits), count);
            }
        }
    }

    #[test]
    fn zero_shards_is_an_error_not_a_panic() {
        let c = coll("((A,B),(C,D));");
        let err = BfhBuilder::new()
            .shards(0)
            .from_trees(&c.trees, &c.taxa)
            .unwrap_err();
        assert!(matches!(err, CoreError::Structure(_)));
    }

    #[test]
    fn out_of_namespace_taxa_is_a_typed_error() {
        let c = coll("((A,B),(C,D));");
        let narrow = TaxonSet::new(); // empty namespace: every leaf is out of range
        let err = BfhBuilder::new().from_trees(&c.trees, &narrow).unwrap_err();
        assert!(matches!(err, CoreError::TaxaMismatch(_)));
    }

    #[test]
    fn from_newick_reader_grows_and_requires() {
        let text = "((A,B),(C,D));\n((A,C),(B,D));\n";
        let mut taxa = TaxonSet::new();
        let grown = BfhBuilder::new()
            .shards(2)
            .from_newick_reader(text.as_bytes(), &mut taxa, TaxaPolicy::Grow)
            .unwrap();
        assert_eq!(grown.n_trees(), 2);
        assert_eq!(taxa.len(), 4);

        // Unknown label under Require surfaces as a CoreError (from parse).
        let mut known = TaxonSet::new();
        let err = BfhBuilder::new()
            .from_newick_reader(text.as_bytes(), &mut known, TaxaPolicy::Require)
            .unwrap_err();
        assert!(matches!(err, CoreError::Phylo(_)));
    }
}
