//! Split-support annotation — "other applications of directly using a
//! BFH" (paper §IX).
//!
//! Given a focal tree (e.g. a species-tree estimate) and a frequency hash
//! over gene trees or bootstrap replicates, each internal edge of the
//! focal tree gets the fraction of reference trees containing its split —
//! the familiar bootstrap/gene-concordance support value. One hash serves
//! any number of focal trees; no pairwise comparisons happen at all.

use crate::bfh::Bfh;
use phylo::{Bipartition, NodeId, TaxonSet, Tree};

/// Support of one internal edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSupport {
    /// The child node whose parent edge carries the split.
    pub node: NodeId,
    /// The canonical split below that edge.
    pub split: Bipartition,
    /// Number of reference trees containing the split.
    pub count: u32,
    /// `count / r`, in `[0, 1]`.
    pub fraction: f64,
}

/// Annotate every internal edge of `tree` with its reference-collection
/// support. Trivial edges (leaves, root) carry no split and are skipped.
///
/// # Panics
/// Panics if the hash is empty.
pub fn edge_support(tree: &Tree, taxa: &TaxonSet, bfh: &Bfh) -> Vec<EdgeSupport> {
    assert!(
        bfh.n_trees() > 0,
        "support against an empty reference collection"
    );
    let r = bfh.n_trees() as f64;
    let n = taxa.len();
    let Some(root) = tree.root() else {
        return Vec::new();
    };
    let masks = tree.subtree_masks(n);
    let leafset = &masks[root.index()];
    let n_leaves = leafset.count_ones() as usize;
    let mut seen = phylo_bitset::bits_set_with_capacity(tree.num_nodes());
    let mut out = Vec::new();
    for node in tree.postorder() {
        if node == root || tree.is_leaf(node) {
            continue;
        }
        let mask = &masks[node.index()];
        let ones = mask.count_ones() as usize;
        if ones < 2 || ones > n_leaves - 2 {
            continue;
        }
        let split = Bipartition::new(mask.clone(), leafset);
        if !seen.insert(split.bits().clone()) {
            continue; // the duplicated root edge of a bifurcating root
        }
        let count = bfh.frequency_of(&split);
        out.push(EdgeSupport {
            node,
            split,
            count,
            fraction: f64::from(count) / r,
        });
    }
    out
}

/// Serialize `tree` with support fractions as internal node labels, e.g.
/// `((a,b)0.97,(c,d)0.66);` — the conventional way phylogenetics tools
/// exchange support values.
pub fn write_newick_with_support(tree: &Tree, taxa: &TaxonSet, bfh: &Bfh) -> String {
    // Labels indexed by node id: one pass over the supports instead of a
    // per-node linear scan during serialization.
    let mut labels: Vec<Option<String>> = vec![None; tree.num_nodes()];
    for s in edge_support(tree, taxa, bfh) {
        labels[s.node.index()] = Some(format!("{:.2}", s.fraction));
    }
    let mut out = String::new();
    if let Some(root) = tree.root() {
        write_node(tree, taxa, root, &labels, &mut out);
    }
    out.push(';');
    out
}

fn write_node(
    tree: &Tree,
    taxa: &TaxonSet,
    node: NodeId,
    labels: &[Option<String>],
    out: &mut String,
) {
    enum Frame {
        Enter(NodeId),
        Sep,
        Exit(NodeId),
    }
    let mut stack = vec![Frame::Enter(node)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(n) => {
                let kids = tree.children(n);
                if kids.is_empty() {
                    if let Some(t) = tree.taxon(n) {
                        out.push_str(taxa.label(t));
                    }
                } else {
                    out.push('(');
                    stack.push(Frame::Exit(n));
                    for (i, &c) in kids.iter().enumerate().rev() {
                        stack.push(Frame::Enter(c));
                        if i > 0 {
                            stack.push(Frame::Sep);
                        }
                    }
                }
            }
            Frame::Sep => out.push(','),
            Frame::Exit(n) => {
                out.push(')');
                if let Some(label) = &labels[n.index()] {
                    out.push_str(label);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::TreeCollection;

    fn setup() -> (TreeCollection, Bfh) {
        // {A,B} in 3/4 trees, {E,F} in 4/4, {C,D} in 2/4
        let coll = TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),(C,(D,(E,F))));\n((A,C),((B,D),(E,F)));",
        )
        .unwrap();
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        (coll, bfh)
    }

    #[test]
    fn fractions_match_known_frequencies() {
        let (coll, bfh) = setup();
        let focal = &coll.trees[0];
        let supports = edge_support(focal, &coll.taxa, &bfh);
        assert_eq!(supports.len(), 3, "6-leaf binary tree: n-3 internal edges");
        // Keyed by the canonical mask itself, not a rendered string — the
        // same word-level keys every hash in the workspace probes with.
        let mut by_split: phylo_bitset::BitsMap<f64> = phylo_bitset::bits_map_with_capacity(8);
        for s in &supports {
            by_split.insert(s.split.bits().clone(), s.fraction);
        }
        let n = coll.taxa.len();
        let mask = |idx: &[usize]| phylo_bitset::Bits::from_indices(n, idx.iter().copied());
        // {A,B} canonical: contains taxon A (bit 0)
        assert_eq!(by_split[&mask(&[0, 1])], 0.75);
        // {E,F} canonical: complement {A,B,C,D}
        assert_eq!(by_split[&mask(&[0, 1, 2, 3])], 1.0);
        // {C,D} canonical: complement {A,B,E,F}
        assert_eq!(by_split[&mask(&[0, 1, 4, 5])], 0.5);
        // word-slice probes resolve the same entries without owning a key
        for s in &supports {
            assert_eq!(
                phylo_bitset::map_get_words(&by_split, s.split.bits().words()),
                Some(&s.fraction)
            );
        }
    }

    #[test]
    fn newick_output_carries_labels() {
        let (coll, bfh) = setup();
        let s = write_newick_with_support(&coll.trees[0], &coll.taxa, &bfh);
        assert!(s.contains("0.75"), "{s}");
        assert!(s.contains("1.00"), "{s}");
        assert!(s.ends_with(';'));
        // it must still parse as newick (internal labels are legal)
        let mut taxa = coll.taxa.clone();
        assert!(phylo::parse_newick(&s, &mut taxa, phylo::TaxaPolicy::Require).is_ok());
    }

    #[test]
    fn self_support_of_unanimous_collection_is_one() {
        let coll = TreeCollection::parse(&"((A,B),((C,D),(E,F)));\n".repeat(6)).unwrap();
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        for s in edge_support(&coll.trees[0], &coll.taxa, &bfh) {
            assert_eq!(s.fraction, 1.0);
            assert_eq!(s.count, 6);
        }
    }

    #[test]
    fn foreign_focal_tree_gets_zero_support() {
        let (coll, bfh) = setup();
        // a topology sharing no internal split with the references
        let mut taxa = coll.taxa.clone();
        let foreign = phylo::parse_newick(
            "((A,E),((B,F),(C,D)));",
            &mut taxa,
            phylo::TaxaPolicy::Require,
        )
        .unwrap();
        let supports = edge_support(&foreign, &taxa, &bfh);
        // {C,D} appears in 2 refs; the others are absent
        let zeros = supports.iter().filter(|s| s.count == 0).count();
        assert!(zeros >= 2, "{supports:?}");
    }
}
