//! Generalized and variant RF computations.
//!
//! The paper's extensibility claim (§VII.F) is that because the frequency
//! hash stores untransformed bipartitions, any RF variant expressible as
//! per-split preprocessing or weighting works on the hash exactly as it
//! would on the traditional pairwise computation. This module provides:
//!
//! * [`SplitWeight`] + [`GeneralizedRf`] — weighted average RF against the
//!   hash, with [`UnitWeight`] (recovers standard RF) and
//!   [`PhyloInfoWeight`] (split phylogenetic information content, the
//!   "information content" modification the paper cites from Wilkinson and
//!   Smith);
//! * [`SizeFilteredRf`] — bipartition-size filtering, the variant the
//!   paper implements to demonstrate flexibility;
//! * [`normalized_average`] — RF normalized to `[0, 1]` by the maximum
//!   `2(n−3)`;
//! * [`branch_score`] — pairwise Kuhner–Felsenstein branch-score distance
//!   (weighted RF with per-tree branch lengths).

use crate::bfh::Bfh;
use crate::rf::RfAverage;
use phylo::{TaxonSet, Tree};
use phylo_bitset::Bits;

/// A per-split weight used by [`GeneralizedRf`]. Weights must depend only
/// on the split itself (not on which tree it came from) — that is exactly
/// the class of variants the frequency hash supports losslessly.
pub trait SplitWeight: Sync {
    /// Weight of the canonical split `bits` over `n_taxa` taxa.
    fn weight(&self, bits: &Bits, n_taxa: usize) -> f64;
}

/// Unit weights: every split counts 1, recovering standard RF.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitWeight;

impl SplitWeight for UnitWeight {
    #[inline]
    fn weight(&self, _bits: &Bits, _n_taxa: usize) -> f64 {
        1.0
    }
}

/// Split phylogenetic information content: `−log₂ P(split)`, where
/// `P(split)` is the probability that a uniformly random unrooted binary
/// tree on `n` taxa contains the split. For side sizes `a` and `b`:
///
/// ```text
/// P = (2a−3)!! (2b−3)!! / (2n−5)!!
/// ```
///
/// Balanced splits are rarer, hence more informative — disagreeing on them
/// costs more than disagreeing on a cherry.
#[derive(Debug, Clone)]
pub struct PhyloInfoWeight {
    /// `log2_ddf[k]` = log₂ k‼ for odd k (index k), precomputed to 2n.
    log2_ddf: Vec<f64>,
}

impl PhyloInfoWeight {
    /// Precompute tables for an `n_taxa`-wide namespace.
    pub fn new(n_taxa: usize) -> Self {
        let top = 2 * n_taxa.max(3);
        let mut log2_ddf = vec![0.0f64; top + 1];
        for k in 2..=top {
            // k!! = k · (k−2)!!
            log2_ddf[k] = (k as f64).log2() + log2_ddf[k - 2];
        }
        PhyloInfoWeight { log2_ddf }
    }

    fn l2ddf(&self, k: isize) -> f64 {
        if k <= 1 {
            0.0 // (−1)!! = 1!! = 1
        } else {
            self.log2_ddf[k as usize]
        }
    }
}

impl SplitWeight for PhyloInfoWeight {
    fn weight(&self, bits: &Bits, n_taxa: usize) -> f64 {
        let a = bits.count_ones() as isize;
        let b = n_taxa as isize - a;
        let n = n_taxa as isize;
        self.l2ddf(2 * n - 5) - self.l2ddf(2 * a - 3) - self.l2ddf(2 * b - 3)
    }
}

/// Weighted average RF of query trees against a [`Bfh`].
///
/// The arithmetic mirrors Algorithm 2 with weights folded in:
/// `left = Σ_b freq(b)·w(b) − Σ_{b′} freq(b′)·w(b′)` and
/// `right = Σ_{b′} (r − freq(b′))·w(b′)`.
pub struct GeneralizedRf<'a, W: SplitWeight> {
    bfh: &'a Bfh,
    weight: W,
    weighted_sum: f64,
}

impl<'a, W: SplitWeight> GeneralizedRf<'a, W> {
    /// Wrap a hash with a weighting scheme (one pass to compute the
    /// weighted total).
    pub fn new(bfh: &'a Bfh, weight: W) -> Self {
        let n = bfh.n_taxa();
        let weighted_sum = bfh
            .iter()
            .map(|(bits, count)| f64::from(count) * weight.weight(bits, n))
            .sum();
        GeneralizedRf {
            bfh,
            weight,
            weighted_sum,
        }
    }

    /// Total weight over all reference occurrences (weighted `sumBFHR`).
    pub fn weighted_sum(&self) -> f64 {
        self.weighted_sum
    }

    /// Weighted average distance of `query` to the collection.
    pub fn average(&self, query: &Tree, taxa: &TaxonSet) -> f64 {
        assert!(self.bfh.n_trees() > 0, "empty reference collection");
        let r = self.bfh.n_trees() as f64;
        let n = taxa.len();
        let mut probe_sum = 0.0; // Σ freq(b′)·w(b′)
        let mut query_weight = 0.0; // Σ w(b′)
        for bp in query.bipartitions(taxa) {
            let w = self.weight.weight(bp.bits(), n);
            probe_sum += f64::from(self.bfh.frequency_of(&bp)) * w;
            query_weight += w;
        }
        let left = self.weighted_sum - probe_sum;
        let right = query_weight * r - probe_sum;
        (left + right) / r
    }
}

/// Bipartition-size-filtered average RF — the paper's demonstration
/// variant: splits whose smaller side is outside `[min_side, max_side]`
/// are ignored on both the reference and the query side.
pub struct SizeFilteredRf {
    bfh: Bfh,
    min_side: usize,
    max_side: usize,
}

impl SizeFilteredRf {
    /// Build a filtered hash over the references.
    pub fn new(refs: &[Tree], taxa: &TaxonSet, min_side: usize, max_side: usize) -> Self {
        let n = taxa.len();
        let mut bfh = Bfh::build(refs, taxa);
        bfh.retain(|bits, _| {
            let side = (bits.count_ones() as usize).min(n - bits.count_ones() as usize);
            (min_side..=max_side).contains(&side)
        });
        SizeFilteredRf {
            bfh,
            min_side,
            max_side,
        }
    }

    /// The filtered hash (e.g. to inspect what survived).
    pub fn bfh(&self) -> &Bfh {
        &self.bfh
    }

    /// Filtered average RF for one query tree.
    pub fn average(&self, query: &Tree, taxa: &TaxonSet) -> RfAverage {
        assert!(self.bfh.n_trees() > 0, "empty reference collection");
        let n = taxa.len();
        let r = self.bfh.n_trees() as u64;
        let mut freq_sum = 0u64;
        let mut q_splits = 0u64;
        for bp in query.bipartitions_filtered(taxa, |b| {
            (self.min_side..=self.max_side).contains(&b.smaller_side(n))
        }) {
            freq_sum += u64::from(self.bfh.frequency_of(&bp));
            q_splits += 1;
        }
        RfAverage {
            left: self.bfh.sum() - freq_sum,
            right: q_splits * r - freq_sum,
            n_refs: self.bfh.n_trees(),
        }
    }
}

/// Normalize an average RF to `[0, 1]` by its maximum `2(n−3)` for binary
/// trees on `n` taxa.
pub fn normalized_average(rf: &RfAverage, n_taxa: usize) -> f64 {
    assert!(n_taxa >= 4, "normalization needs n ≥ 4");
    rf.average() / (2.0 * (n_taxa as f64 - 3.0))
}

/// Kuhner–Felsenstein branch-score distance between two trees: the
/// Euclidean distance between their split-indexed branch-length vectors
/// (splits absent from a tree contribute length 0).
///
/// Unlike count-based variants this depends on *which tree* a split came
/// from, so it is pairwise-only — it cannot be folded into a frequency
/// hash, and the paper makes no claim that it can.
pub fn branch_score(t1: &Tree, t2: &Tree, taxa: &TaxonSet) -> f64 {
    let w1 = t1.weighted_bipartitions(taxa);
    let w2 = t2.weighted_bipartitions(taxa);
    let mut sum = 0.0f64;
    for (bits, &l1) in w1.iter() {
        let l2 = w2.get(bits).copied().unwrap_or(0.0);
        sum += (l1 - l2) * (l1 - l2);
    }
    for (bits, &l2) in w2.iter() {
        if !w1.contains_key(bits) {
            sum += l2 * l2;
        }
    }
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::bfhrf_average;
    use phylo::{read_trees_from_str, TaxaPolicy, TreeCollection};

    fn setup() -> (TreeCollection, Vec<Tree>) {
        let mut refs = TreeCollection::parse(
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));",
        )
        .unwrap();
        let queries = read_trees_from_str(
            "((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));",
            &mut refs.taxa,
            TaxaPolicy::Require,
        )
        .unwrap();
        (refs, queries)
    }

    #[test]
    fn unit_weight_recovers_standard_rf() {
        let (refs, queries) = setup();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let gen = GeneralizedRf::new(&bfh, UnitWeight);
        for q in &queries {
            let exact = bfhrf_average(q, &refs.taxa, &bfh);
            assert!(
                (gen.average(q, &refs.taxa) - exact.average()).abs() < 1e-9,
                "unit-weighted generalized RF must equal standard RF"
            );
        }
    }

    #[test]
    fn phylo_info_weight_values() {
        // n=6: P(cherry, a=2) = 1·(2·4−3)!!/(2·6−5)!! = 5!!/7!! = 1/7
        let w = PhyloInfoWeight::new(6);
        let cherry = Bits::from_indices(6, [0, 1]);
        let info = w.weight(&cherry, 6);
        assert!((info - (7.0f64).log2()).abs() < 1e-12, "got {info}");
        // balanced split a=b=3: P = 3!!·3!!/7!! = 9/105 = 3/35
        let balanced = Bits::from_indices(6, [0, 1, 2]);
        let info_b = w.weight(&balanced, 6);
        assert!(
            (info_b - (35.0f64 / 3.0).log2()).abs() < 1e-12,
            "got {info_b}"
        );
        assert!(
            info_b > info,
            "balanced splits carry more information than cherries"
        );
    }

    #[test]
    fn info_weighted_rf_orders_disagreements() {
        let (refs, queries) = setup();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let gen = GeneralizedRf::new(&bfh, PhyloInfoWeight::new(refs.taxa.len()));
        let d_same = gen.average(&queries[0], &refs.taxa);
        let d_diff = gen.average(&queries[1], &refs.taxa);
        assert!(d_same < d_diff);
        assert!(d_same >= 0.0);
    }

    #[test]
    fn size_filter_keeps_only_requested_band() {
        let (refs, queries) = setup();
        // only cherries (smaller side exactly 2)
        let filt = SizeFilteredRf::new(&refs.trees, &refs.taxa, 2, 2);
        for (bits, _) in filt.bfh().iter() {
            let ones = bits.count_ones() as usize;
            assert_eq!(ones.min(6 - ones), 2);
        }
        let a = filt.average(&queries[0], &refs.taxa);
        // filtered distances are bounded by unfiltered ones
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let full = bfhrf_average(&queries[0], &refs.taxa, &bfh);
        assert!(a.total() <= full.total());
    }

    #[test]
    fn size_filter_full_band_is_identity() {
        let (refs, queries) = setup();
        let filt = SizeFilteredRf::new(&refs.trees, &refs.taxa, 2, 4);
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        for q in &queries {
            assert_eq!(
                filt.average(q, &refs.taxa),
                bfhrf_average(q, &refs.taxa, &bfh)
            );
        }
    }

    #[test]
    fn normalization_bounds() {
        let (refs, queries) = setup();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        for q in &queries {
            let rf = bfhrf_average(q, &refs.taxa, &bfh);
            let norm = normalized_average(&rf, refs.taxa.len());
            assert!(
                (0.0..=1.0).contains(&norm),
                "normalized {norm} out of range"
            );
        }
    }

    #[test]
    fn branch_score_basics() {
        let mut taxa = phylo::TaxonSet::new();
        let trees = read_trees_from_str(
            "((A:1,B:1):0.5,(C:1,D:1):0.5);\n((A:1,B:1):0.7,(C:1,D:1):0.7);\n((A:1,C:1):0.5,(B:1,D:1):0.5);",
            &mut taxa,
            TaxaPolicy::Grow,
        )
        .unwrap();
        // identical topology & lengths → 0
        assert_eq!(branch_score(&trees[0], &trees[0], &taxa), 0.0);
        // same topology, internal edge 1.0 vs 1.4 → |Δ| = 0.4
        let d01 = branch_score(&trees[0], &trees[1], &taxa);
        assert!((d01 - 0.4).abs() < 1e-12, "got {d01}");
        // different topology: sqrt(1² + 1²) with both internal edges = 1.0
        let d02 = branch_score(&trees[0], &trees[2], &taxa);
        assert!((d02 - (2.0f64).sqrt()).abs() < 1e-12, "got {d02}");
        // symmetry
        assert_eq!(d02, branch_score(&trees[2], &trees[0], &taxa));
    }
}
