//! Cross-implementation property tests.
//!
//! Four unrelated RF implementations live in this crate: the naive
//! set-difference double loop (Algorithm 1), the frequency-hash arithmetic
//! (Algorithm 2), the HashRF two-level hashing, and Day's interval
//! algorithm. On arbitrary coalescent and uniform-random inputs they must
//! agree **exactly** — integer for integer — which is a far stronger check
//! than any fixed example.

use bfhrf::matrix::rf_matrix_exact;
use bfhrf::{
    bfhrf_all, day_rf, sequential_rf, Bfh, BfhBuilder, BfhrfComparator, Comparator, DayComparator,
    FrozenComparator, HashRf, HashRfConfig, ProbeMode, SetComparator,
};
use phylo::{BipartitionScratch, TreeCollection};
use phylo_sim::datasets::DatasetSpec;
use phylo_sim::perturb::random_collection;
use proptest::prelude::*;

/// Random collections: either coalescent (correlated splits) or uniform
/// (near-disjoint splits) — the two regimes stress the hash differently.
fn collection(n: usize, r: usize, seed: u64, coalescent: bool) -> TreeCollection {
    if coalescent {
        let mut spec = DatasetSpec::new("prop", n, r, seed);
        spec.pop_scale = 0.5;
        phylo_sim::generate(&spec)
    } else {
        random_collection(n, r, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn four_implementations_agree(
        n in 5usize..24,
        r in 2usize..12,
        q in 1usize..6,
        seed in any::<u64>(),
        coalescent in any::<bool>(),
    ) {
        let refs = collection(n, r, seed, coalescent);
        let queries = collection(n, q, seed.wrapping_add(1), coalescent);
        // same namespace by construction (t0..t{n-1} interned in order)
        prop_assert_eq!(refs.taxa.len(), queries.taxa.len());

        // 1. Algorithm 1 (DS)
        let ds = sequential_rf(&queries.trees, &refs.trees, &refs.taxa).unwrap();
        // 2. Algorithm 2 (BFHRF)
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let fast = bfhrf_all(&queries.trees, &refs.taxa, &bfh).unwrap();
        prop_assert_eq!(&ds, &fast, "DS vs BFHRF");

        // 3. Day's algorithm, pairwise, summed
        for (qi, qtree) in queries.trees.iter().enumerate() {
            let total: u64 = refs
                .trees
                .iter()
                .map(|rt| day_rf(qtree, rt, &refs.taxa) as u64)
                .sum();
            prop_assert_eq!(total, fast[qi].rf.total(), "Day vs BFHRF, query {}", qi);
        }

        // 4. HashRF (wide IDs) on Q == R gives the same self-averages
        let h = HashRf::compute(&refs.trees, &refs.taxa, &HashRfConfig::default()).unwrap();
        let self_scores = bfhrf_all(&refs.trees, &refs.taxa, &bfh).unwrap();
        for s in &self_scores {
            prop_assert!(
                (h.averages()[s.index] - s.rf.average()).abs() < 1e-9,
                "HashRF vs BFHRF self-average, tree {}",
                s.index
            );
        }
    }

    #[test]
    fn parallel_variants_match_sequential(
        n in 5usize..20,
        r in 2usize..10,
        seed in any::<u64>(),
    ) {
        let refs = collection(n, r, seed, true);
        let queries = collection(n, 3, seed ^ 7, true);
        let bfh_seq = Bfh::build(&refs.trees, &refs.taxa);
        let bfh_par = BfhBuilder::new()
            .parallel(true)
            .from_trees(&refs.trees, &refs.taxa)
            .unwrap();
        prop_assert_eq!(bfh_seq.sum(), bfh_par.sum());
        prop_assert_eq!(bfh_seq.distinct(), bfh_par.distinct());

        let a = bfhrf_all(&queries.trees, &refs.taxa, &bfh_seq).unwrap();
        let b = BfhrfComparator::new(&bfh_par, &refs.taxa)
            .parallel(true)
            .average_all(&queries.trees)
            .unwrap();
        prop_assert_eq!(a, b);

        let ds = sequential_rf(&queries.trees, &refs.trees, &refs.taxa).unwrap();
        let dsmp = SetComparator::new(&refs.trees, &refs.taxa)
            .parallel(true)
            .average_all(&queries.trees)
            .unwrap();
        prop_assert_eq!(ds, dsmp);
    }

    #[test]
    fn sharded_and_builder_builds_are_count_identical(
        n in 5usize..24,
        r in 2usize..14,
        shards in 1usize..9,
        seed in any::<u64>(),
        coalescent in any::<bool>(),
    ) {
        // Yule/coalescent or uniform collections: every build strategy must
        // produce the same multiset of (mask, frequency) pairs.
        let refs = collection(n, r, seed, coalescent);
        let seq = Bfh::build(&refs.trees, &refs.taxa);
        let sharded = Bfh::build_sharded(&refs.trees, &refs.taxa, shards);
        let built = BfhBuilder::new()
            .parallel(seed.is_multiple_of(2))
            .shards(shards)
            .from_trees(&refs.trees, &refs.taxa)
            .unwrap();
        for other in [&sharded, &built] {
            prop_assert_eq!(seq.sum(), other.sum());
            prop_assert_eq!(seq.n_trees(), other.n_trees());
            prop_assert_eq!(seq.distinct(), other.distinct());
            for (bits, count) in seq.iter() {
                prop_assert_eq!(other.frequency(bits), count);
            }
            for (bits, count) in other.iter() {
                prop_assert_eq!(seq.frequency(bits), count);
            }
        }
    }

    #[test]
    fn comparators_agree_with_day_oracle(
        n in 5usize..20,
        r in 2usize..10,
        q in 1usize..5,
        seed in any::<u64>(),
    ) {
        // Through the unified Comparator API: BFHRF and DS against the
        // independent Day oracle, field for field (left/right, not just
        // the total).
        let refs = collection(n, r, seed, true);
        let queries = collection(n, q, seed ^ 13, false);
        let bfh = BfhBuilder::new().shards(3).from_trees(&refs.trees, &refs.taxa).unwrap();
        let bfhrf = BfhrfComparator::new(&bfh, &refs.taxa);
        let ds = SetComparator::new(&refs.trees, &refs.taxa);
        let day = DayComparator::new(&refs.trees, &refs.taxa);
        for qt in &queries.trees {
            let oracle = day.average(qt).unwrap();
            prop_assert_eq!(bfhrf.average(qt).unwrap(), oracle);
            prop_assert_eq!(ds.average(qt).unwrap(), oracle);
        }
        let batch = bfhrf.average_all(&queries.trees).unwrap();
        let oracle_batch = day.average_all(&queries.trees).unwrap();
        prop_assert_eq!(batch, oracle_batch);
    }

    #[test]
    fn scratch_extraction_matches_reference_extractor(
        n in 4usize..40,
        seed in any::<u64>(),
        coalescent in any::<bool>(),
    ) {
        // The zero-allocation arena must visit exactly the canonical masks
        // Tree::bipartitions returns, in the same order.
        let coll = collection(n, 2, seed, coalescent);
        let mut scratch = BipartitionScratch::new();
        for tree in &coll.trees {
            let reference: Vec<_> = tree
                .bipartitions(&coll.taxa)
                .into_iter()
                .map(|b| b.into_bits())
                .collect();
            let got = scratch.splits(tree, &coll.taxa);
            prop_assert_eq!(&got, &reference);
        }
    }

    #[test]
    fn hashrf_wide_ids_equal_exact_matrix(
        n in 5usize..18,
        r in 2usize..10,
        seed in any::<u64>(),
    ) {
        let coll = collection(n, r, seed, false);
        let exact = rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
        let h = HashRf::compute(&coll.trees, &coll.taxa, &HashRfConfig::default()).unwrap();
        prop_assert_eq!(h.error_rate_against(&exact), 0.0);
    }

    #[test]
    fn churned_hash_equals_fresh_build(
        n in 5usize..16,
        r in 4usize..12,
        seed in any::<u64>(),
        coalescent in any::<bool>(),
    ) {
        // Long add/remove churn: add everything, remove a prefix, re-add it,
        // remove a suffix. The survivor hash must be indistinguishable from
        // a fresh build over the surviving trees — same distinct count in
        // BOTH directions (no leaked zero-frequency entries), same sum,
        // same n_trees.
        let coll = collection(n, r, seed, coalescent);
        let cut = r / 2;
        let mut churned = Bfh::empty(coll.taxa.len());
        for t in &coll.trees {
            churned.add_tree(t, &coll.taxa);
        }
        for t in &coll.trees[..cut] {
            churned.remove_tree(t, &coll.taxa).unwrap();
        }
        for t in &coll.trees[..cut] {
            churned.add_tree(t, &coll.taxa);
        }
        for t in &coll.trees[cut..] {
            churned.remove_tree(t, &coll.taxa).unwrap();
        }
        let fresh = Bfh::build(&coll.trees[..cut], &coll.taxa);
        prop_assert_eq!(churned.n_trees(), fresh.n_trees());
        prop_assert_eq!(churned.sum(), fresh.sum());
        prop_assert_eq!(churned.distinct(), fresh.distinct());
        for (bits, count) in fresh.iter() {
            prop_assert_eq!(churned.frequency(bits), count);
        }
        for (bits, count) in churned.iter() {
            prop_assert_eq!(fresh.frequency(bits), count);
        }
    }

    #[test]
    fn incremental_hash_equals_batch(
        n in 5usize..16,
        r in 3usize..10,
        seed in any::<u64>(),
    ) {
        let coll = collection(n, r, seed, true);
        let batch = Bfh::build(&coll.trees, &coll.taxa);
        // add everything, remove the first two, re-add them
        let mut inc = Bfh::empty(coll.taxa.len());
        for t in &coll.trees {
            inc.add_tree(t, &coll.taxa);
        }
        inc.remove_tree(&coll.trees[0], &coll.taxa).unwrap();
        inc.remove_tree(&coll.trees[1], &coll.taxa).unwrap();
        inc.add_tree(&coll.trees[1], &coll.taxa);
        inc.add_tree(&coll.trees[0], &coll.taxa);
        prop_assert_eq!(batch.sum(), inc.sum());
        prop_assert_eq!(batch.n_trees(), inc.n_trees());
        prop_assert_eq!(batch.distinct(), inc.distinct());
        for (bits, count) in batch.iter() {
            prop_assert_eq!(inc.frequency(bits), count);
        }
    }

    #[test]
    fn day_is_a_metric(
        n in 5usize..20,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        s3 in any::<u64>(),
    ) {
        let a = collection(n, 1, s1, false).trees.remove(0);
        let b = collection(n, 1, s2, false).trees.remove(0);
        let c = collection(n, 1, s3, false).trees.remove(0);
        let taxa = phylo::TaxonSet::with_numbered("t", n);
        let dab = day_rf(&a, &b, &taxa);
        let dba = day_rf(&b, &a, &taxa);
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(day_rf(&a, &a, &taxa), 0);
        let dac = day_rf(&a, &c, &taxa);
        let dbc = day_rf(&b, &c, &taxa);
        prop_assert!(dac <= dab + dbc);
        prop_assert!(dab <= 2 * (n - 3));
    }

    #[test]
    fn consensus_is_valid_and_monotone(
        n in 6usize..16,
        r in 2usize..10,
        seed in any::<u64>(),
    ) {
        use bfhrf::consensus::{majority_consensus, strict_consensus};
        let coll = collection(n, r, seed, true);
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        let maj = majority_consensus(&bfh, &coll.taxa, 0.5).unwrap();
        let strict = strict_consensus(&bfh, &coll.taxa).unwrap();
        prop_assert!(maj.validate(&coll.taxa).is_ok());
        prop_assert!(strict.validate(&coll.taxa).is_ok());
        // strict splits ⊆ majority splits
        let maj_set: std::collections::HashSet<String> =
            maj.bipartitions(&coll.taxa).iter().map(|b| b.to_string()).collect();
        for bp in strict.bipartitions(&coll.taxa) {
            prop_assert!(maj_set.contains(&bp.to_string()));
        }
        // every majority split really is majority-frequent
        let half = bfh.n_trees() as f64 / 2.0;
        for bp in maj.bipartitions(&coll.taxa) {
            prop_assert!(f64::from(bfh.frequency(bp.bits())) > half);
        }
    }

    #[test]
    fn greedy_consensus_is_valid_and_refines_majority(
        n in 6usize..16,
        r in 2usize..10,
        seed in any::<u64>(),
    ) {
        use bfhrf::consensus::{greedy_consensus, majority_consensus, splits_compatible};
        let coll = collection(n, r, seed, true);
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        let greedy = greedy_consensus(&bfh, &coll.taxa).unwrap();
        prop_assert!(greedy.validate(&coll.taxa).is_ok());
        // greedy splits are pairwise compatible by construction, and the
        // assembled tree must carry each of them back out
        let splits = greedy.bipartitions(&coll.taxa);
        for (i, a) in splits.iter().enumerate() {
            for b in &splits[i + 1..] {
                prop_assert!(splits_compatible(a.bits(), b.bits(), n));
            }
        }
        let maj = majority_consensus(&bfh, &coll.taxa, 0.5).unwrap();
        let greedy_set: std::collections::HashSet<_> =
            splits.iter().map(|b| b.bits().clone()).collect();
        for bp in maj.bipartitions(&coll.taxa) {
            prop_assert!(greedy_set.contains(bp.bits()), "majority split lost");
        }
    }

    #[test]
    fn generalized_unit_weight_is_standard(
        n in 5usize..16,
        r in 2usize..8,
        seed in any::<u64>(),
    ) {
        use bfhrf::variants::{GeneralizedRf, UnitWeight};
        let refs = collection(n, r, seed, true);
        let queries = collection(n, 2, seed ^ 3, true);
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let gen = GeneralizedRf::new(&bfh, UnitWeight);
        let exact = bfhrf_all(&queries.trees, &refs.taxa, &bfh).unwrap();
        for s in &exact {
            let g = gen.average(&queries.trees[s.index], &refs.taxa);
            prop_assert!((g - s.rf.average()).abs() < 1e-9);
        }
    }

    #[test]
    fn pgm_wide_signatures_match_all_other_implementations(
        n in 5usize..20,
        r in 2usize..8,
        seed in any::<u64>(),
    ) {
        use bfhrf::pgm::PgmHasher;
        let refs = collection(n, r, seed, false);
        let h = PgmHasher::new(n, 64, seed ^ 0xfeed);
        let sigs: Vec<_> = refs
            .trees
            .iter()
            .map(|t| h.signature(t, &refs.taxa))
            .collect();
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let scores = bfhrf_all(&refs.trees, &refs.taxa, &bfh).unwrap();
        for s in &scores {
            let pgm = h.average_rf(&sigs[s.index], &sigs);
            prop_assert!((pgm - s.rf.average()).abs() < 1e-9, "tree {}", s.index);
        }
        // pairwise cross-check against Day
        for i in 0..refs.len().min(3) {
            for j in 0..refs.len().min(3) {
                prop_assert_eq!(
                    h.rf(&sigs[i], &sigs[j]),
                    day_rf(&refs.trees[i], &refs.trees[j], &refs.taxa)
                );
            }
        }
    }

    #[test]
    fn compact_hash_equals_plain(
        n in 5usize..24,
        r in 2usize..10,
        q in 1usize..5,
        seed in any::<u64>(),
    ) {
        use bfhrf::CompactBfh;
        let refs = collection(n, r, seed, true);
        let queries = collection(n, q, seed ^ 5, false);
        let plain = Bfh::build(&refs.trees, &refs.taxa);
        let compact = CompactBfh::from_bfh(&plain);
        prop_assert_eq!(plain.sum(), compact.sum());
        prop_assert_eq!(plain.distinct(), compact.distinct());
        for (bits, count) in plain.iter() {
            prop_assert_eq!(compact.frequency(bits), count);
        }
        for qt in &queries.trees {
            prop_assert_eq!(
                bfhrf::bfhrf_average(qt, &refs.taxa, &plain),
                compact.average_rf(qt, &refs.taxa)
            );
        }
        // reversibility: decompressed keys equal the originals
        let mut a: Vec<_> = compact.iter_bits().collect();
        let mut b: Vec<_> = plain.iter().map(|(k, v)| (k.clone(), v)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn support_fractions_are_consistent_with_frequencies(
        n in 6usize..20,
        r in 2usize..10,
        seed in any::<u64>(),
    ) {
        let refs = collection(n, r, seed, true);
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let focal = &refs.trees[0];
        for s in bfhrf::support::edge_support(focal, &refs.taxa, &bfh) {
            prop_assert_eq!(s.count, bfh.frequency(s.split.bits()));
            prop_assert!(s.count >= 1, "focal tree is in the collection");
            prop_assert!((s.fraction - f64::from(s.count) / r as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn frozen_probe_table_equals_live_hash(
        n in 5usize..24,
        r in 2usize..12,
        q in 1usize..5,
        seed in any::<u64>(),
        coalescent in any::<bool>(),
    ) {
        // The frozen open-addressing table is a pure read-optimization: on
        // arbitrary collections it must answer every probe — stored split,
        // absent split, full Algorithm-2 average — exactly like the live
        // hashbrown map it was frozen from.
        let refs = collection(n, r, seed, coalescent);
        let queries = collection(n, q, seed ^ 21, !coalescent);
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let frozen = bfh.freeze();
        prop_assert_eq!(frozen.sum(), bfh.sum());
        prop_assert_eq!(frozen.distinct(), bfh.distinct());
        prop_assert_eq!(frozen.n_trees(), bfh.n_trees());
        for (bits, count) in bfh.iter() {
            prop_assert_eq!(frozen.frequency(bits), count);
        }
        let mut scratch = BipartitionScratch::new();
        for qt in &queries.trees {
            let live = bfhrf::bfhrf_average(qt, &refs.taxa, &bfh);
            // batched kernel and generic SplitFrequency path both agree
            prop_assert_eq!(frozen.average_scratch(qt, &refs.taxa, &mut scratch), live);
            prop_assert_eq!(bfhrf::rf::bfhrf_average_with(qt, &refs.taxa, &frozen), live);
        }
        // through the Comparator API, sequential and parallel, against the
        // independent Day oracle
        let day = DayComparator::new(&refs.trees, &refs.taxa);
        let oracle = day.average_all(&queries.trees).unwrap();
        for par in [false, true] {
            let got = FrozenComparator::new(&frozen, &refs.taxa)
                .parallel(par)
                .average_all(&queries.trees)
                .unwrap();
            prop_assert_eq!(&got, &oracle, "parallel={}", par);
        }
    }

    #[test]
    fn frozen_is_exact_at_word_boundary_widths(
        wi in 0usize..4,
        r in 2usize..8,
        seed in any::<u64>(),
    ) {
        // n_taxa ∈ {63, 64, 65, 128}: one-below, exactly-at, one-above a
        // word boundary, and the two-word boundary — where the packed pool
        // stride and the single-word tag fast path change shape.
        let widths = [63usize, 64, 65, 128];
        let n = widths[wi];
        let refs = collection(n, r, seed, true);
        let queries = collection(n, 2, seed ^ 9, false);
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let frozen = bfh.freeze();
        for (bits, count) in bfh.iter() {
            prop_assert_eq!(frozen.frequency(bits), count);
        }
        let mut scratch = BipartitionScratch::new();
        for qt in &queries.trees {
            prop_assert_eq!(
                frozen.average_scratch(qt, &refs.taxa, &mut scratch),
                bfhrf::bfhrf_average(qt, &refs.taxa, &bfh),
                "width {}", n
            );
        }
    }

    #[test]
    fn scalar_and_simd_probe_paths_agree_on_arbitrary_collections(
        n in 5usize..24,
        r in 2usize..12,
        q in 1usize..5,
        seed in any::<u64>(),
        coalescent in any::<bool>(),
    ) {
        // The SIMD group scan and the portable SWAR fallback are two
        // implementations of one probe contract: identical answers, bit
        // for bit, on every stored split, every absent probe, and every
        // whole-batch sum — whatever engine the process default resolved
        // to.
        let refs = collection(n, r, seed, coalescent);
        let queries = collection(n, q, seed ^ 33, !coalescent);
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let frozen = bfh.freeze();
        for (bits, count) in bfh.iter() {
            prop_assert_eq!(frozen.frequency_words_with(ProbeMode::Scalar, bits.words()), count);
            prop_assert_eq!(frozen.frequency_words_with(ProbeMode::Simd, bits.words()), count);
        }
        let mut scratch = BipartitionScratch::new();
        for qt in &queries.trees {
            let batch = scratch.batch_splits(qt, &refs.taxa);
            // absent-and-present mix: query splits need not be stored
            prop_assert_eq!(
                frozen.frequency_sum_batch_with(ProbeMode::Scalar, &batch),
                frozen.frequency_sum_batch_with(ProbeMode::Simd, &batch)
            );
        }
    }

    #[test]
    fn probe_engines_agree_at_word_boundary_widths_and_min_capacity(
        wi in 0usize..9,
        seed in any::<u64>(),
        removals in 0usize..3,
    ) {
        // n ∈ {15,16,17,63,64,65,127,128,129}: both sides of every word
        // seam the pool stride and the tag-is-key fast path care about.
        // `r = 2` keeps `distinct` tiny so tables freeze at minimum
        // capacity (one control group), and removing trees first
        // exercises freezing a hash that has pruned zero-frequency
        // entries — the "deleted splits" shape the live map can hold.
        let widths = [15usize, 16, 17, 63, 64, 65, 127, 128, 129];
        let n = widths[wi];
        let refs = collection(n, 2 + removals, seed, true);
        let mut bfh = Bfh::build(&refs.trees, &refs.taxa);
        for t in refs.trees.iter().take(removals) {
            bfh.remove_tree(t, &refs.taxa).unwrap();
        }
        let frozen = bfh.freeze();
        prop_assert!(frozen.capacity() >= 2 * frozen.distinct());
        for (bits, count) in bfh.iter() {
            prop_assert_eq!(
                frozen.frequency_words_with(ProbeMode::Scalar, bits.words()),
                count,
                "scalar width {}", n
            );
            prop_assert_eq!(
                frozen.frequency_words_with(ProbeMode::Simd, bits.words()),
                count,
                "simd width {}", n
            );
        }
        let mut scratch = BipartitionScratch::new();
        for qt in &refs.trees {
            let batch = scratch.batch_splits(qt, &refs.taxa);
            prop_assert_eq!(
                frozen.frequency_sum_batch_with(ProbeMode::Scalar, &batch),
                frozen.frequency_sum_batch_with(ProbeMode::Simd, &batch),
                "width {}", n
            );
        }
    }

    #[test]
    fn vectorized_extraction_equals_scalar_extraction(
        n in 5usize..40,
        seed in any::<u64>(),
        coalescent in any::<bool>(),
    ) {
        // The word-striped fill/orient pass must hand the probe kernel the
        // exact batch the scalar pass would: same masks, same hashes, same
        // order, on arbitrary topologies.
        let coll = collection(n, 3, seed, coalescent);
        let mut vec_scratch = BipartitionScratch::new();
        let mut sca_scratch = BipartitionScratch::new();
        for t in &coll.trees {
            let (vec_masks, vec_hashes): (Vec<Vec<u64>>, Vec<u128>) = {
                let b = vec_scratch.batch_splits(t, &coll.taxa);
                ((0..b.len()).map(|i| b.mask(i).to_vec()).collect(), b.hashes().to_vec())
            };
            let sca = sca_scratch.batch_splits_scalar(t, &coll.taxa);
            prop_assert_eq!(sca.len(), vec_masks.len());
            for (i, m) in vec_masks.iter().enumerate() {
                prop_assert_eq!(sca.mask(i), &m[..]);
                prop_assert_eq!(sca.hash(i), vec_hashes[i]);
            }
        }
    }

    #[test]
    fn streaming_query_path_matches_batch(
        n in 5usize..14,
        r in 2usize..8,
        seed in any::<u64>(),
    ) {
        let refs = collection(n, r, seed, true);
        let queries = collection(n, 3, seed ^ 11, true);
        let bfh = Bfh::build(&refs.trees, &refs.taxa);
        let batch = bfhrf_all(&queries.trees, &refs.taxa, &bfh).unwrap();
        // serialize queries, stream them back through the same namespace
        let mut text = String::new();
        for t in &queries.trees {
            text.push_str(&phylo::write_newick(t, &queries.taxa));
            text.push('\n');
        }
        let mut taxa = refs.taxa.clone();
        let streamed = bfhrf::rf::bfhrf_streaming(text.as_bytes(), &mut taxa, &bfh).unwrap();
        prop_assert_eq!(batch, streamed);
    }
}

/// Acceptance fixture: on a ≥1000-tree collection the sharded build is
/// **bitwise-identical** to the sequential build — same distinct splits,
/// same frequency for every mask, in both directions, for several shard
/// counts.
/// Acceptance fixture: on a ≥1000-tree collection the frozen table answers
/// exactly like the live hash — per-split, per-query, through every derived
/// RF variant (total, average, halved, normalized), and through both
/// comparators sequential and parallel against the Day oracle.
#[test]
fn frozen_matches_live_on_thousand_tree_collection() {
    let mut spec = DatasetSpec::new("frozen-acceptance", 20, 1000, 0xf20e);
    spec.pop_scale = 0.5;
    let refs = phylo_sim::generate(&spec);
    assert!(refs.len() >= 1000);
    let queries = random_collection(20, 8, 0x51de);
    let bfh = Bfh::build_sharded(&refs.trees, &refs.taxa, 8);
    let frozen = bfh.freeze();
    assert_eq!(frozen.sum(), bfh.sum());
    assert_eq!(frozen.distinct(), bfh.distinct());
    for (bits, count) in bfh.iter() {
        assert_eq!(frozen.frequency(bits), count);
    }
    let mut scratch = BipartitionScratch::new();
    for qt in &queries.trees {
        let live = bfhrf::bfhrf_average(qt, &refs.taxa, &bfh);
        let frz = frozen.average_scratch(qt, &refs.taxa, &mut scratch);
        assert_eq!(frz, live);
        assert_eq!(frz.total(), live.total());
        assert!((frz.average() - live.average()).abs() < 1e-12);
        assert!((frz.average_halved() - live.average_halved()).abs() < 1e-12);
        assert!(
            (bfhrf::variants::normalized_average(&frz, 20)
                - bfhrf::variants::normalized_average(&live, 20))
            .abs()
                < 1e-12
        );
    }
    let oracle = DayComparator::new(&refs.trees, &refs.taxa)
        .average_all(&queries.trees)
        .unwrap();
    for par in [false, true] {
        assert_eq!(
            FrozenComparator::new(&frozen, &refs.taxa)
                .parallel(par)
                .average_all(&queries.trees)
                .unwrap(),
            oracle,
            "frozen comparator, parallel={par}"
        );
        assert_eq!(
            BfhrfComparator::new(&bfh, &refs.taxa)
                .parallel(par)
                .average_all(&queries.trees)
                .unwrap(),
            oracle,
            "live comparator, parallel={par}"
        );
    }
}

#[test]
fn sharded_build_identical_on_thousand_tree_collection() {
    let mut spec = DatasetSpec::new("acceptance", 20, 1000, 0xbf4f);
    spec.pop_scale = 0.5;
    let coll = phylo_sim::generate(&spec);
    assert!(coll.len() >= 1000);
    let seq = Bfh::build(&coll.trees, &coll.taxa);
    for shards in [2usize, 8, 64] {
        let sharded = Bfh::build_sharded(&coll.trees, &coll.taxa, shards);
        assert_eq!(seq.n_trees(), sharded.n_trees());
        assert_eq!(seq.sum(), sharded.sum());
        assert_eq!(seq.distinct(), sharded.distinct());
        for (bits, count) in seq.iter() {
            assert_eq!(sharded.frequency(bits), count, "shards={shards} at {bits}");
        }
        for (bits, count) in sharded.iter() {
            assert_eq!(seq.frequency(bits), count, "shards={shards} at {bits}");
        }
    }
}
