//! FNV-1a-64 — the same checksum family the index crate seals snapshot
//! and WAL sections with, reimplemented here because the dependency arrow
//! points the other way (`phylo-index` consumes wire records; wire cannot
//! depend back on it).

/// FNV-1a-64 offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a-64 prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a-64 over a byte stream.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// Fresh digest at the offset basis.
    pub fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    /// Fold `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The digest over everything folded so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// One-shot FNV-1a-64 of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(bytes);
    d.finish()
}

/// Word-folded FNV-1a-64: the same constants, folded eight bytes per
/// round (little-endian lanes), remainder bytes folded singly, with the
/// input length mixed into the tail.
///
/// Tree records checksum multi-kilobyte payloads on the hot decode path,
/// where the byte-serial multiply chain of classic FNV-1a costs more than
/// the rest of the decode; folding whole words cuts that 8×. This is a
/// distinct function from [`fnv1a64`] — the two never collide by design
/// (the length mix separates a word-folded stream from any byte stream) —
/// and the record format specs this variant explicitly (DESIGN.md §13).
pub fn fnv1a64_words(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(FNV_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Classic FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn word_folded_is_stable_and_length_sensitive() {
        // Pinned so the record checksum can never drift silently.
        assert_eq!(fnv1a64_words(b""), FNV_OFFSET.wrapping_mul(FNV_PRIME));
        let a = fnv1a64_words(b"12345678");
        assert_ne!(a, fnv1a64_words(b"123456780"), "length must matter");
        assert_ne!(a, fnv1a64(b"12345678"), "variants must not collide");
        // Remainder bytes fold exactly like classic FNV-1a before the tail.
        let short = fnv1a64_words(b"abc");
        let mut h = fnv1a64(b"abc");
        h ^= 3;
        assert_eq!(short, h.wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut d = Digest::new();
        d.update(b"foo");
        d.update(b"");
        d.update(b"bar");
        assert_eq!(d.finish(), fnv1a64(b"foobar"));
    }
}
