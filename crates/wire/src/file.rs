//! The `PHYLOWIR` collection container: a self-contained binary
//! alternative to a multi-line Newick file.
//!
//! Layout (integers little-endian unless marked varint; DESIGN.md §13):
//!
//! ```text
//! magic    8 B   "PHYLOWIR" — what the format sniffer keys on
//! version  u16   container version (1)
//! header section   n_taxa u32 · n_trees u64 · flags u8(=0)   + FNV-64 seal
//! taxa section     n_taxa × (len u32 · UTF-8 label bytes)     + FNV-64 seal
//! trees section    n_trees × (record_len varint · tree record) + FNV-64 seal
//! ```
//!
//! The trees-section seal covers the *framing* — the length prefixes —
//! while every record body carries its own checksum (see
//! [`crate::record`]). The split is deliberate: it is what makes
//! *lenient* binary ingest possible. A record whose framing is intact but
//! whose body is corrupt can be skipped and the read resynchronized at
//! the next length prefix, exactly like the Newick reader resynchronizing
//! at the next `;` — and the final seal still verifies, because the
//! skipped body never fed it. Framing damage (a bad length, a torn
//! section, a failed seal) is fatal and typed — there is no boundary to
//! resynchronize at.

use crate::fnv::Digest;
use crate::record::{decode_tree, encode_tree, remap_leaf_taxa};
use crate::varint::put_uvarint;
use crate::WireError;
use phylo::{
    IngestPolicy, IngestReport, RecordError, TaxaPolicy, TaxonId, TaxonSet, Tree, TreeCollection,
};
use std::io::{BufRead, Read, Write};

/// Magic bytes opening every collection container.
pub const FILE_MAGIC: [u8; 8] = *b"PHYLOWIR";
/// Container version this build writes and reads.
pub const FILE_VERSION: u16 = 1;
/// Upper bound on a single framed record — corrupt length prefixes must
/// not translate into unbounded allocations.
pub const MAX_RECORD_LEN: u64 = 1 << 28;

struct SealedWriter<'a, W: Write> {
    dst: &'a mut W,
    digest: Digest,
}

impl<'a, W: Write> SealedWriter<'a, W> {
    fn new(dst: &'a mut W) -> Self {
        SealedWriter {
            dst,
            digest: Digest::new(),
        }
    }

    fn put(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.digest.update(bytes);
        self.dst.write_all(bytes)?;
        Ok(())
    }

    /// Write bytes the seal does not cover (self-checksummed record
    /// bodies).
    fn put_unsealed(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.dst.write_all(bytes)?;
        Ok(())
    }

    fn seal(self) -> Result<(), WireError> {
        self.dst.write_all(&self.digest.finish().to_le_bytes())?;
        Ok(())
    }
}

/// Serialize `coll` as a `PHYLOWIR` container. Streams: nothing is
/// buffered beyond one encoded record.
pub fn write_collection<W: Write>(dst: &mut W, coll: &TreeCollection) -> Result<(), WireError> {
    dst.write_all(&FILE_MAGIC)?;
    dst.write_all(&FILE_VERSION.to_le_bytes())?;

    let n_taxa = u32::try_from(coll.taxa.len())
        .map_err(|_| WireError::Unencodable("more than u32::MAX taxa"))?;
    let mut header = SealedWriter::new(dst);
    header.put(&n_taxa.to_le_bytes())?;
    header.put(&(coll.trees.len() as u64).to_le_bytes())?;
    header.put(&[0u8])?;
    header.seal()?;

    let mut taxa = SealedWriter::new(dst);
    for (_, label) in coll.taxa.iter() {
        let len = u32::try_from(label.len())
            .map_err(|_| WireError::Unencodable("taxon label longer than u32::MAX"))?;
        taxa.put(&len.to_le_bytes())?;
        taxa.put(label.as_bytes())?;
    }
    taxa.seal()?;

    let mut trees = SealedWriter::new(dst);
    let mut record = Vec::new();
    let mut frame = Vec::new();
    for tree in &coll.trees {
        record.clear();
        encode_tree(tree, &mut record)?;
        frame.clear();
        put_uvarint(&mut frame, record.len() as u64);
        trees.put(&frame)?;
        trees.put_unsealed(&record)?;
    }
    trees.seal()?;
    Ok(())
}

/// [`write_collection`] into a fresh buffer.
pub fn collection_to_vec(coll: &TreeCollection) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    write_collection(&mut out, coll)?;
    Ok(out)
}

/// Streaming reader over a `PHYLOWIR` container, API-shaped like
/// [`phylo::NewickReader`]: construct, pull trees one at a time, collect
/// an [`IngestReport`] of skipped records under a lenient policy.
///
/// The embedded taxa table is resolved against the caller's [`TaxonSet`]
/// at open time under the caller's [`TaxaPolicy`] — `Grow` interns unseen
/// labels, `Require` rejects them — and every record's file-local ids are
/// remapped through that resolution, so a binary query file read against
/// a reference namespace behaves exactly like its Newick twin.
pub struct BinReader<R: BufRead> {
    src: R,
    policy: IngestPolicy,
    report: IngestReport,
    /// File-local taxon id → caller-namespace id.
    map: Vec<TaxonId>,
    /// Width of the file's own namespace (records validate against this).
    file_taxa: usize,
    /// Trees the header still owes us.
    remaining: u64,
    /// Absolute byte offset of the next unread stream byte.
    offset: usize,
    /// Records pulled so far (accepted + skipped), for error reports.
    record_idx: usize,
    /// Running digest of the trees section *framing* (length prefixes),
    /// checked against the section seal at the end. Record bodies carry
    /// their own checksums and stay outside this seal so lenient reads
    /// can skip a corrupt body without poisoning it.
    trees_digest: Digest,
    /// Set once the trees section seal has been verified.
    done: bool,
}

impl<R: BufRead> BinReader<R> {
    /// Open a container: verify magic and version, read the sealed header
    /// and taxa sections, and resolve the embedded labels against `taxa`
    /// under `taxa_policy`.
    pub fn new(
        mut src: R,
        taxa: &mut TaxonSet,
        taxa_policy: TaxaPolicy,
        policy: IngestPolicy,
    ) -> Result<Self, WireError> {
        let mut offset = 0usize;
        let mut magic = [0u8; 8];
        read_exact_at(&mut src, &mut magic, &mut offset, "container magic")?;
        if magic != FILE_MAGIC {
            return Err(WireError::NotWire);
        }
        let mut ver = [0u8; 2];
        read_exact_at(&mut src, &mut ver, &mut offset, "container version")?;
        let version = u16::from_le_bytes(ver);
        if version != FILE_VERSION {
            return Err(WireError::Version { found: version });
        }

        let header_at = offset;
        let mut header = [0u8; 13];
        read_exact_at(&mut src, &mut header, &mut offset, "container header")?;
        verify_seal(&mut src, &header, &mut offset, header_at, "header")?;
        let n_taxa = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let n_trees = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        if header[12] != 0 {
            return Err(WireError::corrupt(
                header_at + 12,
                format!("unknown container flags 0x{:02x}", header[12]),
            ));
        }

        let taxa_at = offset;
        let mut taxa_digest = Digest::new();
        let mut map = Vec::with_capacity(n_taxa);
        let mut label = Vec::new();
        for i in 0..n_taxa {
            let mut len_raw = [0u8; 4];
            read_exact_at(&mut src, &mut len_raw, &mut offset, "taxon label length")?;
            taxa_digest.update(&len_raw);
            let len = u32::from_le_bytes(len_raw) as usize;
            if len > MAX_RECORD_LEN as usize {
                return Err(WireError::corrupt(
                    offset - 4,
                    format!("taxon label length {len} out of range"),
                ));
            }
            label.resize(len, 0);
            read_exact_at(&mut src, &mut label, &mut offset, "taxon label")?;
            taxa_digest.update(&label);
            let text = std::str::from_utf8(&label).map_err(|_| {
                WireError::corrupt(offset - len, format!("taxon {i} label is not UTF-8"))
            })?;
            let id = match taxa_policy {
                TaxaPolicy::Grow => taxa.intern(text),
                TaxaPolicy::Require => taxa.require(text).map_err(|_| {
                    WireError::corrupt(
                        offset - len,
                        format!("taxon {text:?} not in the reference namespace"),
                    )
                })?,
            };
            map.push(id);
        }
        {
            let mut seal = [0u8; 8];
            read_exact_at(&mut src, &mut seal, &mut offset, "taxa section seal")?;
            if u64::from_le_bytes(seal) != taxa_digest.finish() {
                return Err(WireError::corrupt(taxa_at, "taxa section seal mismatch"));
            }
        }

        Ok(BinReader {
            src,
            policy,
            report: IngestReport::default(),
            map,
            file_taxa: n_taxa,
            remaining: n_trees,
            offset,
            record_idx: 0,
            trees_digest: Digest::new(),
            done: false,
        })
    }

    /// Width of the container's embedded namespace.
    pub fn file_taxa(&self) -> usize {
        self.file_taxa
    }

    /// Trees the header still promises.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The running skip report.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Consume the reader, yielding the final report.
    pub fn into_report(self) -> IngestReport {
        self.report
    }

    /// Pull the next tree. `Ok(None)` once all records are read *and* the
    /// trees section seal has verified. Under a lenient policy, records
    /// whose framing is intact but whose body fails to decode are skipped
    /// into the report (up to the error budget); framing damage is fatal.
    pub fn next_tree(&mut self) -> Result<Option<Tree>, WireError> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.remaining == 0 {
                let mut seal = [0u8; 8];
                read_exact_at(
                    &mut self.src,
                    &mut seal,
                    &mut self.offset,
                    "trees section seal",
                )?;
                if u64::from_le_bytes(seal) != self.trees_digest.finish() {
                    return Err(WireError::corrupt(
                        self.offset - 8,
                        "trees section seal mismatch",
                    ));
                }
                let mut probe = [0u8; 1];
                if self.src.read(&mut probe)? != 0 {
                    return Err(WireError::corrupt(
                        self.offset,
                        "trailing bytes after trees section",
                    ));
                }
                self.done = true;
                return Ok(None);
            }

            let record_at = self.offset;
            let len = self.read_frame_varint()?;
            if len > MAX_RECORD_LEN {
                return Err(WireError::corrupt(
                    record_at,
                    format!("record length {len} out of range"),
                ));
            }
            let body_at = self.offset;
            let mut record = vec![0u8; len as usize];
            read_exact_at(&mut self.src, &mut record, &mut self.offset, "tree record")?;
            self.remaining -= 1;
            let idx = self.record_idx;
            self.record_idx += 1;

            match decode_tree(&record, self.file_taxa) {
                Ok((mut tree, used)) if used == record.len() => {
                    remap_leaf_taxa(&mut tree, &self.map);
                    self.report.accepted += 1;
                    return Ok(Some(tree));
                }
                Ok((_, used)) => {
                    let trailing = WireError::corrupt(
                        used,
                        format!("{} trailing bytes after record", record.len() - used),
                    );
                    self.skip_or_fail(idx, record_at, body_at, trailing)?;
                }
                Err(e) => self.skip_or_fail(idx, record_at, body_at, e)?,
            }
        }
    }

    /// Drain every remaining tree into `out`.
    pub fn read_to_end(&mut self, out: &mut Vec<Tree>) -> Result<(), WireError> {
        while let Some(tree) = self.next_tree()? {
            out.push(tree);
        }
        Ok(())
    }

    fn skip_or_fail(
        &mut self,
        idx: usize,
        record_at: usize,
        body_at: usize,
        err: WireError,
    ) -> Result<(), WireError> {
        let err = err.at_base(body_at);
        match self.policy {
            IngestPolicy::Strict => Err(err),
            IngestPolicy::Lenient { max_errors } => {
                self.report.skipped.push(RecordError {
                    record: idx,
                    line: 0,
                    byte: record_at,
                    error: err.into_phylo(),
                });
                if self.report.skipped.len() > max_errors {
                    return Err(WireError::ErrorLimit {
                        errors: self.report.skipped.len(),
                        limit: max_errors,
                    });
                }
                Ok(())
            }
        }
    }

    /// Read a varint byte-by-byte off the stream (framing lengths live
    /// outside any buffered record).
    fn read_frame_varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            read_exact_at(&mut self.src, &mut byte, &mut self.offset, "record length")?;
            self.trees_digest.update(&byte);
            let b = byte[0];
            if shift > 63 || (shift == 63 && b > 1) {
                return Err(WireError::corrupt(
                    self.offset - 1,
                    "record length varint overflow",
                ));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

fn read_exact_at<R: Read>(
    src: &mut R,
    buf: &mut [u8],
    offset: &mut usize,
    what: &'static str,
) -> Result<(), WireError> {
    match src.read_exact(buf) {
        Ok(()) => {
            *offset += buf.len();
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(WireError::Truncated {
            offset: *offset,
            what,
        }),
        Err(e) => Err(WireError::Io(e)),
    }
}

fn verify_seal<R: Read>(
    src: &mut R,
    payload: &[u8],
    offset: &mut usize,
    section_at: usize,
    section: &'static str,
) -> Result<(), WireError> {
    let mut seal = [0u8; 8];
    read_exact_at(src, &mut seal, offset, "section seal")?;
    if u64::from_le_bytes(seal) != crate::fnv::fnv1a64(payload) {
        return Err(WireError::corrupt(
            section_at,
            format!("{section} section seal mismatch"),
        ));
    }
    Ok(())
}
