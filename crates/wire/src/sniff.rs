//! Format sniffing: every ingest entry point accepts *either* a Newick
//! text stream or a `PHYLOWIR` container, keyed on the first eight bytes.
//! The fallback path hands the exact original byte stream to the Newick
//! reader, so text ingest stays byte-identical to a world without this
//! crate — the binary format is detected, never assumed.

use crate::file::{BinReader, FILE_MAGIC};
use crate::WireError;
use phylo::{
    IngestPolicy, IngestReport, NewickReader, PhyloError, TaxaPolicy, TaxonSet, Tree,
    TreeCollection,
};
use std::io::{BufRead, Chain, Cursor, Read};

/// Which encoding a sniffed stream turned out to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// Newick text.
    Newick,
    /// `phylo-wire` binary.
    Bin,
}

impl WireFormat {
    /// Parse a user-facing format name (`--format`, proto `encoding`).
    pub fn parse(s: &str) -> Option<WireFormat> {
        match s {
            "newick" => Some(WireFormat::Newick),
            "bin" => Some(WireFormat::Bin),
            _ => None,
        }
    }

    /// The user-facing name (`newick` / `bin`).
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Newick => "newick",
            WireFormat::Bin => "bin",
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Do these leading bytes open a `PHYLOWIR` container?
pub fn sniff_is_binary(head: &[u8]) -> bool {
    head.len() >= FILE_MAGIC.len() && head[..FILE_MAGIC.len()] == FILE_MAGIC
}

type Rechained<R> = Chain<Cursor<Vec<u8>>, R>;

enum Inner<R: BufRead> {
    Newick(NewickReader<Rechained<R>>),
    Bin(BinReader<Rechained<R>>),
}

/// A reader over either encoding with the [`NewickReader`] pull API:
/// construct once, call [`next_tree`](Self::next_tree) until `Ok(None)`,
/// collect the skip report. Binary decode failures surface as
/// [`PhyloError::Parse`] (prefixed `wire:`) so callers keep one error
/// path.
pub struct SniffedReader<R: BufRead> {
    inner: Inner<R>,
    format: WireFormat,
}

impl<R: BufRead> SniffedReader<R> {
    /// Sniff `src` and open the matching reader. For a binary stream the
    /// embedded taxa table is resolved against `taxa` under `taxa_policy`
    /// immediately; a Newick stream resolves labels record by record as
    /// before.
    pub fn open(
        mut src: R,
        taxa: &mut TaxonSet,
        taxa_policy: TaxaPolicy,
        policy: IngestPolicy,
    ) -> Result<Self, PhyloError> {
        // Pull up to 8 bytes so the magic check works even on readers
        // whose fill_buf returns short slices, then chain them back in
        // front of the untouched remainder.
        let mut head = Vec::with_capacity(FILE_MAGIC.len());
        while head.len() < FILE_MAGIC.len() {
            let mut byte = [0u8; 1];
            match src.read(&mut byte) {
                Ok(0) => break,
                Ok(_) => head.push(byte[0]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e).into_phylo()),
            }
        }
        let binary = sniff_is_binary(&head);
        let rechained = Cursor::new(head).chain(src);
        if binary {
            let reader = BinReader::new(rechained, taxa, taxa_policy, policy)
                .map_err(WireError::into_phylo)?;
            Ok(SniffedReader {
                inner: Inner::Bin(reader),
                format: WireFormat::Bin,
            })
        } else {
            Ok(SniffedReader {
                inner: Inner::Newick(NewickReader::new(rechained, taxa_policy, policy)),
                format: WireFormat::Newick,
            })
        }
    }

    /// Which encoding the stream carries.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// Pull the next tree. `taxa` is consulted by the Newick path (the
    /// binary path resolved its namespace at open).
    pub fn next_tree(&mut self, taxa: &mut TaxonSet) -> Result<Option<Tree>, PhyloError> {
        match &mut self.inner {
            Inner::Newick(r) => r.next_tree(taxa),
            Inner::Bin(r) => r.next_tree().map_err(WireError::into_phylo),
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &IngestReport {
        match &self.inner {
            Inner::Newick(r) => r.report(),
            Inner::Bin(r) => r.report(),
        }
    }

    /// Consume the reader, yielding the final report.
    pub fn into_report(self) -> IngestReport {
        match self.inner {
            Inner::Newick(r) => r.into_report(),
            Inner::Bin(r) => r.into_report(),
        }
    }
}

/// Sniffing twin of [`phylo::ingest::read_collection`]: grow a fresh
/// namespace from either encoding.
pub fn read_collection_sniffed<R: BufRead>(
    src: R,
    policy: IngestPolicy,
) -> Result<(TreeCollection, IngestReport), PhyloError> {
    let mut taxa = TaxonSet::new();
    let mut stream = SniffedReader::open(src, &mut taxa, TaxaPolicy::Grow, policy)?;
    let mut trees = Vec::new();
    while let Some(t) = stream.next_tree(&mut taxa)? {
        trees.push(t);
    }
    Ok((TreeCollection { taxa, trees }, stream.into_report()))
}

/// Sniffing twin of [`phylo::ingest::read_trees`]: read either encoding
/// against an existing namespace.
pub fn read_trees_sniffed<R: BufRead>(
    src: R,
    taxa: &mut TaxonSet,
    taxa_policy: TaxaPolicy,
    policy: IngestPolicy,
) -> Result<(Vec<Tree>, IngestReport), PhyloError> {
    let mut stream = SniffedReader::open(src, taxa, taxa_policy, policy)?;
    let mut trees = Vec::new();
    while let Some(t) = stream.next_tree(taxa)? {
        trees.push(t);
    }
    Ok((trees, stream.into_report()))
}
