//! Minimal standard-alphabet base64 (RFC 4648, padded). The workspace
//! builds hermetically, so this ~80-line codec stands in for the `base64`
//! crate; proto v2 uses it to carry binary tree records inside JSON
//! string fields.

use crate::WireError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode `data` as padded standard base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn sextet(c: u8, offset: usize) -> Result<u32, WireError> {
    match c {
        b'A'..=b'Z' => Ok(u32::from(c - b'A')),
        b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(WireError::corrupt(
            offset,
            format!("invalid base64 byte 0x{c:02x}"),
        )),
    }
}

/// Decode padded standard base64. Rejects bad lengths, alphabet
/// violations, and misplaced padding with typed errors.
pub fn decode(s: &str) -> Result<Vec<u8>, WireError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(WireError::corrupt(
            bytes.len(),
            "base64 length not a multiple of 4",
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks_exact(4).enumerate() {
        let base = i * 4;
        let last = base + 4 == bytes.len();
        let pads = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pads > 2 || (pads > 0 && !last) {
            return Err(WireError::corrupt(base, "misplaced base64 padding"));
        }
        let mut n = 0u32;
        for (j, &c) in quad.iter().take(4 - pads).enumerate() {
            if c == b'=' {
                return Err(WireError::corrupt(base + j, "misplaced base64 padding"));
            }
            n = (n << 6) | sextet(c, base + j)?;
        }
        n <<= 6 * pads as u32;
        out.push((n >> 16) as u8);
        if pads < 2 {
            out.push((n >> 8) as u8);
        }
        if pads < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        for (plain, enc) in [
            (&b""[..], ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain), enc);
            assert_eq!(decode(enc).unwrap(), plain);
        }
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in ["Zg=", "Z!==", "====", "Zg==Zg==x", "Z===", "=g==", "Zm=v"] {
            assert!(decode(bad).is_err(), "{bad:?} should fail");
        }
        // Padding in a non-final quad.
        assert!(decode("Zg==Zm9v").is_err());
    }
}
