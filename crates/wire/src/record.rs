//! The tree record codec: one tree, one self-checksummed byte record.
//!
//! Layout (all integers LEB128 varints unless noted; see DESIGN.md §13):
//!
//! ```text
//! tag        u8      0xB1 (record format v1)
//! n_nodes    varint  total nodes in the tree (≥ 1)
//! n_leaves   varint  taxon-bearing leaves (≥ 1, ≤ n_nodes)
//! flags      u8      bit0 = edge lengths present; other bits reserved (0)
//! topology   ⌈2·n_nodes/8⌉ bytes — balanced parentheses, LSB-first:
//!                    1 = enter a node (preorder), 0 = leave it; a leaf is
//!                    an enter bit immediately followed by its leave bit
//! leaf taxa  n_leaves varints — TaxonId of each leaf, preorder order
//! [lengths]  only if flags bit0:
//!   presence ⌈n_nodes/8⌉ bytes — bit i set ⇔ preorder node i has a length
//!   values   one f64 (LE) per set presence bit, preorder order
//! checksum   u32 LE — word-folded FNV-1a-64 ([`crate::fnv1a64_words`])
//!                    over tag..payload, xor-folded to 32 bits
//!                    (`(h >> 32) ^ h`). The xor-fold is load-bearing:
//!                    plain truncation would leave the high lanes of each
//!                    8-byte chunk undetected, because multiplication mod
//!                    2^64 only carries upward
//! ```
//!
//! The topology stream is the succinct balanced-parentheses encoding: `2n`
//! bits carry the full shape, and a single forward pass rebuilds the arena
//! with an explicit stack — the decoder never recurses, so adversarial
//! 10M-node "trees" cost an allocation check, not a stack overflow.

use crate::fnv::fnv1a64_words;
use crate::varint::{put_uvarint, take_uvarint};
use crate::WireError;
use phylo::{NodeId, TaxonId, Tree};

/// First byte of every tree record; doubles as the record format version.
pub const RECORD_TAG: u8 = 0xB1;
/// Flag bit: the record carries an edge-length section.
pub const FLAG_LENGTHS: u8 = 0x01;

/// Decoders refuse node counts beyond this (2^32 − 1 matches the arena's
/// `u32` node ids); combined with the bits-must-fit check it bounds every
/// allocation by the input length.
const MAX_NODES: u64 = u32::MAX as u64;

/// The record checksum: word-folded FNV-1a-64 xor-folded to 32 bits.
/// See the module docs for why the xor-fold (not truncation) is required.
#[inline]
fn record_sum(bytes: &[u8]) -> u32 {
    let h = fnv1a64_words(bytes);
    ((h >> 32) as u32) ^ (h as u32)
}

struct BitWriter {
    bytes: Vec<u8>,
    bit: usize,
}

impl BitWriter {
    fn with_bits(n: usize) -> Self {
        BitWriter {
            bytes: vec![0u8; n.div_ceil(8)],
            bit: 0,
        }
    }

    #[inline]
    fn push(&mut self, one: bool) {
        if one {
            self.bytes[self.bit / 8] |= 1 << (self.bit % 8);
        }
        self.bit += 1;
    }
}

#[inline]
fn get_bit(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] & (1 << (i % 8)) != 0
}

/// Append the record encoding of `tree` to `out`.
///
/// Fails with [`WireError::Unencodable`] on shapes the format (like the
/// Newick writer) cannot represent: an empty tree, a childless node
/// without a taxon, or a taxon label on an internal node.
pub fn encode_tree(tree: &Tree, out: &mut Vec<u8>) -> Result<(), WireError> {
    let root = tree.root().ok_or(WireError::Unencodable("empty tree"))?;
    // Pass 1: preorder walk for counts and validation.
    let mut order: Vec<NodeId> = Vec::with_capacity(tree.num_nodes());
    let mut stack = vec![root];
    let mut n_leaves = 0usize;
    let mut has_lengths = false;
    while let Some(node) = stack.pop() {
        order.push(node);
        if tree.length(node).is_some() {
            has_lengths = true;
        }
        let kids = tree.children(node);
        if kids.is_empty() {
            if tree.taxon(node).is_none() {
                return Err(WireError::Unencodable("leaf without a taxon"));
            }
            n_leaves += 1;
        } else {
            if tree.taxon(node).is_some() {
                return Err(WireError::Unencodable("taxon on an internal node"));
            }
            stack.extend(kids.iter().rev());
        }
    }
    let n_nodes = order.len();

    let start = out.len();
    out.push(RECORD_TAG);
    put_uvarint(out, n_nodes as u64);
    put_uvarint(out, n_leaves as u64);
    out.push(if has_lengths { FLAG_LENGTHS } else { 0 });

    // Pass 2: balanced-parens bits via an explicit enter/exit stack.
    let mut topo = BitWriter::with_bits(2 * n_nodes);
    enum Ev {
        Enter(NodeId),
        Exit,
    }
    let mut events = vec![Ev::Enter(root)];
    while let Some(ev) = events.pop() {
        match ev {
            Ev::Enter(node) => {
                topo.push(true);
                events.push(Ev::Exit);
                for &kid in tree.children(node).iter().rev() {
                    events.push(Ev::Enter(kid));
                }
            }
            Ev::Exit => topo.push(false),
        }
    }
    debug_assert_eq!(topo.bit, 2 * n_nodes);
    out.extend_from_slice(&topo.bytes);

    for &node in &order {
        if tree.children(node).is_empty() {
            // Validated Some above.
            let id = tree.taxon(node).expect("leaf taxon checked in pass 1");
            put_uvarint(out, u64::from(id.0));
        }
    }

    if has_lengths {
        let mut presence = BitWriter::with_bits(n_nodes);
        for &node in &order {
            presence.push(tree.length(node).is_some());
        }
        out.extend_from_slice(&presence.bytes);
        for &node in &order {
            if let Some(len) = tree.length(node) {
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
    }

    out.extend_from_slice(&record_sum(&out[start..]).to_le_bytes());
    Ok(())
}

/// [`encode_tree`] into a fresh buffer.
pub fn encode_tree_vec(tree: &Tree) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    encode_tree(tree, &mut out)?;
    Ok(out)
}

/// Decode one tree record from the front of `buf`, validating every taxon
/// id against the `n_taxa`-wide namespace. Returns the tree and the number
/// of bytes consumed (the record is self-delimiting).
///
/// Never panics on corrupt input: every structural violation — bad tag,
/// unbalanced parentheses, out-of-range or duplicate taxa, non-canonical
/// padding bits, checksum mismatch, truncation — is a typed [`WireError`].
pub fn decode_tree(buf: &[u8], n_taxa: usize) -> Result<(Tree, usize), WireError> {
    let mut pos = 0usize;
    let Some(&tag) = buf.first() else {
        return Err(WireError::Truncated {
            offset: 0,
            what: "record tag",
        });
    };
    if tag != RECORD_TAG {
        return Err(WireError::corrupt(
            0,
            format!("bad record tag 0x{tag:02x} (expected 0x{RECORD_TAG:02x})"),
        ));
    }
    pos += 1;

    let n_nodes = take_uvarint(buf, &mut pos, "node count")?;
    if n_nodes == 0 || n_nodes > MAX_NODES {
        return Err(WireError::corrupt(
            pos,
            format!("node count {n_nodes} out of range"),
        ));
    }
    // Cheap pre-allocation bound: the topology alone needs 2 bits/node, so
    // a count that cannot fit in the remaining bytes is corrupt, not an
    // invitation to allocate.
    let n_nodes = n_nodes as usize;
    if n_nodes.div_ceil(4) > buf.len() - pos {
        return Err(WireError::corrupt(
            pos,
            format!("node count {n_nodes} exceeds remaining input"),
        ));
    }
    let n_leaves = take_uvarint(buf, &mut pos, "leaf count")? as usize;
    if n_leaves == 0 || n_leaves > n_nodes {
        return Err(WireError::corrupt(
            pos,
            format!("leaf count {n_leaves} out of range"),
        ));
    }
    let Some(&flags) = buf.get(pos) else {
        return Err(WireError::Truncated {
            offset: pos,
            what: "flags",
        });
    };
    if flags & !FLAG_LENGTHS != 0 {
        return Err(WireError::corrupt(
            pos,
            format!("unknown flag bits 0x{flags:02x}"),
        ));
    }
    pos += 1;

    // Topology: 2·n_nodes balanced-parens bits.
    let topo_bytes = (2 * n_nodes).div_ceil(8);
    let Some(topo) = buf.get(pos..pos + topo_bytes) else {
        return Err(WireError::Truncated {
            offset: buf.len(),
            what: "topology bits",
        });
    };
    let topo_at = pos;
    pos += topo_bytes;
    // Canonical form: padding bits past 2·n_nodes must be zero.
    for i in 2 * n_nodes..topo_bytes * 8 {
        if get_bit(topo, i) {
            return Err(WireError::corrupt(topo_at, "nonzero topology padding bits"));
        }
    }

    let mut tree = Tree::with_node_capacity(n_nodes);
    let mut stack: Vec<NodeId> = Vec::new();
    let mut order: Vec<NodeId> = Vec::with_capacity(n_nodes);
    let mut leaves: Vec<NodeId> = Vec::with_capacity(n_leaves);
    for i in 0..2 * n_nodes {
        if get_bit(topo, i) {
            let node = match stack.last() {
                Some(&parent) => tree.add_child(parent),
                None => {
                    if tree.root().is_some() {
                        return Err(WireError::corrupt(topo_at, "topology encodes a forest"));
                    }
                    tree.add_root()
                }
            };
            order.push(node);
            stack.push(node);
        } else {
            let Some(node) = stack.pop() else {
                return Err(WireError::corrupt(topo_at, "unbalanced topology bits"));
            };
            if tree.children(node).is_empty() {
                leaves.push(node);
            }
        }
    }
    if !stack.is_empty() {
        return Err(WireError::corrupt(topo_at, "unbalanced topology bits"));
    }
    if order.len() != n_nodes {
        return Err(WireError::corrupt(
            topo_at,
            format!(
                "topology holds {} nodes, header says {n_nodes}",
                order.len()
            ),
        ));
    }
    if leaves.len() != n_leaves {
        return Err(WireError::corrupt(
            topo_at,
            format!(
                "topology holds {} leaves, header says {n_leaves}",
                leaves.len()
            ),
        ));
    }

    // Leaf taxa, preorder. Duplicate detection doubles as the
    // more-leaves-than-taxa guard.
    let mut seen = vec![false; n_taxa];
    for &leaf in &leaves {
        let at = pos;
        let id = take_uvarint(buf, &mut pos, "leaf taxon id")?;
        if id >= n_taxa as u64 {
            return Err(WireError::corrupt(
                at,
                format!("taxon id {id} out of range (namespace holds {n_taxa})"),
            ));
        }
        if std::mem::replace(&mut seen[id as usize], true) {
            return Err(WireError::corrupt(at, format!("duplicate taxon id {id}")));
        }
        tree.set_taxon(leaf, Some(TaxonId(id as u32)));
    }

    if flags & FLAG_LENGTHS != 0 {
        let map_bytes = n_nodes.div_ceil(8);
        let Some(presence) = buf.get(pos..pos + map_bytes) else {
            return Err(WireError::Truncated {
                offset: buf.len(),
                what: "length presence bitmap",
            });
        };
        let presence_at = pos;
        pos += map_bytes;
        for i in n_nodes..map_bytes * 8 {
            if get_bit(presence, i) {
                return Err(WireError::corrupt(
                    presence_at,
                    "nonzero presence padding bits",
                ));
            }
        }
        for (i, &node) in order.iter().enumerate() {
            if get_bit(presence, i) {
                let Some(raw) = buf.get(pos..pos + 8) else {
                    return Err(WireError::Truncated {
                        offset: buf.len(),
                        what: "edge length",
                    });
                };
                let v = f64::from_le_bytes(raw.try_into().expect("8-byte slice"));
                if !v.is_finite() {
                    return Err(WireError::corrupt(pos, "non-finite edge length"));
                }
                tree.set_length(node, Some(v));
                pos += 8;
            }
        }
    }

    let Some(raw) = buf.get(pos..pos + 4) else {
        return Err(WireError::Truncated {
            offset: buf.len(),
            what: "record checksum",
        });
    };
    let stored = u32::from_le_bytes(raw.try_into().expect("4-byte slice"));
    if stored != record_sum(&buf[..pos]) {
        return Err(WireError::corrupt(pos, "record checksum mismatch"));
    }
    pos += 4;
    Ok((tree, pos))
}

/// [`decode_tree`] that additionally requires the record to span the whole
/// buffer — the right call for WAL payloads and wire frames, where one
/// payload is exactly one record.
pub fn decode_tree_exact(buf: &[u8], n_taxa: usize) -> Result<Tree, WireError> {
    let (tree, used) = decode_tree(buf, n_taxa)?;
    if used != buf.len() {
        return Err(WireError::corrupt(
            used,
            format!("{} trailing bytes after record", buf.len() - used),
        ));
    }
    Ok(tree)
}

/// Rewrite every leaf's taxon id through `map` (file-local id → caller
/// id). Used when a record was decoded against an embedded taxa table
/// whose interning order differs from the caller's namespace.
pub fn remap_leaf_taxa(tree: &mut Tree, map: &[TaxonId]) {
    for node in tree.postorder() {
        if let Some(id) = tree.taxon(node) {
            tree.set_taxon(node, Some(map[id.index()]));
        }
    }
}
