//! `phylo-wire`: the succinct binary tree encoding.
//!
//! Newick is the lingua franca of phylogenetics, but it is a *text* format:
//! every ingest, WAL replay, and served query pays a lexer, a label hash
//! per leaf, and float formatting on the way out. This crate defines the
//! binary alternative the rest of the workspace negotiates — never
//! assumes — whenever both sides already share a taxon namespace:
//!
//! * a **tree record** ([`encode_tree`]/[`decode_tree`]): topology as a
//!   balanced-parentheses bitstream (one open bit per node entry, one
//!   close bit per exit, so a tree of `n` nodes is exactly `2n` bits),
//!   leaf taxa as LEB128 varints of their [`phylo::TaxonId`]s in preorder,
//!   optional edge lengths behind a presence bitmap, the whole record
//!   sealed by a truncated FNV-1a checksum. Decode builds straight into
//!   the [`phylo::Tree`] arena — no lexer, no label interning, no float
//!   parsing — which is what makes the parse-vs-decode ablation in
//!   `query_bench` a fair fight;
//! * a **collection container** ([`write_collection`]/[`BinReader`]):
//!   `PHYLOWIR` magic, version, an FNV-sealed header and taxa table, then
//!   length-prefixed tree records under a section seal. The embedded taxa
//!   table makes a `.phb` file self-contained the way a Newick file is;
//! * a **format sniffer** ([`read_collection_sniffed`] and friends): peeks
//!   the magic and falls back to the byte-identical Newick path, so every
//!   CLI entry point accepts either format without being told;
//! * the **base64 codec** ([`b64`]) proto v2 uses to carry binary records
//!   inside JSON frames when a session negotiates `encoding: "bin"`.
//!
//! Everything decode-side returns typed [`WireError`]s — corrupt input,
//! including adversarially corrupt input, must never panic. The corruption
//! sweeps in this crate's tests flip and truncate real records byte by
//! byte to hold that line.
//!
//! Format spec: DESIGN.md §13.

mod b64_impl;
mod error;
mod file;
mod fnv;
mod record;
mod sniff;
mod varint;

pub use error::WireError;
pub use file::{
    collection_to_vec, write_collection, BinReader, FILE_MAGIC, FILE_VERSION, MAX_RECORD_LEN,
};
pub use fnv::{fnv1a64, fnv1a64_words, Digest};
pub use record::{
    decode_tree, decode_tree_exact, encode_tree, encode_tree_vec, remap_leaf_taxa, FLAG_LENGTHS,
    RECORD_TAG,
};
pub use sniff::{
    read_collection_sniffed, read_trees_sniffed, sniff_is_binary, SniffedReader, WireFormat,
};
pub use varint::{put_uvarint, take_uvarint};

/// Base64 (standard alphabet, padded) for carrying binary records in JSON
/// frames.
pub mod b64 {
    pub use crate::b64_impl::{decode, encode};
}
