//! LEB128 unsigned varints. Taxon ids and record/node counts are small in
//! practice (a 10k-taxon namespace fits every id in two bytes), so the
//! variable-length form is what makes binary records beat Newick on size
//! as well as speed.

use crate::WireError;

/// Append `v` to `out` as an LEB128 varint (7 payload bits per byte,
/// continuation in the high bit; 1–10 bytes).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint from `buf` at `*pos`, advancing `*pos` past it.
///
/// Rejects truncation and overflow (more than 10 bytes, or a tenth byte
/// carrying bits beyond the 64th) with typed errors.
pub fn take_uvarint(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let start = *pos;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(WireError::Truncated { offset: *pos, what });
        };
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(WireError::corrupt(
                start,
                format!("varint overflow in {what}"),
            ));
        }
        if shift > 63 {
            return Err(WireError::corrupt(
                start,
                format!("varint too long in {what}"),
            ));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(take_uvarint(&buf, &mut pos, "t").unwrap(), v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn round_trips_across_width_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            round_trip(v);
        }
    }

    #[test]
    fn truncated_varint_is_typed() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(matches!(
                take_uvarint(&buf[..cut], &mut pos, "t"),
                Err(WireError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn overlong_and_overflowing_varints_are_rejected() {
        // Eleven continuation bytes: longer than any u64 needs.
        let long = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            take_uvarint(&long, &mut pos, "t"),
            Err(WireError::Corrupt { .. })
        ));
        // Tenth byte sets a bit past the 64th.
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert!(matches!(
            take_uvarint(&over, &mut pos, "t"),
            Err(WireError::Corrupt { .. })
        ));
    }
}
