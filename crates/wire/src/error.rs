//! Typed decode/encode failures. The contract mirrors `phylo-index`:
//! corrupt bytes surface as errors, never as panics or silent garbage.

use std::fmt;

/// Everything that can go wrong encoding or decoding wire bytes.
#[derive(Debug)]
pub enum WireError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// The stream ended before a complete field; `offset` is the byte
    /// position (absolute where the caller tracks one, record-relative
    /// otherwise) and `what` names the field that was being read.
    Truncated {
        /// Byte position where input ran out.
        offset: usize,
        /// The field that was incomplete.
        what: &'static str,
    },
    /// The bytes are structurally invalid: bad tag, unbalanced topology,
    /// out-of-range taxon, failed checksum, …
    Corrupt {
        /// Byte position of the rejected field.
        offset: usize,
        /// Human-readable description.
        detail: String,
    },
    /// The container's magic bytes are not `PHYLOWIR`.
    NotWire,
    /// A container version this build does not speak.
    Version {
        /// The version found in the header.
        found: u16,
    },
    /// The tree cannot be represented in the record format (no root, a
    /// leaf without a taxon, or a taxon on an internal node — the same
    /// shapes the Newick writer cannot round-trip either).
    Unencodable(&'static str),
    /// Lenient ingestion gave up: more records failed than the error
    /// budget allows.
    ErrorLimit {
        /// Number of malformed records seen so far.
        errors: usize,
        /// The configured maximum.
        limit: usize,
    },
}

impl WireError {
    /// Construct a corruption error at `offset`.
    pub fn corrupt(offset: usize, detail: impl Into<String>) -> Self {
        WireError::Corrupt {
            offset,
            detail: detail.into(),
        }
    }

    /// Re-base a record-relative offset onto an absolute stream position.
    pub fn at_base(self, base: usize) -> Self {
        match self {
            WireError::Truncated { offset, what } => WireError::Truncated {
                offset: base + offset,
                what,
            },
            WireError::Corrupt { offset, detail } => WireError::Corrupt {
                offset: base + offset,
                detail,
            },
            other => other,
        }
    }

    /// Lower into a [`phylo::PhyloError`] so sniffed readers can share the
    /// Newick ingest plumbing (reports, exit codes, error budgets).
    pub fn into_phylo(self) -> phylo::PhyloError {
        match self {
            WireError::ErrorLimit { errors, limit } => {
                phylo::PhyloError::ErrorLimit { errors, limit }
            }
            WireError::Truncated { offset, what } => {
                phylo::PhyloError::parse(offset, format!("wire: truncated {what}"))
            }
            WireError::Corrupt { offset, detail } => {
                phylo::PhyloError::parse(offset, format!("wire: {detail}"))
            }
            other => phylo::PhyloError::parse(0, format!("wire: {other}")),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Truncated { offset, what } => {
                write!(f, "truncated {what} at byte {offset}")
            }
            WireError::Corrupt { offset, detail } => {
                write!(f, "corrupt at byte {offset}: {detail}")
            }
            WireError::NotWire => write!(f, "not a phylo-wire stream (bad magic)"),
            WireError::Version { found } => {
                write!(f, "unsupported phylo-wire version {found}")
            }
            WireError::Unencodable(why) => write!(f, "tree not encodable: {why}"),
            WireError::ErrorLimit { errors, limit } => {
                write!(f, "{errors} malformed records exceed the limit of {limit}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}
