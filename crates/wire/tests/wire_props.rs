//! Round-trip and corruption properties for the binary tree encoding.
//!
//! The contract under test: encode → decode reproduces the tree
//! *bitwise* — identical Newick serialization, identical `SplitBatch`
//! masks and hashes, identical frozen BFH digest — across widths
//! spanning the one-word/multi-word boundary (15..129 taxa),
//! multifurcations, edge lengths, and single-taxon degenerate trees; and
//! every byte flip or truncation of a record or container surfaces as a
//! typed error, never a panic and never a silently wrong tree.

use bfhrf::Bfh;
use phylo::{
    parse_newick, write_newick, BipartitionScratch, IngestPolicy, TaxaPolicy, TaxonId, TaxonSet,
    Tree, TreeCollection,
};
use phylo_wire::{
    collection_to_vec, decode_tree, decode_tree_exact, encode_tree_vec, read_collection_sniffed,
    read_trees_sniffed, WireError, FILE_MAGIC,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::Cursor;

/// Random tree on `n` taxa: recursive partition into 2–4 child groups
/// (so multifurcations are the norm, not the exception), with each node
/// carrying an edge length with probability ~1/2.
fn random_tree(n: usize, seed: u64, with_lengths: bool) -> (Tree, TaxonSet) {
    let taxa = TaxonSet::with_numbered("t", n);
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut tree, root) = Tree::with_root();
    let ids: Vec<u32> = (0..n as u32).collect();
    build_clade(&mut tree, root, &ids, &mut rng);
    if with_lengths {
        for node in tree.postorder() {
            if rng.random_range(0..2) == 0 {
                let len = rng.random_range(0..1_000_000) as f64 / 997.0;
                tree.set_length(node, Some(len));
            }
        }
    }
    (tree, taxa)
}

fn build_clade(tree: &mut Tree, parent: phylo::NodeId, ids: &[u32], rng: &mut StdRng) {
    debug_assert!(!ids.is_empty());
    if ids.len() == 1 {
        tree.add_leaf(parent, TaxonId(ids[0]));
        return;
    }
    let groups = rng.random_range(2..=4.min(ids.len()));
    let mut cuts: Vec<usize> = (1..ids.len()).collect();
    // Partial shuffle: pick groups-1 distinct cut points.
    for i in 0..groups - 1 {
        let j = rng.random_range(i..cuts.len());
        cuts.swap(i, j);
    }
    let mut cuts: Vec<usize> = cuts[..groups - 1].to_vec();
    cuts.sort_unstable();
    cuts.push(ids.len());
    let mut start = 0;
    for cut in cuts {
        let part = &ids[start..cut];
        start = cut;
        if part.len() == 1 {
            tree.add_leaf(parent, TaxonId(part[0]));
        } else {
            let child = tree.add_child(parent);
            build_clade(tree, child, part, rng);
        }
    }
}

fn assert_trees_bitwise_equal(a: &Tree, b: &Tree, taxa: &TaxonSet) {
    assert_eq!(write_newick(a, taxa), write_newick(b, taxa));
    let mut sa = BipartitionScratch::new();
    let mut sb = BipartitionScratch::new();
    let ba = sa.batch_splits(a, taxa);
    let bb = sb.batch_splits(b, taxa);
    assert_eq!(ba.len(), bb.len(), "split counts differ");
    assert_eq!(ba.hashes(), bb.hashes(), "split hashes differ");
    for i in 0..ba.len() {
        assert_eq!(ba.mask(i), bb.mask(i), "split mask {i} differs");
    }
}

fn round_trip(tree: &Tree, taxa: &TaxonSet) -> Tree {
    let rec = encode_tree_vec(tree).expect("encodable");
    let (decoded, used) = decode_tree(&rec, taxa.len()).expect("decodable");
    assert_eq!(used, rec.len(), "record must be fully consumed");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_trees_round_trip_bitwise(n in 3usize..70, seed in any::<u64>()) {
        let (tree, taxa) = random_tree(n, seed, seed.is_multiple_of(3));
        let decoded = round_trip(&tree, &taxa);
        assert_trees_bitwise_equal(&tree, &decoded, &taxa);
    }

    #[test]
    fn every_byte_flip_of_a_record_is_a_typed_error(n in 4usize..24, seed in any::<u64>()) {
        let (tree, taxa) = random_tree(n, seed, true);
        let rec = encode_tree_vec(&tree).unwrap();
        for i in 0..rec.len() {
            for bit in [0u8, 3, 7] {
                let mut bad = rec.clone();
                bad[i] ^= 1 << bit;
                // Never a panic, never a silently accepted record.
                prop_assert!(
                    decode_tree_exact(&bad, taxa.len()).is_err(),
                    "flip of byte {i} bit {bit} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn every_truncation_of_a_record_is_a_typed_error(n in 4usize..24, seed in any::<u64>()) {
        let (tree, taxa) = random_tree(n, seed, true);
        let rec = encode_tree_vec(&tree).unwrap();
        for cut in 0..rec.len() {
            prop_assert!(
                decode_tree(&rec[..cut], taxa.len()).is_err(),
                "truncation at {cut} decoded successfully"
            );
        }
    }
}

#[test]
fn width_sweep_preserves_bfh_digest_and_splits() {
    // 15..129 spans the one-word fast path, both 64-bit boundaries, and
    // two-word masks; the frozen digest is the strongest bitwise-identity
    // witness the workspace has.
    for n in [15usize, 16, 31, 63, 64, 65, 127, 128, 129] {
        let spec = phylo_sim::DatasetSpec::new("wire-width", n, 8, n as u64 + 1);
        let coll = phylo_sim::generate(&spec);
        let bytes = collection_to_vec(&coll).unwrap();
        let (decoded, report) =
            read_collection_sniffed(Cursor::new(&bytes), IngestPolicy::Strict).unwrap();
        assert_eq!(report.accepted, coll.len(), "n={n}");
        assert!(!report.is_partial());
        assert_eq!(decoded.taxa.len(), coll.taxa.len());
        for (a, b) in coll.trees.iter().zip(&decoded.trees) {
            assert_trees_bitwise_equal(a, b, &coll.taxa);
        }
        let live = Bfh::build(&coll.trees, &coll.taxa);
        let twin = Bfh::build(&decoded.trees, &decoded.taxa);
        assert_eq!(live.freeze().digest(), twin.freeze().digest(), "n={n}");
    }
}

#[test]
fn multifurcating_and_caterpillar_shapes_round_trip() {
    let mut taxa = TaxonSet::new();
    for text in [
        "(A,B,C,D,E,F,G,H);",             // star
        "(((((((A,B),C),D),E),F),G),H);", // caterpillar
        "((A,B,C),(D,E,F,G),H);",         // mixed arity
        "(A:0.5,(B:1.25,C):2.0,D);",      // partial lengths
        "((A,B));",                       // unary root chain
    ] {
        let tree = parse_newick(text, &mut taxa, TaxaPolicy::Grow).unwrap();
        let decoded = round_trip(&tree, &taxa);
        assert_trees_bitwise_equal(&tree, &decoded, &taxa);
    }
}

#[test]
fn single_taxon_tree_round_trips() {
    let mut taxa = TaxonSet::new();
    let id = taxa.intern("only");
    let (mut tree, root) = Tree::with_root();
    tree.set_taxon(root, Some(id));
    let decoded = round_trip(&tree, &taxa);
    assert_eq!(decoded.num_nodes(), 1);
    assert_eq!(decoded.taxon(decoded.root().unwrap()), Some(id));
}

#[test]
fn unencodable_shapes_are_rejected_not_mangled() {
    let taxa = TaxonSet::with_numbered("t", 4);
    // Empty tree.
    let empty = Tree::new();
    assert!(matches!(
        encode_tree_vec(&empty),
        Err(WireError::Unencodable(_))
    ));
    // Leaf without a taxon.
    let (mut bald, root) = Tree::with_root();
    bald.add_child(root);
    bald.add_leaf(root, TaxonId(0));
    assert!(matches!(
        encode_tree_vec(&bald),
        Err(WireError::Unencodable(_))
    ));
    // Taxon on an internal node.
    let (mut labeled, root) = Tree::with_root();
    labeled.add_leaf(root, TaxonId(0));
    labeled.add_leaf(root, TaxonId(1));
    labeled.set_taxon(root, Some(TaxonId(2)));
    assert!(matches!(
        encode_tree_vec(&labeled),
        Err(WireError::Unencodable(_))
    ));
    let _ = taxa;
}

#[test]
fn out_of_range_and_duplicate_taxa_are_corrupt() {
    let (tree, taxa) = random_tree(6, 7, false);
    let rec = encode_tree_vec(&tree).unwrap();
    // Same bytes, smaller namespace: ids past the width must be rejected.
    assert!(matches!(
        decode_tree(&rec, 3),
        Err(WireError::Corrupt { .. })
    ));
    assert!(decode_tree(&rec, taxa.len()).is_ok());
}

#[test]
fn trailing_bytes_after_exact_record_are_rejected() {
    let (tree, taxa) = random_tree(5, 11, false);
    let mut rec = encode_tree_vec(&tree).unwrap();
    assert!(decode_tree_exact(&rec, taxa.len()).is_ok());
    rec.push(0);
    assert!(decode_tree_exact(&rec, taxa.len()).is_err());
}

// ---------------------------------------------------------------------
// Container-level properties
// ---------------------------------------------------------------------

fn sample_collection(n_taxa: usize, n_trees: usize, seed: u64) -> TreeCollection {
    let spec = phylo_sim::DatasetSpec::new("wire-coll", n_taxa, n_trees, seed);
    phylo_sim::generate(&spec)
}

#[test]
fn container_round_trips_taxa_and_trees() {
    let coll = sample_collection(40, 12, 5);
    let bytes = collection_to_vec(&coll).unwrap();
    let (twin, report) =
        read_collection_sniffed(Cursor::new(&bytes), IngestPolicy::Strict).unwrap();
    assert_eq!(report.accepted, 12);
    // Label table round-trips in interning order.
    for (id, label) in coll.taxa.iter() {
        assert_eq!(twin.taxa.get(label), Some(id));
    }
    for (a, b) in coll.trees.iter().zip(&twin.trees) {
        assert_trees_bitwise_equal(a, b, &coll.taxa);
    }
}

#[test]
fn sniffed_newick_reads_are_identical_to_the_plain_reader() {
    let text = "((A,B),(C,D));\n(garbage(((;\n((A,C),(B,D)):0.5;\n";
    let policy = IngestPolicy::lenient();
    let (via_sniff, sniff_report) =
        read_collection_sniffed(Cursor::new(text.as_bytes()), policy).unwrap();
    let (via_plain, plain_report) =
        phylo::ingest::read_collection(Cursor::new(text.as_bytes()), policy).unwrap();
    assert_eq!(via_sniff.len(), via_plain.len());
    assert_eq!(sniff_report, plain_report);
    for (a, b) in via_plain.trees.iter().zip(&via_sniff.trees) {
        assert_trees_bitwise_equal(a, b, &via_plain.taxa);
    }
}

#[test]
fn require_policy_remaps_ids_onto_the_reference_namespace() {
    // Reference namespace interned in one order; the query container's
    // embedded table uses another. Decoded trees must speak reference ids.
    let refs = TreeCollection::parse("((A,B),(C,D),E);").unwrap();
    let queries = TreeCollection::parse("((C,(B,A)),(D,E));").unwrap();
    let bytes = collection_to_vec(&queries).unwrap();
    let mut taxa = refs.taxa.clone();
    let (trees, report) = read_trees_sniffed(
        Cursor::new(&bytes),
        &mut taxa,
        TaxaPolicy::Require,
        IngestPolicy::Strict,
    )
    .unwrap();
    assert_eq!(report.accepted, 1);
    assert_eq!(
        taxa.len(),
        refs.taxa.len(),
        "Require must not grow the namespace"
    );
    assert_eq!(
        write_newick(&trees[0], &refs.taxa),
        write_newick(&queries.trees[0], &queries.taxa),
    );
}

#[test]
fn require_policy_rejects_unknown_labels() {
    let refs = TreeCollection::parse("((A,B),C);").unwrap();
    let queries = TreeCollection::parse("((A,B),Z);").unwrap();
    let bytes = collection_to_vec(&queries).unwrap();
    let mut taxa = refs.taxa.clone();
    let err = read_trees_sniffed(
        Cursor::new(&bytes),
        &mut taxa,
        TaxaPolicy::Require,
        IngestPolicy::Strict,
    )
    .unwrap_err();
    assert!(err.to_string().contains("binary record"), "{err}");
}

#[test]
fn lenient_container_read_skips_a_corrupt_body_and_keeps_the_rest() {
    let coll = sample_collection(24, 5, 9);
    let mut bytes = collection_to_vec(&coll).unwrap();
    // Locate the third record's body inside the container and flip one
    // byte in its middle: framing stays intact, so a lenient read skips
    // exactly that record.
    let victim = encode_tree_vec(&coll.trees[2]).unwrap();
    let at = bytes
        .windows(victim.len())
        .position(|w| w == victim.as_slice())
        .expect("record bytes present in container");
    bytes[at + victim.len() / 2] ^= 0x10;

    assert!(
        read_collection_sniffed(Cursor::new(&bytes), IngestPolicy::Strict).is_err(),
        "strict must refuse the corrupt record"
    );
    let (partial, report) =
        read_collection_sniffed(Cursor::new(&bytes), IngestPolicy::lenient()).unwrap();
    assert_eq!(report.accepted, 4);
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].record, 2);
    assert_eq!(partial.trees.len(), 4);
    for (a, b) in coll
        .trees
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, t)| t)
        .zip(&partial.trees)
    {
        assert_trees_bitwise_equal(a, b, &coll.taxa);
    }
}

#[test]
fn every_container_byte_flip_fails_strict_reads_without_panicking() {
    let coll = sample_collection(12, 3, 13);
    let bytes = collection_to_vec(&coll).unwrap();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x04;
        // Flips inside the magic fall through to the Newick parser, which
        // rejects the binary junk; everything else trips a seal, a record
        // checksum, or a structural check. Either way: typed error.
        assert!(
            read_collection_sniffed(Cursor::new(&bad), IngestPolicy::Strict).is_err(),
            "flip at byte {i} was accepted"
        );
    }
}

#[test]
fn every_container_truncation_fails_strict_reads_without_panicking() {
    let coll = sample_collection(12, 3, 17);
    let bytes = collection_to_vec(&coll).unwrap();
    for cut in 0..bytes.len() {
        let result = read_collection_sniffed(Cursor::new(&bytes[..cut]), IngestPolicy::Strict);
        if cut >= FILE_MAGIC.len() {
            assert!(result.is_err(), "truncation at {cut} was accepted");
        }
        // Shorter-than-magic prefixes sniff as Newick; they may parse as
        // an empty collection, but must never panic.
    }
}
