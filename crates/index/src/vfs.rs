//! Virtual filesystem seam: every byte the index writes or reads goes
//! through a [`Vfs`], so tests can observe, replay, and sabotage I/O.
//!
//! Three implementations:
//!
//! * [`RealVfs`] — thin shim over `std::fs`; the default for every public
//!   constructor, zero behavior change for production callers.
//! * [`MemVfs`] — an in-memory filesystem that journals every mutating
//!   operation ([`JournalOp`]) at syscall granularity. Replaying a journal
//!   *prefix* onto a fresh `MemVfs` reconstructs exactly the bytes a crash
//!   at that point would have left on disk (sequential-consistency crash
//!   model: everything before the cut is durable, nothing after exists).
//! * [`FaultVfs`] — wraps any inner `Vfs` and executes a scripted fault
//!   schedule: fail the Nth fsync, tear the Nth write at byte *k*, fail a
//!   rename, return ENOSPC. Each injected fault is counted in the obs
//!   registry under `fault_injected_total{site=...}`.
//!
//! The trait is deliberately tiny — create/append/read/rename/remove/
//! truncate/exists — because those are the only primitives the WAL,
//! snapshot writer, and directory lifecycle use.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A writable file handle handed out by a [`Vfs`].
pub trait VfsFile: Write + Send {
    /// Flush file contents and metadata to stable storage (fsync).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// A read-only memory mapping of a whole file, unmapped on drop.
///
/// Produced by [`Vfs::mmap_read`] on filesystems that support it. The
/// region stays valid for the mapping's whole lifetime; it also implements
/// [`bfhrf::MapGuard`] so a zero-copy [`bfhrf::FrozenBfh`] can keep it
/// alive from inside an `Arc`.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// The mapping is read-only and owns its region exclusively until drop.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        // Safety: `ptr` covers `len` readable bytes until `munmap` in drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Base address of the mapping (page-aligned).
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (it never is; kept for clippy parity).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mapping({} bytes)", self.len)
    }
}

impl bfhrf::MapGuard for Mapping {}

#[cfg(unix)]
mod mmap_sys {
    //! Hand-declared libc entry points for read-only file mappings — the
    //! only two symbols needed, so no libc crate dependency.
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // Safety: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                mmap_sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

/// The filesystem operations the index layer is allowed to perform.
pub trait Vfs: Send + Sync {
    /// Create (or truncate) the file at `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open the file at `path` positioned for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open the file at `path` for sequential reading.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>>;
    /// Atomically rename `from` over `to` (the commit primitive).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Shrink the file at `path` to `len` bytes and sync the change.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Create `path` and all missing parents as directories.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Map the whole file at `path` read-only, if this filesystem can.
    ///
    /// `Ok(None)` means "no mapping available here" (in-memory
    /// filesystems, empty files, non-unix hosts) and callers must fall
    /// back to [`Vfs::open_read`]; it is never an error path.
    fn mmap_read(&self, path: &Path) -> io::Result<Option<Mapping>> {
        let _ = path;
        Ok(None)
    }
}

/// The production [`Vfs`]: every operation maps 1:1 onto `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

/// Shared handle to the production filesystem.
pub fn real_vfs() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

impl VfsFile for std::fs::File {
    fn sync_all(&mut self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }
}

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            std::fs::OpenOptions::new().append(true).open(path)?,
        ))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(std::fs::File::open(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_all()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    #[cfg(unix)]
    fn mmap_read(&self, path: &Path) -> io::Result<Option<Mapping>> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(None);
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::other("file too large to map on this host"))?;
        // Safety: a fresh private read-only mapping of a descriptor we own;
        // the fd may close immediately after (the mapping keeps the pages).
        let ptr = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == mmap_sys::map_failed() || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Some(Mapping {
            ptr: ptr as *const u8,
            len,
        }))
    }
}

/// One mutating filesystem operation, recorded at syscall granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// `create(path)` — the file now exists and is empty.
    Create(PathBuf),
    /// One `write` call appending `bytes` to `path`.
    Append {
        /// The file written to.
        path: PathBuf,
        /// The exact bytes of this write call.
        bytes: Vec<u8>,
    },
    /// `sync_all(path)` — everything written so far is durable.
    Sync(PathBuf),
    /// `rename(from, to)`.
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path (replaced if present).
        to: PathBuf,
    },
    /// `remove_file(path)`.
    Remove(PathBuf),
    /// `truncate(path, len)`.
    Truncate {
        /// The file truncated.
        path: PathBuf,
        /// The new length.
        len: u64,
    },
}

impl JournalOp {
    /// A torn variant of this op: for an `Append`, only the first `keep`
    /// bytes reach disk (a write cut mid-flight). Other ops are atomic in
    /// the crash model and have no torn form.
    pub fn torn(&self, keep: usize) -> Option<JournalOp> {
        match self {
            JournalOp::Append { path, bytes } if keep < bytes.len() => Some(JournalOp::Append {
                path: path.clone(),
                bytes: bytes[..keep].to_vec(),
            }),
            _ => None,
        }
    }
}

#[derive(Default)]
struct MemState {
    files: HashMap<PathBuf, Vec<u8>>,
    journal: Vec<JournalOp>,
    recording: bool,
}

impl MemState {
    fn record(&mut self, op: JournalOp) {
        if self.recording {
            self.journal.push(op);
        }
    }
}

/// In-memory journaling filesystem for crash-consistency tests.
#[derive(Clone, Default)]
pub struct MemVfs {
    state: Arc<Mutex<MemState>>,
}

impl MemVfs {
    /// An empty in-memory filesystem (not recording).
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Start journaling every mutating operation from this point on.
    pub fn start_recording(&self) {
        self.lock().recording = true;
    }

    /// The journal recorded so far (clone; recording continues).
    pub fn journal(&self) -> Vec<JournalOp> {
        self.lock().journal.clone()
    }

    /// Apply a sequence of journal ops to this filesystem (not recorded).
    /// Replaying `ops[..k]` onto a fresh `MemVfs` reconstructs the exact
    /// disk state of a crash after the k-th operation.
    pub fn apply(&self, ops: &[JournalOp]) {
        let mut s = self.lock();
        for op in ops {
            match op {
                JournalOp::Create(p) => {
                    s.files.insert(p.clone(), Vec::new());
                }
                JournalOp::Append { path, bytes } => {
                    s.files.entry(path.clone()).or_default().extend(bytes);
                }
                JournalOp::Sync(_) => {}
                JournalOp::Rename { from, to } => {
                    if let Some(bytes) = s.files.remove(from) {
                        s.files.insert(to.clone(), bytes);
                    }
                }
                JournalOp::Remove(p) => {
                    s.files.remove(p);
                }
                JournalOp::Truncate { path, len } => {
                    if let Some(f) = s.files.get_mut(path) {
                        f.truncate(*len as usize);
                    }
                }
            }
        }
    }

    /// The current bytes of `path`, if it exists (for test assertions and
    /// out-of-band corruption).
    pub fn read_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).cloned()
    }

    /// Overwrite `path` with `bytes` directly, bypassing the journal (for
    /// test setup and byte-flipping).
    pub fn write_bytes(&self, path: &Path, bytes: Vec<u8>) {
        self.lock().files.insert(path.to_path_buf(), bytes);
    }
}

struct MemFile {
    state: Arc<Mutex<MemState>>,
    path: PathBuf,
}

impl Write for MemFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        match s.files.get_mut(&self.path) {
            Some(f) => f.extend_from_slice(buf),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("{} was removed under an open handle", self.path.display()),
                ))
            }
        }
        s.record(JournalOp::Append {
            path: self.path.clone(),
            bytes: buf.to_vec(),
        });
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl VfsFile for MemFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let op = JournalOp::Sync(self.path.clone());
        s.record(op);
        Ok(())
    }
}

impl Vfs for MemVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.lock();
        s.files.insert(path.to_path_buf(), Vec::new());
        s.record(JournalOp::Create(path.to_path_buf()));
        Ok(Box::new(MemFile {
            state: self.state.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let s = self.lock();
        if !s.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file {}", path.display()),
            ));
        }
        Ok(Box::new(MemFile {
            state: self.state.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        let s = self.lock();
        match s.files.get(path) {
            Some(bytes) => Ok(Box::new(io::Cursor::new(bytes.clone()))),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file {}", path.display()),
            )),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.lock();
        let Some(bytes) = s.files.remove(from) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file {}", from.display()),
            ));
        };
        s.files.insert(to.to_path_buf(), bytes);
        s.record(JournalOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        if s.files.remove(path).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file {}", path.display()),
            ));
        }
        s.record(JournalOp::Remove(path.to_path_buf()));
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut s = self.lock();
        match s.files.get_mut(path) {
            Some(f) => f.truncate(len as usize),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file {}", path.display()),
                ))
            }
        }
        s.record(JournalOp::Truncate {
            path: path.to_path_buf(),
            len,
        });
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().files.contains_key(path)
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
}

/// Where in the I/O path a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// `Vfs::create` (also covers WAL resets and snapshot temp files).
    Create,
    /// A `write` call on any handle.
    Write,
    /// A `sync_all` (fsync) call on any handle.
    Sync,
    /// `Vfs::rename` — the commit primitive.
    Rename,
}

impl FaultSite {
    /// Stable label used for the obs `fault_injected_total{site=...}` cell.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Create => "create",
            FaultSite::Write => "write",
            FaultSite::Sync => "sync",
            FaultSite::Rename => "rename",
        }
    }

    fn idx(self) -> usize {
        match self {
            FaultSite::Create => 0,
            FaultSite::Write => 1,
            FaultSite::Sync => 2,
            FaultSite::Rename => 3,
        }
    }
}

/// What an injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// ENOSPC — "no space left on device".
    Enospc,
    /// A generic injected I/O error.
    Io,
    /// Write only the first `keep` bytes, then fail (a torn write). Only
    /// meaningful at [`FaultSite::Write`]; elsewhere it degrades to `Io`.
    Torn {
        /// Bytes that reach the file before the tear.
        keep: usize,
    },
}

impl FaultKind {
    fn to_error(self) -> io::Error {
        match self {
            // Raw os error 28 is ENOSPC on Linux; using the raw code keeps
            // the error indistinguishable from the real thing.
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            FaultKind::Io => io::Error::other("injected I/O fault"),
            FaultKind::Torn { .. } => io::Error::other("injected torn write"),
        }
    }
}

/// One scheduled fault: fire `kind` on the `at`-th operation (1-based) at
/// `site`, then disarm.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// Which I/O primitive to sabotage.
    pub site: FaultSite,
    /// 1-based ordinal of the operation at that site.
    pub at: u64,
    /// The failure to produce.
    pub kind: FaultKind,
}

#[derive(Default)]
struct FaultPlan {
    faults: Vec<Fault>,
    seen: [u64; 4],
    injected: u64,
}

impl FaultPlan {
    /// Count one operation at `site`; if a scheduled fault matches, disarm
    /// it and return its kind.
    fn check(&mut self, site: FaultSite) -> Option<FaultKind> {
        self.seen[site.idx()] += 1;
        let n = self.seen[site.idx()];
        let hit = self
            .faults
            .iter()
            .position(|f| f.site == site && f.at == n)?;
        let fault = self.faults.swap_remove(hit);
        self.injected += 1;
        phylo_obs::global()
            .counter("fault_injected_total", &[("site", site.label())])
            .inc();
        Some(fault.kind)
    }
}

/// A [`Vfs`] wrapper executing a scripted, deterministic fault schedule.
#[derive(Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    plan: Arc<Mutex<FaultPlan>>,
}

impl FaultVfs {
    /// Wrap `inner` with an empty (fault-free) schedule.
    pub fn new(inner: Arc<dyn Vfs>) -> FaultVfs {
        FaultVfs {
            inner,
            plan: Arc::new(Mutex::new(FaultPlan::default())),
        }
    }

    fn plan(&self) -> std::sync::MutexGuard<'_, FaultPlan> {
        self.plan.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Schedule `kind` to fire on the `at`-th (1-based) operation at
    /// `site`, counted from now. One-shot: the fault disarms after firing.
    pub fn fail_nth(&self, site: FaultSite, at: u64, kind: FaultKind) {
        let mut plan = self.plan();
        // `at` is relative to the operations already seen, so schedules
        // composed mid-run behave intuitively.
        let at = plan.seen[site.idx()] + at;
        plan.faults.push(Fault { site, at, kind });
    }

    /// Drop every armed fault.
    pub fn clear(&self) {
        self.plan().faults.clear();
    }

    /// How many faults have fired so far.
    pub fn injected(&self) -> u64 {
        self.plan().injected
    }

    /// How many operations have been observed at `site`.
    pub fn seen(&self, site: FaultSite) -> u64 {
        self.plan().seen[site.idx()]
    }
}

/// A deterministic seeded fault schedule: `n_faults` one-shot faults
/// spread over the first `horizon` operations of each site. Same seed,
/// same schedule — failures found by a seed sweep stay reproducible.
pub fn seeded_schedule(seed: u64, n_faults: usize, horizon: u64) -> Vec<Fault> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let horizon = horizon.max(1);
    (0..n_faults)
        .map(|_| {
            let site = match next() % 4 {
                0 => FaultSite::Create,
                1 => FaultSite::Write,
                2 => FaultSite::Sync,
                _ => FaultSite::Rename,
            };
            let at = next() % horizon + 1;
            let kind = match next() % 3 {
                0 => FaultKind::Enospc,
                1 => FaultKind::Io,
                _ => FaultKind::Torn {
                    keep: (next() % 64) as usize,
                },
            };
            Fault { site, at, kind }
        })
        .collect()
}

impl FaultVfs {
    /// Arm every fault in `schedule` (offsets relative to ops seen so far).
    pub fn arm(&self, schedule: &[Fault]) {
        for f in schedule {
            self.fail_nth(f.site, f.at, f.kind);
        }
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    plan: Arc<Mutex<FaultPlan>>,
}

impl FaultFile {
    fn check(&self, site: FaultSite) -> Option<FaultKind> {
        self.plan
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .check(site)
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.check(FaultSite::Write) {
            None => self.inner.write(buf),
            Some(FaultKind::Torn { keep }) => {
                // The torn prefix really lands in the file: that is what a
                // write cut mid-flight leaves behind.
                let keep = keep.min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                Err(FaultKind::Torn { keep }.to_error())
            }
            Some(kind) => Err(kind.to_error()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl VfsFile for FaultFile {
    fn sync_all(&mut self) -> io::Result<()> {
        match self.check(FaultSite::Sync) {
            None => self.inner.sync_all(),
            Some(kind) => Err(kind.to_error()),
        }
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if let Some(kind) = self.plan().check(FaultSite::Create) {
            return Err(kind.to_error());
        }
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            plan: self.plan.clone(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.open_append(path)?,
            plan: self.plan.clone(),
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        self.inner.open_read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(kind) = self.plan().check(FaultSite::Rename) {
            return Err(kind.to_error());
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn mmap_read(&self, path: &Path) -> io::Result<Option<Mapping>> {
        // Mappings are read-side; faults target the write path, so they
        // pass through to whatever the inner filesystem can do.
        self.inner.mmap_read(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_journals_and_replays_prefixes() {
        let vfs = MemVfs::new();
        vfs.start_recording();
        let p = Path::new("a.bin");
        let q = Path::new("b.bin");
        let mut f = vfs.create(p).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync_all().unwrap();
        drop(f);
        vfs.rename(p, q).unwrap();
        let journal = vfs.journal();
        assert_eq!(journal.len(), 5, "{journal:?}");

        // Crash before the rename: a.bin holds both writes, b.bin absent.
        let at3 = MemVfs::new();
        at3.apply(&journal[..4]);
        assert_eq!(at3.read_bytes(p).unwrap(), b"hello world");
        assert!(!at3.exists(q));

        // Crash mid-write: only the first chunk landed.
        let at1 = MemVfs::new();
        at1.apply(&journal[..2]);
        assert_eq!(at1.read_bytes(p).unwrap(), b"hello ");

        // Torn second write.
        let torn = MemVfs::new();
        torn.apply(&journal[..2]);
        torn.apply(&[journal[2].torn(3).unwrap()]);
        assert_eq!(torn.read_bytes(p).unwrap(), b"hello wor");
    }

    #[test]
    fn fault_vfs_fires_scheduled_faults_once() {
        let vfs = FaultVfs::new(Arc::new(MemVfs::new()));
        vfs.fail_nth(FaultSite::Sync, 2, FaultKind::Enospc);
        let mut f = vfs.create(Path::new("x")).unwrap();
        f.sync_all().unwrap();
        let err = f.sync_all().unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "{err}");
        f.sync_all().unwrap();
        assert_eq!(vfs.injected(), 1);
        assert_eq!(vfs.seen(FaultSite::Sync), 3);
    }

    #[test]
    fn torn_write_leaves_prefix_in_file() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(Arc::new(mem.clone()));
        vfs.fail_nth(FaultSite::Write, 1, FaultKind::Torn { keep: 4 });
        let mut f = vfs.create(Path::new("t")).unwrap();
        assert!(f.write_all(b"abcdefgh").is_err());
        assert_eq!(mem.read_bytes(Path::new("t")).unwrap(), b"abcd");
        // The next write goes through untouched.
        f.write_all(b"ij").unwrap();
        assert_eq!(mem.read_bytes(Path::new("t")).unwrap(), b"abcdij");
    }

    #[test]
    fn rename_fault_blocks_commit() {
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(Arc::new(mem.clone()));
        let mut f = vfs.create(Path::new("tmp")).unwrap();
        f.write_all(b"data").unwrap();
        drop(f);
        vfs.fail_nth(FaultSite::Rename, 1, FaultKind::Io);
        assert!(vfs.rename(Path::new("tmp"), Path::new("dst")).is_err());
        assert!(mem.exists(Path::new("tmp")));
        assert!(!mem.exists(Path::new("dst")));
        vfs.rename(Path::new("tmp"), Path::new("dst")).unwrap();
        assert_eq!(mem.read_bytes(Path::new("dst")).unwrap(), b"data");
    }

    #[test]
    fn real_vfs_maps_files_and_mem_vfs_declines() {
        let mem = MemVfs::new();
        mem.write_bytes(Path::new("x"), b"abc".to_vec());
        assert!(mem.mmap_read(Path::new("x")).unwrap().is_none());

        let dir = std::env::temp_dir().join(format!("bfhrf-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");
        std::fs::write(&path, b"hello mapping").unwrap();
        let map = RealVfs.mmap_read(&path).unwrap();
        #[cfg(unix)]
        {
            let map = map.expect("unix maps real files");
            assert_eq!(map.as_slice(), b"hello mapping");
            assert_eq!(map.len(), 13);
            assert!(!map.is_empty());
            // Faults pass mappings through to the inner filesystem.
            let faulted = FaultVfs::new(Arc::new(RealVfs));
            assert!(faulted.mmap_read(&path).unwrap().is_some());
        }
        #[cfg(not(unix))]
        assert!(map.is_none());

        // Empty files never map: callers must take the read path.
        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        assert!(RealVfs.mmap_read(&empty).unwrap().is_none());
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let a = seeded_schedule(42, 8, 100);
        let b = seeded_schedule(42, 8, 100);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.site, y.site);
            assert_eq!(x.at, y.at);
            assert_eq!(x.kind, y.kind);
        }
        let c = seeded_schedule(43, 8, 100);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.site != y.site || x.at != y.at || x.kind != y.kind),
            "different seeds should differ"
        );
    }
}
