//! The on-disk index: one snapshot plus one WAL in a directory, with
//! compaction folding the log back into a fresh snapshot.
//!
//! # Directory layout
//!
//! ```text
//! <dir>/snapshot.bfh       the current full snapshot (generation g)
//! <dir>/snapshot.bfh.tmp   compaction scratch, renamed into place
//! <dir>/wal.log            add/remove batches appended since generation g
//! ```
//!
//! # Crash safety
//!
//! Every mutation is WAL-first (for adds) or verified-then-logged (for
//! removes), and both the WAL append and the snapshot write fsync before
//! returning. Compaction writes the next-generation snapshot to a temp
//! name, renames it over the old one, and only then resets the WAL. The
//! rename is the commit point:
//!
//! * crash **before** the rename → old snapshot + old WAL, nothing lost;
//! * crash **after** the rename but before the WAL reset → new snapshot
//!   (generation *g+1*) next to a WAL still marked *g*. [`Index::open`]
//!   sees the stale generation and discards the log: its batches are
//!   already folded into the snapshot, so replaying them would double-count.
//!
//! A WAL from the *future* (generation greater than the snapshot's) can
//! only mean manual file shuffling and is reported as corruption.

use crate::error::IndexError;
use crate::snapshot::{read_snapshot, write_snapshot, Snapshot, SnapshotMeta};
use crate::wal::{Wal, WalOp, WalRecord};
use bfhrf::{Bfh, RunGuard};
use phylo::{parse_newick, write_newick, TaxaPolicy, TaxonSet, Tree};
use std::path::{Path, PathBuf};

/// File name of the snapshot inside an index directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bfh";
/// File name of the WAL inside an index directory.
pub const WAL_FILE: &str = "wal.log";
const SNAPSHOT_TMP: &str = "snapshot.bfh.tmp";

/// Live counters describing an opened index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Current compaction generation.
    pub generation: u64,
    /// Trees currently folded into the hash (snapshot plus WAL deltas).
    pub n_trees: usize,
    /// Taxa in the namespace.
    pub n_taxa: usize,
    /// Distinct splits currently stored.
    pub distinct: usize,
    /// Sum of stored frequencies (`sumBFHR`).
    pub sum: u64,
    /// WAL records appended since the last compaction.
    pub wal_pending: usize,
}

/// An immutable scoring view of the index at one instant: the frozen
/// probe-optimized hash, the (shared) taxon namespace, and the generation
/// they came from. Cheap to clone; the serve daemon hands one `QueryView`
/// to each in-flight batch so every row of a batch is guaranteed to be
/// answered from the same generation even while admin mutations land.
#[derive(Clone)]
pub struct QueryView {
    /// Probe-optimized read-only hash.
    pub frozen: std::sync::Arc<bfhrf::FrozenBfh>,
    /// The frozen taxon namespace.
    pub taxa: std::sync::Arc<TaxonSet>,
    /// Compaction generation this view was taken from.
    pub generation: u64,
}

/// A persistent BFH index opened for reading and incremental mutation.
pub struct Index {
    dir: PathBuf,
    bfh: Bfh,
    taxa: std::sync::Arc<TaxonSet>,
    generation: u64,
    wal: Wal,
    wal_pending: usize,
    /// Probe-optimized view of `bfh`, built lazily and invalidated by
    /// every mutation. `Arc` so long-lived readers (the serve daemon)
    /// keep a generation alive across snapshot swaps.
    frozen: Option<std::sync::Arc<bfhrf::FrozenBfh>>,
}

fn replay(bfh: &mut Bfh, taxa: &TaxonSet, records: &[WalRecord]) -> Result<(), IndexError> {
    // The taxa namespace is frozen at snapshot time; WAL payloads must
    // resolve against it, so replay clones the set only to satisfy the
    // parser's `&mut` and asserts it never grew.
    let mut scratch = taxa.clone();
    for (i, rec) in records.iter().enumerate() {
        let tree = parse_newick(&rec.newick, &mut scratch, TaxaPolicy::Require).map_err(|e| {
            IndexError::Corrupt {
                section: "wal-record",
                detail: format!("record {i} does not parse against the index taxa: {e}"),
            }
        })?;
        match rec.op {
            WalOp::Add => bfh.add_tree(&tree, taxa),
            WalOp::Remove => bfh
                .remove_tree(&tree, taxa)
                .map_err(|e| IndexError::Corrupt {
                    section: "wal-record",
                    detail: format!("record {i} removes a tree the hash does not hold: {e}"),
                })?,
        }
    }
    Ok(())
}

impl Index {
    /// Create a fresh index at `dir` (created if missing) from an
    /// in-memory hash, writing a generation-0 snapshot and an empty WAL.
    /// Refuses to overwrite an existing snapshot.
    pub fn create(dir: &Path, bfh: Bfh, taxa: TaxonSet) -> Result<Index, IndexError> {
        std::fs::create_dir_all(dir).map_err(|e| IndexError::io(dir, e))?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            return Err(IndexError::io(
                &snap_path,
                std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "index already exists here (use open, or pick a fresh directory)",
                ),
            ));
        }
        let tmp = dir.join(SNAPSHOT_TMP);
        write_snapshot(&tmp, &bfh, &taxa, 0)?;
        std::fs::rename(&tmp, &snap_path).map_err(|e| IndexError::io(&snap_path, e))?;
        let wal = Wal::create(&dir.join(WAL_FILE), 0)?;
        Ok(Index {
            dir: dir.to_path_buf(),
            bfh,
            taxa: std::sync::Arc::new(taxa),
            generation: 0,
            wal,
            wal_pending: 0,
            frozen: None,
        })
    }

    /// Open the index at `dir` with the permissive default guard.
    pub fn open(dir: &Path) -> Result<Index, IndexError> {
        Index::open_guarded(dir, &RunGuard::default())
    }

    /// Open the index at `dir`: load and validate the snapshot, then
    /// replay the WAL on top of it (reusing the same incremental
    /// `add_tree`/`remove_tree` paths the live index uses). `guard` bounds
    /// the snapshot load.
    pub fn open_guarded(dir: &Path, guard: &RunGuard) -> Result<Index, IndexError> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        if !snap_path.exists() {
            return Err(IndexError::NotAnIndex(format!(
                "no {SNAPSHOT_FILE} in {}",
                dir.display()
            )));
        }
        let Snapshot {
            mut bfh,
            taxa,
            meta,
        } = read_snapshot(&snap_path, guard)?;

        let wal_path = dir.join(WAL_FILE);
        let (wal, wal_pending) = if wal_path.exists() {
            let (wal, records) = Wal::open(&wal_path)?;
            match wal.generation().cmp(&meta.generation) {
                std::cmp::Ordering::Equal => {
                    replay(&mut bfh, &taxa, &records)?;
                    (wal, records.len())
                }
                std::cmp::Ordering::Less => {
                    // Crash window between snapshot rename and WAL reset:
                    // these batches are already folded into the snapshot.
                    drop(wal);
                    (Wal::create(&wal_path, meta.generation)?, 0)
                }
                std::cmp::Ordering::Greater => {
                    return Err(IndexError::Corrupt {
                        section: "wal-header",
                        detail: format!(
                            "WAL generation {} is ahead of snapshot generation {}",
                            wal.generation(),
                            meta.generation
                        ),
                    });
                }
            }
        } else {
            (Wal::create(&wal_path, meta.generation)?, 0)
        };

        let mut index = Index {
            dir: dir.to_path_buf(),
            bfh,
            taxa: std::sync::Arc::new(taxa),
            generation: meta.generation,
            wal,
            wal_pending,
            frozen: None,
        };
        // Freeze eagerly: an opened index is overwhelmingly read-next, and
        // the freeze is one pass over a hash that was just built anyway.
        index.frozen();
        Ok(index)
    }

    /// The frozen probe-optimized view of the current hash, built on first
    /// use after open or mutation and cached until the next mutation.
    pub fn frozen(&mut self) -> std::sync::Arc<bfhrf::FrozenBfh> {
        if let Some(f) = &self.frozen {
            return f.clone();
        }
        let start = std::time::Instant::now();
        let f = std::sync::Arc::new(self.bfh.freeze());
        phylo_obs::global()
            .histogram("index_freeze_ns", &[])
            .record_duration(start.elapsed());
        self.frozen = Some(f.clone());
        f
    }

    /// Snapshot the current state as an immutable [`QueryView`]. Freezes
    /// the hash if a mutation invalidated the cache; the returned view
    /// stays valid (and internally consistent) no matter what happens to
    /// the index afterwards.
    pub fn view(&mut self) -> QueryView {
        QueryView {
            frozen: self.frozen(),
            taxa: self.taxa.clone(),
            generation: self.generation,
        }
    }

    /// The live hash (snapshot plus replayed/pending WAL batches).
    pub fn bfh(&self) -> &Bfh {
        &self.bfh
    }

    /// The frozen taxon namespace.
    pub fn taxa(&self) -> &TaxonSet {
        &self.taxa
    }

    /// The directory this index lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live counters. Also refreshes the `index_generation` and
    /// `index_wal_pending` gauges so the metrics registry tracks whichever
    /// index was inspected last (one daemon process serves one index).
    pub fn stats(&self) -> IndexStats {
        let reg = phylo_obs::global();
        reg.gauge("index_generation", &[])
            .set(self.generation as i64);
        reg.gauge("index_wal_pending", &[])
            .set(self.wal_pending as i64);
        IndexStats {
            generation: self.generation,
            n_trees: self.bfh.n_trees(),
            n_taxa: self.bfh.n_taxa(),
            distinct: self.bfh.distinct(),
            sum: self.bfh.sum(),
            wal_pending: self.wal_pending,
        }
    }

    /// Parse `newick` against the frozen namespace without mutating it.
    fn parse_against_taxa(&self, newick: &str) -> Result<Tree, IndexError> {
        let mut scratch = (*self.taxa).clone();
        Ok(parse_newick(newick, &mut scratch, TaxaPolicy::Require)?)
    }

    /// Log and apply an add of `tree`. WAL-first: the record is durable
    /// before the in-memory hash changes, so a crash replays it on open.
    pub fn append_add(&mut self, tree: &Tree) -> Result<(), IndexError> {
        let newick = write_newick(tree, &self.taxa);
        self.wal.append(WalOp::Add, &newick)?;
        self.bfh.add_tree(tree, &self.taxa);
        self.wal_pending += 1;
        self.frozen = None;
        Ok(())
    }

    /// Parse `newick` against the index taxa, then log and apply the add.
    pub fn append_add_newick(&mut self, newick: &str) -> Result<(), IndexError> {
        let tree = self.parse_against_taxa(newick)?;
        self.append_add(&tree)
    }

    /// Log and apply a removal of `tree`. The removal is verified against
    /// the live hash **before** the record is logged, so a tree that was
    /// never added fails cleanly and leaves both memory and disk unchanged.
    pub fn append_remove(&mut self, tree: &Tree) -> Result<(), IndexError> {
        // remove_tree is verify-then-mutate: on error the hash is untouched
        // and nothing must reach the WAL.
        self.bfh.remove_tree(tree, &self.taxa)?;
        let newick = write_newick(tree, &self.taxa);
        if let Err(e) = self.wal.append(WalOp::Remove, &newick) {
            // Disk refused the record; roll the in-memory hash back so it
            // keeps matching what a reopen would reconstruct.
            self.bfh.add_tree(tree, &self.taxa);
            return Err(e);
        }
        self.wal_pending += 1;
        self.frozen = None;
        Ok(())
    }

    /// Parse `newick` against the index taxa, then log and apply the
    /// removal.
    pub fn append_remove_newick(&mut self, newick: &str) -> Result<(), IndexError> {
        let tree = self.parse_against_taxa(newick)?;
        self.append_remove(&tree)
    }

    /// Fold the WAL into a fresh snapshot at generation `g+1` and reset
    /// the log. Returns the new snapshot's header. See the module docs for
    /// the crash-safety sequencing.
    pub fn compact(&mut self) -> Result<SnapshotMeta, IndexError> {
        let next = self.generation + 1;
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        write_snapshot(&tmp, &self.bfh, &self.taxa, next)?;
        std::fs::rename(&tmp, &snap_path).map_err(|e| IndexError::io(&snap_path, e))?;
        self.wal = Wal::create(&self.dir.join(WAL_FILE), next)?;
        self.generation = next;
        self.wal_pending = 0;
        Ok(SnapshotMeta {
            generation: next,
            n_taxa: self.bfh.n_taxa(),
            n_trees: self.bfh.n_trees(),
            n_shards: self.bfh.n_shards(),
            sum: self.bfh.sum(),
            distinct: self.bfh.distinct(),
        })
    }

    /// Tear the index apart into its hash and taxa (for callers that want
    /// to hand the state to a long-lived reader).
    pub fn into_parts(self) -> (Bfh, TaxonSet) {
        let taxa = std::sync::Arc::try_unwrap(self.taxa).unwrap_or_else(|a| (*a).clone());
        (self.bfh, taxa)
    }
}
