//! The on-disk index: one snapshot plus one WAL in a directory, with
//! compaction folding the log back into a fresh snapshot.
//!
//! # Directory layout
//!
//! ```text
//! <dir>/snapshot.bfh       the current full snapshot (generation g)
//! <dir>/snapshot.bfh.tmp   compaction scratch, renamed into place
//! <dir>/wal.log            add/remove batches appended since generation g
//! <dir>/frozen.bfh         probe-ready frozen table for generation g
//! <dir>/frozen.bfh.tmp     sidecar scratch, renamed into place
//! ```
//!
//! `frozen.bfh` is a **cache**: the probe-optimized [`bfhrf::FrozenBfh`]
//! lanes serialized verbatim (see [`crate::frozen_file`]) so reopening
//! skips the freeze pass and — via [`Index::open_frozen`] — can skip
//! materializing the splits entirely by memory-mapping the lanes in
//! place. It is rewritten after every create and compaction; any failure
//! writing or reading it degrades to the ordinary snapshot path with a
//! recovery note, never an error.
//!
//! # Crash safety
//!
//! Every mutation is WAL-first (for adds) or verified-then-logged (for
//! removes), and both the WAL append and the snapshot write fsync before
//! returning. Compaction writes the next-generation snapshot to a temp
//! name, renames it over the old one, and only then resets the WAL. The
//! rename is the commit point:
//!
//! * crash **before** the rename → old snapshot + old WAL, nothing lost;
//! * crash **after** the rename but before the WAL reset → new snapshot
//!   (generation *g+1*) next to a WAL still marked *g*. [`Index::open`]
//!   sees the stale generation and discards the log: its batches are
//!   already folded into the snapshot, so replaying them would double-count.
//!
//! A WAL from the *future* (generation greater than the snapshot's) can
//! only mean manual file shuffling and is reported as corruption.

use crate::error::IndexError;
use crate::frozen_file;
use crate::snapshot::{
    read_snapshot_with, read_taxa_with, write_snapshot_with, Snapshot, SnapshotMeta,
};
use crate::vfs::{real_vfs, Vfs};
use crate::wal::{scan_wal, Wal, WalOp, WalOpen, WalPolicy, WalRecord, WalTail};
use bfhrf::{Bfh, RunGuard};
use phylo::{parse_newick, write_newick, TaxaPolicy, TaxonSet, Tree};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the snapshot inside an index directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bfh";
/// File name of the WAL inside an index directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the frozen-table sidecar cache inside an index directory.
pub const FROZEN_FILE: &str = "frozen.bfh";
pub(crate) const SNAPSHOT_TMP: &str = "snapshot.bfh.tmp";
pub(crate) const FROZEN_TMP: &str = "frozen.bfh.tmp";

/// Live counters describing an opened index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Current compaction generation.
    pub generation: u64,
    /// Trees currently folded into the hash (snapshot plus WAL deltas).
    pub n_trees: usize,
    /// Taxa in the namespace.
    pub n_taxa: usize,
    /// Distinct splits currently stored.
    pub distinct: usize,
    /// Sum of stored frequencies (`sumBFHR`).
    pub sum: u64,
    /// WAL records appended since the last compaction.
    pub wal_pending: usize,
}

/// An immutable scoring view of the index at one instant: the frozen
/// probe-optimized hash, the (shared) taxon namespace, and the generation
/// they came from. Cheap to clone; the serve daemon hands one `QueryView`
/// to each in-flight batch so every row of a batch is guaranteed to be
/// answered from the same generation even while admin mutations land.
#[derive(Clone)]
pub struct QueryView {
    /// Probe-optimized read-only hash.
    pub frozen: std::sync::Arc<bfhrf::FrozenBfh>,
    /// The frozen taxon namespace.
    pub taxa: std::sync::Arc<TaxonSet>,
    /// Compaction generation this view was taken from.
    pub generation: u64,
}

/// A persistent BFH index opened for reading and incremental mutation.
pub struct Index {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    bfh: Bfh,
    taxa: std::sync::Arc<TaxonSet>,
    generation: u64,
    /// `None` after a committed compaction whose WAL reset failed: the
    /// snapshot holds everything durable, but the old log is stale and
    /// appending to it would be silent data loss — mutations are refused
    /// with [`IndexError::WalUnavailable`] until [`Index::compact`] heals
    /// the log or the index is reopened.
    wal: Option<Wal>,
    wal_pending: usize,
    /// Replay policy recorded in the WAL header; compaction recreates the
    /// log with the same policy so a leniently-built index stays lenient
    /// across its whole life.
    policy: WalPolicy,
    /// Recovery notes accumulated while opening (torn WAL tail truncated,
    /// stale log discarded, ...). Surfaced by the CLI and the daemon.
    notes: Vec<String>,
    /// Probe-optimized view of `bfh`, built lazily and invalidated by
    /// every mutation. `Arc` so long-lived readers (the serve daemon)
    /// keep a generation alive across snapshot swaps.
    frozen: Option<std::sync::Arc<bfhrf::FrozenBfh>>,
}

/// Fold WAL records into the hash under the policy the log itself was
/// created with. An index built leniently keeps that promise across
/// restarts: a record whose payload no longer decodes against the frozen
/// namespace is skipped with a note (and counted), exactly as the original
/// ingest would have skipped the source tree. Under the strict policy the
/// same record is fatal corruption, as before. A *remove* of a tree the
/// hash does not hold is fatal under both policies — that is not a bad
/// input, it is a log that disagrees with its own snapshot.
fn replay(
    bfh: &mut Bfh,
    taxa: &TaxonSet,
    records: &[WalRecord],
    policy: WalPolicy,
    notes: &mut Vec<String>,
) -> Result<(), IndexError> {
    // The namespace is frozen at snapshot time; payloads must resolve
    // against it, so one scratch clone satisfies the parser's `&mut` for
    // every record (`TaxaPolicy::Require` keeps it from growing).
    let mut scratch = taxa.clone();
    for (i, rec) in records.iter().enumerate() {
        let tree = match rec.decode_with_scratch(taxa, &mut scratch) {
            Ok(tree) => tree,
            Err(e) if policy == WalPolicy::Lenient && !matches!(e, IndexError::Io { .. }) => {
                phylo_obs::global()
                    .counter("wal_replay_skipped_total", &[])
                    .inc();
                notes.push(format!(
                    "wal: skipped undecodable record {i} (lenient): {e}"
                ));
                continue;
            }
            Err(e) => {
                return Err(IndexError::Corrupt {
                    section: "wal-record",
                    detail: format!("record {i} does not decode against the index taxa: {e}"),
                })
            }
        };
        match rec.op {
            WalOp::Add => bfh.add_tree(&tree, taxa),
            WalOp::Remove => bfh
                .remove_tree(&tree, taxa)
                .map_err(|e| IndexError::Corrupt {
                    section: "wal-record",
                    detail: format!("record {i} removes a tree the hash does not hold: {e}"),
                })?,
        }
    }
    Ok(())
}

impl Index {
    /// Create a fresh index at `dir` (created if missing) from an
    /// in-memory hash, writing a generation-0 snapshot and an empty WAL.
    /// Refuses to overwrite an existing snapshot.
    pub fn create(dir: &Path, bfh: Bfh, taxa: TaxonSet) -> Result<Index, IndexError> {
        Index::create_with(real_vfs(), dir, bfh, taxa)
    }

    /// [`Index::create`] routed through an explicit [`Vfs`].
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        bfh: Bfh,
        taxa: TaxonSet,
    ) -> Result<Index, IndexError> {
        Index::create_policy_with(vfs, dir, bfh, taxa, WalPolicy::Strict)
    }

    /// [`Index::create_with`] with an explicit WAL replay policy. An index
    /// created [`WalPolicy::Lenient`] skips (and notes) undecodable WAL
    /// records on replay instead of refusing to open — the persistent
    /// counterpart of a lenient ingest.
    pub fn create_policy_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        bfh: Bfh,
        taxa: TaxonSet,
        policy: WalPolicy,
    ) -> Result<Index, IndexError> {
        vfs.create_dir_all(dir)
            .map_err(|e| IndexError::io(dir, e))?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        if vfs.exists(&snap_path) {
            return Err(IndexError::io(
                &snap_path,
                std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "index already exists here (use open, or pick a fresh directory)",
                ),
            ));
        }
        let tmp = dir.join(SNAPSHOT_TMP);
        if let Err(e) = write_snapshot_with(&*vfs, &tmp, &bfh, &taxa, 0) {
            let _ = vfs.remove_file(&tmp);
            return Err(e);
        }
        vfs.rename(&tmp, &snap_path)
            .map_err(|e| IndexError::io(&snap_path, e))?;
        let wal = Wal::create_policy_with(vfs.clone(), &dir.join(WAL_FILE), 0, policy)?;
        let mut index = Index {
            dir: dir.to_path_buf(),
            vfs,
            bfh,
            taxa: std::sync::Arc::new(taxa),
            generation: 0,
            wal: Some(wal),
            wal_pending: 0,
            policy,
            notes: Vec::new(),
            frozen: None,
        };
        index.write_frozen_sidecar();
        Ok(index)
    }

    /// Open the index at `dir` with the permissive default guard.
    pub fn open(dir: &Path) -> Result<Index, IndexError> {
        Index::open_guarded(dir, &RunGuard::default())
    }

    /// Open the index at `dir`: load and validate the snapshot, then
    /// replay the WAL on top of it (reusing the same incremental
    /// `add_tree`/`remove_tree` paths the live index uses). `guard` bounds
    /// the snapshot load.
    pub fn open_guarded(dir: &Path, guard: &RunGuard) -> Result<Index, IndexError> {
        Index::open_guarded_with(real_vfs(), dir, guard)
    }

    /// [`Index::open`] routed through an explicit [`Vfs`].
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: &Path) -> Result<Index, IndexError> {
        Index::open_guarded_with(vfs, dir, &RunGuard::default())
    }

    /// [`Index::open_guarded`] routed through an explicit [`Vfs`].
    pub fn open_guarded_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        guard: &RunGuard,
    ) -> Result<Index, IndexError> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        if !vfs.exists(&snap_path) {
            return Err(IndexError::NotAnIndex(format!(
                "no {SNAPSHOT_FILE} in {}",
                dir.display()
            )));
        }
        // Compaction scratch left by a crash between the snapshot write
        // and the rename: the real snapshot is authoritative, the scratch
        // is garbage.
        let tmp = dir.join(SNAPSHOT_TMP);
        let mut notes = Vec::new();
        if vfs.exists(&tmp) && vfs.remove_file(&tmp).is_ok() {
            notes.push(format!(
                "removed stale compaction scratch {SNAPSHOT_TMP} (crash before commit)"
            ));
        }
        let frozen_tmp = dir.join(FROZEN_TMP);
        if vfs.exists(&frozen_tmp) && vfs.remove_file(&frozen_tmp).is_ok() {
            notes.push(format!(
                "removed stale frozen sidecar scratch {FROZEN_TMP} (crash before commit)"
            ));
        }
        let Snapshot {
            mut bfh,
            taxa,
            meta,
        } = read_snapshot_with(&*vfs, &snap_path, guard)?;

        let wal_path = dir.join(WAL_FILE);
        let (wal, wal_pending) = if vfs.exists(&wal_path) {
            match Wal::recover(vfs.clone(), &wal_path)? {
                None => {
                    // Header torn by a crash mid log-reset: the log holds
                    // nothing replayable — not even its policy byte — so
                    // start a fresh strict one.
                    notes.push(
                        "wal: header torn by a crash during log reset; recreated empty log \
                         (strict policy — the torn header lost the recorded one)"
                            .to_string(),
                    );
                    (
                        Wal::create_with(vfs.clone(), &wal_path, meta.generation)?,
                        0,
                    )
                }
                Some(WalOpen {
                    wal,
                    records,
                    notes: wal_notes,
                }) => {
                    notes.extend(wal_notes);
                    match wal.generation().cmp(&meta.generation) {
                        std::cmp::Ordering::Equal => {
                            replay(&mut bfh, &taxa, &records, wal.policy(), &mut notes)?;
                            (wal, records.len())
                        }
                        std::cmp::Ordering::Less => {
                            // Crash window between snapshot rename and WAL
                            // reset: these batches are already folded into
                            // the snapshot.
                            notes.push(format!(
                                "wal: discarded stale generation-{} log ({} records already \
                                 folded into the generation-{} snapshot)",
                                wal.generation(),
                                records.len(),
                                meta.generation
                            ));
                            let policy = wal.policy();
                            drop(wal);
                            (
                                Wal::create_policy_with(
                                    vfs.clone(),
                                    &wal_path,
                                    meta.generation,
                                    policy,
                                )?,
                                0,
                            )
                        }
                        std::cmp::Ordering::Greater => {
                            return Err(IndexError::Corrupt {
                                section: "wal-header",
                                detail: format!(
                                    "WAL generation {} is ahead of snapshot generation {}",
                                    wal.generation(),
                                    meta.generation
                                ),
                            });
                        }
                    }
                }
            }
        } else {
            (
                Wal::create_with(vfs.clone(), &wal_path, meta.generation)?,
                0,
            )
        };

        let policy = wal.policy();
        let mut index = Index {
            dir: dir.to_path_buf(),
            vfs,
            bfh,
            taxa: std::sync::Arc::new(taxa),
            generation: meta.generation,
            wal: Some(wal),
            wal_pending,
            policy,
            notes,
            frozen: None,
        };
        // Prime the probe-ready table from the frozen sidecar when it is
        // current — skipping the freeze pass (and on mapped filesystems,
        // the lane copies). Only a sidecar at this exact generation with
        // no pending WAL deltas can stand in for a fresh freeze; anything
        // else degrades to freezing, with a note if the file looked wrong.
        if wal_pending == 0 {
            let frozen_path = index.dir.join(FROZEN_FILE);
            if index.vfs.exists(&frozen_path) {
                match frozen_file::open_frozen_with(&*index.vfs, &frozen_path, guard) {
                    Ok(f) => {
                        let l = f.meta.layout;
                        if f.meta.generation != index.generation {
                            index.notes.push(format!(
                                "frozen sidecar is stale (generation {} vs {}); ignoring it",
                                f.meta.generation, index.generation
                            ));
                        } else if l.n_taxa != index.bfh.n_taxa()
                            || l.n_trees != index.bfh.n_trees()
                            || l.sum != index.bfh.sum()
                            || l.distinct != index.bfh.distinct()
                        {
                            index.notes.push(
                                "frozen sidecar disagrees with the snapshot scalars; ignoring it"
                                    .to_string(),
                            );
                        } else {
                            index.frozen = Some(std::sync::Arc::new(f.frozen));
                        }
                    }
                    Err(e) => index
                        .notes
                        .push(format!("frozen sidecar unreadable (cache only): {e}")),
                }
            }
        }
        // Freeze eagerly: an opened index is overwhelmingly read-next, and
        // the freeze is one pass over a hash that was just built anyway.
        index.frozen();
        Ok(index)
    }

    /// Recovery notes accumulated while opening this index (empty on a
    /// clean open).
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Current compaction generation (no side effects, unlike
    /// [`Index::stats`] which also refreshes global gauges).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// WAL records appended since the last compaction (no side effects).
    pub fn wal_pending(&self) -> usize {
        self.wal_pending
    }

    /// The replay policy this index's WAL was created with.
    pub fn policy(&self) -> WalPolicy {
        self.policy
    }

    /// Rewrite the frozen sidecar cache for the current generation
    /// (tmp + rename). Failures are cache misses, not errors: the note
    /// records them and the snapshot path still serves everything.
    fn write_frozen_sidecar(&mut self) {
        let frozen = self.frozen();
        let tmp = self.dir.join(FROZEN_TMP);
        let path = self.dir.join(FROZEN_FILE);
        let result = frozen_file::write_frozen_with(&*self.vfs, &tmp, &frozen, self.generation)
            .and_then(|()| {
                self.vfs
                    .rename(&tmp, &path)
                    .map_err(|e| IndexError::io(&path, e))
            });
        if let Err(e) = result {
            let _ = self.vfs.remove_file(&tmp);
            self.notes
                .push(format!("frozen sidecar write failed (cache only): {e}"));
        }
    }

    /// The frozen probe-optimized view of the current hash, built on first
    /// use after open or mutation and cached until the next mutation.
    pub fn frozen(&mut self) -> std::sync::Arc<bfhrf::FrozenBfh> {
        if let Some(f) = &self.frozen {
            return f.clone();
        }
        let start = std::time::Instant::now();
        let f = std::sync::Arc::new(self.bfh.freeze());
        phylo_obs::global()
            .histogram("index_freeze_ns", &[])
            .record_duration(start.elapsed());
        self.frozen = Some(f.clone());
        f
    }

    /// Snapshot the current state as an immutable [`QueryView`]. Freezes
    /// the hash if a mutation invalidated the cache; the returned view
    /// stays valid (and internally consistent) no matter what happens to
    /// the index afterwards.
    pub fn view(&mut self) -> QueryView {
        QueryView {
            frozen: self.frozen(),
            taxa: self.taxa.clone(),
            generation: self.generation,
        }
    }

    /// The live hash (snapshot plus replayed/pending WAL batches).
    pub fn bfh(&self) -> &Bfh {
        &self.bfh
    }

    /// The frozen taxon namespace.
    pub fn taxa(&self) -> &TaxonSet {
        &self.taxa
    }

    /// The directory this index lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live counters. Also refreshes the `index_generation` and
    /// `index_wal_pending` gauges so the metrics registry tracks whichever
    /// index was inspected last (one daemon process serves one index).
    pub fn stats(&self) -> IndexStats {
        let reg = phylo_obs::global();
        reg.gauge("index_generation", &[])
            .set(self.generation as i64);
        reg.gauge("index_wal_pending", &[])
            .set(self.wal_pending as i64);
        IndexStats {
            generation: self.generation,
            n_trees: self.bfh.n_trees(),
            n_taxa: self.bfh.n_taxa(),
            distinct: self.bfh.distinct(),
            sum: self.bfh.sum(),
            wal_pending: self.wal_pending,
        }
    }

    /// Parse `newick` against the frozen namespace without mutating it.
    fn parse_against_taxa(&self, newick: &str) -> Result<Tree, IndexError> {
        let mut scratch = (*self.taxa).clone();
        Ok(parse_newick(newick, &mut scratch, TaxaPolicy::Require)?)
    }

    /// Whether the log is live (false after a committed compaction whose
    /// WAL reset failed; mutations are refused until healed).
    pub fn wal_available(&self) -> bool {
        self.wal.is_some()
    }

    /// The live log, or a typed refusal if a failed compaction left it
    /// out of service.
    fn wal_mut(&mut self) -> Result<&mut Wal, IndexError> {
        self.wal.as_mut().ok_or_else(|| IndexError::WalUnavailable {
            detail: "the log could not be reset after the last compaction committed".into(),
        })
    }

    /// Log and apply an add of `tree`. WAL-first: the record is durable
    /// before the in-memory hash changes, so a crash replays it on open.
    pub fn append_add(&mut self, tree: &Tree) -> Result<(), IndexError> {
        let newick = write_newick(tree, &self.taxa);
        self.wal_mut()?.append(WalOp::Add, &newick)?;
        self.bfh.add_tree(tree, &self.taxa);
        self.wal_pending += 1;
        self.frozen = None;
        Ok(())
    }

    /// Parse `newick` against the index taxa, then log and apply the add.
    pub fn append_add_newick(&mut self, newick: &str) -> Result<(), IndexError> {
        let tree = self.parse_against_taxa(newick)?;
        self.append_add(&tree)
    }

    /// Log and apply a removal of `tree`. The removal is verified against
    /// the live hash **before** the record is logged, so a tree that was
    /// never added fails cleanly and leaves both memory and disk unchanged.
    pub fn append_remove(&mut self, tree: &Tree) -> Result<(), IndexError> {
        // Check WAL availability before touching the hash so a refusal
        // leaves memory untouched.
        self.wal_mut()?;
        // remove_tree is verify-then-mutate: on error the hash is untouched
        // and nothing must reach the WAL.
        self.bfh.remove_tree(tree, &self.taxa)?;
        let newick = write_newick(tree, &self.taxa);
        if let Err(e) = self
            .wal_mut()
            .and_then(|wal| wal.append(WalOp::Remove, &newick))
        {
            // Disk refused the record; roll the in-memory hash back so it
            // keeps matching what a reopen would reconstruct.
            self.bfh.add_tree(tree, &self.taxa);
            return Err(e);
        }
        self.wal_pending += 1;
        self.frozen = None;
        Ok(())
    }

    /// Parse `newick` against the index taxa, then log and apply the
    /// removal.
    pub fn append_remove_newick(&mut self, newick: &str) -> Result<(), IndexError> {
        let tree = self.parse_against_taxa(newick)?;
        self.append_remove(&tree)
    }

    /// Encode `tree` as a [`phylo_wire`] record against this index's own
    /// namespace. `tree` must already be expressed in index taxon ids
    /// (remap before calling if it came from a foreign namespace).
    fn encode_bin(&self, tree: &Tree) -> Result<Vec<u8>, IndexError> {
        phylo_wire::encode_tree_vec(tree).map_err(|e| e.into_phylo().into())
    }

    /// [`Index::append_add`] logging the record in the compact binary
    /// encoding instead of Newick. Replay treats both identically; binary
    /// records skip the Newick round-trip on both append and replay.
    pub fn append_add_bin(&mut self, tree: &Tree) -> Result<(), IndexError> {
        let bytes = self.encode_bin(tree)?;
        self.wal_mut()?.append_bin(WalOp::Add, &bytes)?;
        self.bfh.add_tree(tree, &self.taxa);
        self.wal_pending += 1;
        self.frozen = None;
        Ok(())
    }

    /// [`Index::append_remove`] logging the record in the compact binary
    /// encoding instead of Newick. Verified-then-logged like the Newick
    /// path: a tree the hash does not hold fails cleanly, and a refused
    /// append rolls the in-memory removal back.
    pub fn append_remove_bin(&mut self, tree: &Tree) -> Result<(), IndexError> {
        self.wal_mut()?;
        let bytes = self.encode_bin(tree)?;
        self.bfh.remove_tree(tree, &self.taxa)?;
        if let Err(e) = self
            .wal_mut()
            .and_then(|wal| wal.append_bin(WalOp::Remove, &bytes))
        {
            self.bfh.add_tree(tree, &self.taxa);
            return Err(e);
        }
        self.wal_pending += 1;
        self.frozen = None;
        Ok(())
    }

    /// Fold the WAL into a fresh snapshot at generation `g+1` and reset
    /// the log. Returns the new snapshot's header. See the module docs for
    /// the crash-safety sequencing.
    ///
    /// # Failure handling
    ///
    /// * Snapshot write or rename fails (ENOSPC, torn write, ...) → the
    ///   scratch file is removed and **nothing changed**: the old
    ///   snapshot, WAL, and in-memory state all stay live.
    /// * The rename commits but the WAL reset fails → the new snapshot
    ///   holds every record durably, but the on-disk log is now stale;
    ///   appending to it would be silently discarded by the next open, so
    ///   the log is taken out of service ([`IndexError::WalUnavailable`]
    ///   on mutations) until a retried `compact` heals it.
    pub fn compact(&mut self) -> Result<SnapshotMeta, IndexError> {
        self.compact_with_hook(|_| Ok(()))
    }

    /// [`Index::compact`] with a callback run immediately after the
    /// snapshot rename commits (and before the WAL reset). The catalog
    /// layer uses this seam to commit its sidecar tree list at the same
    /// generation: if a crash (or the hook itself) interrupts the window,
    /// the still-stale WAL carries exactly the records the sidecar is
    /// missing, so reopening can reconstruct it. A hook failure leaves the
    /// WAL out of service ([`IndexError::WalUnavailable`] on mutations)
    /// until a retried compaction or a reopen heals it.
    pub fn compact_with_hook(
        &mut self,
        after_commit: impl FnOnce(u64) -> Result<(), IndexError>,
    ) -> Result<SnapshotMeta, IndexError> {
        if self.wal.is_some() {
            let next = self.generation + 1;
            let tmp = self.dir.join(SNAPSHOT_TMP);
            let snap_path = self.dir.join(SNAPSHOT_FILE);
            if let Err(e) = write_snapshot_with(&*self.vfs, &tmp, &self.bfh, &self.taxa, next) {
                let _ = self.vfs.remove_file(&tmp);
                return Err(e);
            }
            if let Err(e) = self.vfs.rename(&tmp, &snap_path) {
                let _ = self.vfs.remove_file(&tmp);
                return Err(IndexError::io(&snap_path, e));
            }
            // The rename is the commit point: from here the index IS at
            // `next`, and the old-generation log handle must never be
            // appended to again (a reopen discards it as stale).
            self.generation = next;
            self.wal = None;
            self.wal_pending = 0;
            after_commit(next)?;
        }
        // (Re)create the log at the committed generation. On failure the
        // index stays fully readable — the snapshot holds everything —
        // but mutations are refused until a later compact succeeds here.
        self.wal = Some(Wal::create_policy_with(
            self.vfs.clone(),
            &self.dir.join(WAL_FILE),
            self.generation,
            self.policy,
        )?);
        // Refresh the sidecar cache for the committed generation (best
        // effort — the old-generation sidecar would simply be ignored).
        self.write_frozen_sidecar();
        Ok(SnapshotMeta {
            generation: self.generation,
            n_taxa: self.bfh.n_taxa(),
            n_trees: self.bfh.n_trees(),
            n_shards: self.bfh.n_shards(),
            sum: self.bfh.sum(),
            distinct: self.bfh.distinct(),
        })
    }

    /// Tear the index apart into its hash and taxa (for callers that want
    /// to hand the state to a long-lived reader).
    pub fn into_parts(self) -> (Bfh, TaxonSet) {
        let taxa = std::sync::Arc::try_unwrap(self.taxa).unwrap_or_else(|a| (*a).clone());
        (self.bfh, taxa)
    }

    /// Open the index at `dir` read-only through the frozen sidecar with
    /// the permissive default guard. See [`Index::open_frozen_with`].
    pub fn open_frozen(dir: &Path) -> Result<FrozenOpen, IndexError> {
        Index::open_frozen_with(real_vfs(), dir, &RunGuard::default())
    }

    /// The zero-copy read path: open the index at `dir` for querying
    /// **without** materializing its splits. Reads only the snapshot
    /// header and taxon table, confirms the WAL holds nothing replayable,
    /// and serves the probe-ready table straight from the `frozen.bfh`
    /// sidecar — memory-mapped in place where the filesystem supports it,
    /// so cold-opening a huge index costs metadata plus page faults on
    /// the splits actually probed.
    ///
    /// Declines with [`IndexError::FrozenUnavailable`] whenever the fast
    /// path cannot prove it would serve exactly what [`Index::open`]
    /// would: pending or torn WAL records, a missing or stale sidecar, or
    /// a sidecar that fails validation. Callers fall back to the full
    /// open (and its next compaction refreshes the sidecar).
    pub fn open_frozen_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        guard: &RunGuard,
    ) -> Result<FrozenOpen, IndexError> {
        let unavailable = |detail: String| IndexError::FrozenUnavailable { detail };
        let snap_path = dir.join(SNAPSHOT_FILE);
        if !vfs.exists(&snap_path) {
            return Err(IndexError::NotAnIndex(format!(
                "no {SNAPSHOT_FILE} in {}",
                dir.display()
            )));
        }
        let (meta, taxa) = read_taxa_with(&*vfs, &snap_path, guard)?;

        // The fast path is strictly read-only: it must not truncate torn
        // tails or recreate stale logs, so anything the read-write open
        // would have to repair or replay is a refusal, not a repair.
        let wal_path = dir.join(WAL_FILE);
        if vfs.exists(&wal_path) {
            let scan = scan_wal(&*vfs, &wal_path)?;
            if !matches!(scan.tail, WalTail::Clean) {
                return Err(unavailable(
                    "the WAL has a torn tail; open the index read-write to recover it".into(),
                ));
            }
            if scan.generation > meta.generation {
                return Err(IndexError::Corrupt {
                    section: "wal-header",
                    detail: format!(
                        "WAL generation {} is ahead of snapshot generation {}",
                        scan.generation, meta.generation
                    ),
                });
            }
            if scan.generation == meta.generation && !scan.records.is_empty() {
                return Err(unavailable(format!(
                    "{} WAL records await replay; open read-write and compact to refresh \
                     the frozen sidecar",
                    scan.records.len()
                )));
            }
            // generation < meta: a stale log the read-write open would
            // discard — its records are already folded into the snapshot.
        }

        let frozen_path = dir.join(FROZEN_FILE);
        if !vfs.exists(&frozen_path) {
            return Err(unavailable(format!(
                "no {FROZEN_FILE} sidecar (compact the index once to write it)"
            )));
        }
        let opened = frozen_file::open_frozen_with(&*vfs, &frozen_path, guard)
            .map_err(|e| unavailable(format!("sidecar rejected: {e}")))?;
        if opened.meta.generation != meta.generation {
            return Err(unavailable(format!(
                "sidecar is stale (generation {} vs snapshot {})",
                opened.meta.generation, meta.generation
            )));
        }
        let l = opened.meta.layout;
        if l.n_taxa != meta.n_taxa
            || l.n_trees != meta.n_trees
            || l.sum != meta.sum
            || l.distinct != meta.distinct
        {
            return Err(unavailable(
                "sidecar layout disagrees with the snapshot header".into(),
            ));
        }
        Ok(FrozenOpen {
            frozen: std::sync::Arc::new(opened.frozen),
            taxa: std::sync::Arc::new(taxa),
            meta,
            mapped: opened.mapped,
        })
    }
}

/// A read-only index opened through the frozen sidecar — everything a
/// query path needs, without a [`Bfh`] ever being materialized.
#[derive(Debug)]
pub struct FrozenOpen {
    /// The probe-ready table (possibly borrowing a live memory mapping).
    pub frozen: std::sync::Arc<bfhrf::FrozenBfh>,
    /// The frozen taxon namespace.
    pub taxa: std::sync::Arc<TaxonSet>,
    /// The snapshot header the sidecar was validated against.
    pub meta: SnapshotMeta,
    /// Whether the table lanes are memory-mapped (zero-copy) rather than
    /// owned copies.
    pub mapped: bool,
}

impl FrozenOpen {
    /// An immutable [`QueryView`] over this read-only open.
    pub fn view(&self) -> QueryView {
        QueryView {
            frozen: self.frozen.clone(),
            taxa: self.taxa.clone(),
            generation: self.meta.generation,
        }
    }
}
