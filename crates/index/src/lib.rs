//! Persistent on-disk BFH index.
//!
//! The in-memory bipartition frequency hash ([`bfhrf::Bfh`]) is cheap to
//! query but costs a full Newick parse + split enumeration to rebuild.
//! This crate makes it durable:
//!
//! * [`snapshot`] — a versioned binary snapshot of a whole hash (taxon
//!   table + sorted split records, per-section FNV-1a checksums). Loading
//!   one reconstructs a hash **bitwise-identical** to the one written:
//!   same frequencies, same `sum`, same shard routing, so every RF answer
//!   matches an in-memory build exactly.
//! * [`wal`] — an append-only log of add/remove tree batches, fsynced per
//!   record, replayed on open through the same incremental
//!   `add_tree`/`remove_tree` paths the live index uses.
//! * [`Index`] — the directory-level lifecycle tying the two together:
//!   create, open (snapshot + replay), append, and [`Index::compact`],
//!   which folds the log into a next-generation snapshot with a
//!   rename-as-commit-point protocol (see [`index`] module docs).
//!
//! Corruption anywhere — flipped bytes, truncation, stale or future WAL
//! generations — surfaces as a typed [`IndexError`], never a panic, so a
//! daemon can keep serving from its last good in-memory state.

pub mod catalog;
pub mod error;
pub mod format;
pub mod frozen_file;
pub mod index;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use catalog::{
    replay_manifest, scan_manifest, validate_name, Catalog, CatalogOp, Collection, CollectionCell,
    CollectionInfo, ManifestScan, PinnedCollection, COLLECTIONS_DIR, DEFAULT_COLLECTION,
    MANIFEST_FILE, MANIFEST_MAGIC, MANIFEST_VERSION, TREES_FILE,
};
pub use error::IndexError;
pub use frozen_file::{
    open_frozen_with as open_frozen_file_with, read_frozen_meta, read_frozen_meta_with,
    verify_frozen_with, write_frozen_with, FrozenMeta, FrozenOpenFile, FrozenSection, FROZEN_MAGIC,
    FROZEN_VERSION,
};
pub use index::{FrozenOpen, Index, IndexStats, QueryView, FROZEN_FILE, SNAPSHOT_FILE, WAL_FILE};
pub use snapshot::{
    read_meta, read_meta_with, read_snapshot, read_snapshot_with, read_taxa_with, write_snapshot,
    write_snapshot_with, Snapshot, SnapshotMeta, FORMAT_VERSION, SNAPSHOT_MAGIC,
};
pub use vfs::{
    real_vfs, seeded_schedule, Fault, FaultKind, FaultSite, FaultVfs, JournalOp, Mapping, MemVfs,
    RealVfs, Vfs, VfsFile,
};
pub use wal::{
    read_wal, scan_wal, Wal, WalOp, WalOpen, WalPayload, WalPolicy, WalRecord, WalScan, WalTail,
    WAL_MAGIC, WAL_VERSION,
};
