//! The frozen-table sidecar: a [`bfhrf::FrozenBfh`] serialized lane-by-lane
//! so the probe-ready table can be reopened without re-freezing — and, on
//! filesystems that support it, memory-mapped zero-copy so opening a huge
//! index never materializes its splits at all.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic    8  bytes  "BFHFROZ\0"          (not covered by any checksum)
//! version  u16                            (not covered by any checksum)
//! -- header section ------------------------------------------------
//! generation u64 | digest u64
//! n_taxa u64 | n_trees u64 | sum u64 | distinct u64 | capacity u64
//! ctrl_off u64 | ctrl_len u64 | ctrl_sum u64
//! entries_off u64 | entries_len u64 | entries_sum u64
//! pool_off u64 | pool_len u64 | pool_sum u64
//! FNV-1a 64 checksum of the fields above
//! -- lanes, each zero-padded to a 64-byte-aligned offset ------------
//! ctrl lane    capacity + GROUP_SLOTS bytes (wrap-mirror included)
//! entries lane capacity × 16-byte records (key u64 · freq u32 · offset u32)
//! pool lane    distinct × words_for(n_taxa) u64 mask words
//! EOF (file length must be exactly pool_off + pool_len)
//! ```
//!
//! `digest` is [`bfhrf::FrozenBfh::digest`] over every lane — the bitwise
//! identity witness. The open path does **not** recompute it (that would
//! page the whole pool and defeat lazy mapping); it trusts the sealed
//! header plus the per-lane checks below, and [`verify_frozen_with`]
//! recomputes everything for `index inspect --check`.
//!
//! # What each open path verifies
//!
//! Both paths verify the header seal, the layout-derived lane geometry
//! (lengths, 64-byte alignment, ordering, exact file length), the ctrl and
//! entries lane checksums, and every structural invariant the probe loops
//! rely on ([`FrozenBfh::from_le_parts`] / `from_mapped_le` reject unsafe
//! layouts). The read-and-materialize path additionally verifies the pool
//! lane checksum; the mmap path leaves the pool lazily paged — a flipped
//! pool byte there can only mis-rank a split's mask, which the header seal
//! makes as likely as a snapshot checksum collision, and `inspect --check`
//! still catches it.

use crate::error::IndexError;
use crate::format::{fnv1a64, Digest};
use crate::vfs::{RealVfs, Vfs};
use bfhrf::{FrozenBfh, FrozenLayout, RunGuard};
use phylo_bitset::group::GROUP_SLOTS;
use phylo_bitset::words_for;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every frozen sidecar.
pub const FROZEN_MAGIC: &[u8; 8] = b"BFHFROZ\0";
/// Frozen sidecar format version this build reads and writes.
pub const FROZEN_VERSION: u16 = 1;

/// magic + version + 16 sealed u64 fields + seal.
const HEADER_BYTES: u64 = 8 + 2 + 16 * 8 + 8;
/// Every lane starts on a 64-byte boundary so a page-aligned mapping keeps
/// the entry records naturally aligned (and cache-line tidy).
const LANE_ALIGN: u64 = 64;
/// Same header-sanity ceiling the snapshot reader applies.
const MAX_TAXA: u64 = 100_000_000;

fn align_up(x: u64) -> u64 {
    x.div_ceil(LANE_ALIGN) * LANE_ALIGN
}

/// One lane's location and checksum, straight from the sealed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenSection {
    /// Absolute byte offset of the lane (64-byte aligned).
    pub offset: u64,
    /// Lane length in bytes.
    pub len: u64,
    /// FNV-1a 64 of the lane bytes.
    pub checksum: u64,
}

/// The validated header of a frozen sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenMeta {
    /// Generation of the snapshot this sidecar shadows.
    pub generation: u64,
    /// [`FrozenBfh::digest`] of the serialized table.
    pub digest: u64,
    /// The scalar layout both reconstruction paths take.
    pub layout: FrozenLayout,
    /// Control lane (capacity + mirror-group bytes).
    pub ctrl: FrozenSection,
    /// Entry lane (capacity × 16-byte records).
    pub entries: FrozenSection,
    /// Mask pool lane (distinct × words u64s).
    pub pool: FrozenSection,
}

impl FrozenMeta {
    /// Exact file length the header implies.
    pub fn file_len(&self) -> u64 {
        self.pool.offset + self.pool.len
    }
}

/// A frozen table opened from a sidecar, plus how it was opened.
#[derive(Debug)]
pub struct FrozenOpenFile {
    /// The probe-ready table.
    pub frozen: FrozenBfh,
    /// The validated header.
    pub meta: FrozenMeta,
    /// Whether the lanes borrow a live memory mapping (zero-copy) rather
    /// than owned heap copies.
    pub mapped: bool,
}

fn corrupt(detail: String) -> IndexError {
    IndexError::Corrupt {
        section: "frozen",
        detail,
    }
}

/// Write `frozen` as a sidecar at `path`, fsynced. The caller owns
/// crash-safety sequencing (write to a temp name, then rename).
pub fn write_frozen_with(
    vfs: &dyn Vfs,
    path: &Path,
    frozen: &FrozenBfh,
    generation: u64,
) -> Result<(), IndexError> {
    let layout = frozen.layout();
    let ctrl = frozen.ctrl_lane();
    let pool = frozen.pool_lane();

    let mut entry_bytes = Vec::with_capacity(layout.capacity * 16);
    for rec in frozen.entry_records() {
        entry_bytes.extend_from_slice(&rec);
    }
    let ctrl_sum = fnv1a64(ctrl);
    let entries_sum = fnv1a64(&entry_bytes);
    let mut pool_digest = Digest::new();
    for word in pool {
        pool_digest.update(&word.to_le_bytes());
    }

    let ctrl_off = align_up(HEADER_BYTES);
    let entries_off = align_up(ctrl_off + ctrl.len() as u64);
    let pool_off = align_up(entries_off + entry_bytes.len() as u64);

    let mut header = Vec::with_capacity(HEADER_BYTES as usize);
    header.extend_from_slice(FROZEN_MAGIC);
    header.extend_from_slice(&FROZEN_VERSION.to_le_bytes());
    let sealed_from = header.len();
    for v in [
        generation,
        frozen.digest(),
        layout.n_taxa as u64,
        layout.n_trees as u64,
        layout.sum,
        layout.distinct as u64,
        layout.capacity as u64,
        ctrl_off,
        ctrl.len() as u64,
        ctrl_sum,
        entries_off,
        entry_bytes.len() as u64,
        entries_sum,
        pool_off,
        pool.len() as u64 * 8,
        pool_digest.value(),
    ] {
        header.extend_from_slice(&v.to_le_bytes());
    }
    let seal = fnv1a64(&header[sealed_from..]);
    header.extend_from_slice(&seal.to_le_bytes());

    let file = vfs.create(path).map_err(|e| IndexError::io(path, e))?;
    let mut w = std::io::BufWriter::new(file);
    let mut written = 0u64;
    macro_rules! put {
        ($bytes:expr) => {{
            let b: &[u8] = $bytes;
            written += b.len() as u64;
            w.write_all(b).map_err(|e| IndexError::io(path, e))?;
        }};
    }
    macro_rules! pad_to {
        ($to:expr) => {
            put!(&vec![0u8; ($to - written) as usize])
        };
    }

    put!(&header);
    pad_to!(ctrl_off);
    put!(ctrl);
    pad_to!(entries_off);
    put!(&entry_bytes);
    pad_to!(pool_off);
    // The pool is the big lane: stream it through a fixed chunk instead of
    // materializing a second copy.
    let mut chunk = Vec::with_capacity(64 * 1024);
    for word in pool {
        chunk.extend_from_slice(&word.to_le_bytes());
        if chunk.len() >= 64 * 1024 {
            put!(&chunk);
            chunk.clear();
        }
    }
    put!(&chunk);
    debug_assert_eq!(written, pool_off + pool.len() as u64 * 8);
    w.flush().map_err(|e| IndexError::io(path, e))?;
    let mut file = w
        .into_inner()
        .map_err(|e| IndexError::io(path, e.into_error()))?;
    file.sync_all().map_err(|e| IndexError::io(path, e))?;
    Ok(())
}

/// Parse and validate a sidecar header from its first [`HEADER_BYTES`]
/// bytes: seal, sanity bounds, and the lane geometry the layout dictates.
fn parse_header(head: &[u8]) -> Result<FrozenMeta, IndexError> {
    if head.len() < HEADER_BYTES as usize {
        return Err(corrupt(format!(
            "file truncated inside the header ({} of {HEADER_BYTES} bytes)",
            head.len()
        )));
    }
    if &head[..8] != FROZEN_MAGIC {
        return Err(IndexError::NotAnIndex(format!(
            "bad frozen sidecar magic {:02x?} (expected {:02x?})",
            &head[..8],
            FROZEN_MAGIC
        )));
    }
    let version = u16::from_le_bytes([head[8], head[9]]);
    if version == 0 || version > FROZEN_VERSION {
        return Err(IndexError::Version {
            found: version,
            supported: FROZEN_VERSION,
        });
    }
    let sealed = &head[10..HEADER_BYTES as usize - 8];
    let want = u64::from_le_bytes(
        head[HEADER_BYTES as usize - 8..HEADER_BYTES as usize]
            .try_into()
            .expect("8 bytes"),
    );
    if fnv1a64(sealed) != want {
        return Err(corrupt("header checksum mismatch".into()));
    }
    let mut fields = [0u64; 16];
    for (i, f) in fields.iter_mut().enumerate() {
        *f = u64::from_le_bytes(sealed[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
    }
    let [generation, digest, n_taxa, n_trees, sum, distinct, capacity, ctrl_off, ctrl_len, ctrl_sum, entries_off, entries_len, entries_sum, pool_off, pool_len, pool_sum] =
        fields;

    // Checksum passed; sanity-bound everything before it sizes or indexes
    // anything (a colliding header must still not drive huge allocations
    // or out-of-bounds lane windows).
    if n_taxa == 0 || n_taxa > MAX_TAXA {
        return Err(corrupt(format!("implausible taxon count {n_taxa}")));
    }
    if n_trees > u64::from(u32::MAX) {
        return Err(corrupt(format!("implausible tree count {n_trees}")));
    }
    let words = words_for(n_taxa as usize) as u64;
    let expect = |name: &str, got: u64, want: Option<u64>| -> Result<u64, IndexError> {
        let want = want.ok_or_else(|| corrupt(format!("{name} length overflows")))?;
        if got != want {
            return Err(corrupt(format!(
                "{name} length {got} does not match layout ({want})"
            )));
        }
        Ok(want)
    };
    let ctrl_want = capacity.checked_add(GROUP_SLOTS as u64);
    let ctrl_len = expect("ctrl lane", ctrl_len, ctrl_want)?;
    let entries_len = expect("entry lane", entries_len, capacity.checked_mul(16))?;
    let pool_len = expect(
        "pool lane",
        pool_len,
        distinct.checked_mul(words).and_then(|w| w.checked_mul(8)),
    )?;
    let mut cursor = align_up(HEADER_BYTES);
    for (name, off, len) in [
        ("ctrl", ctrl_off, ctrl_len),
        ("entries", entries_off, entries_len),
        ("pool", pool_off, pool_len),
    ] {
        if off != cursor {
            return Err(corrupt(format!(
                "{name} lane offset {off} breaks the aligned layout (expected {cursor})"
            )));
        }
        cursor = off
            .checked_add(len)
            .map(align_up)
            .ok_or_else(|| corrupt(format!("{name} lane extends past addressable range")))?;
    }
    let to_usize = |name: &str, v: u64| -> Result<usize, IndexError> {
        usize::try_from(v).map_err(|_| corrupt(format!("{name} does not fit this host")))
    };
    Ok(FrozenMeta {
        generation,
        digest,
        layout: FrozenLayout {
            n_taxa: to_usize("n_taxa", n_taxa)?,
            n_trees: to_usize("n_trees", n_trees)?,
            sum,
            distinct: to_usize("distinct", distinct)?,
            capacity: to_usize("capacity", capacity)?,
        },
        ctrl: FrozenSection {
            offset: ctrl_off,
            len: ctrl_len,
            checksum: ctrl_sum,
        },
        entries: FrozenSection {
            offset: entries_off,
            len: entries_len,
            checksum: entries_sum,
        },
        pool: FrozenSection {
            offset: pool_off,
            len: pool_len,
            checksum: pool_sum,
        },
    })
}

/// Read and validate only the sidecar header at `path` — cheap inspection.
pub fn read_frozen_meta_with(vfs: &dyn Vfs, path: &Path) -> Result<FrozenMeta, IndexError> {
    let mut r = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut head = vec![0u8; HEADER_BYTES as usize];
    let mut filled = 0;
    while filled < head.len() {
        match r.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(IndexError::io(path, e)),
        }
    }
    parse_header(&head[..filled])
}

/// Slice `bytes[offset..offset + len]` for a lane, bounds-checked.
fn lane<'a>(bytes: &'a [u8], name: &str, s: &FrozenSection) -> Result<&'a [u8], IndexError> {
    let off = s.offset as usize;
    let len = s.len as usize;
    bytes
        .get(off..off + len)
        .ok_or_else(|| corrupt(format!("{name} lane extends past end of file")))
}

fn check_lane_sum(bytes: &[u8], name: &str, want: u64) -> Result<(), IndexError> {
    if fnv1a64(bytes) != want {
        return Err(corrupt(format!("{name} lane checksum mismatch")));
    }
    Ok(())
}

fn materialize(meta: &FrozenMeta, bytes: &[u8]) -> Result<FrozenBfh, IndexError> {
    if bytes.len() as u64 != meta.file_len() {
        return Err(corrupt(format!(
            "file is {} bytes, header implies {}",
            bytes.len(),
            meta.file_len()
        )));
    }
    let ctrl = lane(bytes, "ctrl", &meta.ctrl)?;
    let entries = lane(bytes, "entries", &meta.entries)?;
    let pool_bytes = lane(bytes, "pool", &meta.pool)?;
    check_lane_sum(ctrl, "ctrl", meta.ctrl.checksum)?;
    check_lane_sum(entries, "entries", meta.entries.checksum)?;
    check_lane_sum(pool_bytes, "pool", meta.pool.checksum)?;
    let pool: Vec<u64> = pool_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    FrozenBfh::from_le_parts(meta.layout, ctrl.to_vec(), entries, pool).map_err(corrupt)
}

/// Open the sidecar at `path`, zero-copy over a memory mapping when the
/// filesystem provides one (little-endian hosts), otherwise by reading and
/// materializing owned lanes. `guard` bounds the materializing path's
/// allocation.
pub fn open_frozen_with(
    vfs: &dyn Vfs,
    path: &Path,
    guard: &RunGuard,
) -> Result<FrozenOpenFile, IndexError> {
    #[cfg(target_endian = "little")]
    if let Some(map) = vfs.mmap_read(path).map_err(|e| IndexError::io(path, e))? {
        let bytes = map.as_slice();
        let meta = parse_header(bytes.get(..HEADER_BYTES as usize).unwrap_or(bytes))?;
        if bytes.len() as u64 != meta.file_len() {
            return Err(corrupt(format!(
                "file is {} bytes, header implies {}",
                bytes.len(),
                meta.file_len()
            )));
        }
        // ctrl + entries are the small probe-hot lanes: checksum them now.
        // The pool stays untouched so huge tables open without paging
        // their splits (see the module docs for the integrity argument).
        check_lane_sum(lane(bytes, "ctrl", &meta.ctrl)?, "ctrl", meta.ctrl.checksum)?;
        check_lane_sum(
            lane(bytes, "entries", &meta.entries)?,
            "entries",
            meta.entries.checksum,
        )?;
        let base = map.as_ptr();
        let guard_arc: Arc<dyn bfhrf::MapGuard> = Arc::new(map);
        // Safety: the pointers index into the mapping the guard keeps
        // alive, and parse_header proved each lane lies inside the file.
        let frozen = unsafe {
            FrozenBfh::from_mapped_le(
                meta.layout,
                base.add(meta.ctrl.offset as usize),
                base.add(meta.entries.offset as usize),
                base.add(meta.pool.offset as usize),
                guard_arc,
            )
        }
        .map_err(corrupt)?;
        phylo_obs::global()
            .counter("frozen_open_total", &[("mode", "mmap")])
            .inc();
        return Ok(FrozenOpenFile {
            frozen,
            meta,
            mapped: true,
        });
    }

    // Read-and-materialize fallback: in-memory filesystems, big-endian
    // hosts, or files the platform cannot map.
    let meta = read_frozen_meta_with(vfs, path)?;
    guard.check_alloc(
        "frozen sidecar",
        usize::try_from(meta.file_len())
            .map_err(|_| corrupt("file length does not fit this host".into()))?,
    )?;
    let mut r = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)
        .map_err(|e| IndexError::io(path, e))?;
    let frozen = materialize(&meta, &bytes)?;
    phylo_obs::global()
        .counter("frozen_open_total", &[("mode", "owned")])
        .inc();
    Ok(FrozenOpenFile {
        frozen,
        meta,
        mapped: false,
    })
}

/// Fully verify the sidecar at `path`: every lane checksum plus a
/// recomputed [`FrozenBfh::digest`] against the sealed header value. This
/// reads and pages everything — it is the `inspect --check` path, not the
/// open path.
pub fn verify_frozen_with(vfs: &dyn Vfs, path: &Path) -> Result<FrozenMeta, IndexError> {
    let meta = read_frozen_meta_with(vfs, path)?;
    let mut r = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)
        .map_err(|e| IndexError::io(path, e))?;
    let frozen = materialize(&meta, &bytes)?;
    if frozen.digest() != meta.digest {
        return Err(corrupt(format!(
            "table digest {:#018x} disagrees with sealed header digest {:#018x}",
            frozen.digest(),
            meta.digest
        )));
    }
    Ok(meta)
}

/// [`read_frozen_meta_with`] through the production filesystem.
pub fn read_frozen_meta(path: &Path) -> Result<FrozenMeta, IndexError> {
    read_frozen_meta_with(&RealVfs, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use bfhrf::Bfh;
    use phylo::TreeCollection;
    use std::path::PathBuf;

    fn sample_frozen() -> (FrozenBfh, Bfh) {
        let coll = TreeCollection::parse(
            "((A,B),(C,D),(E,F));\n((A,C),(B,D),(E,F));\n(((A,B),C),(D,(E,F)));",
        )
        .unwrap();
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        (bfh.freeze(), bfh)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bfhrf-frozen-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("frozen.bfh")
    }

    #[test]
    fn round_trips_bitwise_through_mem_and_real_vfs() {
        let (frozen, _) = sample_frozen();

        // MemVfs: no mapping available, so the owned path runs.
        let mem = MemVfs::new();
        let p = Path::new("frozen.bfh");
        write_frozen_with(&mem, p, &frozen, 4).unwrap();
        let opened = open_frozen_with(&mem, p, &RunGuard::default()).unwrap();
        assert!(!opened.mapped);
        assert_eq!(opened.meta.generation, 4);
        assert_eq!(opened.frozen.digest(), frozen.digest(), "bitwise identical");
        assert_eq!(opened.meta.digest, frozen.digest());
        verify_frozen_with(&mem, p).unwrap();

        // RealVfs: unix hosts take the zero-copy mapping.
        let path = tmp("roundtrip");
        write_frozen_with(&RealVfs, &path, &frozen, 4).unwrap();
        let opened = open_frozen_with(&RealVfs, &path, &RunGuard::default()).unwrap();
        assert_eq!(opened.frozen.digest(), frozen.digest());
        #[cfg(all(unix, target_endian = "little"))]
        {
            assert!(opened.mapped);
            assert!(opened.frozen.is_mapped());
        }
        verify_frozen_with(&RealVfs, &path).unwrap();

        // Lane offsets really are 64-byte aligned.
        let meta = read_frozen_meta(&path).unwrap();
        for s in [meta.ctrl, meta.entries, meta.pool] {
            assert_eq!(s.offset % 64, 0, "{s:?}");
        }
    }

    #[test]
    fn every_byte_flip_is_rejected_by_open_or_verify() {
        let (frozen, _) = sample_frozen();
        let mem = MemVfs::new();
        let p = Path::new("frozen.bfh");
        write_frozen_with(&mem, p, &frozen, 0).unwrap();
        let good = mem.read_bytes(p).unwrap();
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0x20;
            mem.write_bytes(p, bad);
            // Padding bytes are the only region no checksum covers; a flip
            // there must still never panic or change the table.
            match verify_frozen_with(&mem, p) {
                Ok(meta) => assert_eq!(meta.digest, frozen.digest(), "flip at {at}"),
                Err(e) => assert!(
                    e.is_corruption(),
                    "flip at byte {at} gave a non-corruption error: {e}"
                ),
            }
        }
        mem.write_bytes(p, good);
        verify_frozen_with(&mem, p).unwrap();
    }

    #[test]
    fn truncations_are_typed_errors() {
        let (frozen, _) = sample_frozen();
        let mem = MemVfs::new();
        let p = Path::new("frozen.bfh");
        write_frozen_with(&mem, p, &frozen, 0).unwrap();
        let good = mem.read_bytes(p).unwrap();
        for cut in 0..good.len() {
            mem.write_bytes(p, good[..cut].to_vec());
            let err = open_frozen_with(&mem, p, &RunGuard::default()).unwrap_err();
            assert!(err.is_corruption(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (frozen, _) = sample_frozen();
        let mem = MemVfs::new();
        let p = Path::new("frozen.bfh");
        write_frozen_with(&mem, p, &frozen, 0).unwrap();
        let mut bytes = mem.read_bytes(p).unwrap();
        bytes.push(0);
        mem.write_bytes(p, bytes);
        let err = open_frozen_with(&mem, p, &RunGuard::default()).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn mapped_open_answers_queries_identically() {
        let (frozen, bfh) = sample_frozen();
        let coll = TreeCollection::parse(
            "((A,B),(C,D),(E,F));\n((A,C),(B,D),(E,F));\n(((A,B),C),(D,(E,F)));",
        )
        .unwrap();
        let path = tmp("queries");
        write_frozen_with(&RealVfs, &path, &frozen, 1).unwrap();
        let opened = open_frozen_with(&RealVfs, &path, &RunGuard::default()).unwrap();
        let mut scratch = phylo::BipartitionScratch::new();
        for tree in &coll.trees {
            let got = opened
                .frozen
                .average_scratch(tree, &coll.taxa, &mut scratch);
            let want = frozen.average_scratch(tree, &coll.taxa, &mut scratch);
            assert_eq!(got, want, "mapped and in-memory answers must agree");
        }
        drop(opened);
        let _ = bfh;
    }
}
