//! The collection catalog: many named indexes behind one crash-safe
//! manifest, LRU-managed under a global byte budget.
//!
//! # Manifest format (version 1, all integers little-endian)
//!
//! ```text
//! magic    8  bytes  "BFHCAT\0\0"
//! version  u16
//! -- records, appended over time -----------------------------------
//! each: { op u8 (1=create, 2=drop, 3=rename) | payload_len u32 |
//!         payload (UTF-8) | FNV-1a 64 checksum of op+len+payload }
//! ```
//!
//! Payloads: create = `name\tdir`, drop = `name`, rename = `old\tnew`.
//! Replaying the records in order reconstructs the name → directory map;
//! any replay that is impossible to produce by our own writers (duplicate
//! create, drop of a missing name) is typed corruption. Torn tails follow
//! the WAL rules exactly: a cut or garbled **final** record is a crash
//! artifact and is truncated away with a note; a file ending inside the
//! 10-byte header can only be a crash during catalog initialization and
//! recovers to an empty catalog.
//!
//! # Commit protocol
//!
//! A collection's files are written **before** its manifest record: create
//! builds the index directory (snapshot, WAL, tree-list sidecar), then
//! appends the fsynced `create` record, which is the commit point. A crash
//! before the append leaves an orphan directory the manifest never
//! mentions (scrubbed if the name is created again); a crash after it
//! leaves a fully-formed collection. Drop appends its record first, then
//! removes files best-effort — leftover bytes of a dropped collection are
//! garbage, not state. Rename is a pure manifest operation (the directory
//! name is stored in the record, so no files move).
//!
//! # Tree-list sidecar (`trees.nwk`)
//!
//! Cross-collection RF ([`Collection::tree_collection`], the serve
//! daemon's `xavgrf`) needs the actual trees, which neither the snapshot
//! nor the frozen hash retain. Each collection therefore keeps a sidecar:
//! a header line `#bfhrf-trees v1 gen G applied K` followed by one
//! canonical Newick per line, meaning "the tree list with the first K
//! records of the generation-G WAL applied". The sidecar is only ever
//! replaced by rename, so it is never torn. Mutations append to the WAL
//! as usual and the sidecar catches up on the next open (the unapplied
//! tail is folded in **and re-committed durably before** [`Index::open`]
//! may discard a stale log, so the records can never be lost); compaction
//! renames the next-generation sidecar into place between the snapshot
//! commit and the WAL reset, which keeps every crash window reconstructible.
//!
//! # LRU under a byte budget
//!
//! Collections open lazily. Each open collection's frozen table is the
//! unit of accounting ([`bfhrf::FrozenBfh::approx_bytes`]); when admitting
//! a newly-opened collection would exceed the budget,
//! [`bfhrf::RunBudget::check_alloc_or_evict`] asks the catalog's eviction
//! hook to drop least-recently-used **unpinned** collections until it
//! fits. A collection pinned by an in-flight batch or admin op is never
//! evicted. If everything else is pinned and the newcomer still does not
//! fit, the catalog serves it anyway (over budget, counted in
//! `catalog_overcommit_total`) — correctness is never traded for the
//! budget. Reopening an evicted collection reproduces a bitwise-identical
//! frozen table ([`bfhrf::FrozenBfh::digest`]).

use crate::error::IndexError;
use crate::format::Digest;
use crate::index::{Index, IndexStats, QueryView, SNAPSHOT_FILE, SNAPSHOT_TMP, WAL_FILE};
use crate::snapshot::{read_taxa_with, SnapshotMeta};
use crate::vfs::{real_vfs, Vfs, VfsFile};
use crate::wal::{scan_wal, WalOp, WalPayload, WalRecord, WalTail};
use bfhrf::{Bfh, RunBudget, RunGuard};
use phylo::{parse_newick, write_newick, TaxaPolicy, TaxonSet, Tree, TreeCollection};
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// File name of the catalog manifest inside a catalog root.
pub const MANIFEST_FILE: &str = "catalog.manifest";
/// Subdirectory of the catalog root holding collection directories.
pub const COLLECTIONS_DIR: &str = "collections";
/// File name of the tree-list sidecar inside a collection directory.
pub const TREES_FILE: &str = "trees.nwk";
const TREES_TMP: &str = "trees.nwk.tmp";

/// Magic bytes opening every manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"BFHCAT\0\0";
/// Manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u16 = 1;
const MANIFEST_HEADER_LEN: u64 = 8 + 2;
/// Bounds what a corrupt length field can make the reader allocate.
const MAX_MANIFEST_PAYLOAD: usize = 4096;

const OP_CREATE: u8 = 1;
const OP_DROP: u8 = 2;
const OP_RENAME: u8 = 3;

/// The name every collection-less request resolves to; reserved so a
/// catalog entry can never shadow it.
pub const DEFAULT_COLLECTION: &str = "default";

/// One replayable manifest record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogOp {
    /// Bind `name` to the collection directory `dir` (relative to
    /// `<root>/collections/`).
    Create {
        /// Collection name.
        name: String,
        /// Directory name under the collections subdirectory.
        dir: String,
    },
    /// Unbind `name`.
    Drop {
        /// Collection name.
        name: String,
    },
    /// Rebind `from`'s directory under the name `to`.
    Rename {
        /// Old name.
        from: String,
        /// New name.
        to: String,
    },
}

/// The result of a lenient manifest scan: validated records plus a
/// classification of how the byte stream ends (reusing [`WalTail`]).
#[derive(Debug)]
pub struct ManifestScan {
    /// Every fully-validated record, in append order.
    pub records: Vec<CatalogOp>,
    /// Offset one past the last valid byte (header or record end).
    pub valid_len: u64,
    /// Tail classification.
    pub tail: WalTail,
}

fn record_checksum(op: u8, payload: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(&[op]);
    d.update(&(payload.len() as u32).to_le_bytes());
    d.update(payload);
    d.value()
}

fn read_fully(r: &mut impl Read, buf: &mut [u8], offset: &mut u64) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            *offset += filled as u64;
            return Ok(false);
        }
        filled += n;
    }
    *offset += buf.len() as u64;
    Ok(true)
}

fn decode_record(op: u8, payload: &str, at: usize) -> Result<CatalogOp, IndexError> {
    let corrupt = |detail: String| IndexError::Corrupt {
        section: "manifest",
        detail,
    };
    let pair = || {
        payload
            .split_once('\t')
            .ok_or_else(|| corrupt(format!("record {at} payload is missing its separator")))
    };
    match op {
        OP_CREATE => {
            let (name, dir) = pair()?;
            Ok(CatalogOp::Create {
                name: name.to_string(),
                dir: dir.to_string(),
            })
        }
        OP_DROP => Ok(CatalogOp::Drop {
            name: payload.to_string(),
        }),
        OP_RENAME => {
            let (from, to) = pair()?;
            Ok(CatalogOp::Rename {
                from: from.to_string(),
                to: to.to_string(),
            })
        }
        other => Err(corrupt(format!("record {at} has unknown op {other}"))),
    }
}

/// Scan the manifest at `path`, validating records and classifying the
/// tail instead of failing on it. Corruption *before* the final record is
/// a typed error, exactly like [`scan_wal`].
pub fn scan_manifest(vfs: &dyn Vfs, path: &Path) -> Result<ManifestScan, IndexError> {
    let file = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut r = std::io::BufReader::new(file);
    let mut offset: u64 = 0;
    let io_err = |e| IndexError::io(path, e);

    let torn_header = |offset| ManifestScan {
        records: Vec::new(),
        valid_len: 0,
        tail: WalTail::TornHeader { len: offset },
    };

    let mut magic = [0u8; 8];
    if !read_fully(&mut r, &mut magic, &mut offset).map_err(io_err)? {
        return Ok(torn_header(offset));
    }
    if &magic != MANIFEST_MAGIC {
        return Err(IndexError::NotAnIndex(format!(
            "bad manifest magic {:02x?} (expected {:02x?})",
            magic, MANIFEST_MAGIC
        )));
    }
    let mut ver = [0u8; 2];
    if !read_fully(&mut r, &mut ver, &mut offset).map_err(io_err)? {
        return Ok(torn_header(offset));
    }
    let version = u16::from_le_bytes(ver);
    if version == 0 || version > MANIFEST_VERSION {
        return Err(IndexError::Version {
            found: version,
            supported: MANIFEST_VERSION,
        });
    }

    let mut records = Vec::new();
    let mut valid_len = offset;
    loop {
        let mut op_byte = [0u8; 1];
        if !read_fully(&mut r, &mut op_byte, &mut offset).map_err(io_err)? {
            return Ok(ManifestScan {
                records,
                valid_len,
                tail: WalTail::Clean,
            });
        }
        let torn = |offset: u64, records: Vec<CatalogOp>| ManifestScan {
            records,
            valid_len,
            tail: WalTail::TornRecord {
                valid_len,
                lost: offset - valid_len,
            },
        };
        if !matches!(op_byte[0], OP_CREATE | OP_DROP | OP_RENAME) {
            return Err(IndexError::Corrupt {
                section: "manifest",
                detail: format!("record {} has unknown op {}", records.len(), op_byte[0]),
            });
        }
        let mut len_bytes = [0u8; 4];
        if !read_fully(&mut r, &mut len_bytes, &mut offset).map_err(io_err)? {
            return Ok(torn(offset, records));
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_MANIFEST_PAYLOAD {
            return Err(IndexError::Corrupt {
                section: "manifest",
                detail: format!(
                    "record {} claims implausible payload length {len}",
                    records.len()
                ),
            });
        }
        let mut payload = vec![0u8; len];
        if !read_fully(&mut r, &mut payload, &mut offset).map_err(io_err)? {
            return Ok(torn(offset, records));
        }
        let mut sum = [0u8; 8];
        if !read_fully(&mut r, &mut sum, &mut offset).map_err(io_err)? {
            return Ok(torn(offset, records));
        }
        if record_checksum(op_byte[0], &payload) != u64::from_le_bytes(sum) {
            let mut probe = [0u8; 1];
            return if read_fully(&mut r, &mut probe, &mut offset).map_err(io_err)? {
                Err(IndexError::Corrupt {
                    section: "manifest",
                    detail: format!("record {} checksum mismatch", records.len()),
                })
            } else {
                Ok(torn(offset, records))
            };
        }
        let payload = String::from_utf8(payload).map_err(|_| IndexError::Corrupt {
            section: "manifest",
            detail: format!("record {} payload is not valid UTF-8", records.len()),
        })?;
        records.push(decode_record(op_byte[0], &payload, records.len())?);
        valid_len = offset;
    }
}

/// Replay manifest records into the name → directory map. Violations
/// (duplicate create, drop or rename of a missing name) cannot be produced
/// by tearing a suffix off our own writes and are typed corruption.
pub fn replay_manifest(records: &[CatalogOp]) -> Result<BTreeMap<String, String>, IndexError> {
    let mut map = BTreeMap::new();
    let corrupt = |detail: String| IndexError::Corrupt {
        section: "manifest",
        detail,
    };
    for (i, rec) in records.iter().enumerate() {
        match rec {
            CatalogOp::Create { name, dir } => {
                if map.insert(name.clone(), dir.clone()).is_some() {
                    return Err(corrupt(format!(
                        "record {i} creates existing name {name:?}"
                    )));
                }
            }
            CatalogOp::Drop { name } => {
                if map.remove(name).is_none() {
                    return Err(corrupt(format!("record {i} drops unknown name {name:?}")));
                }
            }
            CatalogOp::Rename { from, to } => {
                let Some(dir) = map.remove(from) else {
                    return Err(corrupt(format!("record {i} renames unknown name {from:?}")));
                };
                if map.insert(to.clone(), dir).is_some() {
                    return Err(corrupt(format!(
                        "record {i} renames {from:?} over existing name {to:?}"
                    )));
                }
            }
        }
    }
    Ok(map)
}

fn catalog_err(detail: impl Into<String>) -> IndexError {
    IndexError::Catalog {
        detail: detail.into(),
    }
}

/// Validate a collection name: 1–64 characters of `[A-Za-z0-9_.-]`, no
/// leading dot, and not the reserved default name. The character set is
/// what keeps `name` usable verbatim as a directory name and an obs label.
pub fn validate_name(name: &str) -> Result<(), IndexError> {
    if name.is_empty() || name.len() > 64 {
        return Err(catalog_err(format!(
            "collection name must be 1-64 characters, got {}",
            name.len()
        )));
    }
    if name.starts_with('.') {
        return Err(catalog_err("collection name must not start with '.'"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
    {
        return Err(catalog_err(format!(
            "collection name {name:?} has characters outside [A-Za-z0-9_.-]"
        )));
    }
    if name == DEFAULT_COLLECTION {
        return Err(catalog_err(format!(
            "{DEFAULT_COLLECTION:?} is reserved for the collection-less default"
        )));
    }
    Ok(())
}

/// Intern a collection name as a `&'static str` for obs labels. The
/// catalog is a small bounded set, so leaking one copy per distinct name
/// per process keeps the registry's `&'static` label contract.
fn collection_label(name: &str) -> &'static str {
    static CACHE: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

// ---------------------------------------------------------------------
// Tree-list sidecar
// ---------------------------------------------------------------------

fn sidecar_bytes(generation: u64, applied: usize, lines: &[String]) -> Vec<u8> {
    let mut buf = format!("#bfhrf-trees v1 gen {generation} applied {applied}\n");
    for l in lines {
        buf.push_str(l);
        buf.push('\n');
    }
    buf.into_bytes()
}

fn write_sidecar_tmp(
    vfs: &dyn Vfs,
    dir: &Path,
    generation: u64,
    applied: usize,
    lines: &[String],
) -> Result<(), IndexError> {
    let tmp = dir.join(TREES_TMP);
    let mut f = vfs.create(&tmp).map_err(|e| IndexError::io(&tmp, e))?;
    f.write_all(&sidecar_bytes(generation, applied, lines))
        .map_err(|e| IndexError::io(&tmp, e))?;
    f.sync_all().map_err(|e| IndexError::io(&tmp, e))?;
    Ok(())
}

fn write_sidecar(
    vfs: &dyn Vfs,
    dir: &Path,
    generation: u64,
    applied: usize,
    lines: &[String],
) -> Result<(), IndexError> {
    write_sidecar_tmp(vfs, dir, generation, applied, lines)?;
    let tmp = dir.join(TREES_TMP);
    let dst = dir.join(TREES_FILE);
    vfs.rename(&tmp, &dst).map_err(|e| {
        let _ = vfs.remove_file(&tmp);
        IndexError::io(&dst, e)
    })
}

fn read_sidecar(vfs: &dyn Vfs, path: &Path) -> Result<(u64, usize, Vec<String>), IndexError> {
    let mut r = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut text = String::new();
    r.read_to_string(&mut text)
        .map_err(|e| IndexError::io(path, e))?;
    let corrupt = |detail: String| IndexError::Corrupt {
        section: "trees",
        detail,
    };
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| corrupt("empty tree-list sidecar".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    let [tag, ver, g_kw, g, a_kw, a] = fields.as_slice() else {
        return Err(corrupt(format!("malformed sidecar header {header:?}")));
    };
    if *tag != "#bfhrf-trees" || *ver != "v1" || *g_kw != "gen" || *a_kw != "applied" {
        return Err(corrupt(format!("malformed sidecar header {header:?}")));
    }
    let generation: u64 = g
        .parse()
        .map_err(|_| corrupt(format!("bad sidecar generation {g:?}")))?;
    let applied: usize = a
        .parse()
        .map_err(|_| corrupt(format!("bad sidecar applied count {a:?}")))?;
    Ok((generation, applied, lines.map(str::to_string).collect()))
}

/// Fold unapplied WAL records into the sidecar tree list. Newick payloads
/// are already the canonical lines the list stores; binary payloads are
/// rendered through the snapshot's taxon table (read lazily, header +
/// taxa sections only, on the first binary record).
fn apply_wal_to_lines(
    vfs: &dyn Vfs,
    dir: &Path,
    lines: &mut Vec<String>,
    records: &[WalRecord],
) -> Result<(), IndexError> {
    let taxa = if records
        .iter()
        .any(|r| matches!(r.payload, WalPayload::Bin(_)))
    {
        let snap_path = dir.join(SNAPSHOT_FILE);
        let (_, taxa) = read_taxa_with(vfs, &snap_path, &RunGuard::default())?;
        Some(taxa)
    } else {
        None
    };
    for rec in records {
        let line = match (&rec.payload, &taxa) {
            (WalPayload::Newick(s), _) => s.clone(),
            (WalPayload::Bin(_), Some(t)) => rec.to_newick(t)?,
            (WalPayload::Bin(_), None) => unreachable!("taxa fetched when a bin record exists"),
        };
        match rec.op {
            WalOp::Add => lines.push(line),
            WalOp::Remove => {
                let Some(at) = lines.iter().position(|l| l == &line) else {
                    return Err(IndexError::Corrupt {
                        section: "trees",
                        detail: "log removes a tree absent from the tree list".into(),
                    });
                };
                lines.remove(at);
            }
        }
    }
    Ok(())
}

/// An open collection: the persistent [`Index`] plus the authoritative
/// tree list the cross-collection ops score from. All mutations go through
/// this wrapper so hash and list stay in lockstep.
pub struct Collection {
    name: String,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    index: Index,
    lines: Vec<String>,
}

impl Collection {
    /// Open the collection at `dir` through the production filesystem.
    pub fn open(dir: &Path, name: &str) -> Result<Collection, IndexError> {
        Collection::open_with(real_vfs(), dir, name)
    }

    /// Open the collection at `dir`, reconciling the tree-list sidecar
    /// with the WAL (see the module docs for the crash windows this
    /// covers).
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: &Path, name: &str) -> Result<Collection, IndexError> {
        let tmp = dir.join(TREES_TMP);
        if vfs.exists(&tmp) {
            let _ = vfs.remove_file(&tmp);
        }
        // Capture the WAL before Index::open may discard a stale log: its
        // records are exactly what a sidecar behind the snapshot is
        // missing.
        let wal_path = dir.join(WAL_FILE);
        let pre = if vfs.exists(&wal_path) {
            let scan = scan_wal(&*vfs, &wal_path)?;
            match scan.tail {
                WalTail::TornHeader { .. } => None,
                _ => Some((scan.generation, scan.records)),
            }
        } else {
            None
        };

        let side_path = dir.join(TREES_FILE);
        if !vfs.exists(&side_path) {
            return Err(IndexError::Corrupt {
                section: "trees",
                detail: format!("collection {name:?} has no tree-list sidecar"),
            });
        }
        let (tg, applied, mut lines) = read_sidecar(&*vfs, &side_path)?;
        let corrupt = |detail: String| IndexError::Corrupt {
            section: "trees",
            detail,
        };
        match &pre {
            None => {
                // No (or header-torn) log: nothing to fold. A non-zero
                // applied count is harmless — it refers to a log that no
                // longer exists.
            }
            Some((wg, records)) => {
                if tg == *wg {
                    if applied > records.len() {
                        return Err(corrupt(format!(
                            "sidecar claims {applied} applied records but the log holds {}",
                            records.len()
                        )));
                    }
                    if applied < records.len() {
                        // Fold the unapplied tail and re-commit it durably
                        // BEFORE Index::open can discard a stale log.
                        apply_wal_to_lines(&*vfs, dir, &mut lines, &records[applied..])?;
                        write_sidecar(&*vfs, dir, tg, records.len(), &lines)?;
                    }
                } else if tg > *wg {
                    // Crash between the sidecar rename and the WAL reset:
                    // the stale log's records are already folded in.
                } else {
                    // tg < wg: a previous open discarded a stale log after
                    // folding it into the sidecar; the fresh log must be
                    // empty or something appended without the sidecar.
                    if !records.is_empty() {
                        return Err(corrupt(
                            "log is ahead of the tree-list sidecar generation".into(),
                        ));
                    }
                }
            }
        }

        let index = Index::open_with(vfs.clone(), dir)?;
        let sg = index.generation();
        if tg != sg {
            // Heal: future appends must land on a sidecar stamped with the
            // live generation.
            write_sidecar(&*vfs, dir, sg, index.wal_pending(), &lines)?;
        }
        Ok(Collection {
            name: name.to_string(),
            vfs,
            dir: dir.to_path_buf(),
            index,
            lines,
        })
    }

    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Recovery notes from the underlying index open.
    pub fn notes(&self) -> &[String] {
        self.index.notes()
    }

    /// Current compaction generation.
    pub fn generation(&self) -> u64 {
        self.index.generation()
    }

    /// WAL records appended since the last compaction.
    pub fn wal_pending(&self) -> usize {
        self.index.wal_pending()
    }

    /// Live counters, built without touching the global single-index
    /// gauges (per-collection gauges are the catalog's job).
    pub fn stats(&self) -> IndexStats {
        let bfh = self.index.bfh();
        IndexStats {
            generation: self.index.generation(),
            n_trees: bfh.n_trees(),
            n_taxa: bfh.n_taxa(),
            distinct: bfh.distinct(),
            sum: bfh.sum(),
            wal_pending: self.index.wal_pending(),
        }
    }

    /// An immutable scoring view (see [`Index::view`]).
    pub fn view(&mut self) -> QueryView {
        self.index.view()
    }

    /// Heap bytes of the frozen table — the catalog's accounting unit.
    pub fn resident_bytes(&mut self) -> usize {
        self.index.frozen().approx_bytes()
    }

    /// The canonical Newick lines of the current tree list.
    pub fn tree_lines(&self) -> &[String] {
        &self.lines
    }

    /// Parse the tree list into a standalone [`TreeCollection`] (own
    /// namespace) — the input shape `bfhrf::variable_taxa::common_taxa_rf`
    /// wants for cross-collection scoring.
    pub fn tree_collection(&self) -> Result<TreeCollection, IndexError> {
        if self.lines.is_empty() {
            return Ok(TreeCollection::default());
        }
        Ok(TreeCollection::parse(&self.lines.join("\n"))?)
    }

    fn parse_all(&self, newicks: &[String]) -> Result<Vec<Tree>, IndexError> {
        let mut scratch: TaxonSet = self.index.taxa().clone();
        let mut trees = Vec::with_capacity(newicks.len());
        for (i, n) in newicks.iter().enumerate() {
            let t = parse_newick(n, &mut scratch, TaxaPolicy::Require)
                .map_err(|e| catalog_err(format!("tree {i}: {e}")))?;
            trees.push(t);
        }
        Ok(trees)
    }

    /// Add a batch of Newick trees, all-or-nothing at the semantic level:
    /// every tree is parsed against the frozen namespace before the first
    /// durable append.
    pub fn add_batch(&mut self, newicks: &[String]) -> Result<usize, IndexError> {
        let trees = self.parse_all(newicks)?;
        for t in &trees {
            self.index.append_add(t)?;
            self.lines.push(write_newick(t, self.index.taxa()));
        }
        Ok(trees.len())
    }

    /// Remove a batch of Newick trees with a dry run first: every removal
    /// is verified against clones of the hash *and* the tree list, so a
    /// bad row refuses the whole batch before anything durable happens.
    pub fn remove_batch(&mut self, newicks: &[String]) -> Result<usize, IndexError> {
        let trees = self.parse_all(newicks)?;
        let mut probe = self.index.bfh().clone();
        let mut probe_lines = self.lines.clone();
        for (i, t) in trees.iter().enumerate() {
            probe
                .remove_tree(t, self.index.taxa())
                .map_err(|e| catalog_err(format!("tree {i}: {e}")))?;
            let canon = write_newick(t, self.index.taxa());
            let Some(at) = probe_lines.iter().position(|l| l == &canon) else {
                return Err(catalog_err(format!(
                    "tree {i} is not in the collection's tree list"
                )));
            };
            probe_lines.remove(at);
        }
        for t in &trees {
            self.index.append_remove(t)?;
            let canon = write_newick(t, self.index.taxa());
            if let Some(at) = self.lines.iter().position(|l| l == &canon) {
                self.lines.remove(at);
            }
        }
        Ok(trees.len())
    }

    /// Compact the collection: the next-generation sidecar is renamed into
    /// place between the snapshot commit and the WAL reset, so the tree
    /// list survives every crash window (module docs).
    pub fn compact(&mut self) -> Result<SnapshotMeta, IndexError> {
        if self.index.wal_available() {
            let next = self.index.generation() + 1;
            write_sidecar_tmp(&*self.vfs, &self.dir, next, 0, &self.lines)?;
            let vfs = self.vfs.clone();
            let dir = self.dir.clone();
            let r = self.index.compact_with_hook(move |_| {
                let dst = dir.join(TREES_FILE);
                vfs.rename(&dir.join(TREES_TMP), &dst)
                    .map_err(|e| IndexError::io(&dst, e))
            });
            if r.is_err() {
                let _ = self.vfs.remove_file(&self.dir.join(TREES_TMP));
            }
            r
        } else {
            // Healing a failed WAL reset: the snapshot already committed,
            // so re-commit the sidecar at the live generation before the
            // log is recreated.
            write_sidecar(
                &*self.vfs,
                &self.dir,
                self.index.generation(),
                0,
                &self.lines,
            )?;
            self.index.compact()
        }
    }
}

// ---------------------------------------------------------------------
// Open-collection pool
// ---------------------------------------------------------------------

/// One open collection in the catalog's pool: the collection behind a
/// mutex (per-collection WAL/compaction isolation), plus pin and LRU
/// bookkeeping.
pub struct CollectionCell {
    name: String,
    collection: Mutex<Collection>,
    pins: AtomicUsize,
    last_used: AtomicU64,
    bytes: AtomicUsize,
}

impl CollectionCell {
    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lock the collection (recovering a poisoned lock — the state is a
    /// wrapper over crash-safe storage, so the last consistent view wins).
    pub fn lock(&self) -> MutexGuard<'_, Collection> {
        self.collection.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// In-flight pins; a pinned collection is never evicted.
    pub fn pins(&self) -> usize {
        self.pins.load(Ordering::SeqCst)
    }

    /// Accounted frozen-table bytes.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::SeqCst)
    }

    fn touch(&self, now: u64) {
        self.last_used.store(now, Ordering::SeqCst);
    }

    /// Refresh the accounted bytes and the per-collection generation gauge
    /// after a mutation or compaction.
    pub fn publish_obs(&self, col: &mut Collection) {
        self.bytes.store(col.resident_bytes(), Ordering::SeqCst);
        phylo_obs::global()
            .gauge(
                "catalog_collection_generation",
                &[("collection", collection_label(&self.name))],
            )
            .set(col.generation() as i64);
    }
}

/// An RAII pin on an open collection: while any pin is live, the LRU will
/// not evict the collection. Dropping the pin releases it.
pub struct PinnedCollection {
    cell: Arc<CollectionCell>,
}

impl PinnedCollection {
    fn pin(cell: Arc<CollectionCell>) -> PinnedCollection {
        cell.pins.fetch_add(1, Ordering::SeqCst);
        PinnedCollection { cell }
    }

    /// The pinned cell.
    pub fn cell(&self) -> &CollectionCell {
        &self.cell
    }

    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.cell.name
    }

    /// Lock the pinned collection.
    pub fn lock(&self) -> MutexGuard<'_, Collection> {
        self.cell.lock()
    }
}

impl Drop for PinnedCollection {
    fn drop(&mut self) {
        self.cell.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A row of [`Catalog::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionInfo {
    /// Collection name.
    pub name: String,
    /// Whether it is currently open (resident in the pool).
    pub open: bool,
    /// Accounted frozen-table bytes when open, 0 otherwise.
    pub resident_bytes: usize,
}

// ---------------------------------------------------------------------
// The catalog
// ---------------------------------------------------------------------

/// The collection catalog: the journaled manifest plus the LRU pool of
/// open collections. Wrap it in a mutex for concurrent use — resolution
/// and admin are quick; scoring happens against per-collection cells
/// after the catalog lock is released.
pub struct Catalog {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    synced_len: u64,
    map: BTreeMap<String, String>,
    open: HashMap<String, Arc<CollectionCell>>,
    clock: u64,
    budget: RunBudget,
    evictions: u64,
    notes: Vec<String>,
}

impl Catalog {
    /// Open (or initialize) the catalog at `root` through the production
    /// filesystem, with an optional pool byte budget.
    pub fn open(root: &Path, budget: Option<usize>) -> Result<Catalog, IndexError> {
        Catalog::open_with(real_vfs(), root, budget)
    }

    /// [`Catalog::open`] routed through an explicit [`Vfs`]. A missing
    /// manifest initializes an empty catalog; a torn manifest tail is
    /// truncated away with a note.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        root: &Path,
        budget: Option<usize>,
    ) -> Result<Catalog, IndexError> {
        vfs.create_dir_all(root)
            .map_err(|e| IndexError::io(root, e))?;
        vfs.create_dir_all(&root.join(COLLECTIONS_DIR))
            .map_err(|e| IndexError::io(root.join(COLLECTIONS_DIR), e))?;
        let path = root.join(MANIFEST_FILE);
        let mut notes = Vec::new();

        let write_header = |vfs: &dyn Vfs| -> Result<Box<dyn VfsFile>, IndexError> {
            let mut f = vfs.create(&path).map_err(|e| IndexError::io(&path, e))?;
            let mut header = Vec::with_capacity(MANIFEST_HEADER_LEN as usize);
            header.extend_from_slice(MANIFEST_MAGIC);
            header.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
            f.write_all(&header).map_err(|e| IndexError::io(&path, e))?;
            f.sync_all().map_err(|e| IndexError::io(&path, e))?;
            Ok(f)
        };

        let (file, synced_len, map) = if !vfs.exists(&path) {
            (write_header(&*vfs)?, MANIFEST_HEADER_LEN, BTreeMap::new())
        } else {
            let scan = scan_manifest(&*vfs, &path)?;
            match scan.tail {
                WalTail::Clean => {}
                WalTail::TornHeader { .. } => {
                    phylo_obs::global()
                        .counter("catalog_recovered_total", &[("kind", "torn-header")])
                        .inc();
                    notes.push(
                        "manifest: header torn by a crash during catalog init; recreated empty \
                         catalog"
                            .to_string(),
                    );
                    let file = write_header(&*vfs)?;
                    let cat = Catalog {
                        root: root.to_path_buf(),
                        vfs,
                        file,
                        synced_len: MANIFEST_HEADER_LEN,
                        map: BTreeMap::new(),
                        open: HashMap::new(),
                        clock: 0,
                        budget: budget.map_or_else(RunBudget::unlimited, RunBudget::with_max_bytes),
                        evictions: 0,
                        notes,
                    };
                    cat.publish_gauges();
                    return Ok(cat);
                }
                WalTail::TornRecord { valid_len, lost } => {
                    vfs.truncate(&path, valid_len)
                        .map_err(|e| IndexError::io(&path, e))?;
                    phylo_obs::global()
                        .counter("catalog_recovered_total", &[("kind", "torn-tail")])
                        .inc();
                    notes.push(format!(
                        "manifest: dropped a torn final record ({lost} trailing bytes after \
                         offset {valid_len}); {} intact records replayed",
                        scan.records.len()
                    ));
                }
            }
            let map = replay_manifest(&scan.records)?;
            let file = vfs
                .open_append(&path)
                .map_err(|e| IndexError::io(&path, e))?;
            (file, scan.valid_len, map)
        };

        let cat = Catalog {
            root: root.to_path_buf(),
            vfs,
            file,
            synced_len,
            map,
            open: HashMap::new(),
            clock: 0,
            budget: budget.map_or_else(RunBudget::unlimited, RunBudget::with_max_bytes),
            evictions: 0,
            notes,
        };
        // Pre-register every per-collection obs cell so scrapes see the
        // full matrix from the first exposition, not only after traffic.
        for name in cat.map.keys() {
            let label = collection_label(name);
            let reg = phylo_obs::global();
            reg.gauge("catalog_collection_generation", &[("collection", label)]);
            reg.gauge("catalog_collection_open", &[("collection", label)])
                .set(0);
            reg.counter("catalog_evictions_total", &[("collection", label)]);
        }
        cat.publish_gauges();
        Ok(cat)
    }

    fn publish_gauges(&self) {
        let reg = phylo_obs::global();
        reg.gauge("catalog_collections", &[])
            .set(self.map.len() as i64);
        reg.gauge("catalog_open_collections", &[])
            .set(self.open.len() as i64);
        reg.gauge("catalog_resident_bytes", &[])
            .set(self.resident_bytes() as i64);
    }

    /// Recovery and overcommit notes accumulated so far.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// The catalog root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of collections in the catalog.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the catalog holds no collections.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `name` is in the catalog.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of collections currently open in the pool.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Total accounted bytes of open collections.
    pub fn resident_bytes(&self) -> usize {
        self.open.values().map(|c| c.bytes()).sum()
    }

    /// Evictions performed over this catalog's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The on-disk directory of collection `name`, if it exists.
    pub fn dir_of(&self, name: &str) -> Option<PathBuf> {
        self.map
            .get(name)
            .map(|d| self.root.join(COLLECTIONS_DIR).join(d))
    }

    /// One row per collection, sorted by name.
    pub fn list(&self) -> Vec<CollectionInfo> {
        self.map
            .keys()
            .map(|name| {
                let cell = self.open.get(name);
                CollectionInfo {
                    name: name.clone(),
                    open: cell.is_some(),
                    resident_bytes: cell.map_or(0, |c| c.bytes()),
                }
            })
            .collect()
    }

    fn append_record(&mut self, op: u8, payload: &str) -> Result<(), IndexError> {
        let bytes = payload.as_bytes();
        if bytes.len() > MAX_MANIFEST_PAYLOAD {
            return Err(IndexError::Corrupt {
                section: "manifest",
                detail: format!("payload of {} bytes exceeds the record limit", bytes.len()),
            });
        }
        let mut rec = Vec::with_capacity(1 + 4 + bytes.len() + 8);
        rec.push(op);
        rec.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        rec.extend_from_slice(bytes);
        rec.extend_from_slice(&record_checksum(op, bytes).to_le_bytes());
        let path = self.root.join(MANIFEST_FILE);
        let write_then_sync = self
            .file
            .write_all(&rec)
            .and_then(|()| self.file.sync_all());
        if let Err(e) = write_then_sync {
            // Roll the file back to the last acknowledged boundary so a
            // half-written record never poisons the manifest.
            return Err(match self.vfs.truncate(&path, self.synced_len) {
                Ok(()) => IndexError::io(&path, e),
                Err(trunc_err) => IndexError::io(
                    &path,
                    std::io::Error::other(format!(
                        "append failed ({e}) and rollback truncation also failed ({trunc_err}); \
                         reopen the catalog to recover the manifest"
                    )),
                ),
            });
        }
        self.synced_len += rec.len() as u64;
        Ok(())
    }

    /// Remove any leftover collection files at `dir` (orphans from a
    /// create that crashed before its manifest commit, or a drop that
    /// crashed after its commit).
    fn scrub_dir(&self, dir: &Path) {
        for f in [SNAPSHOT_FILE, SNAPSHOT_TMP, WAL_FILE, TREES_FILE, TREES_TMP] {
            let p = dir.join(f);
            if self.vfs.exists(&p) {
                let _ = self.vfs.remove_file(&p);
            }
        }
    }

    /// Create collection `name` from newline-separated Newick text. The
    /// index directory (snapshot, WAL, tree-list sidecar) is fully built
    /// before the manifest record commits the name. Returns the number of
    /// trees.
    pub fn create(&mut self, name: &str, trees_text: &str) -> Result<usize, IndexError> {
        validate_name(name)?;
        if self.map.contains_key(name) {
            return Err(catalog_err(format!("collection {name:?} already exists")));
        }
        let dir_name = name.to_string();
        let dir = self.root.join(COLLECTIONS_DIR).join(&dir_name);
        self.scrub_dir(&dir);

        let tc = if trees_text.trim().is_empty() {
            TreeCollection::default()
        } else {
            TreeCollection::parse(trees_text)?
        };
        let lines: Vec<String> = tc.trees.iter().map(|t| write_newick(t, &tc.taxa)).collect();
        let bfh = Bfh::build(&tc.trees, &tc.taxa);
        let n = tc.trees.len();
        Index::create_with(self.vfs.clone(), &dir, bfh, tc.taxa.clone())?;
        write_sidecar(&*self.vfs, &dir, 0, 0, &lines)?;

        // The manifest append is the commit point; on failure the orphan
        // directory is scrubbed and the catalog is unchanged.
        if let Err(e) = self.append_record(OP_CREATE, &format!("{name}\t{dir_name}")) {
            self.scrub_dir(&dir);
            return Err(e);
        }
        self.map.insert(name.to_string(), dir_name);
        let label = collection_label(name);
        let reg = phylo_obs::global();
        reg.gauge("catalog_collection_generation", &[("collection", label)])
            .set(0);
        reg.gauge("catalog_collection_open", &[("collection", label)])
            .set(0);
        reg.counter("catalog_evictions_total", &[("collection", label)]);
        self.publish_gauges();
        Ok(n)
    }

    /// Drop collection `name`. Refused while the collection is pinned by
    /// in-flight work. The manifest record is the commit point; file
    /// removal afterwards is best-effort (leftovers are garbage).
    pub fn drop_collection(&mut self, name: &str) -> Result<(), IndexError> {
        if !self.map.contains_key(name) {
            return Err(catalog_err(format!("no collection {name:?}")));
        }
        if let Some(cell) = self.open.get(name) {
            if cell.pins() > 0 {
                return Err(catalog_err(format!(
                    "collection {name:?} is busy (pinned by in-flight work)"
                )));
            }
        }
        self.open.remove(name);
        self.append_record(OP_DROP, name)?;
        let dir = self.dir_of(name).expect("checked above");
        self.map.remove(name);
        self.scrub_dir(&dir);
        phylo_obs::global()
            .gauge(
                "catalog_collection_open",
                &[("collection", collection_label(name))],
            )
            .set(0);
        self.publish_gauges();
        Ok(())
    }

    /// Rename collection `from` to `to` (a pure manifest operation — the
    /// directory keeps its name). Refused while `from` is pinned.
    pub fn rename_collection(&mut self, from: &str, to: &str) -> Result<(), IndexError> {
        validate_name(to)?;
        if !self.map.contains_key(from) {
            return Err(catalog_err(format!("no collection {from:?}")));
        }
        if self.map.contains_key(to) {
            return Err(catalog_err(format!("collection {to:?} already exists")));
        }
        if let Some(cell) = self.open.get(from) {
            if cell.pins() > 0 {
                return Err(catalog_err(format!(
                    "collection {from:?} is busy (pinned by in-flight work)"
                )));
            }
        }
        // Close the old cell rather than re-keying it: the cell's obs
        // label is its name, and a reopen under the new name is cheap.
        self.open.remove(from);
        self.append_record(OP_RENAME, &format!("{from}\t{to}"))?;
        let dir = self.map.remove(from).expect("checked above");
        self.map.insert(to.to_string(), dir);
        self.publish_gauges();
        Ok(())
    }

    fn evict_lru(&mut self, need: usize) -> usize {
        let mut freed = 0;
        while freed < need {
            let victim = self
                .open
                .iter()
                .filter(|(_, c)| c.pins() == 0)
                .min_by_key(|(_, c)| c.last_used.load(Ordering::SeqCst))
                .map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            let cell = self.open.remove(&k).expect("victim is in the pool");
            freed += cell.bytes();
            self.evictions += 1;
            let label = collection_label(&k);
            let reg = phylo_obs::global();
            reg.counter("catalog_evictions_total", &[("collection", label)])
                .inc();
            reg.gauge("catalog_collection_open", &[("collection", label)])
                .set(0);
        }
        freed
    }

    /// Resolve and pin collection `name`, opening it lazily. Admission
    /// runs under the catalog's byte budget: least-recently-used unpinned
    /// collections are evicted until the newcomer fits; if everything
    /// evictable is gone and it still does not fit, it is served over
    /// budget (with a note) rather than refused.
    pub fn acquire(&mut self, name: &str) -> Result<PinnedCollection, IndexError> {
        self.clock += 1;
        let now = self.clock;
        if let Some(cell) = self.open.get(name) {
            cell.touch(now);
            phylo_obs::global()
                .counter("catalog_opens_total", &[("kind", "warm")])
                .inc();
            return Ok(PinnedCollection::pin(cell.clone()));
        }
        let dir = self
            .dir_of(name)
            .ok_or_else(|| catalog_err(format!("no collection {name:?}")))?;
        let mut col = Collection::open_with(self.vfs.clone(), &dir, name)?;
        let bytes = col.resident_bytes();
        let resident = self.resident_bytes();
        let budget = self.budget;
        let what = format!("open collection {name}");
        if let Err(e) =
            budget.check_alloc_or_evict(&what, bytes, resident, &mut |need| self.evict_lru(need))
        {
            phylo_obs::global()
                .counter("catalog_overcommit_total", &[])
                .inc();
            self.notes
                .push(format!("catalog: {e}; serving {name:?} over budget"));
        }
        let label = collection_label(name);
        let reg = phylo_obs::global();
        reg.counter("catalog_opens_total", &[("kind", "cold")])
            .inc();
        reg.gauge("catalog_collection_open", &[("collection", label)])
            .set(1);
        reg.gauge("catalog_collection_generation", &[("collection", label)])
            .set(col.generation() as i64);
        let cell = Arc::new(CollectionCell {
            name: name.to_string(),
            collection: Mutex::new(col),
            pins: AtomicUsize::new(0),
            last_used: AtomicU64::new(now),
            bytes: AtomicUsize::new(bytes),
        });
        self.open.insert(name.to_string(), cell.clone());
        self.publish_gauges();
        Ok(PinnedCollection::pin(cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    const T6: &str = "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,(B,C)),((D,E),F));";

    fn mem_catalog(budget: Option<usize>) -> (MemVfs, Catalog) {
        let mem = MemVfs::new();
        let cat = Catalog::open_with(Arc::new(mem.clone()), Path::new("cat"), budget).unwrap();
        (mem, cat)
    }

    #[test]
    fn create_list_drop_rename_round_trip() {
        let (mem, mut cat) = mem_catalog(None);
        assert!(cat.is_empty());
        assert_eq!(cat.create("alpha", T6).unwrap(), 3);
        assert_eq!(cat.create("beta", T6).unwrap(), 3);
        assert!(cat.contains("alpha"));
        let rows = cat.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "alpha");
        assert!(!rows[0].open);

        cat.rename_collection("alpha", "gamma").unwrap();
        assert!(!cat.contains("alpha"));
        assert!(cat.contains("gamma"));
        cat.drop_collection("beta").unwrap();
        assert_eq!(cat.len(), 1);

        // A reopen replays the manifest to the same map, and the surviving
        // collection opens.
        drop(cat);
        let mut cat = Catalog::open_with(Arc::new(mem.clone()), Path::new("cat"), None).unwrap();
        assert!(cat.notes().is_empty());
        assert_eq!(cat.len(), 1);
        assert!(cat.contains("gamma"));
        let pin = cat.acquire("gamma").unwrap();
        assert_eq!(pin.lock().stats().n_trees, 3);
    }

    #[test]
    fn invalid_names_and_duplicates_are_typed() {
        let (_mem, mut cat) = mem_catalog(None);
        for bad in ["", "a b", "x/y", ".hidden", "default", &"n".repeat(65)] {
            assert!(
                matches!(cat.create(bad, T6), Err(IndexError::Catalog { .. })),
                "{bad:?} should be refused"
            );
        }
        cat.create("ok-1", T6).unwrap();
        assert!(matches!(
            cat.create("ok-1", T6),
            Err(IndexError::Catalog { .. })
        ));
        assert!(matches!(
            cat.drop_collection("missing"),
            Err(IndexError::Catalog { .. })
        ));
        assert!(matches!(
            cat.rename_collection("missing", "new"),
            Err(IndexError::Catalog { .. })
        ));
    }

    #[test]
    fn lru_evicts_cold_collections_under_budget_but_never_pinned() {
        let (_mem, mut cat) = mem_catalog(None);
        for n in ["a", "b", "c"] {
            cat.create(n, T6).unwrap();
        }
        // Find one collection's frozen size, then budget for two of them.
        let one = {
            let pin = cat.acquire("a").unwrap();
            let b = pin.lock().resident_bytes();
            b
        };
        cat.budget = RunBudget::with_max_bytes(2 * one);

        let pin_a = cat.acquire("a").unwrap();
        let _pin_b = cat.acquire("b").unwrap();
        assert_eq!(cat.open_count(), 2);
        assert_eq!(cat.evictions(), 0);

        // Opening c exceeds the budget; a and b are pinned, so c is served
        // over budget without evicting either.
        let pin_c = cat.acquire("c").unwrap();
        assert_eq!(cat.open_count(), 3);
        assert_eq!(cat.evictions(), 0, "pinned collections are never evicted");
        assert!(cat.notes().iter().any(|n| n.contains("over budget")));

        // Unpin a (the least recently used) and open a fourth: a is the
        // eviction victim.
        drop(pin_a);
        drop(pin_c);
        cat.create("d", T6).unwrap();
        let _pin_d = cat.acquire("d").unwrap();
        assert!(cat.evictions() >= 1);
        assert!(!cat.list().iter().any(|r| r.name == "a" && r.open));
    }

    #[test]
    fn evicted_collection_reopens_bitwise_identical() {
        let (_mem, mut cat) = mem_catalog(None);
        cat.create("x", T6).unwrap();
        cat.create("y", T6).unwrap();
        let digest_before = {
            let pin = cat.acquire("x").unwrap();
            let mut col = pin.lock();
            col.view().frozen.digest()
        };
        // Tiny budget: acquiring y evicts x.
        cat.budget = RunBudget::with_max_bytes(1);
        let _ = cat.acquire("y").unwrap();
        assert!(cat.evictions() >= 1);
        assert!(!cat.list().iter().any(|r| r.name == "x" && r.open));

        let pin = cat.acquire("x").unwrap();
        let digest_after = pin.lock().view().frozen.digest();
        assert_eq!(digest_before, digest_after);
    }

    #[test]
    fn mutations_keep_tree_list_and_hash_in_lockstep_across_reopen() {
        let (mem, mut cat) = mem_catalog(None);
        cat.create("m", T6).unwrap();
        {
            let pin = cat.acquire("m").unwrap();
            let mut col = pin.lock();
            col.add_batch(&["(((A,B),C),((D,E),F));".to_string()])
                .unwrap();
            let canon = col.tree_lines()[0].clone();
            col.remove_batch(&[canon]).unwrap();
            assert_eq!(col.stats().n_trees, 3);
            assert_eq!(col.tree_lines().len(), 3);
            // A remove of a tree that is not in the list is refused whole.
            assert!(col
                .remove_batch(&["((A,Z),(B,(C,(D,(E,F)))));".to_string()])
                .is_err());
        }
        // Reopen from disk: the sidecar + WAL reconstruction must agree.
        let mut cat2 = Catalog::open_with(Arc::new(mem.clone()), Path::new("cat"), None).unwrap();
        let pin = cat2.acquire("m").unwrap();
        let mut col = pin.lock();
        assert_eq!(col.stats().n_trees, 3);
        assert_eq!(col.tree_lines().len(), 3);
        let tc = col.tree_collection().unwrap();
        assert_eq!(tc.trees.len(), 3);

        // Compact, mutate again, reopen again.
        col.compact().unwrap();
        assert_eq!(col.generation(), 1);
        col.add_batch(&["((A,B),(C,(D,(E,F))));".to_string()])
            .unwrap();
        drop(col);
        drop(pin);
        drop(cat2);
        let mut cat3 = Catalog::open_with(Arc::new(mem.clone()), Path::new("cat"), None).unwrap();
        let pin = cat3.acquire("m").unwrap();
        let col = pin.lock();
        assert_eq!(col.stats().n_trees, 4);
        assert_eq!(col.tree_lines().len(), 4);
        assert_eq!(col.generation(), 1);
        assert_eq!(col.wal_pending(), 1);
    }

    #[test]
    fn manifest_scan_classifies_torn_tails_and_mid_file_corruption() {
        let (mem, mut cat) = mem_catalog(None);
        cat.create("one", T6).unwrap();
        cat.create("two", T6).unwrap();
        drop(cat);
        let path = Path::new("cat").join(MANIFEST_FILE);
        let full = mem.read_bytes(&path).unwrap();

        // Tear the final record: the first survives, recovery truncates.
        mem.write_bytes(&path, full[..full.len() - 3].to_vec());
        let scan = scan_manifest(&mem, &path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, WalTail::TornRecord { .. }));
        let cat = Catalog::open_with(Arc::new(mem.clone()), Path::new("cat"), None).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(cat.notes()[0].contains("torn final record"));
        drop(cat);

        // Flip a byte in the FIRST record with data after it: fatal.
        let mut bytes = full.clone();
        bytes[MANIFEST_HEADER_LEN as usize + 6] ^= 0x01;
        mem.write_bytes(&path, bytes);
        let err = scan_manifest(&mem, &path).unwrap_err();
        assert!(err.is_corruption(), "{err}");

        // Torn header recovers to an empty catalog.
        mem.write_bytes(&path, full[..5].to_vec());
        let cat = Catalog::open_with(Arc::new(mem.clone()), Path::new("cat"), None).unwrap();
        assert!(cat.is_empty());
        assert!(cat.notes()[0].contains("header torn"));
    }

    #[test]
    fn replay_violations_are_corruption() {
        let dup = [
            CatalogOp::Create {
                name: "a".into(),
                dir: "a".into(),
            },
            CatalogOp::Create {
                name: "a".into(),
                dir: "a2".into(),
            },
        ];
        assert!(replay_manifest(&dup).unwrap_err().is_corruption());
        let ghost_drop = [CatalogOp::Drop { name: "a".into() }];
        assert!(replay_manifest(&ghost_drop).unwrap_err().is_corruption());
        let ghost_rename = [CatalogOp::Rename {
            from: "a".into(),
            to: "b".into(),
        }];
        assert!(replay_manifest(&ghost_rename).unwrap_err().is_corruption());
    }

    #[test]
    fn cross_collection_tree_lists_feed_variable_taxa_rf() {
        let (_mem, mut cat) = mem_catalog(None);
        cat.create("refs", T6).unwrap();
        cat.create("queries", "((A,B),((C,D),(E,F)));").unwrap();
        let refs = cat
            .acquire("refs")
            .unwrap()
            .lock()
            .tree_collection()
            .unwrap();
        let queries = cat
            .acquire("queries")
            .unwrap()
            .lock()
            .tree_collection()
            .unwrap();
        let out = bfhrf::variable_taxa::common_taxa_rf(&refs, &queries).unwrap();
        assert_eq!(out.taxa.len(), 6);
        assert_eq!(out.scores.len(), 1);
    }
}
