//! The versioned on-disk snapshot: a full BFH frozen into one file.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic    8  bytes  "BFHSNAP\0"          (not covered by any checksum)
//! version  u16                            (not covered by any checksum)
//! -- header section ------------------------------------------------
//! generation u64 | n_taxa u64 | n_trees u64 | n_shards u64
//! sum u64 | distinct u64
//! FNV-1a 64 checksum of the section payload
//! -- taxon table section -------------------------------------------
//! n_taxa × { label_len u32 | label UTF-8 bytes }
//! FNV-1a 64 checksum
//! -- splits section ------------------------------------------------
//! distinct × { mask words: words_for(n_taxa) × u64 | freq u32 }
//!   records sorted strictly ascending by mask (deterministic bytes,
//!   duplicate masks are impossible by construction)
//! FNV-1a 64 checksum
//! EOF (trailing bytes are an error)
//! ```
//!
//! The reader validates everything **before** acting on it: header fields
//! are checksum-verified before any allocation they size, mask padding
//! bits are checked manually before [`Bits::from_words`] (which would
//! panic), and the reconstructed hash is cross-checked against the header
//! totals. Corruption is always a typed [`IndexError`], never a panic.

use crate::error::IndexError;
use crate::format::{CheckedReader, CheckedWriter};
use crate::vfs::{RealVfs, Vfs};
use bfhrf::{Bfh, RunGuard};
use phylo::TaxonSet;
use phylo_bitset::{words_for, Bits, WORD_BITS};
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"BFHSNAP\0";
/// Highest snapshot format version this build reads and the version it
/// writes.
pub const FORMAT_VERSION: u16 = 1;

/// Hard ceiling on `n_taxa` accepted from a header. Far above any real
/// collection; exists so a corrupt-but-checksum-colliding header cannot
/// drive a multi-gigabyte allocation.
const MAX_TAXA: u64 = 100_000_000;
/// How many split records to read between cancellation checkpoints.
const CHECKPOINT_EVERY: usize = 4096;

/// The fixed-size header fields of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Compaction generation; a WAL only applies to its own generation.
    pub generation: u64,
    /// Number of taxa (bit width of every mask).
    pub n_taxa: usize,
    /// Number of reference trees folded into the hash.
    pub n_trees: usize,
    /// Shard count the hash was built with.
    pub n_shards: usize,
    /// Sum of all stored frequencies (`sumBFHR`).
    pub sum: u64,
    /// Number of distinct splits stored.
    pub distinct: usize,
}

/// A fully validated snapshot loaded back into memory.
pub struct Snapshot {
    /// The reconstructed hash — bitwise-identical to the one written.
    pub bfh: Bfh,
    /// The taxon table, in the exact id order used by the masks.
    pub taxa: TaxonSet,
    /// Header fields.
    pub meta: SnapshotMeta,
}

/// Write `bfh` + `taxa` as a version-1 snapshot at `path`, fsyncing before
/// returning. The caller owns crash-safety sequencing (write to a temp
/// name, then rename).
pub fn write_snapshot(
    path: &Path,
    bfh: &Bfh,
    taxa: &TaxonSet,
    generation: u64,
) -> Result<(), IndexError> {
    write_snapshot_with(&RealVfs, path, bfh, taxa, generation)
}

/// [`write_snapshot`] routed through an explicit [`Vfs`].
pub fn write_snapshot_with(
    vfs: &dyn Vfs,
    path: &Path,
    bfh: &Bfh,
    taxa: &TaxonSet,
    generation: u64,
) -> Result<(), IndexError> {
    if taxa.len() != bfh.n_taxa() {
        return Err(IndexError::Core(bfhrf::CoreError::Structure(format!(
            "taxon table has {} labels but the hash is {}-taxon",
            taxa.len(),
            bfh.n_taxa()
        ))));
    }
    let file = vfs.create(path).map_err(|e| IndexError::io(path, e))?;
    let mut w = CheckedWriter::new(BufWriter::new(file), path);

    w.put_unchecked(SNAPSHOT_MAGIC)?;
    w.put_unchecked(&FORMAT_VERSION.to_le_bytes())?;

    // Header section.
    w.put_u64(generation)?;
    w.put_u64(bfh.n_taxa() as u64)?;
    w.put_u64(bfh.n_trees() as u64)?;
    w.put_u64(bfh.n_shards() as u64)?;
    w.put_u64(bfh.sum())?;
    w.put_u64(bfh.distinct() as u64)?;
    w.finish_section()?;

    // Taxon table section.
    for (_, label) in taxa.iter() {
        let bytes = label.as_bytes();
        w.put_u32(bytes.len() as u32)?;
        w.put(bytes)?;
    }
    w.finish_section()?;

    // Splits section, sorted by mask for deterministic output bytes.
    let mut entries: Vec<(&Bits, u32)> = bfh.iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
    for (bits, freq) in entries {
        for word in bits.words() {
            w.put_u64(*word)?;
        }
        w.put_u32(freq)?;
    }
    w.finish_section()?;

    let mut inner = w.into_inner();
    inner.flush().map_err(|e| IndexError::io(path, e))?;
    let mut file = inner
        .into_inner()
        .map_err(|e| IndexError::io(path, e.into_error()))?;
    file.sync_all().map_err(|e| IndexError::io(path, e))?;
    Ok(())
}

/// Read and checksum-verify just the magic, version, and header section.
fn read_header<R: std::io::Read>(r: &mut CheckedReader<R>) -> Result<SnapshotMeta, IndexError> {
    let mut magic = [0u8; 8];
    r.take_unchecked(&mut magic, "magic")?;
    if &magic != SNAPSHOT_MAGIC {
        return Err(IndexError::NotAnIndex(format!(
            "bad magic {:02x?} (expected {:02x?})",
            magic, SNAPSHOT_MAGIC
        )));
    }
    let mut ver = [0u8; 2];
    r.take_unchecked(&mut ver, "version")?;
    let version = u16::from_le_bytes(ver);
    if version == 0 || version > FORMAT_VERSION {
        return Err(IndexError::Version {
            found: version,
            supported: FORMAT_VERSION,
        });
    }

    let generation = r.take_u64("header")?;
    let n_taxa = r.take_u64("header")?;
    let n_trees = r.take_u64("header")?;
    let n_shards = r.take_u64("header")?;
    let sum = r.take_u64("header")?;
    let distinct = r.take_u64("header")?;
    r.verify_section("header")?;

    // Checksum passed; now sanity-bound the values before they size
    // anything.
    if n_taxa == 0 || n_taxa > MAX_TAXA {
        return Err(IndexError::Corrupt {
            section: "header",
            detail: format!("implausible taxon count {n_taxa}"),
        });
    }
    if n_shards == 0 || n_shards > 1 << 20 {
        return Err(IndexError::Corrupt {
            section: "header",
            detail: format!("implausible shard count {n_shards}"),
        });
    }
    if n_trees > u64::from(u32::MAX) {
        return Err(IndexError::Corrupt {
            section: "header",
            detail: format!("implausible tree count {n_trees}"),
        });
    }
    Ok(SnapshotMeta {
        generation,
        n_taxa: n_taxa as usize,
        n_trees: n_trees as usize,
        n_shards: n_shards as usize,
        sum,
        distinct: usize::try_from(distinct).map_err(|_| IndexError::Corrupt {
            section: "header",
            detail: format!("implausible distinct count {distinct}"),
        })?,
    })
}

/// Read only the header of the snapshot at `path` — cheap inspection
/// without touching the taxon table or splits.
pub fn read_meta(path: &Path) -> Result<SnapshotMeta, IndexError> {
    read_meta_with(&RealVfs, path)
}

/// [`read_meta`] routed through an explicit [`Vfs`].
pub fn read_meta_with(vfs: &dyn Vfs, path: &Path) -> Result<SnapshotMeta, IndexError> {
    let file = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut r = CheckedReader::new(BufReader::new(file), path);
    read_header(&mut r)
}

/// Read and checksum-verify the taxon table section, leaving the reader
/// positioned at the start of the splits section.
fn read_taxa_section<R: std::io::Read>(
    r: &mut CheckedReader<R>,
    meta: &SnapshotMeta,
    guard: &RunGuard,
) -> Result<TaxonSet, IndexError> {
    guard.check_alloc("snapshot taxon table", meta.n_taxa * 16)?;
    let mut taxa = TaxonSet::new();
    let mut label_buf = Vec::new();
    for i in 0..meta.n_taxa {
        let len = r.take_u32("taxa")? as usize;
        if len > 1 << 20 {
            return Err(IndexError::Corrupt {
                section: "taxa",
                detail: format!("label {i} claims implausible length {len}"),
            });
        }
        label_buf.resize(len, 0);
        r.take(&mut label_buf, "taxa")?;
        let label = std::str::from_utf8(&label_buf).map_err(|_| IndexError::Corrupt {
            section: "taxa",
            detail: format!("label {i} is not valid UTF-8"),
        })?;
        let id = taxa.intern(label);
        if id.index() != i {
            return Err(IndexError::Corrupt {
                section: "taxa",
                detail: format!("duplicate label {label:?} at position {i}"),
            });
        }
    }
    r.verify_section("taxa")?;
    Ok(taxa)
}

/// Read the header and taxon table of the snapshot at `path` without
/// touching the splits section. This is the cheap namespace fetch the
/// frozen-sidecar open path and the catalog's WAL pre-scan use: both
/// sections it does read are checksum-verified, the (potentially huge)
/// splits payload is never paged.
pub fn read_taxa_with(
    vfs: &dyn Vfs,
    path: &Path,
    guard: &RunGuard,
) -> Result<(SnapshotMeta, TaxonSet), IndexError> {
    let file = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut r = CheckedReader::new(BufReader::new(file), path);
    let meta = read_header(&mut r)?;
    let taxa = read_taxa_section(&mut r, &meta, guard)?;
    Ok((meta, taxa))
}

/// Load and fully validate the snapshot at `path`.
///
/// The returned [`Bfh`] is bitwise-identical to the hash that was written:
/// same taxa, same shard routing, same frequencies, same `sum`. `guard`
/// bounds the load — allocations are pre-checked against the budget and
/// cancellation is honoured between record batches.
pub fn read_snapshot(path: &Path, guard: &RunGuard) -> Result<Snapshot, IndexError> {
    read_snapshot_with(&RealVfs, path, guard)
}

/// [`read_snapshot`] routed through an explicit [`Vfs`].
pub fn read_snapshot_with(
    vfs: &dyn Vfs,
    path: &Path,
    guard: &RunGuard,
) -> Result<Snapshot, IndexError> {
    let file = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut r = CheckedReader::new(BufReader::new(file), path);
    let meta = read_header(&mut r)?;
    let taxa = read_taxa_section(&mut r, &meta, guard)?;

    // Splits.
    let words = words_for(meta.n_taxa);
    let record_bytes = words * 8 + 4;
    guard.check_alloc(
        "snapshot splits",
        meta.distinct.saturating_mul(record_bytes + 32),
    )?;
    let pad_mask = if meta.n_taxa % WORD_BITS == 0 {
        0u64
    } else {
        !((1u64 << (meta.n_taxa % WORD_BITS)) - 1)
    };
    let mut entries: Vec<(Bits, u32)> = Vec::with_capacity(meta.distinct);
    let mut word_buf = vec![0u64; words];
    let mut prev: Option<Bits> = None;
    let mut sum_check: u64 = 0;
    for i in 0..meta.distinct {
        if i % CHECKPOINT_EVERY == 0 {
            guard.checkpoint("snapshot splits")?;
        }
        for w in word_buf.iter_mut() {
            *w = r.take_u64("splits")?;
        }
        // Validate the canonical-padding invariant by hand: Bits::from_words
        // panics on stray padding bits, and corruption must stay a typed
        // error.
        if let Some(&last) = word_buf.last() {
            if last & pad_mask != 0 {
                return Err(IndexError::Corrupt {
                    section: "splits",
                    detail: format!("record {i} has set bits in the mask padding"),
                });
            }
        }
        let bits = Bits::from_words(meta.n_taxa, &word_buf);
        if let Some(p) = &prev {
            if bits <= *p {
                return Err(IndexError::Corrupt {
                    section: "splits",
                    detail: format!("record {i} out of order (masks must strictly ascend)"),
                });
            }
        }
        let freq = r.take_u32("splits")?;
        if freq == 0 || freq as usize > meta.n_trees {
            return Err(IndexError::Corrupt {
                section: "splits",
                detail: format!("record {i} frequency {freq} outside 1..={}", meta.n_trees),
            });
        }
        sum_check += u64::from(freq);
        prev = Some(bits.clone());
        entries.push((bits, freq));
    }
    r.verify_section("splits")?;
    r.expect_eof("splits")?;

    if sum_check != meta.sum {
        return Err(IndexError::Corrupt {
            section: "splits",
            detail: format!(
                "frequency sum {sum_check} disagrees with header sum {}",
                meta.sum
            ),
        });
    }

    let bfh = Bfh::from_entries(meta.n_taxa, meta.n_shards, meta.n_trees, entries)?;
    if bfh.distinct() != meta.distinct {
        return Err(IndexError::Corrupt {
            section: "splits",
            detail: format!(
                "reconstructed {} distinct splits, header says {}",
                bfh.distinct(),
                meta.distinct
            ),
        });
    }
    Ok(Snapshot { bfh, taxa, meta })
}
