//! Error type for the persistent index.
//!
//! Everything that can go wrong with on-disk state is a **typed** error —
//! a flipped byte, a truncated file, or a stale-generation WAL must never
//! panic, because the daemon built on top of this crate has to keep
//! serving from its last good in-memory snapshot.

use std::fmt;
use std::path::PathBuf;

/// Errors from reading, writing, or replaying index state.
#[derive(Debug)]
pub enum IndexError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file exists but is not an index artifact (bad magic), or the
    /// directory holds no snapshot at all.
    NotAnIndex(String),
    /// The artifact declares a format version this build cannot read.
    Version {
        /// Version found in the file.
        found: u16,
        /// Highest version this build understands.
        supported: u16,
    },
    /// A section failed validation: checksum mismatch, truncation,
    /// impossible field values, trailing garbage. The section name pins
    /// down where ("header", "taxa", "splits", "wal-header", "wal-record").
    Corrupt {
        /// Which section of which artifact failed.
        section: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// A replayed or reconstructed hash violated a core invariant.
    Core(bfhrf::CoreError),
    /// A WAL payload failed to parse as Newick against the index taxa.
    Phylo(phylo::PhyloError),
    /// A catalog operation was semantically invalid: unknown collection,
    /// name already taken, reserved or malformed name, or a collection
    /// busy with in-flight work. Disk state is fine; the request is not.
    Catalog {
        /// What was wrong with the request.
        detail: String,
    },
    /// The WAL could not be reset after a committed compaction, so
    /// mutations are refused until a reopen or a successful compaction
    /// heals the log. Reads stay available; nothing durable is lost.
    WalUnavailable {
        /// Why the log is out of service.
        detail: String,
    },
    /// The zero-copy frozen open path cannot serve this index right now —
    /// the sidecar is missing, stale, or the WAL holds unreplayed records.
    /// Not a corruption verdict: a full [`crate::Index::open`] works, and
    /// its next compaction rewrites the sidecar.
    FrozenUnavailable {
        /// Why the fast path declined.
        detail: String,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            IndexError::NotAnIndex(what) => write!(f, "not a BFH index: {what}"),
            IndexError::Version { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            IndexError::Corrupt { section, detail } => {
                write!(f, "corrupt {section} section: {detail}")
            }
            IndexError::Catalog { detail } => write!(f, "catalog error: {detail}"),
            IndexError::Core(e) => write!(f, "core error: {e}"),
            IndexError::Phylo(e) => write!(f, "newick error: {e}"),
            IndexError::WalUnavailable { detail } => write!(
                f,
                "WAL unavailable: {detail} (reads still work; compact or reopen to recover)"
            ),
            IndexError::FrozenUnavailable { detail } => write!(
                f,
                "frozen fast-open unavailable: {detail} (fall back to a full open)"
            ),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io { source, .. } => Some(source),
            IndexError::Core(e) => Some(e),
            IndexError::Phylo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bfhrf::CoreError> for IndexError {
    fn from(e: bfhrf::CoreError) -> Self {
        IndexError::Core(e)
    }
}

impl From<phylo::PhyloError> for IndexError {
    fn from(e: phylo::PhyloError) -> Self {
        IndexError::Phylo(e)
    }
}

impl IndexError {
    /// Attach a path to a raw IO error.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        IndexError::Io {
            path: path.into(),
            source,
        }
    }

    /// Whether this error means "on-disk bytes are bad" (as opposed to IO
    /// or semantic failures) — what the corruption tests assert.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            IndexError::Corrupt { .. } | IndexError::NotAnIndex(_) | IndexError::Version { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = IndexError::Corrupt {
            section: "splits",
            detail: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("splits"));
        assert!(e.is_corruption());
        let v = IndexError::Version {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains('9'));
        assert!(v.is_corruption());
        let io = IndexError::io(
            "/tmp/x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(io.to_string().contains("/tmp/x"));
        assert!(!io.is_corruption());
    }
}
