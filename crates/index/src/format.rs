//! Shared binary-format primitives: little-endian integer framing and the
//! FNV-1a section checksum.
//!
//! Every multi-byte integer in an index artifact is little-endian. Each
//! section ends with the 64-bit FNV-1a hash of its payload bytes, written
//! by [`Digest`] on the way out and re-derived on the way in — a flipped
//! byte anywhere in a section surfaces as a typed checksum mismatch, never
//! as silently wrong frequencies.

use crate::error::IndexError;
use std::io::{Read, Write};
use std::path::Path;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 checksum over a byte stream.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Digest(FNV_OFFSET)
    }
}

impl Digest {
    /// A fresh digest at the offset basis.
    pub fn new() -> Self {
        Digest::default()
    }

    /// Fold `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(bytes);
    d.value()
}

/// A writer that checksums everything passing through it, so sections can
/// be emitted in one streaming pass and sealed with
/// [`CheckedWriter::finish_section`].
pub struct CheckedWriter<W: Write> {
    inner: W,
    digest: Digest,
    path: std::path::PathBuf,
}

impl<W: Write> CheckedWriter<W> {
    /// Wrap `inner`; `path` is only for error messages.
    pub fn new(inner: W, path: &Path) -> Self {
        CheckedWriter {
            inner,
            digest: Digest::new(),
            path: path.to_path_buf(),
        }
    }

    fn io(&self, e: std::io::Error) -> IndexError {
        IndexError::io(&self.path, e)
    }

    /// Write raw bytes, folding them into the running section digest.
    pub fn put(&mut self, bytes: &[u8]) -> Result<(), IndexError> {
        self.digest.update(bytes);
        self.inner.write_all(bytes).map_err(|e| self.io(e))
    }

    /// Write a little-endian `u64` into the current section.
    pub fn put_u64(&mut self, v: u64) -> Result<(), IndexError> {
        self.put(&v.to_le_bytes())
    }

    /// Write a little-endian `u32` into the current section.
    pub fn put_u32(&mut self, v: u32) -> Result<(), IndexError> {
        self.put(&v.to_le_bytes())
    }

    /// Write bytes that are *not* part of any section (magic, version —
    /// fields that must be readable before any checksum can be trusted).
    pub fn put_unchecked(&mut self, bytes: &[u8]) -> Result<(), IndexError> {
        self.inner.write_all(bytes).map_err(|e| self.io(e))
    }

    /// Seal the current section: append its FNV-1a checksum and reset the
    /// digest for the next section.
    pub fn finish_section(&mut self) -> Result<(), IndexError> {
        let sum = self.digest.value();
        self.digest = Digest::new();
        self.inner
            .write_all(&sum.to_le_bytes())
            .map_err(|e| self.io(e))
    }

    /// Unwrap the inner writer (for flushing/syncing).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// A reader that checksums everything passing through it and verifies the
/// section seal in [`CheckedReader::verify_section`].
pub struct CheckedReader<R: Read> {
    inner: R,
    digest: Digest,
    path: std::path::PathBuf,
}

impl<R: Read> CheckedReader<R> {
    /// Wrap `inner`; `path` is only for error messages.
    pub fn new(inner: R, path: &Path) -> Self {
        CheckedReader {
            inner,
            digest: Digest::new(),
            path: path.to_path_buf(),
        }
    }

    fn io(&self, e: std::io::Error) -> IndexError {
        IndexError::io(&self.path, e)
    }

    fn truncated(section: &'static str, wanted: usize) -> IndexError {
        IndexError::Corrupt {
            section,
            detail: format!("file truncated ({wanted} bytes missing)"),
        }
    }

    /// Read exactly `buf.len()` bytes into the current section, folding
    /// them into the digest. Short reads are typed truncation errors.
    pub fn take(&mut self, buf: &mut [u8], section: &'static str) -> Result<(), IndexError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.digest.update(buf);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(Self::truncated(section, buf.len()))
            }
            Err(e) => Err(self.io(e)),
        }
    }

    /// Read a little-endian `u64` from the current section.
    pub fn take_u64(&mut self, section: &'static str) -> Result<u64, IndexError> {
        let mut b = [0u8; 8];
        self.take(&mut b, section)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian `u32` from the current section.
    pub fn take_u32(&mut self, section: &'static str) -> Result<u32, IndexError> {
        let mut b = [0u8; 4];
        self.take(&mut b, section)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read bytes outside any section (magic, version).
    pub fn take_unchecked(
        &mut self,
        buf: &mut [u8],
        section: &'static str,
    ) -> Result<(), IndexError> {
        match self.inner.read_exact(buf) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(Self::truncated(section, buf.len()))
            }
            Err(e) => Err(self.io(e)),
        }
    }

    /// Read the section seal and compare it against the bytes consumed
    /// since the previous seal. Resets the digest for the next section.
    pub fn verify_section(&mut self, section: &'static str) -> Result<(), IndexError> {
        let got = self.digest.value();
        self.digest = Digest::new();
        let mut b = [0u8; 8];
        match self.inner.read_exact(&mut b) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(Self::truncated(section, 8))
            }
            Err(e) => return Err(self.io(e)),
        }
        let want = u64::from_le_bytes(b);
        if got != want {
            return Err(IndexError::Corrupt {
                section,
                detail: format!("checksum mismatch (stored {want:#018x}, computed {got:#018x})"),
            });
        }
        Ok(())
    }

    /// Error unless the stream is exactly at EOF — trailing garbage after
    /// the last section means the file was appended to or mixed up.
    pub fn expect_eof(&mut self, section: &'static str) -> Result<(), IndexError> {
        let mut b = [0u8; 1];
        match self.inner.read(&mut b) {
            Ok(0) => Ok(()),
            Ok(_) => Err(IndexError::Corrupt {
                section,
                detail: "trailing bytes after final section".into(),
            }),
            Err(e) => Err(self.io(e)),
        }
    }

    /// Unwrap the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // incremental == one-shot
        let mut d = Digest::new();
        d.update(b"foo");
        d.update(b"bar");
        assert_eq!(d.value(), fnv1a64(b"foobar"));
    }

    #[test]
    fn writer_reader_round_trip_and_seal() {
        let mut buf = Vec::new();
        let p = Path::new("mem");
        let mut w = CheckedWriter::new(&mut buf, p);
        w.put_unchecked(b"MAGIC").unwrap();
        w.put_u64(42).unwrap();
        w.put_u32(7).unwrap();
        w.finish_section().unwrap();
        w.put(b"next").unwrap();
        w.finish_section().unwrap();

        let mut r = CheckedReader::new(buf.as_slice(), p);
        let mut magic = [0u8; 5];
        r.take_unchecked(&mut magic, "magic").unwrap();
        assert_eq!(&magic, b"MAGIC");
        assert_eq!(r.take_u64("s1").unwrap(), 42);
        assert_eq!(r.take_u32("s1").unwrap(), 7);
        r.verify_section("s1").unwrap();
        let mut next = [0u8; 4];
        r.take(&mut next, "s2").unwrap();
        r.verify_section("s2").unwrap();
        r.expect_eof("s2").unwrap();
    }

    #[test]
    fn flipped_byte_is_a_checksum_error() {
        let mut buf = Vec::new();
        let p = Path::new("mem");
        let mut w = CheckedWriter::new(&mut buf, p);
        w.put_u64(1234).unwrap();
        w.finish_section().unwrap();
        buf[2] ^= 0x40;
        let mut r = CheckedReader::new(buf.as_slice(), p);
        r.take_u64("hdr").unwrap();
        let err = r.verify_section("hdr").unwrap_err();
        assert!(
            matches!(err, IndexError::Corrupt { section: "hdr", .. }),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_typed() {
        let mut buf = Vec::new();
        let p = Path::new("mem");
        let mut w = CheckedWriter::new(&mut buf, p);
        w.put_u64(5).unwrap();
        w.finish_section().unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = CheckedReader::new(buf.as_slice(), p);
        r.take_u64("hdr").unwrap();
        let err = r.verify_section("hdr").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }
}
