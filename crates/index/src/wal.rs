//! Append-only write-ahead log of add/remove tree batches.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! magic    8  bytes  "BFHWAL\0\0"         (not covered by any checksum)
//! version  u16                            (not covered by any checksum)
//! -- header section ------------------------------------------------
//! generation u64
//! policy   u8  (version 2 only: 0=strict, 1=lenient ingest)
//! FNV-1a 64 checksum of the fields above
//! -- records, appended over time -----------------------------------
//! each: { op u8 | payload_len u32 | payload | FNV-1a 64 checksum of
//!         op+len+payload }
//! ```
//!
//! Op bytes 1 (add) and 2 (remove) carry UTF-8 Newick payloads; ops 3
//! (add) and 4 (remove) carry [`phylo_wire`] binary tree records whose
//! taxon ids are relative to the index's own namespace. The two encodings
//! mix freely in one log — every record is self-describing.
//!
//! A **strict**-built index writes version-1 headers, byte-identical to
//! what earlier builds produced; only a leniently built index opts into
//! the version-2 header so replay knows to skip (rather than die on)
//! records that no longer resolve. Version-1 files read as
//! [`WalPolicy::Strict`].
//!
//! The `generation` ties a WAL to the snapshot it amends. Compaction
//! writes a new snapshot at generation *g+1* and then resets the WAL to
//! *g+1*; if a crash lands between those two steps, the leftover WAL still
//! says *g* and [`crate::Index`] discards it as stale instead of replaying
//! already-folded batches twice.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a prefix of the final record (or, on real
//! hardware, a garbled final record). [`scan_wal`] distinguishes the two
//! recoverable shapes from true corruption:
//!
//! * the file ends inside a record, or the **final** record's checksum
//!   fails → [`WalTail::TornRecord`]: every fully-checksummed record
//!   before it is valid; recovery truncates the tail.
//! * the file ends inside the 26-byte header → [`WalTail::TornHeader`]: a
//!   crash during a log reset; recovery recreates the log.
//!
//! Anything wrong *before* the final record — checksum mismatch with more
//! data following, an unknown op byte, an implausible length — cannot be
//! produced by tearing a suffix off our own writes and stays a fatal
//! [`IndexError::Corrupt`].

use crate::error::IndexError;
use crate::format::Digest;
use crate::vfs::{real_vfs, Vfs, VfsFile};
use phylo::{parse_newick, write_newick, TaxaPolicy, TaxonSet, Tree};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"BFHWAL\0\0";
/// Highest WAL format version this build reads. Strict logs are written
/// as version 1 (byte-identical to earlier builds); lenient logs as
/// version 2.
pub const WAL_VERSION: u16 = 2;

/// Bytes of magic + version + generation + header checksum (version 1).
const HEADER_LEN: u64 = 8 + 2 + 8 + 8;
/// Version-2 header: one extra policy byte.
const HEADER_LEN_V2: u64 = HEADER_LEN + 1;

/// Largest payload a record may carry (64 MiB) — bounds what a corrupt
/// length field can make the reader allocate.
const MAX_PAYLOAD: usize = 64 << 20;

const OP_ADD: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_ADD_BIN: u8 = 3;
const OP_REMOVE_BIN: u8 = 4;

/// What a WAL record does to the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Fold the payload tree into the hash.
    Add,
    /// Downdate the payload tree out of the hash.
    Remove,
}

/// The ingest policy recorded in a WAL header: how replay treats records
/// that no longer decode against the index namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalPolicy {
    /// Any undecodable record is fatal corruption (the version-1 default).
    #[default]
    Strict,
    /// Undecodable records are skipped with a recovery note, mirroring the
    /// lenient ingest the index was built with.
    Lenient,
}

impl WalPolicy {
    fn to_byte(self) -> u8 {
        match self {
            WalPolicy::Strict => 0,
            WalPolicy::Lenient => 1,
        }
    }

    fn from_byte(b: u8) -> Option<WalPolicy> {
        match b {
            0 => Some(WalPolicy::Strict),
            1 => Some(WalPolicy::Lenient),
            _ => None,
        }
    }

    /// Stable label for notes and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            WalPolicy::Strict => "strict",
            WalPolicy::Lenient => "lenient",
        }
    }
}

/// A record's tree payload in whichever encoding it was appended with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// UTF-8 Newick text (ops 1/2).
    Newick(String),
    /// A [`phylo_wire`] binary tree record whose taxon ids are relative to
    /// the index's own namespace (ops 3/4).
    Bin(Vec<u8>),
}

impl WalPayload {
    /// Stable encoding label ("newick" / "bin") for notes and metrics.
    pub fn encoding(&self) -> &'static str {
        match self {
            WalPayload::Newick(_) => "newick",
            WalPayload::Bin(_) => "bin",
        }
    }
}

/// One replayable record: an operation plus its tree payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Add or remove.
    pub op: WalOp,
    /// The tree, as Newick text or a binary wire record.
    pub payload: WalPayload,
}

impl WalRecord {
    /// A Newick-encoded record (the classic form).
    pub fn newick(op: WalOp, newick: impl Into<String>) -> WalRecord {
        WalRecord {
            op,
            payload: WalPayload::Newick(newick.into()),
        }
    }

    /// A binary-encoded record.
    pub fn bin(op: WalOp, bytes: Vec<u8>) -> WalRecord {
        WalRecord {
            op,
            payload: WalPayload::Bin(bytes),
        }
    }

    /// Decode the payload into a [`Tree`] against the frozen index
    /// namespace. Newick payloads must resolve every label
    /// ([`TaxaPolicy::Require`]); binary payloads must stay in id range.
    pub fn decode(&self, taxa: &TaxonSet) -> Result<Tree, IndexError> {
        let mut scratch = taxa.clone();
        self.decode_with_scratch(taxa, &mut scratch)
    }

    /// [`WalRecord::decode`] with a caller-owned scratch clone of `taxa`,
    /// so replay loops clone the namespace once instead of per record.
    /// `scratch` must start as a clone of `taxa`; `TaxaPolicy::Require`
    /// guarantees it never grows.
    pub fn decode_with_scratch(
        &self,
        taxa: &TaxonSet,
        scratch: &mut TaxonSet,
    ) -> Result<Tree, IndexError> {
        match &self.payload {
            WalPayload::Newick(s) => Ok(parse_newick(s, scratch, TaxaPolicy::Require)?),
            WalPayload::Bin(bytes) => {
                phylo_wire::decode_tree_exact(bytes, taxa.len()).map_err(|e| IndexError::Corrupt {
                    section: "wal-record",
                    detail: format!("binary payload does not decode: {e}"),
                })
            }
        }
    }

    /// The payload as canonical Newick text, decoding binary records
    /// through the index namespace.
    pub fn to_newick(&self, taxa: &TaxonSet) -> Result<String, IndexError> {
        match &self.payload {
            WalPayload::Newick(s) => Ok(s.clone()),
            WalPayload::Bin(_) => Ok(write_newick(&self.decode(taxa)?, taxa)),
        }
    }
}

/// How the byte stream of a WAL ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// The file ends exactly at a record boundary.
    Clean,
    /// The final record is cut short or garbled — a crash mid-append.
    /// Everything before `valid_len` replays; the tail is recoverable by
    /// truncation.
    TornRecord {
        /// Offset of the last fully-validated record's end.
        valid_len: u64,
        /// Garbage bytes after it.
        lost: u64,
    },
    /// The file ends inside the header — a crash during a log reset.
    /// Nothing replays; recovery recreates the log.
    TornHeader {
        /// Actual file length.
        len: u64,
    },
}

/// The result of a lenient WAL scan: validated records plus a
/// classification of how the byte stream ends.
#[derive(Debug)]
pub struct WalScan {
    /// Generation from the header (0 when the header itself is torn).
    pub generation: u64,
    /// Replay policy from the header (version 1 headers read as strict).
    pub policy: WalPolicy,
    /// Every fully-validated record, in append order.
    pub records: Vec<WalRecord>,
    /// Offset one past the last valid byte (header or record end).
    pub valid_len: u64,
    /// Tail classification.
    pub tail: WalTail,
}

/// A successfully opened (possibly recovered) WAL plus its replayable
/// records and any recovery notes.
pub struct WalOpen {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// Records to replay on top of the snapshot.
    pub records: Vec<WalRecord>,
    /// Human-readable recovery notes (empty on a clean open).
    pub notes: Vec<String>,
}

/// An open WAL positioned for appending.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    file: Box<dyn VfsFile>,
    generation: u64,
    policy: WalPolicy,
    /// Bytes known durable and valid: the header plus every record whose
    /// append fsync was acknowledged. A failed append rolls the file back
    /// to this offset so a half-written record never poisons the log.
    synced_len: u64,
}

fn record_checksum(op: u8, payload: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(&[op]);
    d.update(&(payload.len() as u32).to_le_bytes());
    d.update(payload);
    d.value()
}

impl Wal {
    /// Create (or truncate) the WAL at `path` for `generation`, fsynced.
    pub fn create(path: &Path, generation: u64) -> Result<Wal, IndexError> {
        Wal::create_with(real_vfs(), path, generation)
    }

    /// [`Wal::create`] routed through an explicit [`Vfs`] (strict policy,
    /// version-1 bytes).
    pub fn create_with(vfs: Arc<dyn Vfs>, path: &Path, generation: u64) -> Result<Wal, IndexError> {
        Wal::create_policy_with(vfs, path, generation, WalPolicy::Strict)
    }

    /// [`Wal::create`] with an explicit replay policy. Strict logs keep
    /// the version-1 header byte-for-byte; lenient logs record the policy
    /// in a version-2 header so replay honours it after a reopen.
    pub fn create_policy_with(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        generation: u64,
        policy: WalPolicy,
    ) -> Result<Wal, IndexError> {
        let mut file = vfs.create(path).map_err(|e| IndexError::io(path, e))?;
        let version: u16 = match policy {
            WalPolicy::Strict => 1,
            WalPolicy::Lenient => 2,
        };
        let header_len = match policy {
            WalPolicy::Strict => HEADER_LEN,
            WalPolicy::Lenient => HEADER_LEN_V2,
        };
        let mut header = Vec::with_capacity(header_len as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        let gen_bytes = generation.to_le_bytes();
        header.extend_from_slice(&gen_bytes);
        let mut d = Digest::new();
        d.update(&gen_bytes);
        if policy == WalPolicy::Lenient {
            header.push(policy.to_byte());
            d.update(&[policy.to_byte()]);
        }
        header.extend_from_slice(&d.value().to_le_bytes());
        file.write_all(&header)
            .map_err(|e| IndexError::io(path, e))?;
        file.sync_all().map_err(|e| IndexError::io(path, e))?;
        phylo_obs::global().counter("wal_fsyncs_total", &[]).inc();
        Ok(Wal {
            vfs,
            path: path.to_path_buf(),
            file,
            generation,
            policy,
            synced_len: header_len,
        })
    }

    /// Open the WAL at `path` strictly: any torn or corrupt byte is an
    /// error. Validates and returns every record, then leaves the handle
    /// positioned for appending.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>), IndexError> {
        let vfs = real_vfs();
        let scan = scan_wal(&*vfs, path)?;
        if let Some(err) = tail_error(&scan.tail) {
            return Err(err);
        }
        let file = vfs.open_append(path).map_err(|e| IndexError::io(path, e))?;
        Ok((
            Wal {
                vfs,
                path: path.to_path_buf(),
                file,
                generation: scan.generation,
                policy: scan.policy,
                synced_len: scan.valid_len,
            },
            scan.records,
        ))
    }

    /// Open the WAL at `path` with torn-tail recovery.
    ///
    /// * Clean log → `Ok(Some(..))` with no notes.
    /// * Torn or garbled **final** record → the tail is truncated away,
    ///   a note records what was dropped, and the open succeeds with the
    ///   surviving records.
    /// * Torn **header** → `Ok(None)`: the log carries no information; the
    ///   caller recreates it at the snapshot's generation.
    /// * Corruption before the tail → `Err` as before.
    pub fn recover(vfs: Arc<dyn Vfs>, path: &Path) -> Result<Option<WalOpen>, IndexError> {
        let scan = scan_wal(&*vfs, path)?;
        let mut notes = Vec::new();
        match scan.tail {
            WalTail::Clean => {}
            WalTail::TornHeader { len } => {
                phylo_obs::global()
                    .counter("wal_recovered_total", &[("kind", "torn-header")])
                    .inc();
                let _ = len;
                return Ok(None);
            }
            WalTail::TornRecord { valid_len, lost } => {
                vfs.truncate(path, valid_len)
                    .map_err(|e| IndexError::io(path, e))?;
                phylo_obs::global()
                    .counter("wal_recovered_total", &[("kind", "torn-tail")])
                    .inc();
                notes.push(format!(
                    "wal: dropped a torn final record ({lost} trailing bytes after offset \
                     {valid_len}); {} intact records replayed",
                    scan.records.len()
                ));
            }
        }
        let file = vfs.open_append(path).map_err(|e| IndexError::io(path, e))?;
        Ok(Some(WalOpen {
            wal: Wal {
                vfs,
                path: path.to_path_buf(),
                file,
                generation: scan.generation,
                policy: scan.policy,
                synced_len: scan.valid_len,
            },
            records: scan.records,
            notes,
        }))
    }

    /// The generation this WAL amends.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The replay policy recorded in this log's header.
    pub fn policy(&self) -> WalPolicy {
        self.policy
    }

    /// Append one record and fsync it.
    ///
    /// On failure the file is rolled back to the last acknowledged record
    /// boundary, so a torn in-flight record never reaches a future open;
    /// if even the rollback fails, the error reports the log as
    /// unavailable and the caller must reopen.
    pub fn append(&mut self, op: WalOp, newick: &str) -> Result<(), IndexError> {
        let op_byte = match op {
            WalOp::Add => OP_ADD,
            WalOp::Remove => OP_REMOVE,
        };
        self.append_raw(op, op_byte, newick.as_bytes())
    }

    /// Append one binary-encoded record ([`phylo_wire`] tree bytes in the
    /// index's own namespace) and fsync it. Same rollback contract as
    /// [`Wal::append`].
    pub fn append_bin(&mut self, op: WalOp, bytes: &[u8]) -> Result<(), IndexError> {
        let op_byte = match op {
            WalOp::Add => OP_ADD_BIN,
            WalOp::Remove => OP_REMOVE_BIN,
        };
        self.append_raw(op, op_byte, bytes)
    }

    fn append_raw(&mut self, op: WalOp, op_byte: u8, payload: &[u8]) -> Result<(), IndexError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(IndexError::Corrupt {
                section: "wal-record",
                detail: format!(
                    "payload of {} bytes exceeds the record limit",
                    payload.len()
                ),
            });
        }
        let mut rec = Vec::with_capacity(1 + 4 + payload.len() + 8);
        rec.push(op_byte);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&record_checksum(op_byte, payload).to_le_bytes());
        let write_then_sync = self
            .file
            .write_all(&rec)
            .and_then(|()| self.file.sync_all());
        if let Err(e) = write_then_sync {
            return Err(self.rollback_failed_append(e));
        }
        self.synced_len += rec.len() as u64;
        let reg = phylo_obs::global();
        let op_label = match op {
            WalOp::Add => "add",
            WalOp::Remove => "remove",
        };
        reg.counter("wal_appends_total", &[("op", op_label)]).inc();
        reg.counter("wal_fsyncs_total", &[]).inc();
        Ok(())
    }

    /// Undo a half-written record by truncating back to the last
    /// acknowledged boundary, preserving the original failure as the
    /// returned error.
    fn rollback_failed_append(&mut self, cause: std::io::Error) -> IndexError {
        match self.vfs.truncate(&self.path, self.synced_len) {
            Ok(()) => {
                phylo_obs::global()
                    .counter("wal_append_rollbacks_total", &[])
                    .inc();
                IndexError::io(&self.path, cause)
            }
            Err(trunc_err) => IndexError::io(
                &self.path,
                std::io::Error::other(format!(
                    "append failed ({cause}) and rollback truncation also failed \
                     ({trunc_err}); reopen the index to recover the log"
                )),
            ),
        }
    }
}

/// The strict-mode error for a non-clean tail (legacy `read_wal`
/// semantics).
fn tail_error(tail: &WalTail) -> Option<IndexError> {
    match tail {
        WalTail::Clean => None,
        WalTail::TornRecord { .. } => Some(IndexError::Corrupt {
            section: "wal-record",
            detail: "file truncated mid-record".into(),
        }),
        WalTail::TornHeader { .. } => Some(IndexError::Corrupt {
            section: "wal-header",
            detail: "file truncated mid-record".into(),
        }),
    }
}

/// Read `buf.len()` bytes, tracking `offset`. Returns `Ok(false)` on EOF
/// (partial reads count toward `offset` so tails measure exactly).
fn read_fully(r: &mut impl Read, buf: &mut [u8], offset: &mut u64) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            *offset += filled as u64;
            return Ok(false);
        }
        filled += n;
    }
    *offset += buf.len() as u64;
    Ok(true)
}

/// Scan the WAL at `path`, validating records and classifying the tail
/// instead of failing on it. Corruption *before* the final record is
/// still a typed error.
pub fn scan_wal(vfs: &dyn Vfs, path: &Path) -> Result<WalScan, IndexError> {
    let file = vfs.open_read(path).map_err(|e| IndexError::io(path, e))?;
    let mut r = BufReader::new(file);
    let mut offset: u64 = 0;
    let io_err = |e| IndexError::io(path, e);

    let torn_header = |offset| WalScan {
        generation: 0,
        policy: WalPolicy::Strict,
        records: Vec::new(),
        valid_len: 0,
        tail: WalTail::TornHeader { len: offset },
    };

    let mut magic = [0u8; 8];
    if !read_fully(&mut r, &mut magic, &mut offset).map_err(io_err)? {
        return Ok(torn_header(offset));
    }
    if &magic != WAL_MAGIC {
        return Err(IndexError::NotAnIndex(format!(
            "bad WAL magic {:02x?} (expected {:02x?})",
            magic, WAL_MAGIC
        )));
    }
    let mut ver = [0u8; 2];
    if !read_fully(&mut r, &mut ver, &mut offset).map_err(io_err)? {
        return Ok(torn_header(offset));
    }
    let version = u16::from_le_bytes(ver);
    if version == 0 || version > WAL_VERSION {
        return Err(IndexError::Version {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let mut gen_bytes = [0u8; 8];
    if !read_fully(&mut r, &mut gen_bytes, &mut offset).map_err(io_err)? {
        return Ok(torn_header(offset));
    }
    let mut d = Digest::new();
    d.update(&gen_bytes);
    let policy = if version >= 2 {
        let mut pol = [0u8; 1];
        if !read_fully(&mut r, &mut pol, &mut offset).map_err(io_err)? {
            return Ok(torn_header(offset));
        }
        d.update(&pol);
        match WalPolicy::from_byte(pol[0]) {
            Some(p) => p,
            None => {
                return Err(IndexError::Corrupt {
                    section: "wal-header",
                    detail: format!("unknown replay policy byte {}", pol[0]),
                })
            }
        }
    } else {
        WalPolicy::Strict
    };
    let mut sum = [0u8; 8];
    if !read_fully(&mut r, &mut sum, &mut offset).map_err(io_err)? {
        return Ok(torn_header(offset));
    }
    if d.value() != u64::from_le_bytes(sum) {
        // All header bytes are present, so this is a flipped byte, not
        // a tear.
        return Err(IndexError::Corrupt {
            section: "wal-header",
            detail: "generation checksum mismatch".into(),
        });
    }
    let generation = u64::from_le_bytes(gen_bytes);

    let mut records = Vec::new();
    let mut valid_len = offset;
    loop {
        let mut op_byte = [0u8; 1];
        if !read_fully(&mut r, &mut op_byte, &mut offset).map_err(io_err)? {
            // Clean EOF at a record boundary is the normal end (a 1-byte
            // read is all-or-nothing, so EOF here is exactly boundary EOF).
            return Ok(WalScan {
                generation,
                policy,
                records,
                valid_len,
                tail: WalTail::Clean,
            });
        }
        let torn = |offset: u64, records: Vec<WalRecord>| WalScan {
            generation,
            policy,
            records,
            valid_len,
            tail: WalTail::TornRecord {
                valid_len,
                lost: offset - valid_len,
            },
        };
        let (op, binary) = match op_byte[0] {
            OP_ADD => (WalOp::Add, false),
            OP_REMOVE => (WalOp::Remove, false),
            OP_ADD_BIN => (WalOp::Add, true),
            OP_REMOVE_BIN => (WalOp::Remove, true),
            other => {
                return Err(IndexError::Corrupt {
                    section: "wal-record",
                    detail: format!("record {} has unknown op {other}", records.len()),
                })
            }
        };
        let mut len_bytes = [0u8; 4];
        if !read_fully(&mut r, &mut len_bytes, &mut offset).map_err(io_err)? {
            return Ok(torn(offset, records));
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_PAYLOAD {
            return Err(IndexError::Corrupt {
                section: "wal-record",
                detail: format!(
                    "record {} claims implausible payload length {len}",
                    records.len()
                ),
            });
        }
        let mut payload = vec![0u8; len];
        if !read_fully(&mut r, &mut payload, &mut offset).map_err(io_err)? {
            return Ok(torn(offset, records));
        }
        let mut sum = [0u8; 8];
        if !read_fully(&mut r, &mut sum, &mut offset).map_err(io_err)? {
            return Ok(torn(offset, records));
        }
        if record_checksum(op_byte[0], &payload) != u64::from_le_bytes(sum) {
            // A garbled record that is the *last* thing in the file is a
            // crash artifact (partial-sector garbage); one followed by
            // more data is mid-file corruption.
            let mut probe = [0u8; 1];
            return if read_fully(&mut r, &mut probe, &mut offset).map_err(io_err)? {
                Err(IndexError::Corrupt {
                    section: "wal-record",
                    detail: format!("record {} checksum mismatch", records.len()),
                })
            } else {
                Ok(torn(offset, records))
            };
        }
        let record = if binary {
            WalRecord::bin(op, payload)
        } else {
            let newick = String::from_utf8(payload).map_err(|_| IndexError::Corrupt {
                section: "wal-record",
                detail: format!("record {} payload is not valid UTF-8", records.len()),
            })?;
            WalRecord::newick(op, newick)
        };
        records.push(record);
        valid_len = offset;
    }
}

/// Read and validate the whole WAL at `path`: returns its generation and
/// every record in append order. Any flipped byte or torn record is a
/// typed [`IndexError::Corrupt`] (strict mode; [`scan_wal`] is the lenient
/// variant).
pub fn read_wal(path: &Path) -> Result<(u64, Vec<WalRecord>), IndexError> {
    let scan = scan_wal(&crate::vfs::RealVfs, path)?;
    if let Some(err) = tail_error(&scan.tail) {
        return Err(err);
    }
    Ok((scan.generation, scan.records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bfhrf-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn create_append_read_round_trip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path, 7).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        wal.append(WalOp::Remove, "((A,C),B);").unwrap();
        drop(wal);
        let (generation, records) = read_wal(&path).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(
            records,
            vec![
                WalRecord::newick(WalOp::Add, "((A,B),C);"),
                WalRecord::newick(WalOp::Remove, "((A,C),B);"),
            ]
        );
        // Reopen-for-append preserves existing records.
        let (mut wal, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(wal.generation(), 7);
        wal.append(WalOp::Add, "(A,(B,C));").unwrap();
        let (_, records) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn flipped_payload_byte_is_typed_corruption() {
        let path = tmp("flip");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        wal.append(WalOp::Add, "((A,C),B);").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip inside the FIRST record's payload (header 26 + op 1 +
        // len 4 puts the payload at offset 31): mid-file garbage is fatal
        // even in lenient mode.
        let at = HEADER_LEN as usize + 5 + 2;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_wal(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(err.to_string().contains("wal-record"), "{err}");
        let err = scan_wal(&RealVfs, &path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn torn_tail_is_typed_corruption_in_strict_mode() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = read_wal(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn scan_classifies_torn_record_and_recover_truncates_it() {
        let path = tmp("scan-torn");
        let mut wal = Wal::create(&path, 3).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        wal.append(WalOp::Add, "((A,C),B);").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let boundary = HEADER_LEN as usize + (full.len() - HEADER_LEN as usize) / 2;
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let scan = scan_wal(&RealVfs, &path).unwrap();
        assert_eq!(scan.generation, 3);
        assert_eq!(scan.records.len(), 1, "first record survives");
        assert_eq!(scan.valid_len as usize, boundary);
        assert!(
            matches!(scan.tail, WalTail::TornRecord { lost, .. } if lost > 0),
            "{:?}",
            scan.tail
        );

        let opened = Wal::recover(real_vfs(), &path).unwrap().unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.notes.len(), 1, "{:?}", opened.notes);
        assert!(opened.notes[0].contains("torn final record"));
        drop(opened);
        // The file is truncated back to a clean boundary now.
        let (generation, records) = read_wal(&path).unwrap();
        assert_eq!(generation, 3);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn recover_appends_after_truncation() {
        let path = tmp("recover-append");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        wal.append(WalOp::Add, "((A,C),B);").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut opened = Wal::recover(real_vfs(), &path).unwrap().unwrap();
        opened.wal.append(WalOp::Add, "(A,(B,C));").unwrap();
        drop(opened.wal);
        let (_, records) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], WalRecord::newick(WalOp::Add, "(A,(B,C));"));
    }

    #[test]
    fn garbled_final_record_is_recoverable_mid_file_is_not() {
        // Flip a byte in the LAST record's payload: lenient scan treats it
        // as crash garbage at the tail.
        let path = tmp("garbled-tail");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        wal.append(WalOp::Add, "((A,C),B);").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 12; // inside the final payload
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_wal(&path).is_err(), "strict mode still refuses");
        let scan = scan_wal(&RealVfs, &path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, WalTail::TornRecord { .. }));
    }

    #[test]
    fn torn_header_is_classified() {
        let path = tmp("torn-header");
        Wal::create(&path, 9).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..11]).unwrap();
        let scan = scan_wal(&RealVfs, &path).unwrap();
        assert_eq!(scan.tail, WalTail::TornHeader { len: 11 });
        assert!(Wal::recover(real_vfs(), &path).unwrap().is_none());
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let path = tmp("magic");
        Wal::create(&path, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal(&path).unwrap_err(),
            IndexError::NotAnIndex(_)
        ));

        let path = tmp("version");
        Wal::create(&path, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xEE;
        bytes[9] = 0xEE;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal(&path).unwrap_err(),
            IndexError::Version { found: 0xEEEE, .. }
        ));
    }

    #[test]
    fn strict_logs_keep_version_1_bytes_and_lenient_logs_record_policy() {
        let path = tmp("policy-v1");
        Wal::create(&path, 5).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, HEADER_LEN, "strict header is 26 bytes");
        assert_eq!(u16::from_le_bytes([bytes[8], bytes[9]]), 1);
        let scan = scan_wal(&RealVfs, &path).unwrap();
        assert_eq!(scan.policy, WalPolicy::Strict);

        let path = tmp("policy-v2");
        let wal = Wal::create_policy_with(real_vfs(), &path, 5, WalPolicy::Lenient).unwrap();
        assert_eq!(wal.policy(), WalPolicy::Lenient);
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, HEADER_LEN_V2);
        assert_eq!(u16::from_le_bytes([bytes[8], bytes[9]]), 2);
        let scan = scan_wal(&RealVfs, &path).unwrap();
        assert_eq!(scan.policy, WalPolicy::Lenient);
        let (wal, _) = Wal::open(&path).unwrap();
        assert_eq!(wal.policy(), WalPolicy::Lenient, "policy survives reopen");

        // A flipped policy byte is typed corruption, not a panic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[18] = 7;
        std::fs::write(&path, &bytes).unwrap();
        let err = scan_wal(&RealVfs, &path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn binary_records_round_trip_and_mix_with_newick() {
        let mut taxa = phylo::TaxonSet::new();
        let tree =
            phylo::parse_newick("((A,B),(C,D));", &mut taxa, phylo::TaxaPolicy::Grow).unwrap();
        let bin = phylo_wire::encode_tree_vec(&tree).unwrap();

        let path = tmp("bin-mix");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(WalOp::Add, "((A,B),(C,D));").unwrap();
        wal.append_bin(WalOp::Add, &bin).unwrap();
        wal.append_bin(WalOp::Remove, &bin).unwrap();
        drop(wal);

        let (_, records) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].payload.encoding(), "newick");
        assert_eq!(records[1], WalRecord::bin(WalOp::Add, bin.clone()));
        assert_eq!(records[2].op, WalOp::Remove);

        // Both encodings decode to the same tree against the namespace.
        let from_text = records[0].decode(&taxa).unwrap();
        let from_bin = records[1].decode(&taxa).unwrap();
        assert_eq!(
            phylo::write_newick(&from_text, &taxa),
            phylo::write_newick(&from_bin, &taxa)
        );
        assert_eq!(records[1].to_newick(&taxa).unwrap(), "((A,B),(C,D));");

        // A flipped byte inside a binary payload is typed corruption at
        // decode time (the record checksum catches most flips first).
        let mut bad = bin.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        let rec = WalRecord::bin(WalOp::Add, bad);
        assert!(rec.decode(&taxa).is_err());
    }

    #[test]
    fn failed_append_rolls_back_to_a_clean_boundary() {
        use crate::vfs::{FaultKind, FaultSite, FaultVfs, MemVfs};
        let mem = MemVfs::new();
        let vfs = FaultVfs::new(Arc::new(mem.clone()));
        let path = Path::new("wal.log");
        let mut wal = Wal::create_with(Arc::new(vfs.clone()), path, 0).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        let good_len = mem.read_bytes(path).unwrap().len();

        // Tear the next record's write mid-payload.
        vfs.fail_nth(FaultSite::Write, 1, FaultKind::Torn { keep: 7 });
        assert!(wal.append(WalOp::Add, "((A,C),B);").is_err());
        assert_eq!(
            mem.read_bytes(path).unwrap().len(),
            good_len,
            "rollback must erase the torn record"
        );

        // The log keeps working and a scan sees a clean file.
        wal.append(WalOp::Add, "(A,(B,C));").unwrap();
        let scan = scan_wal(&mem, path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records.len(), 2);

        // An fsync failure also rolls back: the record was never
        // acknowledged, so it must not survive.
        vfs.fail_nth(FaultSite::Sync, 1, FaultKind::Enospc);
        assert!(wal.append(WalOp::Add, "((B,C),A);").is_err());
        let scan = scan_wal(&mem, path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.tail, WalTail::Clean);
    }
}
