//! Append-only write-ahead log of add/remove tree batches.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic    8  bytes  "BFHWAL\0\0"         (not covered by any checksum)
//! version  u16                            (not covered by any checksum)
//! -- header section ------------------------------------------------
//! generation u64
//! FNV-1a 64 checksum
//! -- records, appended over time -----------------------------------
//! each: { op u8 (1=add, 2=remove) | payload_len u32 | payload (Newick,
//!         UTF-8) | FNV-1a 64 checksum of op+len+payload }
//! ```
//!
//! The `generation` ties a WAL to the snapshot it amends. Compaction
//! writes a new snapshot at generation *g+1* and then resets the WAL to
//! *g+1*; if a crash lands between those two steps, the leftover WAL still
//! says *g* and [`crate::Index`] discards it as stale instead of replaying
//! already-folded batches twice.

use crate::error::IndexError;
use crate::format::Digest;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"BFHWAL\0\0";
/// WAL format version this build reads and writes.
pub const WAL_VERSION: u16 = 1;

/// Largest Newick payload a record may carry (64 MiB) — bounds what a
/// corrupt length field can make the reader allocate.
const MAX_PAYLOAD: usize = 64 << 20;

const OP_ADD: u8 = 1;
const OP_REMOVE: u8 = 2;

/// What a WAL record does to the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Fold the payload tree into the hash.
    Add,
    /// Downdate the payload tree out of the hash.
    Remove,
}

/// One replayable record: an operation plus its Newick payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Add or remove.
    pub op: WalOp,
    /// The tree, serialized as Newick.
    pub newick: String,
}

/// An open WAL positioned for appending.
pub struct Wal {
    path: PathBuf,
    file: File,
    generation: u64,
}

fn record_checksum(op: u8, payload: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(&[op]);
    d.update(&(payload.len() as u32).to_le_bytes());
    d.update(payload);
    d.value()
}

impl Wal {
    /// Create (or truncate) the WAL at `path` for `generation`, fsynced.
    pub fn create(path: &Path, generation: u64) -> Result<Wal, IndexError> {
        let mut file = File::create(path).map_err(|e| IndexError::io(path, e))?;
        let mut header = Vec::with_capacity(26);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        let gen_bytes = generation.to_le_bytes();
        header.extend_from_slice(&gen_bytes);
        let mut d = Digest::new();
        d.update(&gen_bytes);
        header.extend_from_slice(&d.value().to_le_bytes());
        file.write_all(&header)
            .map_err(|e| IndexError::io(path, e))?;
        file.sync_all().map_err(|e| IndexError::io(path, e))?;
        phylo_obs::global().counter("wal_fsyncs_total", &[]).inc();
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            generation,
        })
    }

    /// Open the WAL at `path`, validating and returning every record, then
    /// leave the handle positioned for appending.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>), IndexError> {
        let (generation, records) = read_wal(path)?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| IndexError::io(path, e))?;
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                generation,
            },
            records,
        ))
    }

    /// The generation this WAL amends.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Append one record and fsync it.
    pub fn append(&mut self, op: WalOp, newick: &str) -> Result<(), IndexError> {
        let payload = newick.as_bytes();
        if payload.len() > MAX_PAYLOAD {
            return Err(IndexError::Corrupt {
                section: "wal-record",
                detail: format!(
                    "payload of {} bytes exceeds the record limit",
                    payload.len()
                ),
            });
        }
        let op_byte = match op {
            WalOp::Add => OP_ADD,
            WalOp::Remove => OP_REMOVE,
        };
        let mut rec = Vec::with_capacity(1 + 4 + payload.len() + 8);
        rec.push(op_byte);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&record_checksum(op_byte, payload).to_le_bytes());
        self.file
            .write_all(&rec)
            .map_err(|e| IndexError::io(&self.path, e))?;
        self.file
            .sync_all()
            .map_err(|e| IndexError::io(&self.path, e))?;
        let reg = phylo_obs::global();
        let op_label = match op {
            WalOp::Add => "add",
            WalOp::Remove => "remove",
        };
        reg.counter("wal_appends_total", &[("op", op_label)]).inc();
        reg.counter("wal_fsyncs_total", &[]).inc();
        Ok(())
    }
}

fn take(
    r: &mut impl Read,
    buf: &mut [u8],
    path: &Path,
    section: &'static str,
) -> Result<(), IndexError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(IndexError::Corrupt {
            section,
            detail: "file truncated mid-record".into(),
        }),
        Err(e) => Err(IndexError::io(path, e)),
    }
}

/// Read and validate the whole WAL at `path`: returns its generation and
/// every record in append order. Any flipped byte or torn record is a
/// typed [`IndexError::Corrupt`].
pub fn read_wal(path: &Path) -> Result<(u64, Vec<WalRecord>), IndexError> {
    let file = File::open(path).map_err(|e| IndexError::io(path, e))?;
    let mut r = BufReader::new(file);

    let mut magic = [0u8; 8];
    take(&mut r, &mut magic, path, "wal-header")?;
    if &magic != WAL_MAGIC {
        return Err(IndexError::NotAnIndex(format!(
            "bad WAL magic {:02x?} (expected {:02x?})",
            magic, WAL_MAGIC
        )));
    }
    let mut ver = [0u8; 2];
    take(&mut r, &mut ver, path, "wal-header")?;
    let version = u16::from_le_bytes(ver);
    if version == 0 || version > WAL_VERSION {
        return Err(IndexError::Version {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let mut gen_bytes = [0u8; 8];
    take(&mut r, &mut gen_bytes, path, "wal-header")?;
    let mut sum = [0u8; 8];
    take(&mut r, &mut sum, path, "wal-header")?;
    let mut d = Digest::new();
    d.update(&gen_bytes);
    if d.value() != u64::from_le_bytes(sum) {
        return Err(IndexError::Corrupt {
            section: "wal-header",
            detail: "generation checksum mismatch".into(),
        });
    }
    let generation = u64::from_le_bytes(gen_bytes);

    let mut records = Vec::new();
    loop {
        let mut op_byte = [0u8; 1];
        match r.read_exact(&mut op_byte) {
            Ok(()) => {}
            // Clean EOF at a record boundary is the normal end of the log.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(IndexError::io(path, e)),
        }
        let op = match op_byte[0] {
            OP_ADD => WalOp::Add,
            OP_REMOVE => WalOp::Remove,
            other => {
                return Err(IndexError::Corrupt {
                    section: "wal-record",
                    detail: format!("record {} has unknown op {other}", records.len()),
                })
            }
        };
        let mut len_bytes = [0u8; 4];
        take(&mut r, &mut len_bytes, path, "wal-record")?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_PAYLOAD {
            return Err(IndexError::Corrupt {
                section: "wal-record",
                detail: format!(
                    "record {} claims implausible payload length {len}",
                    records.len()
                ),
            });
        }
        let mut payload = vec![0u8; len];
        take(&mut r, &mut payload, path, "wal-record")?;
        let mut sum = [0u8; 8];
        take(&mut r, &mut sum, path, "wal-record")?;
        if record_checksum(op_byte[0], &payload) != u64::from_le_bytes(sum) {
            return Err(IndexError::Corrupt {
                section: "wal-record",
                detail: format!("record {} checksum mismatch", records.len()),
            });
        }
        let newick = String::from_utf8(payload).map_err(|_| IndexError::Corrupt {
            section: "wal-record",
            detail: format!("record {} payload is not valid UTF-8", records.len()),
        })?;
        records.push(WalRecord { op, newick });
    }
    Ok((generation, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bfhrf-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn create_append_read_round_trip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path, 7).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        wal.append(WalOp::Remove, "((A,C),B);").unwrap();
        drop(wal);
        let (generation, records) = read_wal(&path).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(
            records,
            vec![
                WalRecord {
                    op: WalOp::Add,
                    newick: "((A,B),C);".into()
                },
                WalRecord {
                    op: WalOp::Remove,
                    newick: "((A,C),B);".into()
                },
            ]
        );
        // Reopen-for-append preserves existing records.
        let (mut wal, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(wal.generation(), 7);
        wal.append(WalOp::Add, "(A,(B,C));").unwrap();
        let (_, records) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn flipped_payload_byte_is_typed_corruption() {
        let path = tmp("flip");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 12; // inside the payload
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_wal(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(err.to_string().contains("wal-record"), "{err}");
    }

    #[test]
    fn torn_tail_is_typed_corruption() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(WalOp::Add, "((A,B),C);").unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = read_wal(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let path = tmp("magic");
        Wal::create(&path, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal(&path).unwrap_err(),
            IndexError::NotAnIndex(_)
        ));

        let path = tmp("version");
        Wal::create(&path, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xEE;
        bytes[9] = 0xEE;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal(&path).unwrap_err(),
            IndexError::Version { found: 0xEEEE, .. }
        ));
    }
}
