//! Crash-consistency torture tests.
//!
//! The durability story of the index — fsynced WAL appends, rename-as-
//! commit compaction, generation stamping — is exercised here instead of
//! just argued in comments. A scripted add/remove/compact workload runs on
//! a journaling [`MemVfs`]; the journal is then replayed **prefix by
//! prefix**, each prefix simulating a crash at that exact write, and the
//! index is reopened from the reconstructed disk state. Every crash point
//! must land on a valid pre- or post-commit state: the fingerprint of the
//! reopened hash equals the state just before or just after whichever
//! workload stage the crash interrupted — never a torn hybrid, never a
//! panic, never silently missing an acknowledged batch.
//!
//! A second sweep arms seeded random fault schedules ([`FaultVfs`]) while
//! the workload runs live: every injected ENOSPC, torn write, and failed
//! rename must surface as a typed error that leaves the in-memory and
//! on-disk states reconcilable — after the dust settles, a clean reopen
//! must reproduce exactly the acknowledged state.

use bfhrf::{Bfh, RunGuard};
use phylo::TreeCollection;
use phylo_index::{
    read_snapshot_with, scan_wal, seeded_schedule, FaultKind, FaultSite, FaultVfs, Index,
    IndexError, MemVfs, Vfs, WalTail, SNAPSHOT_FILE, WAL_FILE,
};
use phylo_sim::perturb::random_collection;
use std::path::Path;
use std::sync::Arc;

const DIR: &str = "idx";

/// Exact content fingerprint of a hash: headline counters plus every
/// (mask, frequency) entry in canonical order.
fn fp(bfh: &Bfh) -> (usize, u64, Vec<(Vec<u64>, u32)>) {
    let mut entries: Vec<(Vec<u64>, u32)> = bfh
        .iter()
        .map(|(bits, freq)| (bits.words().to_vec(), freq))
        .collect();
    entries.sort();
    (bfh.n_trees(), bfh.sum(), entries)
}

fn fixture() -> TreeCollection {
    // 10 taxa, 8 trees: small enough that the full prefix sweep stays
    // fast, big enough that snapshots span several buffered writes.
    random_collection(10, 8, 0xC0FFEE)
}

type Action<'a> = Box<dyn Fn(&mut Index) -> Result<(), IndexError> + 'a>;

/// The scripted workload: adds, removes, and compactions interleaved so
/// crash points cover every commit protocol (WAL append, snapshot
/// rename, WAL reset).
fn workload(coll: &TreeCollection) -> Vec<(&'static str, Action<'_>)> {
    vec![
        ("add t3", Box::new(|ix| ix.append_add(&coll.trees[3]))),
        ("add t4", Box::new(|ix| ix.append_add(&coll.trees[4]))),
        ("remove t0", Box::new(|ix| ix.append_remove(&coll.trees[0]))),
        ("compact #1", Box::new(|ix| ix.compact().map(|_| ()))),
        ("add t5", Box::new(|ix| ix.append_add(&coll.trees[5]))),
        ("remove t1", Box::new(|ix| ix.append_remove(&coll.trees[1]))),
        ("compact #2", Box::new(|ix| ix.compact().map(|_| ()))),
        ("add t6", Box::new(|ix| ix.append_add(&coll.trees[6]))),
    ]
}

/// Every prefix of the recorded write journal reopens to a valid pre- or
/// post-commit state — the acceptance criterion of the fault-injection
/// harness. Torn variants of each write are swept too.
#[test]
fn every_crash_point_reopens_to_a_committed_state() {
    let coll = fixture();
    let dir = Path::new(DIR);

    // Record the workload's full write-op sequence.
    let mem = MemVfs::new();
    mem.start_recording();
    let bfh = Bfh::build_sharded(&coll.trees[..3], &coll.taxa, 2);
    let mut ix = Index::create_with(Arc::new(mem.clone()), dir, bfh, coll.taxa.clone())
        .expect("create on MemVfs");

    // boundaries[j] = journal length once stage j is fully on disk;
    // states[j] / gens[j] = the model state after stage j. Stage 0 is
    // the index creation itself.
    let mut boundaries = vec![mem.journal().len()];
    let mut states = vec![fp(ix.bfh())];
    let mut gens = vec![ix.stats().generation];
    for (name, act) in workload(&coll) {
        act(&mut ix).unwrap_or_else(|e| panic!("{name}: {e}"));
        boundaries.push(mem.journal().len());
        states.push(fp(ix.bfh()));
        gens.push(ix.stats().generation);
    }
    let journal = mem.journal();
    let n_stages = boundaries.len();
    assert!(
        journal.len() > 30,
        "workload too small to be interesting: {} ops",
        journal.len()
    );

    // Crash at op k, optionally with the k-th write torn at `keep` bytes.
    let mut crash_points = 0;
    let mut check = |k: usize, torn_keep: Option<usize>| {
        let disk = MemVfs::new();
        disk.apply(&journal[..k]);
        let mut label = format!("crash after op {k}/{}", journal.len());
        let mut upper = k; // ops that have at least begun
        if let Some(keep) = torn_keep {
            let Some(torn) = journal[k].torn(keep) else {
                return;
            };
            disk.apply(std::slice::from_ref(&torn));
            label = format!("crash tearing op {k} at byte {keep}");
            upper = k + 1;
        }
        crash_points += 1;

        // done = last stage fully on disk; started = last stage that has
        // begun writing. Contiguity means started is done or done+1.
        let done = boundaries.iter().rposition(|&b| b <= k);
        let started = boundaries.iter().rposition(|&b| b < upper).map(|j| {
            if j + 1 < n_stages && boundaries[j] < upper {
                j + 1
            } else {
                j
            }
        });
        match Index::open_with(Arc::new(disk), dir) {
            Err(e) if done.is_none() => {
                // Crash before the index creation committed: refusal is
                // the valid pre-commit state, but it must be typed.
                assert!(e.is_corruption(), "{label}: unexpected error class {e}");
            }
            Err(e) => panic!("{label}: index must reopen once created, got {e}"),
            Ok(reopened) => {
                let got = fp(reopened.bfh());
                let lo = done.unwrap_or(0);
                let hi = started.unwrap_or(lo).max(lo).min(n_stages - 1);
                let ok = (lo..=hi).any(|j| states[j] == got);
                assert!(
                    ok,
                    "{label}: reopened state matches neither stage {lo} nor {hi} \
                     (n_trees={}, sum={})",
                    got.0, got.1
                );
                let g = reopened.stats().generation;
                assert!(
                    g >= gens[lo] && g <= gens[hi],
                    "{label}: generation {g} outside [{}, {}]",
                    gens[lo],
                    gens[hi]
                );
            }
        }
    };

    for k in 0..=journal.len() {
        check(k, None);
        if k < journal.len() {
            // Tear the next write near its start and near its end.
            check(k, Some(1));
            check(k, Some(7));
        }
    }
    assert!(
        crash_points > journal.len(),
        "sweep ran: {crash_points} crash points"
    );
}

/// Live fault injection: seeded schedules of ENOSPC, torn writes, and
/// failed renames fire while the workload runs. Every failure must be a
/// typed error (no panics), and a clean reopen afterwards must reproduce
/// exactly the acknowledged in-memory state — no silent data loss.
#[test]
fn seeded_fault_schedules_never_lose_acknowledged_data() {
    let coll = fixture();
    let dir = Path::new(DIR);
    for seed in 0..48u64 {
        let mem = MemVfs::new();
        let bfh = Bfh::build_sharded(&coll.trees[..3], &coll.taxa, 2);
        // Create cleanly, then arm the schedule for the workload itself.
        let fault = FaultVfs::new(Arc::new(mem.clone()));
        let mut ix = Index::create_with(Arc::new(fault.clone()), dir, bfh, coll.taxa.clone())
            .expect("create precedes the fault schedule");
        fault.arm(&seeded_schedule(seed, 4, 30));

        let mut errors = 0;
        for (_, act) in workload(&coll) {
            if act(&mut ix).is_err() {
                errors += 1;
            }
        }
        // One more compaction attempt heals a broken WAL if the schedule
        // left one behind (it may itself fail under a pending fault).
        let _ = ix.compact();
        fault.clear();

        let live = fp(ix.bfh());
        let reopened = Index::open_with(Arc::new(mem), dir)
            .unwrap_or_else(|e| panic!("seed {seed}: reopen after faults failed: {e}"));
        assert_eq!(
            fp(reopened.bfh()),
            live,
            "seed {seed}: reopened state diverged from acknowledged state \
             ({errors} injected errors surfaced)"
        );
    }
}

/// Satellite: a torn final WAL record is truncated on open with a note,
/// instead of refusing the whole index.
#[test]
fn torn_final_wal_record_is_recovered_on_open() {
    let coll = fixture();
    let dir = Path::new(DIR);
    let wal_path = dir.join(WAL_FILE);
    for cut in [1usize, 5, 11] {
        let mem = MemVfs::new();
        let bfh = Bfh::build_sharded(&coll.trees[..3], &coll.taxa, 2);
        let mut ix =
            Index::create_with(Arc::new(mem.clone()), dir, bfh, coll.taxa.clone()).unwrap();
        ix.append_add(&coll.trees[3]).unwrap();
        let expect = fp(ix.bfh());
        ix.append_add(&coll.trees[4]).unwrap();
        drop(ix);

        // Tear the last `cut` bytes off the final record.
        let bytes = mem.read_bytes(&wal_path).unwrap();
        mem.write_bytes(&wal_path, bytes[..bytes.len() - cut].to_vec());

        let reopened = Index::open_with(Arc::new(mem.clone()), dir)
            .unwrap_or_else(|e| panic!("cut {cut}: open must recover a torn tail: {e}"));
        assert_eq!(fp(reopened.bfh()), expect, "cut {cut}");
        assert!(
            reopened.notes().iter().any(|n| n.contains("torn")),
            "cut {cut}: recovery must leave a note: {:?}",
            reopened.notes()
        );
        // The truncation is durable: a second open is clean and note-free.
        drop(reopened);
        let again = Index::open_with(Arc::new(mem), dir).unwrap();
        assert!(
            again.notes().is_empty(),
            "second open must be clean: {:?}",
            again.notes()
        );
    }
}

/// Satellite: a garbled (bit-flipped) final record is crash artifact too —
/// recovered with a note — while the same flip mid-log stays fatal.
#[test]
fn flipped_final_wal_record_is_recovered_on_open() {
    let coll = fixture();
    let dir = Path::new(DIR);
    let wal_path = dir.join(WAL_FILE);
    let mem = MemVfs::new();
    let bfh = Bfh::build_sharded(&coll.trees[..3], &coll.taxa, 2);
    let mut ix = Index::create_with(Arc::new(mem.clone()), dir, bfh, coll.taxa.clone()).unwrap();
    ix.append_add(&coll.trees[3]).unwrap();
    let expect = fp(ix.bfh());
    ix.append_add(&coll.trees[4]).unwrap();
    drop(ix);

    let mut bytes = mem.read_bytes(&wal_path).unwrap();
    let at = bytes.len() - 12; // inside the final record's payload
    bytes[at] ^= 0x40;
    mem.write_bytes(&wal_path, bytes);

    let reopened = Index::open_with(Arc::new(mem), dir).expect("garbled tail is recoverable");
    assert_eq!(fp(reopened.bfh()), expect);
    assert!(reopened.notes().iter().any(|n| n.contains("torn")));
}

/// Satellite: ENOSPC during compaction. Whatever step fails, the old
/// snapshot and WAL must remain intact and readable, and the index must
/// reopen to the acknowledged state.
#[test]
fn enospc_during_compaction_preserves_old_snapshot_and_wal() {
    let coll = fixture();
    let dir = Path::new(DIR);
    let snap_path = dir.join(SNAPSHOT_FILE);
    let wal_path = dir.join(WAL_FILE);
    let tmp_path = dir.join("snapshot.bfh.tmp");

    // Fail (a) the snapshot body write, (b) the commit rename.
    let cases: [(&str, FaultSite, u64); 2] = [
        ("snapshot write", FaultSite::Write, 1),
        ("commit rename", FaultSite::Rename, 1),
    ];
    for (what, site, at) in cases {
        let mem = MemVfs::new();
        let fault = FaultVfs::new(Arc::new(mem.clone()));
        let bfh = Bfh::build_sharded(&coll.trees[..3], &coll.taxa, 2);
        let mut ix =
            Index::create_with(Arc::new(fault.clone()), dir, bfh, coll.taxa.clone()).unwrap();
        ix.append_add(&coll.trees[3]).unwrap();
        ix.append_remove(&coll.trees[0]).unwrap();
        let expect = fp(ix.bfh());
        let gen_before = ix.stats().generation;

        fault.fail_nth(site, at, FaultKind::Enospc);
        let err = ix.compact().expect_err("injected ENOSPC must surface");
        assert!(err.to_string().contains("space"), "{what}: {err}");

        // Old snapshot: readable, still at the old generation.
        let snap = read_snapshot_with(&mem, &snap_path, &RunGuard::default())
            .unwrap_or_else(|e| panic!("{what}: old snapshot must survive: {e}"));
        assert_eq!(snap.meta.generation, gen_before, "{what}");
        // Old WAL: clean, both records intact.
        let scan = scan_wal(&mem, &wal_path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean, "{what}");
        assert_eq!(scan.records.len(), 2, "{what}");
        // No scratch file left behind.
        assert!(!mem.exists(&tmp_path), "{what}: scratch must be cleaned up");

        // The live index keeps mutating, and a later compact succeeds.
        ix.append_add(&coll.trees[4]).unwrap();
        ix.append_remove(&coll.trees[4]).unwrap();
        assert_eq!(fp(ix.bfh()), expect, "{what}");
        ix.compact()
            .unwrap_or_else(|e| panic!("{what}: retried compact must succeed: {e}"));
        assert_eq!(ix.stats().wal_pending, 0);

        drop(ix);
        let reopened = Index::open_with(Arc::new(mem), dir).unwrap();
        assert_eq!(fp(reopened.bfh()), expect, "{what}: reopen after recovery");
    }
}

/// ENOSPC on the WAL reset *after* the snapshot rename committed: the
/// compaction is durable, mutations are refused with a typed error (never
/// appended to the stale log), queries keep working, and a retried
/// compact heals the log in place.
#[test]
fn wal_reset_failure_after_commit_blocks_mutations_until_healed() {
    let coll = fixture();
    let dir = Path::new(DIR);
    let mem = MemVfs::new();
    let fault = FaultVfs::new(Arc::new(mem.clone()));
    let bfh = Bfh::build_sharded(&coll.trees[..3], &coll.taxa, 2);
    let mut ix = Index::create_with(Arc::new(fault.clone()), dir, bfh, coll.taxa.clone()).unwrap();
    ix.append_add(&coll.trees[3]).unwrap();
    let expect = fp(ix.bfh());
    let gen_before = ix.stats().generation;

    // Compaction touches two creates: the snapshot scratch, then the WAL
    // reset. Fail the second — after the rename commit point.
    fault.fail_nth(FaultSite::Create, 2, FaultKind::Enospc);
    assert!(ix.compact().is_err());
    assert_eq!(
        ix.stats().generation,
        gen_before + 1,
        "the snapshot commit itself happened"
    );

    // Mutations are refused with the typed unavailability error...
    let err = ix.append_add(&coll.trees[5]).unwrap_err();
    assert!(
        matches!(err, IndexError::WalUnavailable { .. }),
        "got {err}"
    );
    let err = ix.append_remove(&coll.trees[0]).unwrap_err();
    assert!(
        matches!(err, IndexError::WalUnavailable { .. }),
        "got {err}"
    );
    // ...and the refused remove did not touch the hash.
    assert_eq!(fp(ix.bfh()), expect);

    // Queries still work from memory.
    assert_eq!(ix.bfh().n_trees(), 4);
    assert!(ix.view().frozen.n_trees() == 4);

    // A crash in this state reopens fine: the snapshot has everything and
    // the stale log is discarded.
    let crashed = Index::open_with(Arc::new(mem.clone()), dir).unwrap();
    assert_eq!(fp(crashed.bfh()), expect);
    drop(crashed);

    // A retried compact heals the log without rewriting the snapshot...
    ix.compact().expect("heal");
    assert_eq!(ix.stats().generation, gen_before + 1);
    // ...and mutations flow again.
    ix.append_add(&coll.trees[5]).unwrap();
    assert_eq!(ix.stats().wal_pending, 1);
    drop(ix);
    let reopened = Index::open_with(Arc::new(mem), dir).unwrap();
    assert_eq!(reopened.bfh().n_trees(), 5);
}
