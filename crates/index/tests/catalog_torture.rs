//! Crash-consistency torture tests for the collection catalog.
//!
//! The manifest is the catalog's commit log: every `create`, `drop`, and
//! `rename` is one appended record, and the append is the commit point
//! (collection files land *before* their create record; drop records land
//! *before* the best-effort file removal). Here a scripted admin workload
//! runs on a journaling [`MemVfs`]; the journal is then replayed **prefix
//! by prefix**, each prefix simulating a crash at that exact write, and
//! the catalog is reopened from the reconstructed disk state. Every crash
//! point must land on a valid pre- or post-commit catalog: the set of
//! listed collections equals the set just before or just after whichever
//! admin stage the crash interrupted, and every listed collection opens to
//! a hash logically identical to its committed content (same trees, same
//! split-frequency totals — the physical layout may differ when a crash
//! lands between a compaction's snapshot commit and its WAL reset) —
//! never a phantom collection, never a missing acknowledged one, never a
//! panic.

use phylo::TreeCollection;
use phylo_index::{Catalog, IndexError, MemVfs, MANIFEST_FILE};
use phylo_sim::perturb::random_collection;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

const ROOT: &str = "cat";

/// Newick text of a simulated collection: `n_trees` trees on 8 taxa.
fn trees_text(n_trees: usize, seed: u64) -> String {
    let coll: TreeCollection = random_collection(8, n_trees, seed);
    coll.trees
        .iter()
        .map(|t| format!("{}\n", phylo::write_newick(t, &coll.taxa)))
        .collect()
}

/// Logical content fingerprint of a whole catalog: every listed
/// collection's name mapped to (tree count, frequency sum, distinct
/// splits, canonical tree list). Two equal fingerprints mean the same
/// collections answering the same queries from the same durable state;
/// the *physical* table layout is allowed to differ (an interrupted
/// compaction may reopen from the compacted snapshot instead of
/// snapshot + WAL replay).
fn fp(cat: &mut Catalog) -> BTreeMap<String, (usize, u64, usize, String)> {
    let names: Vec<String> = cat.list().into_iter().map(|c| c.name).collect();
    names
        .into_iter()
        .map(|name| {
            let pin = cat
                .acquire(&name)
                .unwrap_or_else(|e| panic!("listed collection {name:?} must open: {e}"));
            let col = pin.lock();
            let stats = col.stats();
            let lines = col.tree_lines().join("\n");
            drop(col);
            drop(pin);
            (name, (stats.n_trees, stats.sum, stats.distinct, lines))
        })
        .collect()
}

type Stage<'a> = (
    &'static str,
    Box<dyn Fn(&mut Catalog) -> Result<(), IndexError> + 'a>,
);

/// The scripted admin workload: creates, a drop, a rename, and a routed
/// mutation, so crash points cover every manifest record kind plus the
/// collection-level WAL/sidecar commit protocol.
fn workload<'a>(t1: &'a str, t2: &'a str, t3: &'a str, extra: &'a str) -> Vec<Stage<'a>> {
    vec![
        ("create a", Box::new(move |c| c.create("a", t1).map(|_| ()))),
        ("create b", Box::new(move |c| c.create("b", t2).map(|_| ()))),
        (
            "add into a",
            Box::new(move |c| {
                let pin = c.acquire("a")?;
                let mut col = pin.lock();
                col.add_batch(&[extra.trim().to_string()]).map(|_| ())
            }),
        ),
        ("drop b", Box::new(|c| c.drop_collection("b"))),
        ("rename a -> z", Box::new(|c| c.rename_collection("a", "z"))),
        ("create c", Box::new(move |c| c.create("c", t3).map(|_| ()))),
        (
            "compact z",
            Box::new(|c| {
                let pin = c.acquire("z")?;
                let mut col = pin.lock();
                col.compact().map(|_| ())
            }),
        ),
    ]
}

/// Every prefix of the recorded write journal reopens to a valid pre- or
/// post-commit catalog. Torn variants of each write are swept too.
#[test]
fn every_crash_point_reopens_to_a_committed_catalog() {
    let root = Path::new(ROOT);
    let t1 = trees_text(4, 0xA11CE);
    let t2 = trees_text(5, 0xB0B);
    let t3 = trees_text(3, 0xCAFE);
    let extra = trees_text(1, 0xD00D);

    // Record the workload's full write-op sequence.
    let mem = MemVfs::new();
    mem.start_recording();
    let mut cat = Catalog::open_with(Arc::new(mem.clone()), root, None).expect("open on MemVfs");

    // boundaries[j] = journal length once stage j is fully on disk;
    // states[j] = the catalog fingerprint after stage j. Stage 0 is the
    // (empty) catalog creation itself.
    let mut boundaries = vec![mem.journal().len()];
    let mut states = vec![fp(&mut cat)];
    for (name, act) in workload(&t1, &t2, &t3, &extra) {
        act(&mut cat).unwrap_or_else(|e| panic!("{name}: {e}"));
        boundaries.push(mem.journal().len());
        states.push(fp(&mut cat));
    }
    drop(cat);
    let journal = mem.journal();
    let n_stages = boundaries.len();
    assert!(
        journal.len() > 30,
        "workload too small to be interesting: {} ops",
        journal.len()
    );

    // Crash at op k, optionally with the k-th write torn at `keep` bytes.
    let mut crash_points = 0;
    let mut check = |k: usize, torn_keep: Option<usize>| {
        let disk = MemVfs::new();
        disk.apply(&journal[..k]);
        let mut label = format!("crash after op {k}/{}", journal.len());
        let mut upper = k; // ops that have at least begun
        if let Some(keep) = torn_keep {
            let Some(torn) = journal[k].torn(keep) else {
                return;
            };
            disk.apply(std::slice::from_ref(&torn));
            label = format!("crash tearing op {k} at byte {keep}");
            upper = k + 1;
        }
        crash_points += 1;

        // done = last stage fully on disk; started = last stage that has
        // begun writing.
        let done = boundaries.iter().rposition(|&b| b <= k).unwrap_or(0);
        let started = boundaries
            .iter()
            .rposition(|&b| b < upper)
            .map(|j| {
                if j + 1 < n_stages && boundaries[j] < upper {
                    j + 1
                } else {
                    j
                }
            })
            .unwrap_or(done);

        // A crash can never make the catalog unopenable: a torn manifest
        // header is recreated empty, a torn tail record is truncated.
        let mut reopened = Catalog::open_with(Arc::new(disk), root, None)
            .unwrap_or_else(|e| panic!("{label}: catalog must reopen, got {e}"));
        let got = fp(&mut reopened);
        let lo = done;
        let hi = started.max(lo).min(n_stages - 1);
        let ok = (lo..=hi).any(|j| states[j] == got);
        assert!(
            ok,
            "{label}: reopened catalog matches neither stage {lo} nor {hi}: \
             listed = {:?}",
            got.keys().collect::<Vec<_>>()
        );
    };

    for k in 0..=journal.len() {
        check(k, None);
        if k < journal.len() {
            // Tear the next write near its start and near its end.
            check(k, Some(1));
            check(k, Some(7));
        }
    }
    assert!(
        crash_points > journal.len(),
        "sweep ran: {crash_points} crash points"
    );
}

/// A torn final manifest record is a crash artifact: the reopen truncates
/// it with a note and the catalog rolls back to the previous committed
/// record. The truncation is durable — a second open is note-free.
#[test]
fn torn_manifest_tail_is_recovered_on_open() {
    let root = Path::new(ROOT);
    let manifest = root.join(MANIFEST_FILE);
    let t1 = trees_text(4, 0x5EED);
    let t2 = trees_text(3, 0xFEED);
    for cut in [1usize, 5, 11] {
        let mem = MemVfs::new();
        let mut cat = Catalog::open_with(Arc::new(mem.clone()), root, None).unwrap();
        cat.create("keep", &t1).unwrap();
        cat.create("victim", &t2).unwrap();
        drop(cat);

        // Tear the last `cut` bytes off the final record.
        let bytes = mem.read_bytes(&manifest).unwrap();
        mem.write_bytes(&manifest, bytes[..bytes.len() - cut].to_vec());

        let mut reopened = Catalog::open_with(Arc::new(mem.clone()), root, None)
            .unwrap_or_else(|e| panic!("cut {cut}: open must recover a torn tail: {e}"));
        assert!(reopened.contains("keep"), "cut {cut}");
        assert!(
            !reopened.contains("victim"),
            "cut {cut}: the torn create must not commit"
        );
        assert!(
            reopened.notes().iter().any(|n| n.contains("torn")),
            "cut {cut}: recovery must leave a note: {:?}",
            reopened.notes()
        );
        // The surviving collection still opens and answers.
        let pin = reopened.acquire("keep").unwrap();
        assert_eq!(pin.lock().stats().n_trees, 4, "cut {cut}");
        drop(pin);
        drop(reopened);

        let again = Catalog::open_with(Arc::new(mem), root, None).unwrap();
        assert!(
            again.notes().is_empty(),
            "cut {cut}: second open must be clean: {:?}",
            again.notes()
        );
    }
}

/// Mid-file manifest corruption is *not* a crash artifact — a flipped
/// byte in an interior record must refuse the catalog with a typed
/// corruption error, never truncate acknowledged history.
#[test]
fn mid_manifest_corruption_is_a_typed_refusal() {
    let root = Path::new(ROOT);
    let manifest = root.join(MANIFEST_FILE);
    let t1 = trees_text(3, 0x111);
    let t2 = trees_text(3, 0x222);

    let mem = MemVfs::new();
    let mut cat = Catalog::open_with(Arc::new(mem.clone()), root, None).unwrap();
    cat.create("first", &t1).unwrap();
    let after_first = mem.read_bytes(&manifest).unwrap().len();
    cat.create("second", &t2).unwrap();
    drop(cat);

    // Flip one byte inside the *first* record's payload (past the header,
    // before the second record begins).
    let mut bytes = mem.read_bytes(&manifest).unwrap();
    let target = after_first - 6; // inside record 1's checksum/payload
    bytes[target] ^= 0x40;
    assert!(target < after_first, "flip must land mid-file");
    mem.write_bytes(&manifest, bytes);

    let err = Catalog::open_with(Arc::new(mem), root, None)
        .err()
        .expect("interior corruption must refuse the catalog");
    assert!(err.is_corruption(), "unexpected error class: {err}");
}
