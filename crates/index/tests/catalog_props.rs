//! Property tests for the catalog's LRU pool invariants.
//!
//! Two promises the LRU must keep under *any* access pattern:
//!
//! 1. A pinned collection is never evicted, no matter how tight the byte
//!    budget or how many other collections churn through the pool — a
//!    connection actively scoring against a collection must never have it
//!    ripped out from under the pin.
//! 2. Eviction is invisible to correctness: a collection that is evicted
//!    and later reacquired reopens to a frozen table **bitwise identical**
//!    (equal [`bfhrf::FrozenBfh::digest`]) to the one that was dropped,
//!    with the same canonical tree list — cold reopens are deterministic.

use phylo::TreeCollection;
use phylo_index::{Catalog, MemVfs};
use phylo_sim::perturb::random_collection;
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

const ROOT: &str = "cat";

fn trees_text(n_taxa: usize, n_trees: usize, seed: u64) -> String {
    let coll: TreeCollection = random_collection(n_taxa, n_trees, seed);
    coll.trees
        .iter()
        .map(|t| format!("{}\n", phylo::write_newick(t, &coll.taxa)))
        .collect()
}

/// A catalog with three collections under a budget of one byte — every
/// acquire is over budget, so the pool evicts as aggressively as it ever
/// can.
fn tight_catalog(seed: u64) -> Catalog {
    let mut cat = Catalog::open_with(Arc::new(MemVfs::new()), Path::new(ROOT), Some(1)).unwrap();
    for (i, name) in ["p0", "p1", "p2"].iter().enumerate() {
        cat.create(name, &trees_text(7, 3 + i, seed.wrapping_add(i as u64)))
            .unwrap();
    }
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under the tightest possible budget, a held pin keeps its collection
    /// resident through any interleaving of other acquires; dropping the
    /// pin makes it evictable again.
    #[test]
    fn pinned_collections_are_never_evicted(
        seed in 0u64..1_000,
        accesses in vec(0usize..3, 1..16),
    ) {
        let mut cat = tight_catalog(seed);
        let pinned = cat.acquire("p0").unwrap();
        let pinned_digest = pinned.lock().view().frozen.digest();

        for (step, pick) in accesses.iter().enumerate() {
            let name = ["p0", "p1", "p2"][*pick];
            // Transient pin: held only for the duration of one "request".
            let pin = cat.acquire(name).unwrap();
            drop(pin);
            // The long-lived pin's collection must still be open...
            let info = cat
                .list()
                .into_iter()
                .find(|c| c.name == "p0")
                .unwrap();
            prop_assert!(info.open, "step {step}: pinned p0 was evicted");
        }
        // ...and still be the exact same live cell (same frozen table).
        prop_assert_eq!(pinned.lock().view().frozen.digest(), pinned_digest);

        // Once the pin drops, churning the other collections may evict p0
        // — the guarantee is gone, and the budget can finally reclaim it.
        drop(pinned);
        cat.acquire("p1").unwrap();
        cat.acquire("p2").unwrap();
        let info = cat.list().into_iter().find(|c| c.name == "p0").unwrap();
        prop_assert!(!info.open, "unpinned p0 must be evictable under a 1-byte budget");
    }

    /// Evict-then-reacquire reopens a frozen table bitwise identical to
    /// the evicted one, for arbitrary collection shapes.
    #[test]
    fn evicted_collections_reopen_bitwise_identical(
        n_taxa in 5usize..10,
        n_trees in 2usize..7,
        seed in 0u64..10_000,
        churn in vec(1usize..3, 1..6),
    ) {
        let mut cat = tight_catalog(seed);
        cat.create("subject", &trees_text(n_taxa, n_trees, seed ^ 0xDEAD)).unwrap();

        let (digest, lines) = {
            let pin = cat.acquire("subject").unwrap();
            let mut col = pin.lock();
            let d = col.view().frozen.digest();
            let l = col.tree_lines().join("\n");
            (d, l)
        };

        // Churn other collections until the subject is evicted.
        for pick in &churn {
            cat.acquire(["p1", "p2"][*pick - 1]).unwrap();
        }
        let info = cat.list().into_iter().find(|c| c.name == "subject").unwrap();
        prop_assert!(!info.open, "subject must be evicted under a 1-byte budget");
        prop_assert!(cat.evictions() >= 1);

        // Reacquire: the cold reopen reproduces the exact table.
        let pin = cat.acquire("subject").unwrap();
        prop_assert_eq!(pin.lock().view().frozen.digest(), digest);
        prop_assert_eq!(pin.lock().tree_lines().join("\n"), lines);
    }
}
