//! End-to-end tests for the persistent index: snapshot round-trips must be
//! bitwise-exact, corruption must stay a typed error, and a WAL replay
//! must land on the same hash as a fresh build.

use bfhrf::{Bfh, Comparator, RunBudget, RunGuard};
use phylo::TreeCollection;
use phylo_index::{
    read_meta, read_snapshot, read_wal, write_snapshot, Index, IndexError, Wal, WalOp,
    SNAPSHOT_FILE, WAL_FILE,
};
use phylo_sim::perturb::random_collection;
use proptest::prelude::*;
use std::path::PathBuf;

/// Fresh scratch directory per test.
fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfhrf-index-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Exact equality of two hashes: headline counters plus every frequency
/// in both directions (so neither side holds an extra split).
fn assert_bfh_identical(a: &Bfh, b: &Bfh) {
    assert_eq!(a.n_taxa(), b.n_taxa(), "n_taxa");
    assert_eq!(a.n_trees(), b.n_trees(), "n_trees");
    assert_eq!(a.sum(), b.sum(), "sum");
    assert_eq!(a.distinct(), b.distinct(), "distinct");
    for (bits, freq) in a.iter() {
        assert_eq!(b.frequency(bits), freq, "frequency of {bits}");
    }
    for (bits, freq) in b.iter() {
        assert_eq!(a.frequency(bits), freq, "reverse frequency of {bits}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance criterion: a loaded snapshot is bitwise-identical to
    /// the hash that was written — same frequencies, same shard routing,
    /// and identical `average_all` answers.
    #[test]
    fn snapshot_round_trip_is_bitwise_exact(
        n in 4usize..40,
        r in 1usize..20,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        let coll = random_collection(n, r, seed);
        let bfh = Bfh::build_sharded(&coll.trees, &coll.taxa, shards);
        let dir = std::env::temp_dir()
            .join(format!("bfhrf-index-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("snap-{seed:x}-{n}-{r}-{shards}.bfh"));
        write_snapshot(&path, &bfh, &coll.taxa, 3).unwrap();

        let snap = read_snapshot(&path, &RunGuard::default()).unwrap();
        prop_assert_eq!(snap.meta.generation, 3);
        prop_assert_eq!(snap.meta.n_shards, bfh.n_shards());
        prop_assert_eq!(snap.taxa.len(), coll.taxa.len());
        for (id, label) in coll.taxa.iter() {
            prop_assert_eq!(snap.taxa.label(id), label);
        }
        assert_bfh_identical(&snap.bfh, &bfh);

        // Same shard routing → identical per-shard contents.
        for (bits, freq) in bfh.iter() {
            prop_assert_eq!(snap.bfh.frequency_words(bits.words()), freq);
        }

        // Identical average-RF answers on an independent query set.
        let queries = random_collection(n, 3, seed.wrapping_add(99));
        let before = bfhrf::BfhrfComparator::new(&bfh, &coll.taxa)
            .average_all(&queries.trees)
            .unwrap();
        let after = bfhrf::BfhrfComparator::new(&snap.bfh, &snap.taxa)
            .average_all(&queries.trees)
            .unwrap();
        for (x, y) in before.iter().zip(after.iter()) {
            prop_assert_eq!(x.rf.left, y.rf.left);
            prop_assert_eq!(x.rf.right, y.rf.right);
            prop_assert_eq!(x.rf.n_refs, y.rf.n_refs);
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Every single-byte flip anywhere in a snapshot must surface as a typed
/// corruption/IO error — never a panic, never a silently-different hash.
#[test]
fn every_flipped_snapshot_byte_is_a_typed_error() {
    let dir = tmp("flip-sweep");
    let coll = random_collection(12, 6, 0xf11b);
    let bfh = Bfh::build_sharded(&coll.trees, &coll.taxa, 4);
    let path = dir.join("snap.bfh");
    write_snapshot(&path, &bfh, &coll.taxa, 1).unwrap();
    let clean = std::fs::read(&path).unwrap();

    for at in 0..clean.len() {
        let mut bytes = clean.clone();
        bytes[at] ^= 0x5a;
        std::fs::write(&path, &bytes).unwrap();
        match read_snapshot(&path, &RunGuard::default()) {
            Ok(snap) => panic!(
                "flip at byte {at} went undetected (loaded {} splits)",
                snap.bfh.distinct()
            ),
            Err(e) => assert!(
                e.is_corruption(),
                "flip at byte {at} produced a non-corruption error: {e}"
            ),
        }
    }
}

/// Every truncation point must be a typed error too.
#[test]
fn every_truncation_is_a_typed_error() {
    let dir = tmp("trunc-sweep");
    let coll = random_collection(10, 4, 0x77);
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let path = dir.join("snap.bfh");
    write_snapshot(&path, &bfh, &coll.taxa, 0).unwrap();
    let clean = std::fs::read(&path).unwrap();

    for keep in 0..clean.len() {
        std::fs::write(&path, &clean[..keep]).unwrap();
        let err = read_snapshot(&path, &RunGuard::default())
            .err()
            .unwrap_or_else(|| panic!("truncation to {keep} bytes loaded successfully"));
        assert!(
            err.is_corruption(),
            "truncation to {keep} bytes produced a non-corruption error: {err}"
        );
    }
}

/// Reopening an index replays the WAL through `add_tree`/`remove_tree`
/// and lands on exactly the hash a fresh build over the surviving trees
/// would produce.
#[test]
fn wal_replay_equals_fresh_rebuild() {
    let dir = tmp("replay");
    let coll = random_collection(16, 12, 0xabcd);
    let half = 6;

    let base = Bfh::build(&coll.trees[..half], &coll.taxa);
    let mut idx = Index::create(&dir, base, coll.taxa.clone()).unwrap();
    // Add the back half, then remove two of the originals.
    for tree in &coll.trees[half..] {
        idx.append_add(tree).unwrap();
    }
    idx.append_remove(&coll.trees[0]).unwrap();
    idx.append_remove(&coll.trees[3]).unwrap();
    let live_stats = idx.stats();
    assert_eq!(live_stats.wal_pending, coll.trees.len() - half + 2);
    assert_eq!(live_stats.generation, 0);
    drop(idx);

    // What the collection looks like after the churn.
    let survivors: Vec<phylo::Tree> = coll
        .trees
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 0 && *i != 3)
        .map(|(_, t)| t.clone())
        .collect();
    let fresh = Bfh::build(&survivors, &coll.taxa);

    let reopened = Index::open(&dir).unwrap();
    assert_bfh_identical(reopened.bfh(), &fresh);
    assert_eq!(reopened.stats().wal_pending, live_stats.wal_pending);
}

/// Compaction folds the WAL into a new snapshot: the reopened index has
/// the same hash, a bumped generation, and an empty log.
#[test]
fn compaction_folds_wal_and_bumps_generation() {
    let dir = tmp("compact");
    let coll = random_collection(14, 10, 0xc0de);

    let base = Bfh::build(&coll.trees[..5], &coll.taxa);
    let mut idx = Index::create(&dir, base, coll.taxa.clone()).unwrap();
    for tree in &coll.trees[5..] {
        idx.append_add(tree).unwrap();
    }
    let meta = idx.compact().unwrap();
    assert_eq!(meta.generation, 1);
    assert_eq!(idx.stats().wal_pending, 0);
    let live = idx.bfh().clone();
    drop(idx);

    // Disk agrees: snapshot header says generation 1, WAL is empty at 1.
    assert_eq!(read_meta(&dir.join(SNAPSHOT_FILE)).unwrap().generation, 1);
    let (wal_gen, records) = read_wal(&dir.join(WAL_FILE)).unwrap();
    assert_eq!(wal_gen, 1);
    assert!(records.is_empty());

    let reopened = Index::open(&dir).unwrap();
    assert_bfh_identical(reopened.bfh(), &live);
    assert_eq!(reopened.stats().generation, 1);
}

/// A WAL left behind by a crash between the snapshot rename and the WAL
/// reset (generation older than the snapshot's) is discarded, not
/// replayed — its batches are already folded in.
#[test]
fn stale_generation_wal_is_discarded() {
    let dir = tmp("stale");
    let coll = random_collection(12, 8, 0x57a1e);

    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let mut idx = Index::create(&dir, bfh, coll.taxa.clone()).unwrap();
    idx.compact().unwrap(); // snapshot now at generation 1
    let live = idx.bfh().clone();
    drop(idx);

    // Simulate the crash remnant: a generation-0 WAL holding a batch that
    // the generation-1 snapshot already contains.
    let mut stale = Wal::create(&dir.join(WAL_FILE), 0).unwrap();
    stale
        .append(WalOp::Add, &phylo::write_newick(&coll.trees[0], &coll.taxa))
        .unwrap();
    drop(stale);

    let reopened = Index::open(&dir).unwrap();
    assert_bfh_identical(reopened.bfh(), &live);
    assert_eq!(reopened.stats().wal_pending, 0);
    // The stale log was reset to the snapshot's generation.
    let (wal_gen, records) = read_wal(&dir.join(WAL_FILE)).unwrap();
    assert_eq!(wal_gen, 1);
    assert!(records.is_empty());
}

/// A WAL claiming a generation *newer* than the snapshot can only come
/// from manual file shuffling — typed corruption.
#[test]
fn future_generation_wal_is_corruption() {
    let dir = tmp("future");
    let coll = random_collection(8, 4, 0xf00d);
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let idx = Index::create(&dir, bfh, coll.taxa.clone()).unwrap();
    drop(idx);

    Wal::create(&dir.join(WAL_FILE), 9).unwrap();
    let err = Index::open(&dir).err().expect("future WAL must not open");
    assert!(err.is_corruption(), "{err}");
    assert!(err.to_string().contains("ahead of snapshot"), "{err}");
}

/// Removing a tree that was never added fails cleanly and leaves both the
/// in-memory hash and the on-disk WAL untouched.
#[test]
fn failed_remove_leaves_index_unchanged() {
    let dir = tmp("badremove");
    let coll = random_collection(10, 6, 0xbad);
    let bfh = Bfh::build(&coll.trees[..3], &coll.taxa);
    let mut idx = Index::create(&dir, bfh, coll.taxa.clone()).unwrap();
    let before = idx.stats();

    // Pick a tree whose splits were never folded in. random_collection on
    // 10 taxa essentially never repeats interior splits across seeds.
    let stranger = random_collection(10, 1, 0xdead);
    let err = idx.append_remove(&stranger.trees[0]).err();
    assert!(err.is_some(), "removing an absent tree must fail");
    assert_eq!(idx.stats(), before);
    let (_, records) = read_wal(&dir.join(WAL_FILE)).unwrap();
    assert!(records.is_empty(), "nothing may reach the WAL");
}

/// A guarded open refuses to load a snapshot that does not fit the byte
/// budget — typed, recoverable, no allocation attempt.
#[test]
fn guarded_open_enforces_budget() {
    let dir = tmp("budget");
    let coll = random_collection(20, 10, 0xb1d);
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let idx = Index::create(&dir, bfh, coll.taxa.clone()).unwrap();
    drop(idx);

    let tight = RunGuard::with_budget(RunBudget::with_max_bytes(64));
    let err = Index::open_guarded(&dir, &tight)
        .err()
        .expect("64-byte budget cannot fit the snapshot");
    assert!(matches!(err, IndexError::Core(_)), "{err}");

    // And the same directory opens fine without the budget.
    Index::open(&dir).unwrap();
}

/// `TreeCollection::parse` namespaces must survive the round trip with
/// label order intact (ids are positional in the masks).
#[test]
fn taxon_labels_round_trip_in_order() {
    let dir = tmp("labels");
    let coll = TreeCollection::parse("((Homo_sapiens,Pan),(Mus,(Rattus,Canis)));\n").unwrap();
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let idx = Index::create(&dir, bfh, coll.taxa.clone()).unwrap();
    drop(idx);
    let reopened = Index::open(&dir).unwrap();
    for (id, label) in coll.taxa.iter() {
        assert_eq!(reopened.taxa().label(id), label);
    }
}

/// The frozen view opened with the index answers like the live hash, the
/// cached Arc is reused until a mutation, and mutations invalidate it.
#[test]
fn frozen_view_tracks_mutations() {
    let dir = tmp("frozen");
    let coll = random_collection(12, 8, 0xf0f);
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let mut idx = Index::create(&dir, bfh, coll.taxa.clone()).unwrap();

    let f1 = idx.frozen();
    assert_eq!(f1.n_trees(), idx.bfh().n_trees());
    assert_eq!(f1.sum(), idx.bfh().sum());
    for (bits, freq) in idx.bfh().iter() {
        assert_eq!(f1.frequency(bits), freq, "frozen frequency of {bits}");
    }
    // Cached until a mutation...
    assert!(std::sync::Arc::ptr_eq(&f1, &idx.frozen()));

    // ...and rebuilt after one.
    let extra = random_collection(12, 1, 0xf1f);
    let tree = phylo::read_trees_from_str(
        &phylo::write_newick(&extra.trees[0], &extra.taxa),
        &mut coll.taxa.clone(),
        phylo::TaxaPolicy::Require,
    )
    .unwrap()
    .remove(0);
    idx.append_add(&tree).unwrap();
    let f2 = idx.frozen();
    assert!(!std::sync::Arc::ptr_eq(&f1, &f2));
    assert_eq!(f2.n_trees(), idx.bfh().n_trees());
    for (bits, freq) in idx.bfh().iter() {
        assert_eq!(f2.frequency(bits), freq, "post-add frequency of {bits}");
    }

    // A reopened index carries an eagerly-built frozen view too.
    drop(idx);
    let mut reopened = Index::open(&dir).unwrap();
    let f3 = reopened.frozen();
    assert_eq!(f3.n_trees(), reopened.bfh().n_trees());
}

/// The frozen sidecar round trip: create writes it, the read-only fast
/// path serves a table bitwise-identical to a fresh freeze (mapped where
/// the platform allows), and a full reopen primes its cache from it.
#[test]
fn frozen_sidecar_serves_identical_answers() {
    use phylo_index::FROZEN_FILE;
    let dir = tmp("frozen-sidecar");
    let coll = random_collection(18, 9, 0xf70e);
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let want_digest = bfh.freeze().digest();
    let idx = Index::create(&dir, bfh, coll.taxa.clone()).unwrap();
    assert!(dir.join(FROZEN_FILE).exists(), "create writes the sidecar");
    drop(idx);

    let fast = Index::open_frozen(&dir).unwrap();
    assert_eq!(fast.frozen.digest(), want_digest, "bitwise identical");
    assert_eq!(fast.meta.generation, 0);
    #[cfg(all(unix, target_endian = "little"))]
    assert!(fast.mapped, "unix fast path memory-maps the lanes");

    // Answers through the fast path equal answers through the full open.
    let mut full = Index::open(&dir).unwrap();
    assert!(
        full.notes().iter().all(|n| !n.contains("frozen")),
        "clean sidecar leaves no notes: {:?}",
        full.notes()
    );
    let slow_view = full.view();
    assert_eq!(slow_view.frozen.digest(), want_digest);
    let mut scratch = phylo::BipartitionScratch::new();
    for tree in &coll.trees {
        let a = fast.frozen.average_scratch(tree, &coll.taxa, &mut scratch);
        let b = slow_view
            .frozen
            .average_scratch(tree, &coll.taxa, &mut scratch);
        assert_eq!(a, b);
    }
}

/// The fast path refuses (with a typed, non-corruption error) whenever it
/// cannot prove sidecar parity: pending WAL records, a deleted sidecar,
/// or a flipped sidecar byte. The full open keeps working throughout.
#[test]
fn frozen_open_declines_cleanly_when_it_cannot_prove_parity() {
    use phylo_index::FROZEN_FILE;
    let dir = tmp("frozen-decline");
    let coll = random_collection(12, 8, 0xdec1);
    let bfh = Bfh::build(&coll.trees[..6], &coll.taxa);
    let mut idx = Index::create(&dir, bfh, coll.taxa.clone()).unwrap();
    idx.append_add(&coll.trees[6]).unwrap();

    // Pending WAL records: the sidecar is behind the truth.
    let err = Index::open_frozen(&dir).unwrap_err();
    assert!(matches!(err, IndexError::FrozenUnavailable { .. }), "{err}");
    assert!(!err.is_corruption());

    // Compaction refreshes the sidecar; the fast path works again.
    idx.compact().unwrap();
    let want = idx.frozen().digest();
    drop(idx);
    assert_eq!(Index::open_frozen(&dir).unwrap().frozen.digest(), want);

    // A flipped sidecar byte: fast path refuses, full open falls back to
    // freezing with a note and still answers.
    let side = dir.join(FROZEN_FILE);
    let mut bytes = std::fs::read(&side).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&side, &bytes).unwrap();
    let err = Index::open_frozen(&dir).unwrap_err();
    assert!(matches!(err, IndexError::FrozenUnavailable { .. }), "{err}");
    let mut full = Index::open(&dir).unwrap();
    assert!(
        full.notes().iter().any(|n| n.contains("frozen")),
        "corrupt sidecar leaves a note: {:?}",
        full.notes()
    );
    // The fallback freeze serves the same table contents (its digest may
    // differ: freezing a reconstructed hash can order pool entries
    // differently without changing any answer).
    let fallback = full.frozen();
    let truth = Bfh::build(&coll.trees[..7], &coll.taxa).freeze();
    assert_eq!(fallback.n_trees(), 7);
    let mut scratch = phylo::BipartitionScratch::new();
    for tree in &coll.trees {
        let a = fallback.average_scratch(tree, &coll.taxa, &mut scratch);
        let b = truth.average_scratch(tree, &coll.taxa, &mut scratch);
        assert_eq!(a, b);
    }

    // A deleted sidecar is a cache miss, not an error, for the full open.
    std::fs::remove_file(&side).unwrap();
    let err = Index::open_frozen(&dir).unwrap_err();
    assert!(matches!(err, IndexError::FrozenUnavailable { .. }), "{err}");
    Index::open(&dir).unwrap();
}

/// Binary WAL records mix freely with Newick ones and replay to the same
/// hash a fresh build produces.
#[test]
fn binary_wal_records_replay_identically() {
    let dir = tmp("bin-wal");
    let coll = random_collection(15, 10, 0xb19);
    let base = Bfh::build(&coll.trees[..4], &coll.taxa);
    let mut idx = Index::create(&dir, base, coll.taxa.clone()).unwrap();
    for (i, tree) in coll.trees[4..].iter().enumerate() {
        if i % 2 == 0 {
            idx.append_add_bin(tree).unwrap();
        } else {
            idx.append_add(tree).unwrap();
        }
    }
    idx.append_remove_bin(&coll.trees[1]).unwrap();
    idx.append_remove(&coll.trees[2]).unwrap();
    let live = idx.bfh().clone();
    drop(idx);

    let survivors: Vec<phylo::Tree> = coll
        .trees
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 1 && *i != 2)
        .map(|(_, t)| t.clone())
        .collect();
    let fresh = Bfh::build(&survivors, &coll.taxa);
    assert_bfh_identical(&live, &fresh);

    let reopened = Index::open(&dir).unwrap();
    assert_bfh_identical(reopened.bfh(), &fresh);
}

/// Satellite: the WAL records its replay policy, and replay honours it.
/// A leniently-built index skips an undecodable record with a note; a
/// strictly-built one refuses to open, exactly as before.
#[test]
fn replay_policy_is_recorded_and_honoured() {
    use phylo_index::{real_vfs, WalPolicy};
    let coll = random_collection(10, 6, 0x9001);

    for policy in [WalPolicy::Strict, WalPolicy::Lenient] {
        let dir = tmp(&format!("policy-{}", policy.label()));
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        let idx =
            Index::create_policy_with(real_vfs(), &dir, bfh, coll.taxa.clone(), policy).unwrap();
        assert_eq!(idx.policy(), policy);
        drop(idx);

        // Append a record naming a taxon outside the frozen namespace —
        // the persistent analogue of a bad tree in a lenient ingest.
        let (mut wal, _) = Wal::open(&dir.join(WAL_FILE)).unwrap();
        wal.append(WalOp::Add, "(NOT_A_TAXON,ALSO_NOT_ONE);")
            .unwrap();
        drop(wal);

        match policy {
            WalPolicy::Strict => {
                let err = Index::open(&dir).err().expect("strict replay must refuse");
                assert!(err.is_corruption(), "{err}");
            }
            WalPolicy::Lenient => {
                let reopened = Index::open(&dir).unwrap();
                assert_eq!(reopened.policy(), WalPolicy::Lenient);
                assert!(
                    reopened
                        .notes()
                        .iter()
                        .any(|n| n.contains("skipped undecodable record")),
                    "{:?}",
                    reopened.notes()
                );
                // The skipped record changed nothing.
                let fresh = Bfh::build(&coll.trees, &coll.taxa);
                assert_bfh_identical(reopened.bfh(), &fresh);
                // The policy survives compaction's log reset.
                let mut reopened = reopened;
                reopened.compact().unwrap();
                drop(reopened);
                assert_eq!(Index::open(&dir).unwrap().policy(), WalPolicy::Lenient);
            }
        }
    }
}
